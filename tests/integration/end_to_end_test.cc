// End-to-end pipeline tests: generate data -> build index -> run every
// searcher family -> validate results, recall ordering, and persistence.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "core/pdx.h"

namespace pdx {
namespace {

struct Pipeline {
  Dataset dataset;
  IvfIndex index;
  BucketOrderedSet ordered;
  std::vector<std::vector<VectorId>> truth;
};

Pipeline BuildPipeline(size_t dim, ValueDistribution distribution,
                       uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "e2e";
  spec.dim = dim;
  spec.count = 4000;
  spec.num_queries = 12;
  spec.num_clusters = 12;
  spec.seed = seed;
  spec.distribution = distribution;
  Pipeline p{GenerateDataset(spec), {}, {}, {}};
  p.index = IvfIndex::Build(p.dataset.data, {});
  p.ordered = ReorderByBuckets(p.dataset.data, p.index);
  p.truth =
      ComputeGroundTruth(p.dataset.data, p.dataset.queries, 10, Metric::kL2);
  return p;
}

class EndToEndTest
    : public ::testing::TestWithParam<std::tuple<size_t, ValueDistribution>> {
};

TEST_P(EndToEndTest, AllExactSearchersAgreeEverywhere) {
  const auto [dim, distribution] = GetParam();
  Pipeline p = BuildPipeline(dim, distribution, dim * 3);

  PdxStore pdx_store = PdxStore::FromVectorSet(p.dataset.data);
  DsmStore dsm_store = DsmStore::FromVectorSet(p.dataset.data);
  auto bond = MakeBondFlatSearcher(p.dataset.data);
  auto linear = MakeLinearFlatSearcher(p.dataset.data);

  for (size_t q = 0; q < p.dataset.queries.count(); ++q) {
    const float* query = p.dataset.queries.Vector(q);
    const auto& expected = p.truth[q];
    const auto nary = FlatSearchNary(p.dataset.data, query, 10, Metric::kL2);
    const auto pdx = FlatSearchPdx(pdx_store, query, 10, Metric::kL2);
    const auto dsm = FlatSearchDsm(dsm_store, query, 10, Metric::kL2);
    const auto bond_result = bond->Search(query, 10);
    const auto linear_result = linear->Search(query, 10);
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_EQ(nary[i].id, expected[i]);
      ASSERT_EQ(pdx[i].id, expected[i]);
      ASSERT_EQ(dsm[i].id, expected[i]);
      ASSERT_EQ(bond_result[i].id, expected[i]);
      ASSERT_EQ(linear_result[i].id, expected[i]);
    }
  }
}

TEST_P(EndToEndTest, ApproximateSearchersReachHighRecallAtFullProbe) {
  const auto [dim, distribution] = GetParam();
  Pipeline p = BuildPipeline(dim, distribution, dim * 5);

  auto ads = MakeAdsIvfSearcher(p.dataset.data, p.index, {});
  auto bsa = MakeBsaIvfSearcher(p.dataset.data, p.index, {});
  auto bond = MakeBondIvfSearcher(p.dataset.data, p.index, {});

  std::vector<std::vector<Neighbor>> ads_results;
  std::vector<std::vector<Neighbor>> bsa_results;
  std::vector<std::vector<Neighbor>> bond_results;
  for (size_t q = 0; q < p.dataset.queries.count(); ++q) {
    const float* query = p.dataset.queries.Vector(q);
    ads_results.push_back(ads->Search(query, 10, p.index.num_buckets()));
    bsa_results.push_back(bsa->Search(query, 10, p.index.num_buckets()));
    bond_results.push_back(bond->Search(query, 10, p.index.num_buckets()));
  }
  EXPECT_GT(MeanRecallAtK(ads_results, p.truth, 10), 0.95);
  EXPECT_DOUBLE_EQ(MeanRecallAtK(bsa_results, p.truth, 10), 1.0);  // m=1.
  EXPECT_DOUBLE_EQ(MeanRecallAtK(bond_results, p.truth, 10), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, EndToEndTest,
    ::testing::Values(
        std::make_tuple(16, ValueDistribution::kNormal),
        std::make_tuple(50, ValueDistribution::kNormal),
        std::make_tuple(96, ValueDistribution::kSkewed)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_" +
             ValueDistributionName(std::get<1>(info.param));
    });

TEST(EndToEndTest, RecallIsMonotonicInNprobeForLinearScan) {
  Pipeline p = BuildPipeline(32, ValueDistribution::kNormal, 91);
  // The probed-bucket set grows with nprobe, so recall of an exact scan
  // over probed buckets is monotonically non-decreasing.
  double last = -1.0;
  for (size_t nprobe : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < p.dataset.queries.count(); ++q) {
      results.push_back(IvfNarySearch(p.index, p.ordered,
                                      p.dataset.queries.Vector(q), 10,
                                      nprobe));
    }
    const double recall = MeanRecallAtK(results, p.truth, 10);
    ASSERT_GE(recall + 1e-9, last) << "nprobe " << nprobe;
    last = recall;
  }
  EXPECT_DOUBLE_EQ(last, 1.0);  // Full probe is exact.
}

TEST(EndToEndTest, PersistRoundTripThroughFvecs) {
  Pipeline p = BuildPipeline(24, ValueDistribution::kSkewed, 92);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pdx_e2e_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "data.fvecs").string();

  ASSERT_TRUE(WriteFvecs(path, p.dataset.data).ok());
  Result<VectorSet> restored = ReadFvecs(path);
  ASSERT_TRUE(restored.ok());

  auto original_searcher = MakeBondFlatSearcher(p.dataset.data);
  auto restored_searcher = MakeBondFlatSearcher(restored.value());
  for (size_t q = 0; q < 5; ++q) {
    const float* query = p.dataset.queries.Vector(q);
    const auto a = original_searcher->Search(query, 10);
    const auto b = restored_searcher->Search(query, 10);
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].id, b[i].id);
      ASSERT_EQ(a[i].distance, b[i].distance);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(EndToEndTest, AppendThenRebuildFindsNewVector) {
  Pipeline p = BuildPipeline(16, ValueDistribution::kNormal, 93);
  // Plant a vector identical to query 0: it must become the 1-NN after
  // appending and rebuilding the PDX store (PDX's "as-is, no
  // preprocessing" ingestion claim).
  VectorSet grown = p.dataset.data.Clone();
  const VectorId planted = grown.Append(p.dataset.queries.Vector(0));
  auto searcher = MakeBondFlatSearcher(grown);
  const auto result = searcher->Search(p.dataset.queries.Vector(0), 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, planted);
  EXPECT_FLOAT_EQ(result[0].distance, 0.0f);
}

TEST(EndToEndTest, PruningPowerHigherOnSkewedData) {
  Pipeline normal = BuildPipeline(48, ValueDistribution::kNormal, 94);
  Pipeline skewed = BuildPipeline(48, ValueDistribution::kSkewed, 94);

  auto run = [](Pipeline& p) {
    BondConfig config = DefaultFlatBondConfig();
    config.block_capacity = 512;  // Multiple blocks -> pruning can engage.
    auto searcher = MakeBondFlatSearcher(p.dataset.data, config);
    double power = 0.0;
    for (size_t q = 0; q < p.dataset.queries.count(); ++q) {
      searcher->Search(p.dataset.queries.Vector(q), 10);
      power += searcher->last_profile().pruning_power();
    }
    return power / p.dataset.queries.count();
  };
  // The paper's Table 2/6 observation: skewed datasets prune (much) better.
  EXPECT_GT(run(skewed), run(normal));
}

}  // namespace
}  // namespace pdx
