#include "core/pdxearch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "core/searcher.h"
#include "index/flat.h"

namespace pdx {
namespace {

Dataset MakeDataset(size_t dim = 24, uint64_t seed = 9,
                    size_t count = 2000) {
  SyntheticSpec spec;
  spec.name = "pdxearch-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = 10;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kSkewed;
  return GenerateDataset(spec);
}

TEST(PdxearchTest, NoPrunerEqualsLinearScan) {
  Dataset dataset = MakeDataset();
  PdxStore store = PdxStore::FromVectorSet(dataset.data);
  NoPruner pruner;
  PdxearchEngine<NoPruner> engine(&store, &pruner, {});

  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto expected = FlatSearchPdx(store, query, 10, Metric::kL2);
    const auto actual = engine.SearchFlat(query);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id) << "query " << q;
      ASSERT_FLOAT_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

TEST(PdxearchTest, NoPrunerScansEverything) {
  Dataset dataset = MakeDataset();
  PdxStore store = PdxStore::FromVectorSet(dataset.data);
  NoPruner pruner;
  PdxearchEngine<NoPruner> engine(&store, &pruner, {});
  engine.SearchFlat(dataset.queries.Vector(0));
  const PdxearchProfile& profile = engine.last_profile();
  EXPECT_EQ(profile.values_scanned, profile.values_total);
  EXPECT_DOUBLE_EQ(profile.pruning_power(), 0.0);
}

TEST(PdxearchTest, AdaptiveAndFixedStepsSameResultsForExactPruner) {
  Dataset dataset = MakeDataset(32, 10);
  BondConfig adaptive;
  adaptive.search.adaptive_steps = true;
  auto adaptive_searcher = MakeBondFlatSearcher(dataset.data, adaptive);
  BondConfig fixed;
  fixed.search.adaptive_steps = false;
  fixed.search.fixed_step = 32;
  auto fixed_searcher = MakeBondFlatSearcher(dataset.data, fixed);

  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto a = adaptive_searcher->Search(query, 10);
    const auto b = fixed_searcher->Search(query, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].id, b[i].id) << "query " << q << " rank " << i;
    }
  }
}

TEST(PdxearchTest, SelectionFractionDoesNotChangeExactResults) {
  Dataset dataset = MakeDataset(20, 11);
  for (float fraction : {0.02f, 0.2f, 0.8f}) {
    BondConfig config;
    config.search.selection_fraction = fraction;
    auto searcher = MakeBondFlatSearcher(dataset.data, config);
    const float* query = dataset.queries.Vector(0);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto actual = searcher->Search(query, 10);
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id) << "fraction " << fraction;
    }
  }
}

TEST(PdxearchTest, SelectionFractionOneStaysExact) {
  // selection_fraction >= 1.0 used to drop every post-START block straight
  // into PRUNE; the clamped prune_entry must keep results exact and keep
  // the all-lanes WARMUP kernels in use until something is pruned.
  Dataset dataset = MakeDataset(20, 19);
  for (float fraction : {1.0f, 1.5f}) {
    BondConfig config;
    config.search.selection_fraction = fraction;
    config.block_capacity = 256;
    auto searcher = MakeBondFlatSearcher(dataset.data, config);
    const float* query = dataset.queries.Vector(0);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto actual = searcher->Search(query, 10);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id) << "fraction " << fraction;
    }
  }
}

TEST(PdxearchTest, SingleVectorBlocksNeverEnterPrune) {
  // n == 1 blocks: prune_entry clamps to 0, so the lone lane finishes in
  // WARMUP (alive can only drop to 0, which ends the loop anyway).
  Dataset dataset = MakeDataset(16, 20, /*count=*/120);
  PdxStore store = PdxStore::FromVectorSet(dataset.data, /*block_capacity=*/1);
  ASSERT_EQ(store.num_blocks(), dataset.data.count());
  PdxBondPruner pruner(store.stats().means, DimensionOrder::kSequential);
  PdxearchEngine<PdxBondPruner> engine(&store, &pruner, {});
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto actual = engine.SearchFlat(query);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id) << "query " << q;
      ASSERT_FLOAT_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

TEST(PdxearchTest, ProfileValuesAreConsistent) {
  Dataset dataset = MakeDataset(28, 12);
  // Small blocks so the 2000-vector collection spans many blocks and the
  // post-START blocks actually evaluate the pruning predicate.
  BondConfig config;
  config.block_capacity = 256;
  auto searcher = MakeBondFlatSearcher(dataset.data, config);
  searcher->Search(dataset.queries.Vector(0), 10);
  const PdxearchProfile& profile = searcher->last_profile();
  EXPECT_LE(profile.values_scanned, profile.values_total);
  EXPECT_EQ(profile.values_total, 28u * dataset.data.count());
  EXPECT_GE(profile.pruning_power(), 0.0);
  EXPECT_LE(profile.pruning_power(), 1.0);
  EXPECT_GT(profile.predicate_evaluations, 0u);
}

TEST(PdxearchTest, PhaseTimesCollectedWhenEnabled) {
  Dataset dataset = MakeDataset(16, 13);
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  BondConfig config;
  config.search.collect_phase_times = true;
  auto searcher = MakeBondIvfSearcher(dataset.data, index, config);
  searcher->Search(dataset.queries.Vector(0), 10, 8);
  const PdxearchProfile& profile = searcher->last_profile();
  EXPECT_GT(profile.find_buckets_ms, 0.0);
  EXPECT_GT(profile.distance_ms, 0.0);
  EXPECT_GT(profile.total_ms(), 0.0);
}

TEST(PdxearchTest, PhaseTimesZeroWhenDisabled) {
  Dataset dataset = MakeDataset(16, 14);
  auto searcher = MakeBondFlatSearcher(dataset.data);
  searcher->Search(dataset.queries.Vector(0), 10);
  EXPECT_EQ(searcher->last_profile().distance_ms, 0.0);
}

TEST(PdxearchTest, StepObserverSeesBlockLifecycle) {
  Dataset dataset = MakeDataset(16, 15, /*count=*/600);
  PdxStore store = PdxStore::FromVectorSet(dataset.data, 128);
  PdxBondPruner pruner(store.stats().means, DimensionOrder::kSequential);
  PdxearchOptions options;
  std::vector<std::tuple<size_t, size_t, size_t>> events;
  options.step_observer = [&](size_t dims, size_t alive, size_t n) {
    events.emplace_back(dims, alive, n);
  };
  PdxearchEngine<PdxBondPruner> engine(&store, &pruner, options);
  engine.SearchFlat(dataset.queries.Vector(0));

  ASSERT_FALSE(events.empty());
  // First observed event is a block entering WARMUP (dims == 0).
  EXPECT_EQ(std::get<0>(events.front()), 0u);
  // Survivors never exceed the block size and never grow within a block.
  size_t last_alive = SIZE_MAX;
  for (const auto& [dims, alive, n] : events) {
    ASSERT_LE(alive, n);
    if (dims == 0) {
      last_alive = n;
    } else {
      ASSERT_LE(alive, last_alive) << "survivors grew at depth " << dims;
      last_alive = alive;
    }
  }
}

TEST(PdxearchTest, KLargerThanBlock) {
  Dataset dataset = MakeDataset(8, 16, /*count=*/100);
  auto searcher = MakeBondFlatSearcher(dataset.data);
  const auto result = searcher->Search(dataset.queries.Vector(0), 50);
  EXPECT_EQ(result.size(), 50u);
  // Sorted ascending.
  for (size_t i = 1; i < result.size(); ++i) {
    ASSERT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(PdxearchTest, KLargerThanCollection) {
  Dataset dataset = MakeDataset(8, 17, /*count=*/30);
  auto searcher = MakeBondFlatSearcher(dataset.data);
  const auto result = searcher->Search(dataset.queries.Vector(0), 100);
  EXPECT_EQ(result.size(), 30u);
}

TEST(PdxearchTest, SingleVectorCollection) {
  VectorSet single(4);
  const float row[4] = {1, 2, 3, 4};
  single.Append(row);
  auto searcher = MakeBondFlatSearcher(single);
  const float query[4] = {1, 2, 3, 5};
  const auto result = searcher->Search(query, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_FLOAT_EQ(result[0].distance, 1.0f);
}

TEST(PdxearchTest, InitialStepRespected) {
  Dataset dataset = MakeDataset(64, 18, /*count=*/500);
  PdxStore store = PdxStore::FromVectorSet(dataset.data);
  PdxBondPruner pruner(store.stats().means, DimensionOrder::kSequential);
  PdxearchOptions options;
  options.initial_step = 4;
  std::vector<size_t> depths;
  options.step_observer = [&](size_t dims, size_t, size_t) {
    depths.push_back(dims);
  };
  PdxearchEngine<PdxBondPruner> engine(&store, &pruner, options);
  engine.SearchFlat(dataset.queries.Vector(0));
  // Depth sequence per block: 0, 4, 12, 28, 60, 64 (doubling steps).
  ASSERT_GE(depths.size(), 3u);
  size_t i = 0;
  ASSERT_EQ(depths[i++], 0u);
  EXPECT_EQ(depths[i++], 4u);
  EXPECT_EQ(depths[i++], 12u);
}

}  // namespace
}  // namespace pdx
