#include "core/mutable_searcher.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/any_searcher.h"
#include "core/sharded_searcher.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

// Every parity assertion in this suite is EXACT (== on ids and float
// distances, not near-equality): the vertical kernels accumulate per lane
// in ascending dimension order under -ffp-contract=off, so a vector's
// distance is bit-identical whether it sits in the immutable base, the
// append delta, or a fresh rebuild. That byte parity is the acceptance
// criterion for live collections with exact pruners (kLinear always, kBond
// under DimensionOrder::kSequential; IVF asserted with nprobe covering
// every bucket so candidate generation is exhaustive on both sides).

constexpr size_t kAllBuckets = 1u << 20;

VectorSet RandomVectors(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    set.Append(row.data());
  }
  return set;
}

std::vector<float> RandomRow(Rng& rng, size_t dim) {
  std::vector<float> row(dim);
  for (float& v : row) v = static_cast<float>(rng.Gaussian());
  return row;
}

SearcherConfig Config(SearcherLayout layout, PrunerKind pruner,
                      size_t k = 10) {
  SearcherConfig config;
  config.layout = layout;
  config.pruner = pruner;
  config.k = k;
  config.nprobe = kAllBuckets;
  // The data-dependent BOND orders are only id-exact; byte parity needs
  // the physical order (see the bond parity matrix in mutable_searcher.h).
  if (pruner == PrunerKind::kBond) {
    config.bond_order = DimensionOrder::kSequential;
  }
  return config;
}

/// The oracle: live rows by external id (std::map keeps them id-sorted,
/// which matches both the fresh rebuild's row order and the sharded
/// lowest-id tie rule).
using Model = std::map<uint64_t, std::vector<float>>;

Model ModelFromSet(const VectorSet& set) {
  Model model;
  for (size_t i = 0; i < set.count(); ++i) {
    model[i] = std::vector<float>(set.Vector(i), set.Vector(i) + set.dim());
  }
  return model;
}

void ExpectParityWithFreshRebuild(MutableSearcher& live, const Model& model,
                                  const SearcherConfig& config,
                                  const ShardingOptions& sharding,
                                  const VectorSet& queries,
                                  const std::string& label) {
  ASSERT_EQ(live.count(), model.size()) << label;
  if (model.empty()) {
    for (size_t q = 0; q < queries.count(); ++q) {
      EXPECT_TRUE(live.Search(queries.Vector(q)).empty()) << label;
    }
    return;
  }
  VectorSet survivors(live.dim(), model.size());
  std::vector<uint64_t> external;
  external.reserve(model.size());
  for (const auto& [id, row] : model) {
    survivors.Append(row.data());
    external.push_back(id);
  }
  auto fresh = sharding.num_shards > 1
                   ? MakeShardedSearcher(survivors, config, sharding)
                   : MakeSearcher(survivors, config);
  ASSERT_TRUE(fresh.ok()) << label << ": " << fresh.status().ToString();
  for (size_t q = 0; q < queries.count(); ++q) {
    const std::vector<Neighbor> actual = live.Search(queries.Vector(q));
    const std::vector<Neighbor> expected =
        fresh.value()->Search(queries.Vector(q));
    ASSERT_EQ(actual.size(), expected.size()) << label << " query " << q;
    for (size_t i = 0; i < actual.size(); ++i) {
      ASSERT_EQ(actual[i].id, external[expected[i].id])
          << label << " query " << q << " rank " << i;
      ASSERT_EQ(actual[i].distance, expected[i].distance)
          << label << " query " << q << " rank " << i;
    }
  }
}

// --- No mutations: the wrapper is transparent --------------------------

TEST(MutableSearcherTest, NoMutationMatchesPlainSearcher) {
  const size_t dim = 8;
  VectorSet data = RandomVectors(150, dim, 1);
  VectorSet queries = RandomVectors(6, dim, 2);
  for (SearcherLayout layout :
       {SearcherLayout::kFlat, SearcherLayout::kIvf}) {
    for (PrunerKind pruner : {PrunerKind::kLinear, PrunerKind::kBond}) {
      SearcherConfig config = Config(layout, pruner);
      auto plain = MakeSearcher(data, config);
      ASSERT_TRUE(plain.ok());
      auto live = MutableSearcher::Make(data, config);
      ASSERT_TRUE(live.ok()) << live.status().ToString();
      EXPECT_EQ(live.value()->count(), data.count());
      EXPECT_EQ(live.value()->dim(), dim);
      for (size_t q = 0; q < queries.count(); ++q) {
        const auto actual = live.value()->Search(queries.Vector(q));
        const auto expected = plain.value()->Search(queries.Vector(q));
        ASSERT_EQ(actual.size(), expected.size());
        for (size_t i = 0; i < actual.size(); ++i) {
          ASSERT_EQ(actual[i].id, expected[i].id);
          ASSERT_EQ(actual[i].distance, expected[i].distance);
        }
      }
    }
  }
}

// --- The acceptance matrix: interleaved mutations vs fresh rebuild ------

TEST(MutableSearcherTest, InterleavedMutationsMatchFreshRebuild) {
  const size_t dim = 8;
  VectorSet base = RandomVectors(120, dim, 3);
  VectorSet queries = RandomVectors(5, dim, 4);
  struct Variant {
    SearcherLayout layout;
    PrunerKind pruner;
    size_t shards;
  };
  const Variant variants[] = {
      {SearcherLayout::kFlat, PrunerKind::kLinear, 1},
      {SearcherLayout::kFlat, PrunerKind::kLinear, 3},
      {SearcherLayout::kIvf, PrunerKind::kLinear, 1},
      {SearcherLayout::kIvf, PrunerKind::kLinear, 3},
      {SearcherLayout::kFlat, PrunerKind::kBond, 1},
      {SearcherLayout::kFlat, PrunerKind::kBond, 3},
      {SearcherLayout::kIvf, PrunerKind::kBond, 1},
      {SearcherLayout::kIvf, PrunerKind::kBond, 3},
  };
  for (const Variant& v : variants) {
    const std::string label = std::string(SearcherLayoutName(v.layout)) +
                              "/" + PrunerKindName(v.pruner) + "/shards" +
                              std::to_string(v.shards);
    SearcherConfig config = Config(v.layout, v.pruner);
    ShardingOptions sharding;
    sharding.num_shards = v.shards;
    MutationConfig mutation;
    mutation.compact_threshold = 0;  // Mutations only; compaction is below.
    mutation.delta_block_capacity = 16;  // Several delta blocks by the end.
    auto made = MutableSearcher::Make(base, config, mutation, sharding);
    ASSERT_TRUE(made.ok()) << label << ": " << made.status().ToString();
    MutableSearcher& live = *made.value();
    Model model = ModelFromSet(base);
    Rng rng(500 + v.shards);

    // Phase 1: append 30 fresh rows (auto ids continue at base count).
    for (size_t i = 0; i < 30; ++i) {
      const std::vector<float> row = RandomRow(rng, dim);
      auto ids = live.Add(row.data(), 1);
      ASSERT_TRUE(ids.ok()) << label;
      ASSERT_EQ(ids.value().size(), 1u);
      model[ids.value()[0]] = row;
    }
    ExpectParityWithFreshRebuild(live, model, config, sharding, queries,
                                 label + "/adds");

    // Phase 2: delete scattered ids from both base and delta.
    for (const uint64_t id : {3u, 17u, 50u, 119u, 121u, 137u, 149u}) {
      ASSERT_TRUE(live.Delete(id).ok()) << label << " id " << id;
      model.erase(id);
    }
    ExpectParityWithFreshRebuild(live, model, config, sharding, queries,
                                 label + "/deletes");

    // Phase 3: upsert existing ids (base ids and a delta id) in one batch.
    {
      const uint64_t ids[] = {5, 60, 118, 125, 140};
      std::vector<float> rows;
      for (size_t i = 0; i < 5; ++i) {
        const std::vector<float> row = RandomRow(rng, dim);
        rows.insert(rows.end(), row.begin(), row.end());
        model[ids[i]] = row;
      }
      auto res = live.Add(rows.data(), 5, ids);
      ASSERT_TRUE(res.ok()) << label;
      EXPECT_EQ(res.value(), std::vector<uint64_t>(ids, ids + 5));
    }
    ExpectParityWithFreshRebuild(live, model, config, sharding, queries,
                                 label + "/upserts");

    // Phase 4: enough appends to cross several delta-block boundaries,
    // then delete a few of the fresh rows.
    std::vector<uint64_t> fresh_ids;
    for (size_t i = 0; i < 40; ++i) {
      const std::vector<float> row = RandomRow(rng, dim);
      auto ids = live.Add(row.data(), 1);
      ASSERT_TRUE(ids.ok()) << label;
      model[ids.value()[0]] = row;
      fresh_ids.push_back(ids.value()[0]);
    }
    size_t missing_before = 0;
    std::vector<uint64_t> doomed = {fresh_ids[0], fresh_ids[13],
                                    fresh_ids[39]};
    std::vector<uint64_t> missing;
    EXPECT_EQ(live.DeleteBatch(doomed.data(), doomed.size(), &missing),
              doomed.size())
        << label;
    EXPECT_EQ(missing.size(), missing_before);
    for (const uint64_t id : doomed) model.erase(id);
    ExpectParityWithFreshRebuild(live, model, config, sharding, queries,
                                 label + "/mixed");

    const MutationStats stats = live.mutation_stats();
    EXPECT_EQ(stats.live, model.size()) << label;
    EXPECT_GT(stats.delta_blocks, 1u) << label;
    EXPECT_GT(stats.tombstones, 0u) << label;
    EXPECT_EQ(stats.compactions, 0u) << label;
  }
}

// --- Upsert semantics ---------------------------------------------------

TEST(MutableSearcherTest, UpsertReplacesUnderSameId) {
  const size_t dim = 4;
  VectorSet base = RandomVectors(20, dim, 9);
  auto made = MutableSearcher::Make(base, Config(SearcherLayout::kFlat,
                                                 PrunerKind::kLinear, 1));
  ASSERT_TRUE(made.ok());
  MutableSearcher& live = *made.value();

  Rng rng(10);
  const std::vector<float> replacement = RandomRow(rng, dim);
  const uint64_t id = 5;
  auto res = live.Add(replacement.data(), 1, &id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()[0], id);
  EXPECT_EQ(live.count(), base.count());  // Replace, not grow.

  // The replacement now answers for id 5: querying it exactly must return
  // id 5 at distance 0.
  const std::vector<Neighbor> hits = live.Search(replacement.data());
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, 5u);
  EXPECT_EQ(hits[0].distance, 0.0f);

  const MutationStats stats = live.mutation_stats();
  EXPECT_EQ(stats.delta_rows, 1u);
  EXPECT_EQ(stats.tombstones, 1u);
}

TEST(MutableSearcherTest, AutoIdsContinuePastDeletes) {
  const size_t dim = 4;
  VectorSet base = RandomVectors(10, dim, 11);
  auto made = MutableSearcher::Make(base, Config(SearcherLayout::kFlat,
                                                 PrunerKind::kLinear, 3));
  ASSERT_TRUE(made.ok());
  MutableSearcher& live = *made.value();
  Rng rng(12);

  const std::vector<float> rows = RandomRow(rng, dim);
  auto first = live.Add(rows.data(), 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value()[0], 10u);

  ASSERT_TRUE(live.Delete(10).ok());
  // An auto id is never reused, even after its row dies: reuse would let a
  // late delete/upsert of the old id hit the new row.
  auto second = live.Add(rows.data(), 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()[0], 11u);
}

// --- Delete edge cases --------------------------------------------------

TEST(MutableSearcherTest, DeleteMissingIdIsNotFound) {
  VectorSet base = RandomVectors(8, 4, 13);
  auto made = MutableSearcher::Make(base, Config(SearcherLayout::kFlat,
                                                 PrunerKind::kLinear, 3));
  ASSERT_TRUE(made.ok());
  MutableSearcher& live = *made.value();
  EXPECT_TRUE(live.Delete(99).IsNotFound());
  ASSERT_TRUE(live.Delete(3).ok());
  EXPECT_TRUE(live.Delete(3).IsNotFound());  // Double delete.

  const uint64_t ids[] = {1, 3, 99, 5};
  std::vector<uint64_t> missing;
  EXPECT_EQ(live.DeleteBatch(ids, 4, &missing), 2u);
  EXPECT_EQ(missing, (std::vector<uint64_t>{3, 99}));
}

TEST(MutableSearcherTest, DeleteAllThenReAdd) {
  const size_t dim = 4;
  VectorSet base = RandomVectors(6, dim, 14);
  VectorSet queries = RandomVectors(2, dim, 15);
  SearcherConfig config = Config(SearcherLayout::kFlat, PrunerKind::kLinear);
  auto made = MutableSearcher::Make(base, config);
  ASSERT_TRUE(made.ok());
  MutableSearcher& live = *made.value();
  for (uint64_t id = 0; id < 6; ++id) ASSERT_TRUE(live.Delete(id).ok());
  EXPECT_EQ(live.count(), 0u);
  EXPECT_TRUE(live.Search(queries.Vector(0)).empty());

  Model model;
  Rng rng(16);
  for (size_t i = 0; i < 4; ++i) {
    const std::vector<float> row = RandomRow(rng, dim);
    auto ids = live.Add(row.data(), 1);
    ASSERT_TRUE(ids.ok());
    model[ids.value()[0]] = row;
  }
  ExpectParityWithFreshRebuild(live, model, config, ShardingOptions{},
                               queries, "readd");
}

// --- Compaction ---------------------------------------------------------

TEST(MutableSearcherTest, CompactFoldsDeltaAndKeepsParity) {
  const size_t dim = 8;
  VectorSet base = RandomVectors(60, dim, 17);
  VectorSet queries = RandomVectors(4, dim, 18);
  for (size_t shards : {1u, 3u}) {
    SearcherConfig config = Config(SearcherLayout::kIvf, PrunerKind::kLinear);
    ShardingOptions sharding;
    sharding.num_shards = shards;
    MutationConfig mutation;
    mutation.compact_threshold = 8;
    mutation.delta_block_capacity = 16;
    auto made = MutableSearcher::Make(base, config, mutation, sharding);
    ASSERT_TRUE(made.ok());
    MutableSearcher& live = *made.value();
    Model model = ModelFromSet(base);
    Rng rng(19);
    EXPECT_FALSE(live.NeedsCompaction());
    for (size_t i = 0; i < 12; ++i) {
      const std::vector<float> row = RandomRow(rng, dim);
      auto ids = live.Add(row.data(), 1);
      ASSERT_TRUE(ids.ok());
      model[ids.value()[0]] = row;
    }
    ASSERT_TRUE(live.Delete(7).ok());
    model.erase(7);
    EXPECT_TRUE(live.NeedsCompaction());

    ASSERT_TRUE(live.Compact().ok());
    const MutationStats stats = live.mutation_stats();
    EXPECT_EQ(stats.delta_rows, 0u);
    EXPECT_EQ(stats.tombstones, 0u);
    EXPECT_EQ(stats.base_rows, model.size());
    EXPECT_EQ(stats.live, model.size());
    EXPECT_EQ(stats.compactions, 1u);
    EXPECT_FALSE(live.NeedsCompaction());
    ExpectParityWithFreshRebuild(live, model, config, sharding, queries,
                                 "post-compact/shards" +
                                     std::to_string(shards));

    // The collection stays live after the fold: ingest keeps working and
    // auto ids never restart (a restart would collide with survivors).
    const std::vector<float> row = RandomRow(rng, dim);
    auto ids = live.Add(row.data(), 1);
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ(ids.value()[0], 72u);  // 60 base + 12 added.
    model[ids.value()[0]] = row;
    ExpectParityWithFreshRebuild(live, model, config, sharding, queries,
                                 "post-compact-ingest/shards" +
                                     std::to_string(shards));
  }
}

TEST(MutableSearcherTest, CompactOnEmptyCollectionIsANoOp) {
  VectorSet base = RandomVectors(5, 4, 20);
  MutationConfig mutation;
  mutation.compact_threshold = 1;
  auto made = MutableSearcher::Make(
      base, Config(SearcherLayout::kFlat, PrunerKind::kLinear), mutation);
  ASSERT_TRUE(made.ok());
  MutableSearcher& live = *made.value();
  for (uint64_t id = 0; id < 5; ++id) ASSERT_TRUE(live.Delete(id).ok());
  ASSERT_TRUE(live.Compact().ok());  // Zero survivors: keep the old base.
  EXPECT_EQ(live.count(), 0u);
  Rng rng(21);
  const std::vector<float> row = RandomRow(rng, 4);
  ASSERT_TRUE(live.Add(row.data(), 1).ok());
  EXPECT_EQ(live.count(), 1u);
}

// --- The concurrent (per-slot) surface matches the plain one ------------

TEST(MutableSearcherTest, SearchWithMatchesSearch) {
  const size_t dim = 8;
  VectorSet base = RandomVectors(80, dim, 22);
  VectorSet queries = RandomVectors(4, dim, 23);
  SearcherConfig config = Config(SearcherLayout::kFlat, PrunerKind::kLinear);
  MutationConfig mutation;
  mutation.compact_threshold = 0;
  auto made = MutableSearcher::Make(base, config, mutation);
  ASSERT_TRUE(made.ok());
  MutableSearcher& live = *made.value();
  live.ReserveScratch(2);
  Rng rng(24);
  for (size_t i = 0; i < 9; ++i) {
    const std::vector<float> row = RandomRow(rng, dim);
    ASSERT_TRUE(live.Add(row.data(), 1).ok());
  }
  ASSERT_TRUE(live.Delete(2).ok());

  for (size_t q = 0; q < queries.count(); ++q) {
    const auto expected = live.Search(queries.Vector(q));
    const auto actual = live.SearchWith(1, QueryKnobs{}, queries.Vector(q),
                                        nullptr);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id);
      ASSERT_EQ(actual[i].distance, expected[i].distance);
    }
  }

  // Batch flavor, with per-query counters: the delta scan must show up as
  // real search work (blocks visited, values scanned).
  std::vector<float> flat;
  for (size_t q = 0; q < queries.count(); ++q) {
    flat.insert(flat.end(), queries.Vector(q), queries.Vector(q) + dim);
  }
  std::vector<SearchCounters> counters(queries.count());
  const auto batch = live.SearchBatchWith(0, QueryKnobs{}, flat.data(),
                                          queries.count(), nullptr,
                                          counters.data());
  ASSERT_EQ(batch.size(), queries.count());
  for (size_t q = 0; q < queries.count(); ++q) {
    const auto expected = live.Search(queries.Vector(q));
    ASSERT_EQ(batch[q].size(), expected.size());
    for (size_t i = 0; i < batch[q].size(); ++i) {
      ASSERT_EQ(batch[q][i].id, expected[i].id);
      ASSERT_EQ(batch[q][i].distance, expected[i].distance);
    }
    EXPECT_GT(counters[q].blocks_visited, 0u);
    EXPECT_GT(counters[q].values_scanned, 0u);
  }
}

// --- Validation ---------------------------------------------------------

TEST(MutableSearcherTest, RejectsOutOfRangeIds) {
  VectorSet base = RandomVectors(4, 4, 25);
  auto made = MutableSearcher::Make(
      base, Config(SearcherLayout::kFlat, PrunerKind::kLinear));
  ASSERT_TRUE(made.ok());
  MutableSearcher& live = *made.value();
  Rng rng(26);
  const std::vector<float> row = RandomRow(rng, 4);
  const uint64_t too_big = kInvalidVectorId;
  EXPECT_TRUE(live.Add(row.data(), 1, &too_big).status().IsInvalidArgument());
  EXPECT_TRUE(live.Add(nullptr, 1).status().IsInvalidArgument());
  // All-or-nothing: the failed batch left no trace.
  EXPECT_EQ(live.count(), 4u);
  EXPECT_EQ(live.mutation_stats().delta_rows, 0u);
}

}  // namespace
}  // namespace pdx
