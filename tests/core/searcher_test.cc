#include "core/searcher.h"

#include <gtest/gtest.h>

#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "index/flat.h"

namespace pdx {
namespace {

struct Fixture {
  Dataset dataset;
  IvfIndex index;
  BucketOrderedSet ordered;
  std::vector<std::vector<VectorId>> truth;
};

Fixture MakeFixture(size_t dim, ValueDistribution distribution,
                    uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "searcher-test";
  spec.dim = dim;
  spec.count = 3000;
  spec.num_queries = 15;
  spec.num_clusters = 10;
  spec.seed = seed;
  spec.distribution = distribution;
  Fixture fx{GenerateDataset(spec), {}, {}, {}};
  fx.index = IvfIndex::Build(fx.dataset.data, {});
  fx.ordered = ReorderByBuckets(fx.dataset.data, fx.index);
  fx.truth =
      ComputeGroundTruth(fx.dataset.data, fx.dataset.queries, 10, Metric::kL2);
  return fx;
}

double SearcherRecall(Fixture& fx,
                      const std::function<std::vector<Neighbor>(
                          const float*, size_t, size_t)>& search,
                      size_t nprobe) {
  double sum = 0.0;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    const auto result = search(fx.dataset.queries.Vector(q), 10, nprobe);
    sum += RecallAtK(result, fx.truth[q], 10);
  }
  return sum / fx.dataset.queries.count();
}

TEST(SearcherTest, AdsIvfFullProbeHighRecall) {
  Fixture fx = MakeFixture(32, ValueDistribution::kNormal, 41);
  auto ads = MakeAdsIvfSearcher(fx.dataset.data, fx.index, {});
  const double recall = SearcherRecall(
      fx,
      [&](const float* q, size_t k, size_t nprobe) {
        return ads->Search(q, k, nprobe);
      },
      fx.index.num_buckets());
  EXPECT_GT(recall, 0.95);
}

TEST(SearcherTest, BsaIvfFullProbeExactWithUnitMultiplier) {
  Fixture fx = MakeFixture(24, ValueDistribution::kSkewed, 42);
  auto bsa = MakeBsaIvfSearcher(fx.dataset.data, fx.index, {});
  const double recall = SearcherRecall(
      fx,
      [&](const float* q, size_t k, size_t nprobe) {
        return bsa->Search(q, k, nprobe);
      },
      fx.index.num_buckets());
  EXPECT_DOUBLE_EQ(recall, 1.0);
}

TEST(SearcherTest, BondIvfFullProbeExact) {
  Fixture fx = MakeFixture(24, ValueDistribution::kNormal, 43);
  auto bond = MakeBondIvfSearcher(fx.dataset.data, fx.index, {});
  const double recall = SearcherRecall(
      fx,
      [&](const float* q, size_t k, size_t nprobe) {
        return bond->Search(q, k, nprobe);
      },
      fx.index.num_buckets());
  EXPECT_DOUBLE_EQ(recall, 1.0);
}

TEST(SearcherTest, LinearIvfMatchesNaryIvf) {
  Fixture fx = MakeFixture(16, ValueDistribution::kNormal, 44);
  auto linear = MakeLinearIvfSearcher(fx.dataset.data, fx.index);
  for (size_t q = 0; q < 5; ++q) {
    const float* query = fx.dataset.queries.Vector(q);
    // Full probe: bucket ranking differences cannot change the result set.
    const auto expected = IvfNarySearch(fx.index, fx.ordered, query, 10,
                                        fx.index.num_buckets());
    const auto actual = linear->Search(query, 10, fx.index.num_buckets());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id) << "query " << q;
    }
  }
}

TEST(SearcherTest, RecallImprovesWithNprobe) {
  Fixture fx = MakeFixture(48, ValueDistribution::kNormal, 45);
  auto ads = MakeAdsIvfSearcher(fx.dataset.data, fx.index, {});
  auto search = [&](const float* q, size_t k, size_t nprobe) {
    return ads->Search(q, k, nprobe);
  };
  const double recall_small = SearcherRecall(fx, search, 1);
  const double recall_medium = SearcherRecall(fx, search, 8);
  const double recall_full =
      SearcherRecall(fx, search, fx.index.num_buckets());
  EXPECT_LE(recall_small, recall_medium + 0.05);
  EXPECT_LE(recall_medium, recall_full + 0.05);
  EXPECT_GT(recall_full, recall_small);
}

TEST(SearcherTest, FlatAdsVsFlatBruteForce) {
  Fixture fx = MakeFixture(40, ValueDistribution::kSkewed, 46);
  auto ads = MakeAdsFlatSearcher(fx.dataset.data, {});
  double sum = 0.0;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    const auto result = ads->Search(fx.dataset.queries.Vector(q), 10);
    sum += RecallAtK(result, fx.truth[q], 10);
  }
  EXPECT_GT(sum / fx.dataset.queries.count(), 0.95);
}

TEST(SearcherTest, FlatLinearSearcherExact) {
  Fixture fx = MakeFixture(16, ValueDistribution::kNormal, 47);
  auto linear = MakeLinearFlatSearcher(fx.dataset.data);
  for (size_t q = 0; q < 5; ++q) {
    const float* query = fx.dataset.queries.Vector(q);
    const auto expected =
        FlatSearchNary(fx.dataset.data, query, 10, Metric::kL2);
    const auto actual = linear->Search(query, 10);
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id);
    }
  }
}

TEST(SearcherTest, ProfileExposesPreprocessingCosts) {
  // High dimensionality so the D x D mat-vec of ADSampling dominates the
  // D log D sort of PDX-BOND (Table 7's "almost free" claim holds at the
  // paper's D=1536; 512 suffices to separate the costs robustly).
  Fixture fx = MakeFixture(512, ValueDistribution::kNormal, 48);
  AdsConfig ads_config;
  ads_config.search.collect_phase_times = true;
  auto ads = MakeAdsIvfSearcher(fx.dataset.data, fx.index, ads_config);
  BondConfig bond_config;
  bond_config.search.collect_phase_times = true;
  auto bond = MakeBondIvfSearcher(fx.dataset.data, fx.index, bond_config);

  double ads_ms = 0.0;
  double bond_ms = 0.0;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    const float* query = fx.dataset.queries.Vector(q);
    ads->Search(query, 10, 8);
    ads_ms += ads->last_profile().preprocess_ms;
    bond->Search(query, 10, 8);
    bond_ms += bond->last_profile().preprocess_ms;
  }
  EXPECT_GT(ads_ms, 0.0);
  EXPECT_LT(bond_ms, ads_ms);
}

}  // namespace
}  // namespace pdx
