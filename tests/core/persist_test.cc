#include "core/persist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "index/kmeans.h"
#include "storage/pdx_store.h"

namespace pdx {
namespace {

Dataset MakeData(size_t dim = 24, size_t count = 1500, size_t num_queries = 6,
                 uint64_t seed = 11) {
  SyntheticSpec spec;
  spec.name = "persist-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kSkewed;
  return GenerateDataset(spec);
}

SearcherConfig Config(SearcherLayout layout, PrunerKind pruner) {
  SearcherConfig config;
  config.layout = layout;
  config.pruner = pruner;
  config.k = 10;
  config.nprobe = 4;
  return config;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Byte-identical: same ids in the same order, same distance bits.
void ExpectIdenticalResults(const std::vector<Neighbor>& loaded,
                            const std::vector<Neighbor>& built,
                            const std::string& label) {
  ASSERT_EQ(loaded.size(), built.size()) << label;
  for (size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded[i].id, built[i].id) << label << " rank " << i;
    ASSERT_EQ(loaded[i].distance, built[i].distance) << label << " rank " << i;
  }
}

const char* PrunerName(PrunerKind pruner) {
  switch (pruner) {
    case PrunerKind::kLinear: return "linear";
    case PrunerKind::kBond: return "bond";
    case PrunerKind::kAdsampling: return "ads";
    case PrunerKind::kBsa: return "bsa";
  }
  return "?";
}

// --- Acceptance: Save -> Load round-trip is byte-identical across the
// whole {flat, ivf} x {linear, bond, ads, bsa} x {unsharded, sharded}
// matrix, for both the mmap and the heap-fallback load source. Unlike the
// build-vs-build parity tests, IVF needs no all-buckets nprobe here: the
// loaded searcher restores the SAME centroids and bucket lists, so even
// the approximate configurations must reproduce result-for-result. -------

TEST(PersistTest, RoundTripMatrixIsByteIdentical) {
  Dataset data = MakeData();
  for (SearcherLayout layout : {SearcherLayout::kFlat, SearcherLayout::kIvf}) {
    for (PrunerKind pruner :
         {PrunerKind::kLinear, PrunerKind::kBond, PrunerKind::kAdsampling,
          PrunerKind::kBsa}) {
      for (size_t num_shards : {size_t{1}, size_t{3}}) {
        const std::string label =
            std::string(layout == SearcherLayout::kFlat ? "flat" : "ivf") +
            "/" + PrunerName(pruner) + "/shards=" +
            std::to_string(num_shards);
        SearcherConfig config = Config(layout, pruner);
        ShardingOptions sharding;
        sharding.num_shards = num_shards;
        auto built =
            num_shards > 1
                ? MakeShardedSearcher(data.data, config, sharding)
                : MakeSearcher(data.data, config);
        ASSERT_TRUE(built.ok()) << label << ": " << built.status().message();
        std::unique_ptr<Searcher> searcher = std::move(built).value();

        const std::string path = TempPath("roundtrip.pdxc");
        Status saved = searcher->Save(path);
        ASSERT_TRUE(saved.ok()) << label << ": " << saved.message();

        for (bool allow_mmap : {true, false}) {
          LoadOptions options;
          options.allow_mmap = allow_mmap;
          auto loaded = LoadCollection(path, options);
          ASSERT_TRUE(loaded.ok())
              << label << ": " << loaded.status().message();
          EXPECT_EQ(loaded.value().source, allow_mmap ? "mmap" : "loaded");
          EXPECT_EQ(loaded.value().live, nullptr);
          EXPECT_EQ(loaded.value().searcher->count(), data.data.count());
          EXPECT_EQ(loaded.value().searcher->dim(), data.dim());
          EXPECT_EQ(loaded.value().searcher->num_shards(),
                    num_shards > 1 ? num_shards : 1);
          for (size_t q = 0; q < data.queries.count(); ++q) {
            const float* query = data.queries.Vector(q);
            ExpectIdenticalResults(loaded.value().searcher->Search(query),
                                   searcher->Search(query),
                                   label + " query " + std::to_string(q));
          }
        }
        std::remove(path.c_str());
      }
    }
  }
}

// --- Acceptance: loading does zero build work — no k-means run, no block
// packing. The stores are views into the image and the IVF structures are
// decoded, not re-derived. ------------------------------------------------

TEST(PersistTest, LoadRunsNoKmeansAndNoPacking) {
  Dataset data = MakeData();
  SearcherConfig config = Config(SearcherLayout::kIvf, PrunerKind::kBsa);
  auto built = MakeSearcher(data.data, config);
  ASSERT_TRUE(built.ok()) << built.status().message();
  const std::string path = TempPath("zerowork.pdxc");
  ASSERT_TRUE(built.value()->Save(path).ok());

  const uint64_t packs_before = PdxStorePackCount();
  const uint64_t kmeans_before = KMeansRunCount();
  auto loaded = LoadCollection(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(PdxStorePackCount(), packs_before)
      << "loading must not pack PDX blocks";
  EXPECT_EQ(KMeansRunCount(), kmeans_before) << "loading must not run k-means";

  // And the loaded collection actually serves.
  EXPECT_EQ(loaded.value().searcher->Search(data.queries.Vector(0)).size(),
            config.k);
  EXPECT_GT(loaded.value().mapped_bytes, 0u);
  EXPECT_GT(loaded.value().file_bytes, 0u);
  std::remove(path.c_str());
}

// --- Mutable snapshots: mid-delta state (appends, deletes, an upsert, a
// compaction) survives the round-trip, including id allocation. -----------

TEST(PersistTest, MutableSnapshotRestoresMidDeltaState) {
  Dataset data = MakeData(16, 600, 4, 23);
  SearcherConfig config = Config(SearcherLayout::kFlat, PrunerKind::kLinear);
  MutationConfig mutation;
  mutation.compact_threshold = 0;  // Explicit control over compaction.
  auto made = MutableSearcher::Make(data.data, config, mutation);
  ASSERT_TRUE(made.ok()) << made.status().message();
  std::unique_ptr<MutableSearcher> live = std::move(made).value();

  // Mutate: append a batch, delete a few base rows, upsert one id, compact,
  // then append again so the snapshot carries a non-empty delta AND a
  // non-zero compaction count.
  Dataset extra = MakeData(16, 80, 1, 91);
  ASSERT_TRUE(live->Add(extra.data.Vector(0), 40).ok());
  ASSERT_TRUE(live->Delete(3).ok());
  ASSERT_TRUE(live->Delete(617).ok());  // A delta row.
  const uint64_t upsert_id = 7;
  ASSERT_TRUE(live->Add(extra.data.Vector(41), 1, &upsert_id).ok());
  ASSERT_TRUE(live->Compact().ok());
  ASSERT_TRUE(live->Add(extra.data.Vector(42), 30).ok());
  ASSERT_TRUE(live->Delete(10).ok());
  const MutationStats before = live->mutation_stats();
  ASSERT_GT(before.delta_rows, 0u);
  ASSERT_GT(before.tombstones, 0u);

  const std::string path = TempPath("mutable.pdxc");
  ASSERT_TRUE(live->Save(path).ok());
  auto loaded = LoadCollection(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_NE(loaded.value().live, nullptr);
  MutableSearcher* restored = loaded.value().live;

  const MutationStats after = restored->mutation_stats();
  EXPECT_EQ(after.live, before.live);
  EXPECT_EQ(after.base_rows, before.base_rows);
  EXPECT_EQ(after.delta_rows, before.delta_rows);
  EXPECT_EQ(after.tombstones, before.tombstones);
  EXPECT_EQ(after.compactions, before.compactions);

  for (size_t q = 0; q < data.queries.count(); ++q) {
    const float* query = data.queries.Vector(q);
    ExpectIdenticalResults(restored->Search(query), live->Search(query),
                           "mutable query " + std::to_string(q));
  }

  // Deleted ids stay deleted; auto-id allocation resumes where it left off.
  EXPECT_FALSE(restored->Delete(3).ok());
  auto ids_live = live->Add(extra.data.Vector(43), 1);
  auto ids_restored = restored->Add(extra.data.Vector(43), 1);
  ASSERT_TRUE(ids_live.ok());
  ASSERT_TRUE(ids_restored.ok());
  EXPECT_EQ(ids_restored.value(), ids_live.value());
  std::remove(path.c_str());
}

// --- Mutable + sharded base compose. --------------------------------------

TEST(PersistTest, MutableShardedSnapshotRoundTrips) {
  Dataset data = MakeData(16, 500, 3, 37);
  SearcherConfig config = Config(SearcherLayout::kIvf, PrunerKind::kBond);
  MutationConfig mutation;
  mutation.compact_threshold = 0;
  ShardingOptions sharding;
  sharding.num_shards = 2;
  sharding.assignment = ShardAssignment::kRoundRobin;
  auto made = MutableSearcher::Make(data.data, config, mutation, sharding);
  ASSERT_TRUE(made.ok()) << made.status().message();
  std::unique_ptr<MutableSearcher> live = std::move(made).value();
  Dataset extra = MakeData(16, 20, 1, 5);
  ASSERT_TRUE(live->Add(extra.data.Vector(0), 20).ok());
  ASSERT_TRUE(live->Delete(11).ok());

  const std::string path = TempPath("mutable_sharded.pdxc");
  ASSERT_TRUE(live->Save(path).ok());
  auto loaded = LoadCollection(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_NE(loaded.value().live, nullptr);
  EXPECT_EQ(loaded.value().searcher->num_shards(), 2u);
  for (size_t q = 0; q < data.queries.count(); ++q) {
    const float* query = data.queries.Vector(q);
    ExpectIdenticalResults(loaded.value().live->Search(query),
                           live->Search(query),
                           "sharded mutable query " + std::to_string(q));
  }
  std::remove(path.c_str());
}

// --- The loaded image must outlive the searcher's views (pin check): drop
// the LoadedCollection wrapper, keep only the searcher, and query. Under
// ASan a missing pin is a use-after-free here. ------------------------------

TEST(PersistTest, SearcherPinsImageAfterWrapperDies) {
  Dataset data = MakeData(16, 400, 2, 53);
  auto built =
      MakeSearcher(data.data, Config(SearcherLayout::kIvf, PrunerKind::kBond));
  ASSERT_TRUE(built.ok());
  const std::string path = TempPath("pin.pdxc");
  ASSERT_TRUE(built.value()->Save(path).ok());
  std::unique_ptr<Searcher> survivor;
  {
    auto loaded = LoadCollection(path);
    ASSERT_TRUE(loaded.ok());
    survivor = std::move(loaded.value().searcher);
  }
  std::remove(path.c_str());  // mmap stays valid after unlink on POSIX.
  EXPECT_EQ(survivor->Search(data.queries.Vector(0)).size(), 10u);
}

// --- Error surface. --------------------------------------------------------

TEST(PersistTest, SaveToUnwritablePathFails) {
  Dataset data = MakeData(16, 200, 1, 3);
  auto built = MakeSearcher(
      data.data, Config(SearcherLayout::kFlat, PrunerKind::kLinear));
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(built.value()->Save("/nonexistent-dir/x/y.pdxc").ok());
}

TEST(PersistTest, LoadMissingFileFails) {
  auto loaded = LoadCollection(TempPath("does-not-exist.pdxc"));
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace pdx
