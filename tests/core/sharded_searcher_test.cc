#include "core/sharded_searcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "common/parallel.h"

namespace pdx {
namespace {

Dataset MakeData(size_t dim = 24, size_t count = 2000, size_t num_queries = 8,
                 uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.name = "sharded-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

SearcherConfig Config(SearcherLayout layout, PrunerKind pruner,
                      size_t nprobe = 16) {
  SearcherConfig config;
  config.layout = layout;
  config.pruner = pruner;
  config.k = 10;
  config.nprobe = nprobe;
  return config;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& actual,
                         const std::vector<Neighbor>& expected,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual[i].id, expected[i].id) << label << " rank " << i;
    ASSERT_FLOAT_EQ(actual[i].distance, expected[i].distance)
        << label << " rank " << i;
  }
}

// --- Acceptance: sharded == unsharded, flat and IVF, two exact pruners ----

TEST(ShardedSearcherTest, MatchesUnshardedExactPruners) {
  Dataset data = MakeData();
  // IVF candidate generation is itself approximate and each shard builds
  // its own bucket structure, so IVF parity is asserted where both sides
  // are exhaustive: nprobe covering every bucket. Flat parity holds at the
  // paper-default knobs. Linear and PDX-BOND are the exact pruners —
  // pruning changes work done, never the accepted set.
  const size_t all_buckets = 1u << 20;
  for (SearcherLayout layout : {SearcherLayout::kFlat, SearcherLayout::kIvf}) {
    for (PrunerKind pruner : {PrunerKind::kLinear, PrunerKind::kBond}) {
      SearcherConfig config = Config(layout, pruner, all_buckets);
      auto reference = MakeSearcher(data.data, config);
      ASSERT_TRUE(reference.ok());
      for (ShardAssignment assignment :
           {ShardAssignment::kContiguous, ShardAssignment::kRoundRobin}) {
        for (size_t shards : {2u, 5u}) {
          ShardingOptions sharding;
          sharding.num_shards = shards;
          sharding.assignment = assignment;
          auto sharded = MakeShardedSearcher(data.data, config, sharding);
          ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
          const std::string label =
              std::string(SearcherLayoutName(layout)) + "/" +
              PrunerKindName(pruner) + "/" + ShardAssignmentName(assignment) +
              "/" + std::to_string(shards);
          EXPECT_EQ(sharded.value()->num_shards(), shards) << label;
          EXPECT_EQ(sharded.value()->count(), data.data.count()) << label;
          for (size_t q = 0; q < data.queries.count(); ++q) {
            ExpectSameNeighbors(
                sharded.value()->Search(data.queries.Vector(q)),
                reference.value()->Search(data.queries.Vector(q)),
                label + " query " + std::to_string(q));
          }
        }
      }
    }
  }
}

// --- SearchBatch: sequential, own pool, and injected pool all agree ------

TEST(ShardedSearcherTest, BatchMatchesSearchAcrossThreadModes) {
  Dataset data = MakeData(16, 1500, 12, 11);
  ShardingOptions sharding;
  sharding.num_shards = 3;

  SearcherConfig sequential = Config(SearcherLayout::kFlat, PrunerKind::kBond);
  auto seq = MakeShardedSearcher(data.data, sequential, sharding);
  ASSERT_TRUE(seq.ok());

  SearcherConfig own_pool = sequential;
  own_pool.threads = 4;
  auto own = MakeShardedSearcher(data.data, own_pool, sharding);
  ASSERT_TRUE(own.ok());

  ThreadPool pool(4);
  SearcherConfig injected = sequential;
  injected.threads = 4;
  injected.pool = &pool;
  auto shared = MakeShardedSearcher(data.data, injected, sharding);
  ASSERT_TRUE(shared.ok());

  const size_t nq = data.queries.count();
  const uint64_t pools_before = ThreadPool::num_created();
  auto seq_batch = seq.value()->SearchBatch(data.queries.data(), nq);
  auto own_batch = own.value()->SearchBatch(data.queries.data(), nq);
  auto shared_batch = shared.value()->SearchBatch(data.queries.data(), nq);
  // The injected-pool searcher must not have built a pool of its own (the
  // sequential one spawns nothing; the own-pool one builds exactly one).
  EXPECT_EQ(ThreadPool::num_created(), pools_before + 1);

  for (size_t q = 0; q < nq; ++q) {
    const std::vector<Neighbor> expected =
        seq.value()->Search(data.queries.Vector(q));
    ExpectSameNeighbors(seq_batch[q], expected,
                        "seq batch q" + std::to_string(q));
    ExpectSameNeighbors(own_batch[q], expected,
                        "own-pool batch q" + std::to_string(q));
    ExpectSameNeighbors(shared_batch[q], expected,
                        "injected-pool batch q" + std::to_string(q));
  }
  EXPECT_EQ(shared.value()->last_batch_profile().queries, nq);
  EXPECT_GT(shared.value()->last_batch_profile().wall_ms, 0.0);
}

// --- Knob-explicit batches: the serving dispatch path ---------------------

TEST(ShardedSearcherTest, SearchBatchWithMatchesMutatingKnobPath) {
  // The replicated-dispatcher entry point: SearchBatchWith(slot, knobs)
  // must equal set_k/set_nprobe + SearchBatch, and mutate nothing.
  Dataset data = MakeData(16, 1500, 10, 17);
  ShardingOptions sharding;
  sharding.num_shards = 3;
  ThreadPool pool(3);

  for (SearcherLayout layout : {SearcherLayout::kFlat, SearcherLayout::kIvf}) {
    SearcherConfig config = Config(layout, PrunerKind::kBond, 8);
    config.threads = 0;
    config.pool = &pool;
    auto knob_explicit = MakeShardedSearcher(data.data, config, sharding);
    auto mutating = MakeShardedSearcher(data.data, config, sharding);
    ASSERT_TRUE(knob_explicit.ok());
    ASSERT_TRUE(mutating.ok());
    const std::string label = SearcherLayoutName(layout);

    mutating.value()->set_k(4);
    mutating.value()->set_nprobe(3);
    const size_t nq = data.queries.count();
    const auto expected =
        mutating.value()->SearchBatch(data.queries.data(), nq);
    // Band base 2 * pool size: any valid band works, not just 0.
    const size_t slot = 2 * pool.num_threads();
    knob_explicit.value()->ReserveScratch(slot + pool.num_threads());
    BatchProfile profile;
    const auto actual = knob_explicit.value()->SearchBatchWith(
        slot, QueryKnobs{4, 3}, data.queries.data(), nq, &profile);
    for (size_t q = 0; q < nq; ++q) {
      ExpectSameNeighbors(actual[q], expected[q],
                          label + " knob-explicit q" + std::to_string(q));
    }
    EXPECT_EQ(profile.queries, nq);
    // No mutation: the facade's configured defaults are intact.
    EXPECT_EQ(knob_explicit.value()->options().k, 10u);
    EXPECT_EQ(knob_explicit.value()->Search(data.queries.Vector(0)).size(),
              10u);
    // Both batch paths bump every shard once per query.
    const auto counts = knob_explicit.value()->ShardDispatchCounts();
    ASSERT_EQ(counts.size(), 3u);
    // SearchBatchWith(nq) + the one Search above.
    for (uint64_t per_shard : counts) EXPECT_EQ(per_shard, nq + 1);
  }
}

TEST(ShardedSearcherTest, KnobImplicitSlotSearchSeesFacadeSetters) {
  // Regression: default (zero) knobs must resolve against the FACADE
  // config, not each shard's stale construction-time config — otherwise
  // set_k(25) followed by a knob-implicit per-slot search returns 3x10
  // merged-then-truncated candidates instead of the true top-25.
  Dataset data = MakeData(16, 1500, 4, 19);
  ShardingOptions sharding;
  sharding.num_shards = 3;
  SearcherConfig config = Config(SearcherLayout::kFlat, PrunerKind::kBond);
  auto sharded = MakeShardedSearcher(data.data, config, sharding);
  auto reference = MakeSearcher(data.data, config);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(reference.ok());

  sharded.value()->set_k(25);
  reference.value()->set_k(25);
  sharded.value()->ReserveScratch(1);
  for (size_t q = 0; q < data.queries.count(); ++q) {
    const auto got = sharded.value()->SearchWith(0, data.queries.Vector(q));
    ASSERT_EQ(got.size(), 25u) << "query " << q;
    ExpectSameNeighbors(got, reference.value()->Search(data.queries.Vector(q)),
                        "knob-implicit slot q" + std::to_string(q));
  }
}

// --- Approximate pruners: the scatter-gather merge itself is exact -------

TEST(ShardedSearcherTest, ApproximatePrunerEqualsManualScatterGather) {
  Dataset data = MakeData(24, 1800, 6, 13);
  SearcherConfig config = Config(SearcherLayout::kFlat, PrunerKind::kAdsampling);
  constexpr size_t kShards = 3;
  ShardingOptions sharding;
  sharding.num_shards = kShards;
  auto sharded = MakeShardedSearcher(data.data, config, sharding);
  ASSERT_TRUE(sharded.ok());

  // Rebuild the same contiguous slices by hand and run the same per-shard
  // searchers directly: the sharded result must be exactly the (distance,
  // id)-merged union of the per-shard top-k lists, ids remapped to global.
  const size_t count = data.data.count();
  std::vector<std::vector<VectorId>> shard_ids(kShards);
  size_t begin = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const size_t len = count / kShards + (s < count % kShards ? 1 : 0);
    for (size_t i = 0; i < len; ++i) {
      shard_ids[s].push_back(static_cast<VectorId>(begin + i));
    }
    begin += len;
  }
  std::vector<std::unique_ptr<Searcher>> manual;
  for (size_t s = 0; s < kShards; ++s) {
    VectorSet slice = data.data.Select(shard_ids[s]);
    auto made = MakeSearcher(slice, config);
    ASSERT_TRUE(made.ok());
    manual.push_back(std::move(made).value());
  }

  for (size_t q = 0; q < data.queries.count(); ++q) {
    std::vector<Neighbor> merged;
    for (size_t s = 0; s < kShards; ++s) {
      for (const Neighbor& n : manual[s]->Search(data.queries.Vector(q))) {
        merged.push_back({shard_ids[s][n.id], n.distance});
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });
    if (merged.size() > config.k) merged.resize(config.k);
    ExpectSameNeighbors(sharded.value()->Search(data.queries.Vector(q)),
                        merged, "ads query " + std::to_string(q));
  }
}

// --- Runtime knobs, counters, and facade accessors ------------------------

TEST(ShardedSearcherTest, KnobsCountersAndAccessors) {
  Dataset data = MakeData(16, 900, 4, 17);
  ShardingOptions sharding;
  sharding.num_shards = 4;
  auto sharded = MakeShardedSearcher(
      data.data, Config(SearcherLayout::kIvf, PrunerKind::kBond), sharding);
  ASSERT_TRUE(sharded.ok());
  Searcher& s = *sharded.value();

  EXPECT_EQ(s.num_shards(), 4u);
  EXPECT_EQ(s.count(), data.data.count());
  EXPECT_EQ(s.index(), nullptr);
  // Each shard routes through its own IVF index; the nprobe ceiling is the
  // largest shard's bucket count, well above the flat sentinel of 1.
  EXPECT_GT(s.max_nprobe(), 1u);

  // set_k applies on the next call, through the merge truncation and the
  // per-shard searchers alike.
  s.set_k(3);
  EXPECT_EQ(s.Search(data.queries.Vector(0)).size(), 3u);
  s.set_k(25);
  EXPECT_EQ(s.Search(data.queries.Vector(0)).size(), 25u);

  std::vector<uint64_t> counts = s.ShardDispatchCounts();
  ASSERT_EQ(counts.size(), 4u);
  for (uint64_t c : counts) EXPECT_EQ(c, 2u);  // Two Search calls so far.
  s.SearchBatch(data.queries.data(), data.queries.count());
  counts = s.ShardDispatchCounts();
  for (uint64_t c : counts) EXPECT_EQ(c, 2u + data.queries.count());

  // An unsharded facade reports the degenerate values.
  auto plain =
      MakeSearcher(data.data, Config(SearcherLayout::kFlat, PrunerKind::kBond));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value()->num_shards(), 1u);
  EXPECT_TRUE(plain.value()->ShardDispatchCounts().empty());
  EXPECT_EQ(plain.value()->count(), data.data.count());
}

TEST(ShardedSearcherTest, ValidatesAndClamps) {
  Dataset data = MakeData(8, 30, 2, 19);
  SearcherConfig config = Config(SearcherLayout::kFlat, PrunerKind::kLinear);

  ShardingOptions zero;
  zero.num_shards = 0;
  EXPECT_TRUE(
      MakeShardedSearcher(data.data, config, zero).status().IsInvalidArgument());

  ShardingOptions bad_assignment;
  bad_assignment.num_shards = 2;
  bad_assignment.assignment = static_cast<ShardAssignment>(99);
  EXPECT_TRUE(MakeShardedSearcher(data.data, config, bad_assignment)
                  .status()
                  .IsInvalidArgument());

  SearcherConfig bad_config = config;
  bad_config.k = 0;
  ShardingOptions two;
  two.num_shards = 2;
  EXPECT_TRUE(MakeShardedSearcher(data.data, bad_config, two)
                  .status()
                  .IsInvalidArgument());

  // More shards than vectors clamps to one vector per shard.
  ShardingOptions excessive;
  excessive.num_shards = 64;
  auto clamped = MakeShardedSearcher(data.data, config, excessive);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped.value()->num_shards(), data.data.count());

  // num_shards == 1 degrades to a plain searcher.
  ShardingOptions one;
  one.num_shards = 1;
  auto plain = MakeShardedSearcher(data.data, config, one);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value()->num_shards(), 1u);

  // k larger than any single shard still returns the global top-k: shards
  // contribute fewer than k candidates each and the merge fills from all.
  auto reference = MakeSearcher(data.data, config);
  ASSERT_TRUE(reference.ok());
  reference.value()->set_k(20);
  clamped.value()->set_k(20);
  ExpectSameNeighbors(clamped.value()->Search(data.queries.Vector(0)),
                      reference.value()->Search(data.queries.Vector(0)),
                      "k beyond shard size");
}

}  // namespace
}  // namespace pdx
