#include "core/any_searcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "core/searcher.h"

namespace pdx {
namespace {

struct Fixture {
  Dataset dataset;
  IvfIndex index;
};

Fixture MakeFixture(size_t dim = 24, uint64_t seed = 71) {
  SyntheticSpec spec;
  spec.name = "any-searcher-test";
  spec.dim = dim;
  spec.count = 2000;
  spec.num_queries = 10;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  Fixture fx{GenerateDataset(spec), {}};
  fx.index = IvfIndex::Build(fx.dataset.data, {});
  return fx;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& actual,
                         const std::vector<Neighbor>& expected,
                         const char* label, size_t query) {
  ASSERT_EQ(actual.size(), expected.size()) << label << " query " << query;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual[i].id, expected[i].id)
        << label << " query " << query << " rank " << i;
    ASSERT_FLOAT_EQ(actual[i].distance, expected[i].distance)
        << label << " query " << query << " rank " << i;
  }
}

SearcherConfig IvfConfig(PrunerKind pruner, size_t nprobe) {
  SearcherConfig config;
  config.layout = SearcherLayout::kIvf;
  config.pruner = pruner;
  config.k = 10;
  config.nprobe = nprobe;
  return config;
}

// The facade must be byte-for-byte the concrete searcher it erases: same
// store construction, same pruner parameters, same engine — so ids AND
// distances must match exactly for every layout x pruner combination.

TEST(AnySearcherTest, IvfParityWithDirectFactories) {
  Fixture fx = MakeFixture();
  const size_t nprobe = 4;

  auto ads = MakeAdsIvfSearcher(fx.dataset.data, fx.index, {});
  auto bsa = MakeBsaIvfSearcher(fx.dataset.data, fx.index, {});
  auto bond = MakeBondIvfSearcher(fx.dataset.data, fx.index, {});
  auto linear = MakeLinearIvfSearcher(fx.dataset.data, fx.index);

  struct Case {
    PrunerKind pruner;
    std::function<std::vector<Neighbor>(const float*)> direct;
  };
  const std::vector<Case> cases = {
      {PrunerKind::kAdsampling,
       [&](const float* q) { return ads->Search(q, 10, nprobe); }},
      {PrunerKind::kBsa,
       [&](const float* q) { return bsa->Search(q, 10, nprobe); }},
      {PrunerKind::kBond,
       [&](const float* q) { return bond->Search(q, 10, nprobe); }},
      {PrunerKind::kLinear,
       [&](const float* q) { return linear->Search(q, 10, nprobe); }},
  };

  for (const Case& c : cases) {
    auto made = MakeSearcher(fx.dataset.data, fx.index,
                             IvfConfig(c.pruner, nprobe));
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    auto& facade = *made.value();
    EXPECT_EQ(facade.index(), &fx.index);
    EXPECT_EQ(facade.dim(), fx.dataset.dim());
    for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
      const float* query = fx.dataset.queries.Vector(q);
      ExpectSameNeighbors(facade.Search(query), c.direct(query),
                          PrunerKindName(c.pruner), q);
    }
  }
}

TEST(AnySearcherTest, FlatParityWithDirectFactories) {
  Fixture fx = MakeFixture(20, 72);

  auto ads = MakeAdsFlatSearcher(fx.dataset.data, {});
  auto bsa = MakeBsaFlatSearcher(fx.dataset.data, {});
  auto bond = MakeBondFlatSearcher(fx.dataset.data);
  auto linear = MakeLinearFlatSearcher(fx.dataset.data);

  struct Case {
    PrunerKind pruner;
    std::function<std::vector<Neighbor>(const float*)> direct;
  };
  const std::vector<Case> cases = {
      {PrunerKind::kAdsampling,
       [&](const float* q) { return ads->Search(q, 10); }},
      {PrunerKind::kBsa, [&](const float* q) { return bsa->Search(q, 10); }},
      {PrunerKind::kBond, [&](const float* q) { return bond->Search(q, 10); }},
      {PrunerKind::kLinear,
       [&](const float* q) { return linear->Search(q, 10); }},
  };

  for (const Case& c : cases) {
    SearcherConfig config;
    config.layout = SearcherLayout::kFlat;
    config.pruner = c.pruner;
    config.k = 10;
    auto made = MakeSearcher(fx.dataset.data, config);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    auto& facade = *made.value();
    EXPECT_EQ(facade.index(), nullptr);
    for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
      const float* query = fx.dataset.queries.Vector(q);
      ExpectSameNeighbors(facade.Search(query), c.direct(query),
                          PrunerKindName(c.pruner), q);
    }
  }
}

TEST(AnySearcherTest, FlatDefaultsMatchPaperBondSetup) {
  Fixture fx = MakeFixture(16, 73);
  auto made = MakeSearcher(fx.dataset.data, {});
  ASSERT_TRUE(made.ok());
  // Flat PDX-BOND resolves to the paper's 10K-vector exact-search
  // partitions: 2000 vectors -> one block.
  EXPECT_EQ(made.value()->options().block_capacity,
            kExactSearchBlockCapacity);
  EXPECT_EQ(made.value()->store().num_blocks(), 1u);
}

TEST(AnySearcherTest, OwnedIndexPathReachesFullRecall) {
  Fixture fx = MakeFixture(24, 74);
  SearcherConfig config = IvfConfig(PrunerKind::kBond, 64);
  // No external index: the factory builds and owns one.
  auto made = MakeSearcher(fx.dataset.data, config);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto& searcher = *made.value();
  ASSERT_NE(searcher.index(), nullptr);
  searcher.set_nprobe(searcher.index()->num_buckets());

  const auto truth =
      ComputeGroundTruth(fx.dataset.data, fx.dataset.queries, 10, Metric::kL2);
  double sum = 0.0;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    sum += RecallAtK(searcher.Search(fx.dataset.queries.Vector(q)), truth[q],
                     10);
  }
  // Full probe + exact pruner == exact search.
  EXPECT_DOUBLE_EQ(sum / fx.dataset.queries.count(), 1.0);
}

TEST(AnySearcherTest, BatchMatchesSequentialAcrossThreadCounts) {
  Fixture fx = MakeFixture(24, 75);
  for (PrunerKind pruner :
       {PrunerKind::kAdsampling, PrunerKind::kBsa, PrunerKind::kBond,
        PrunerKind::kLinear}) {
    auto made =
        MakeSearcher(fx.dataset.data, fx.index, IvfConfig(pruner, 4));
    ASSERT_TRUE(made.ok());
    auto& searcher = *made.value();

    std::vector<std::vector<Neighbor>> expected;
    for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
      expected.push_back(searcher.Search(fx.dataset.queries.Vector(q)));
    }
    for (size_t threads : {1u, 2u, 4u, 7u}) {
      searcher.set_threads(threads);
      const auto batch = searcher.SearchBatch(fx.dataset.queries.data(),
                                              fx.dataset.queries.count());
      ASSERT_EQ(batch.size(), expected.size());
      for (size_t q = 0; q < batch.size(); ++q) {
        ExpectSameNeighbors(batch[q], expected[q], PrunerKindName(pruner), q);
      }
    }
  }
}

TEST(AnySearcherTest, FlatBatchMatchesSequential) {
  Fixture fx = MakeFixture(20, 76);
  SearcherConfig config;
  config.pruner = PrunerKind::kBond;
  config.threads = 3;
  auto made = MakeSearcher(fx.dataset.data, config);
  ASSERT_TRUE(made.ok());
  auto& searcher = *made.value();
  const auto batch = searcher.SearchBatch(fx.dataset.queries.data(),
                                          fx.dataset.queries.count());
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    ExpectSameNeighbors(batch[q],
                        searcher.Search(fx.dataset.queries.Vector(q)), "bond",
                        q);
  }
}

TEST(AnySearcherTest, InjectedPoolIsSharedAcrossSearchers) {
  Fixture fx = MakeFixture(24, 86);
  ThreadPool pool(3);

  SearcherConfig config = IvfConfig(PrunerKind::kBond, 4);
  config.threads = 0;  // Non-1: defer to the injected pool's size.
  config.pool = &pool;
  auto a = MakeSearcher(fx.dataset.data, fx.index, config);
  config.pruner = PrunerKind::kLinear;
  auto b = MakeSearcher(fx.dataset.data, fx.index, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::vector<std::vector<Neighbor>> expected_a, expected_b;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    expected_a.push_back(a.value()->Search(fx.dataset.queries.Vector(q)));
    expected_b.push_back(b.value()->Search(fx.dataset.queries.Vector(q)));
  }

  // Batches on both searchers must run on `pool` — no private pool may be
  // constructed on the query path — and still return the sequential
  // results exactly.
  const uint64_t pools_before = ThreadPool::num_created();
  const auto batch_a = a.value()->SearchBatch(fx.dataset.queries.data(),
                                              fx.dataset.queries.count());
  const auto batch_b = b.value()->SearchBatch(fx.dataset.queries.data(),
                                              fx.dataset.queries.count());
  EXPECT_EQ(ThreadPool::num_created(), pools_before);
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    ExpectSameNeighbors(batch_a[q], expected_a[q], "injected-pool bond", q);
    ExpectSameNeighbors(batch_b[q], expected_b[q], "injected-pool linear", q);
  }
}

TEST(AnySearcherTest, InjectedPoolKeepsSequentialEscapeHatch) {
  Fixture fx = MakeFixture(16, 87);
  ThreadPool pool(3);
  SearcherConfig config = IvfConfig(PrunerKind::kBond, 4);
  config.threads = 1;  // Paper methodology: sequential even with a pool.
  config.pool = &pool;
  auto made = MakeSearcher(fx.dataset.data, fx.index, config);
  ASSERT_TRUE(made.ok());
  const auto batch = made.value()->SearchBatch(fx.dataset.queries.data(),
                                               fx.dataset.queries.count());
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    ExpectSameNeighbors(batch[q],
                        made.value()->Search(fx.dataset.queries.Vector(q)),
                        "sequential with pool", q);
  }
}

TEST(AnySearcherTest, BatchProfileTracksLatencyPercentiles) {
  Fixture fx = MakeFixture(16, 88);
  SearcherConfig config = IvfConfig(PrunerKind::kBond, 4);
  config.threads = 2;
  auto made = MakeSearcher(fx.dataset.data, fx.index, config);
  ASSERT_TRUE(made.ok());
  const size_t nq = fx.dataset.queries.count();
  made.value()->SearchBatch(fx.dataset.queries.data(), nq);
  const LatencySummary latency =
      made.value()->last_batch_profile().latency_summary();
  EXPECT_EQ(latency.count, nq);
  EXPECT_GT(latency.p50_ms, 0.0);
  EXPECT_LE(latency.p50_ms, latency.p95_ms);
  EXPECT_LE(latency.p95_ms, latency.p99_ms);
  EXPECT_LE(latency.p99_ms, latency.max_ms + 1e-9);
}

TEST(AnySearcherTest, RejectsAbsurdThreadCounts) {
  Fixture fx = MakeFixture(16, 89);
  SearcherConfig config;
  config.threads = kMaxPoolThreads + 1;
  const auto made = MakeSearcher(fx.dataset.data, config);
  ASSERT_FALSE(made.ok());
  EXPECT_TRUE(made.status().IsInvalidArgument());
  // The ceiling itself (and 0 = hardware) stay legal.
  config.threads = kMaxPoolThreads;
  EXPECT_TRUE(ValidateSearcherConfig(config).ok());
  config.threads = 0;
  EXPECT_TRUE(ValidateSearcherConfig(config).ok());
}

TEST(AnySearcherTest, BatchProfileAggregates) {
  Fixture fx = MakeFixture(16, 77);
  SearcherConfig config = IvfConfig(PrunerKind::kBond, 4);
  config.threads = 2;
  auto made = MakeSearcher(fx.dataset.data, fx.index, config);
  ASSERT_TRUE(made.ok());
  auto& searcher = *made.value();
  const size_t nq = fx.dataset.queries.count();
  searcher.SearchBatch(fx.dataset.queries.data(), nq);
  const BatchProfile& profile = searcher.last_batch_profile();
  EXPECT_EQ(profile.queries, nq);
  EXPECT_GT(profile.wall_ms, 0.0);
  EXPECT_GT(profile.sum.values_total, 0u);
  EXPECT_LE(profile.sum.values_scanned, profile.sum.values_total);
  EXPECT_GT(profile.qps(), 0.0);
  EXPECT_GE(profile.pruning_power(), 0.0);
}

TEST(AnySearcherTest, SetKTakesEffect) {
  Fixture fx = MakeFixture(16, 78);
  auto made = MakeSearcher(fx.dataset.data, fx.index,
                           IvfConfig(PrunerKind::kLinear, 4));
  ASSERT_TRUE(made.ok());
  auto& searcher = *made.value();
  EXPECT_EQ(searcher.Search(fx.dataset.queries.Vector(0)).size(), 10u);
  searcher.set_k(3);
  EXPECT_EQ(searcher.Search(fx.dataset.queries.Vector(0)).size(), 3u);
  searcher.set_threads(2);
  const auto batch = searcher.SearchBatch(fx.dataset.queries.data(), 4);
  for (const auto& result : batch) EXPECT_EQ(result.size(), 3u);
}

// --- Knob-explicit concurrent entry points --------------------------------

TEST(AnySearcherTest, SearchBatchWithMatchesMutatingKnobPath) {
  // The knob-explicit path must reproduce set_k/set_nprobe + SearchBatch
  // exactly, for every pruner on both layouts — it replaces those setters
  // on the serving dispatch path.
  Fixture fx = MakeFixture();
  const size_t nq = fx.dataset.queries.count();
  for (SearcherLayout layout : {SearcherLayout::kFlat, SearcherLayout::kIvf}) {
    for (PrunerKind pruner :
         {PrunerKind::kLinear, PrunerKind::kAdsampling, PrunerKind::kBsa,
          PrunerKind::kBond}) {
      SearcherConfig config = IvfConfig(pruner, 4);
      config.layout = layout;
      config.threads = 2;
      auto knob_explicit =
          layout == SearcherLayout::kIvf
              ? MakeSearcher(fx.dataset.data, fx.index, config)
              : MakeSearcher(fx.dataset.data, config);
      auto mutating = layout == SearcherLayout::kIvf
                          ? MakeSearcher(fx.dataset.data, fx.index, config)
                          : MakeSearcher(fx.dataset.data, config);
      ASSERT_TRUE(knob_explicit.ok());
      ASSERT_TRUE(mutating.ok());
      const char* label = PrunerKindName(pruner);

      mutating.value()->set_k(5);
      mutating.value()->set_nprobe(7);
      const auto expected =
          mutating.value()->SearchBatch(fx.dataset.queries.data(), nq);
      BatchProfile profile;
      const auto actual = knob_explicit.value()->SearchBatchWith(
          /*slot=*/0, QueryKnobs{5, 7}, fx.dataset.queries.data(), nq,
          &profile);
      for (size_t q = 0; q < nq; ++q) {
        ExpectSameNeighbors(actual[q], expected[q], label, q);
      }
      EXPECT_EQ(profile.queries, nq);
      EXPECT_GT(profile.sum.values_total, 0u);
      // ...and the knob-explicit call mutated nothing: the configured
      // defaults still apply afterwards.
      EXPECT_EQ(knob_explicit.value()->options().k, 10u);
      EXPECT_EQ(
          knob_explicit.value()->Search(fx.dataset.queries.Vector(0)).size(),
          10u);
    }
  }
}

TEST(AnySearcherTest, ConcurrentBatchesOnDisjointBandsKeepParity) {
  // Two threads run knob-explicit batches with DIFFERENT k on one searcher
  // over one shared pool, each on its own reserved slot band — the
  // replicated-dispatcher topology. Results must match the sequential
  // reference per k, and TSan must stay silent.
  Fixture fx = MakeFixture(24, 72);
  ThreadPool pool(3);
  SearcherConfig config = IvfConfig(PrunerKind::kBond, 4);
  config.threads = 0;
  config.pool = &pool;
  auto made = MakeSearcher(fx.dataset.data, fx.index, config);
  ASSERT_TRUE(made.ok());
  Searcher& searcher = *made.value();
  const size_t band = pool.num_threads();
  searcher.ReserveScratch(2 * band);

  const size_t nq = fx.dataset.queries.count();
  auto reference =
      MakeSearcher(fx.dataset.data, fx.index, IvfConfig(PrunerKind::kBond, 4));
  ASSERT_TRUE(reference.ok());
  std::vector<std::vector<Neighbor>> expected_k10(nq), expected_k3(nq);
  for (size_t q = 0; q < nq; ++q) {
    expected_k10[q] = reference.value()->Search(fx.dataset.queries.Vector(q));
  }
  reference.value()->set_k(3);
  for (size_t q = 0; q < nq; ++q) {
    expected_k3[q] = reference.value()->Search(fx.dataset.queries.Vector(q));
  }

  std::atomic<size_t> mismatches{0};
  auto run = [&](size_t slot, size_t k,
                 const std::vector<std::vector<Neighbor>>& expected) {
    for (int round = 0; round < 10; ++round) {
      const auto results = searcher.SearchBatchWith(
          slot, QueryKnobs{k, 0}, fx.dataset.queries.data(), nq);
      for (size_t q = 0; q < nq; ++q) {
        if (results[q].size() != expected[q].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < results[q].size(); ++i) {
          if (results[q][i].id != expected[q][i].id ||
              results[q][i].distance != expected[q][i].distance) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    }
  };
  std::thread other([&] { run(band, 3, expected_k3); });
  run(0, 10, expected_k10);
  other.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

/// A facade subclass WITHOUT per-slot scratch (wraps a real searcher and
/// forwards only the classic surface) — stands in for custom adopted
/// searchers.
class NoSlotSearcher : public Searcher {
 public:
  explicit NoSlotSearcher(std::unique_ptr<Searcher> inner)
      : Searcher(inner->options()), inner_(std::move(inner)) {}
  std::vector<Neighbor> Search(const float* query) override {
    return inner_->Search(query);
  }
  std::vector<std::vector<Neighbor>> SearchBatch(const float* queries,
                                                 size_t num_queries) override {
    return inner_->SearchBatch(queries, num_queries);
  }
  const PdxearchProfile& last_profile() const override {
    return inner_->last_profile();
  }
  const PdxStore& store() const override { return inner_->store(); }
  const IvfIndex* index() const override { return inner_->index(); }

 private:
  std::unique_ptr<Searcher> inner_;
};

TEST(AnySearcherTest, BaseSearchWithFailsLoudlyWithoutOverride) {
  // The old base SearchWith silently forwarded to Search — main scratch,
  // NOT slot-safe — so a missing override raced undetected under
  // concurrent dispatch. It must fail loudly instead.
  Fixture fx = MakeFixture(16, 73);
  SearcherConfig flat;
  auto made = MakeSearcher(fx.dataset.data, flat);
  ASSERT_TRUE(made.ok());
  NoSlotSearcher no_slots(std::move(made).value());
  EXPECT_THROW(no_slots.SearchWith(0, fx.dataset.queries.Vector(0)),
               std::logic_error);
  EXPECT_THROW(
      no_slots.SearchWith(0, QueryKnobs{5, 0}, fx.dataset.queries.Vector(0)),
      std::logic_error);
}

TEST(AnySearcherTest, BaseSearchBatchWithFallsBackSerialized) {
  // Without an override, the knob-explicit batch entry point still works —
  // serialized through the legacy mutating surface — so custom adopted
  // searchers keep serving under replicated dispatch.
  Fixture fx = MakeFixture(16, 74);
  SearcherConfig flat;
  auto made = MakeSearcher(fx.dataset.data, flat);
  auto reference = MakeSearcher(fx.dataset.data, flat);
  ASSERT_TRUE(made.ok());
  ASSERT_TRUE(reference.ok());
  NoSlotSearcher no_slots(std::move(made).value());

  const size_t nq = fx.dataset.queries.count();
  const auto expected =
      reference.value()->SearchBatch(fx.dataset.queries.data(), nq);
  const auto actual = no_slots.SearchBatchWith(
      /*slot=*/0, QueryKnobs{}, fx.dataset.queries.data(), nq);
  for (size_t q = 0; q < nq; ++q) {
    ExpectSameNeighbors(actual[q], expected[q], "no-slot fallback", q);
  }
  // Knob overrides route through the legacy setters on the subclass. (A
  // delegating wrapper like this one forwards the search to its inner
  // searcher, so only the wrapper's own config observes the knob — a real
  // custom facade implements Search against its config_ and picks it up.)
  no_slots.SearchBatchWith(/*slot=*/0, QueryKnobs{4, 0},
                           fx.dataset.queries.data(), 1);
  EXPECT_EQ(no_slots.options().k, 4u);
}

// --- Config validation ----------------------------------------------------

TEST(AnySearcherTest, RejectsZeroK) {
  Fixture fx = MakeFixture(16, 79);
  SearcherConfig config;
  config.k = 0;
  const auto made = MakeSearcher(fx.dataset.data, config);
  ASSERT_FALSE(made.ok());
  EXPECT_TRUE(made.status().IsInvalidArgument());
}

TEST(AnySearcherTest, RejectsZeroNprobeOnIvfOnly) {
  Fixture fx = MakeFixture(16, 80);
  SearcherConfig config = IvfConfig(PrunerKind::kBond, 0);
  ASSERT_FALSE(MakeSearcher(fx.dataset.data, config).ok());
  // The same nprobe is irrelevant (and legal) on the flat layout.
  config.layout = SearcherLayout::kFlat;
  EXPECT_TRUE(MakeSearcher(fx.dataset.data, config).ok());
}

TEST(AnySearcherTest, RejectsMetricsThePrunerCannotBound) {
  Fixture fx = MakeFixture(16, 81);
  SearcherConfig config;
  config.pruner = PrunerKind::kAdsampling;
  config.metric = Metric::kIp;
  EXPECT_TRUE(MakeSearcher(fx.dataset.data, config).status().IsUnsupported());
  config.pruner = PrunerKind::kBsa;
  config.metric = Metric::kL1;
  EXPECT_TRUE(MakeSearcher(fx.dataset.data, config).status().IsUnsupported());
  config.pruner = PrunerKind::kBond;
  config.metric = Metric::kIp;
  EXPECT_TRUE(MakeSearcher(fx.dataset.data, config).status().IsUnsupported());
  // The linear scan has no bound to invalidate.
  config.pruner = PrunerKind::kLinear;
  config.metric = Metric::kIp;
  EXPECT_TRUE(MakeSearcher(fx.dataset.data, config).ok());
}

TEST(AnySearcherTest, RejectsZeroBondZoneSize) {
  Fixture fx = MakeFixture(16, 85);
  SearcherConfig config;
  config.pruner = PrunerKind::kBond;
  config.bond_zone_size = 0;
  EXPECT_TRUE(
      MakeSearcher(fx.dataset.data, config).status().IsInvalidArgument());
}

TEST(AnySearcherTest, RejectsOutOfRangeEnumValues) {
  Fixture fx = MakeFixture(16, 84);
  SearcherConfig config;
  config.pruner = static_cast<PrunerKind>(7);
  EXPECT_TRUE(
      MakeSearcher(fx.dataset.data, config).status().IsInvalidArgument());
  config = SearcherConfig{};
  config.layout = static_cast<SearcherLayout>(9);
  EXPECT_TRUE(
      MakeSearcher(fx.dataset.data, config).status().IsInvalidArgument());
}

TEST(AnySearcherTest, RejectsEmptyCollection) {
  VectorSet empty(8);
  EXPECT_TRUE(
      MakeSearcher(empty, SearcherConfig{}).status().IsInvalidArgument());
}

TEST(AnySearcherTest, RejectsMismatchedExternalIndex) {
  Fixture fx = MakeFixture(16, 82);
  // Flat layout with an external IVF index makes no sense.
  SearcherConfig config;
  config.layout = SearcherLayout::kFlat;
  EXPECT_TRUE(MakeSearcher(fx.dataset.data, fx.index, config)
                  .status()
                  .IsInvalidArgument());
  // Index built over a different collection shape.
  Fixture other = MakeFixture(32, 83);
  EXPECT_TRUE(MakeSearcher(other.dataset.data, fx.index,
                           IvfConfig(PrunerKind::kBond, 4))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace pdx
