#include "core/pruning_trace.h"

#include <gtest/gtest.h>

#include "benchlib/datagen.h"
#include "core/searcher.h"

namespace pdx {
namespace {

TEST(PruningTraceTest, EmptyTraceIsNeutral) {
  PruningTrace trace(8);
  EXPECT_EQ(trace.warmup_vectors(), 0u);
  EXPECT_DOUBLE_EQ(trace.AliveFraction(4), 1.0);
  EXPECT_DOUBLE_EQ(trace.ValuesAvoided(), 0.0);
}

TEST(PruningTraceTest, SingleBlockFullPruningCurve) {
  PruningTrace trace(4);
  trace.Observe(0, 100, 100);  // Block enters WARMUP with 100 vectors.
  trace.Observe(1, 50, 100);
  trace.Observe(2, 25, 100);
  trace.Observe(3, 10, 100);
  trace.Observe(4, 5, 100);

  EXPECT_EQ(trace.warmup_vectors(), 100u);
  EXPECT_DOUBLE_EQ(trace.AliveFraction(1), 0.5);
  EXPECT_DOUBLE_EQ(trace.AliveFraction(2), 0.25);
  EXPECT_DOUBLE_EQ(trace.AliveFraction(4), 0.05);

  const auto curve = trace.Curve();
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0], 0.5);
  EXPECT_DOUBLE_EQ(curve[3], 0.05);

  // Values needed: d1:100, d2:50, d3:25, d4:10 => scanned=185 of 400.
  EXPECT_NEAR(trace.ValuesAvoided(), 1.0 - 185.0 / 400.0, 1e-12);
}

TEST(PruningTraceTest, MultipleBlocksAccumulate) {
  PruningTrace trace(2);
  trace.Observe(0, 10, 10);
  trace.Observe(1, 4, 10);
  trace.Observe(2, 2, 10);
  trace.Observe(0, 20, 20);
  trace.Observe(1, 10, 20);
  trace.Observe(2, 5, 20);
  EXPECT_EQ(trace.warmup_vectors(), 30u);
  EXPECT_NEAR(trace.AliveFraction(1), 14.0 / 30.0, 1e-12);
  EXPECT_NEAR(trace.AliveFraction(2), 7.0 / 30.0, 1e-12);
}

TEST(PruningTraceTest, CarriesForwardUnobservedDepths) {
  PruningTrace trace(8);
  trace.Observe(0, 100, 100);
  trace.Observe(2, 40, 100);
  trace.Observe(6, 10, 100);
  EXPECT_DOUBLE_EQ(trace.AliveFraction(1), 1.0);   // Before first test.
  EXPECT_DOUBLE_EQ(trace.AliveFraction(3), 0.4);   // Carried from d=2.
  EXPECT_DOUBLE_EQ(trace.AliveFraction(7), 0.1);   // Carried from d=6.
}

TEST(PruningTraceTest, ClearResets) {
  PruningTrace trace(4);
  trace.Observe(0, 10, 10);
  trace.Observe(2, 5, 10);
  trace.Clear();
  EXPECT_EQ(trace.warmup_vectors(), 0u);
  EXPECT_DOUBLE_EQ(trace.AliveFraction(2), 1.0);
}

TEST(PruningTraceTest, IntegratesWithEngine) {
  SyntheticSpec spec;
  spec.name = "trace";
  spec.dim = 16;
  spec.count = 1500;
  spec.num_queries = 3;
  spec.seed = 5;
  spec.distribution = ValueDistribution::kSkewed;
  Dataset dataset = GenerateDataset(spec);

  BondConfig config;
  config.search.adaptive_steps = false;
  config.search.fixed_step = 1;  // Test at every dimension (Tables 2/6).
  auto searcher = MakeBondFlatSearcher(dataset.data, config);

  PruningTrace trace(16);
  searcher->mutable_options().step_observer =
      [&trace](size_t dims, size_t alive, size_t n) {
        trace.Observe(dims, alive, n);
      };
  searcher->Search(dataset.queries.Vector(0), 10);

  EXPECT_GT(trace.warmup_vectors(), 0u);
  const auto curve = trace.Curve();
  ASSERT_EQ(curve.size(), 16u);
  // Monotone non-increasing curve.
  for (size_t d = 1; d < curve.size(); ++d) {
    ASSERT_LE(curve[d], curve[d - 1] + 1e-12);
  }
  EXPECT_GE(trace.ValuesAvoided(), 0.0);
  EXPECT_LE(trace.ValuesAvoided(), 1.0);
}

}  // namespace
}  // namespace pdx
