#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/nary_kernels.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

std::vector<float> RandomValues(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(count);
  for (float& v : values) v = static_cast<float>(rng.Gaussian());
  return values;
}

TEST(ScalarKernelsTest, KnownL2) {
  const float a[3] = {1, 2, 3};
  const float b[3] = {4, 6, 3};
  EXPECT_FLOAT_EQ(ScalarL2(a, b, 3), 9.0f + 16.0f);
}

TEST(ScalarKernelsTest, KnownIpIsNegated) {
  const float a[2] = {1, 2};
  const float b[2] = {3, 4};
  EXPECT_FLOAT_EQ(ScalarIp(a, b, 2), -11.0f);
}

TEST(ScalarKernelsTest, KnownL1) {
  const float a[3] = {1, -2, 3};
  const float b[3] = {4, 2, 3};
  EXPECT_FLOAT_EQ(ScalarL1(a, b, 3), 3.0f + 4.0f + 0.0f);
}

TEST(ScalarKernelsTest, ZeroDim) {
  EXPECT_FLOAT_EQ(ScalarL2(nullptr, nullptr, 0), 0.0f);
  EXPECT_FLOAT_EQ(ScalarIp(nullptr, nullptr, 0), 0.0f);
}

TEST(ScalarKernelsTest, IdenticalVectors) {
  const auto v = RandomValues(100, 1);
  EXPECT_FLOAT_EQ(ScalarL2(v.data(), v.data(), 100), 0.0f);
  EXPECT_FLOAT_EQ(ScalarL1(v.data(), v.data(), 100), 0.0f);
}

// ---------------------------------------------------------------------------
// Parameterized ISA x metric x dimensionality agreement with the scalar
// oracle. Covers tails (non-multiples of SIMD width) on purpose.
// ---------------------------------------------------------------------------

using KernelParam = std::tuple<Metric, Isa, size_t>;

class NaryKernelAgreementTest : public ::testing::TestWithParam<KernelParam> {
};

TEST_P(NaryKernelAgreementTest, MatchesScalarOracle) {
  const auto [metric, isa, dim] = GetParam();
  if (!IsaAvailable(isa)) GTEST_SKIP() << "ISA not compiled in";

  const auto a = RandomValues(dim, 100 + dim);
  const auto b = RandomValues(dim, 200 + dim);
  const float expected = ScalarDistance(metric, a.data(), b.data(), dim);
  const float actual = GetNaryKernel(metric, isa)(a.data(), b.data(), dim);
  // Reassociated summation differs from strict scalar order; allow a
  // relative tolerance scaled by the magnitude of the result.
  const float tolerance =
      1e-4f + 2e-5f * std::max(std::fabs(expected), 1.0f) *
                  std::sqrt(static_cast<float>(dim));
  EXPECT_NEAR(actual, expected, tolerance)
      << MetricName(metric) << "/" << IsaName(isa) << "/D=" << dim;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NaryKernelAgreementTest,
    ::testing::Combine(
        ::testing::Values(Metric::kL2, Metric::kIp, Metric::kL1),
        ::testing::Values(Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kBest),
        ::testing::Values(1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 64, 100,
                          128, 250, 960, 1536)),
    [](const ::testing::TestParamInfo<KernelParam>& info) {
      return std::string(MetricName(std::get<0>(info.param))) + "_" +
             IsaName(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

TEST(NaryKernelsTest, BatchMatchesPairwise) {
  const size_t dim = 48;
  const size_t count = 37;
  const auto query = RandomValues(dim, 1);
  const auto data = RandomValues(dim * count, 2);
  for (Metric metric : {Metric::kL2, Metric::kIp, Metric::kL1}) {
    std::vector<float> out(count);
    NaryDistanceBatch(metric, query.data(), data.data(), count, dim,
                      out.data());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_NEAR(out[i],
                  NaryDistance(metric, query.data(), data.data() + i * dim,
                               dim),
                  1e-4f)
          << MetricName(metric) << " vector " << i;
    }
  }
}

TEST(KernelDispatchTest, IsaNames) {
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
  EXPECT_STREQ(IsaName(Isa::kAvx512), "avx512");
  EXPECT_STREQ(IsaName(Isa::kBest), "best");
}

TEST(KernelDispatchTest, ScalarAndBestAlwaysAvailable) {
  EXPECT_TRUE(IsaAvailable(Isa::kScalar));
  EXPECT_TRUE(IsaAvailable(Isa::kBest));
}

TEST(KernelDispatchTest, BatchIsaMatchesOracle) {
  const size_t dim = 33;
  const size_t count = 20;
  const auto query = RandomValues(dim, 3);
  const auto data = RandomValues(dim * count, 4);
  std::vector<float> expected(count);
  ScalarDistanceBatch(Metric::kL2, query.data(), data.data(), count, dim,
                      expected.data());
  std::vector<float> out(count);
  NaryDistanceBatchIsa(Metric::kL2, Isa::kBest, query.data(), data.data(),
                       count, dim, out.data());
  for (size_t i = 0; i < count; ++i) {
    ASSERT_NEAR(out[i], expected[i], 1e-3f);
  }
}

}  // namespace
}  // namespace pdx
