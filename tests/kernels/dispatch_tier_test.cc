// Cross-tier parity of the runtime-dispatched kernel tables.
//
// The PDX verticals are compiled per tier with -ffp-contract=off, so every
// tier must be BIT-EXACT against the scalar tier: per-lane accumulation
// order is identical by construction (SIMD vectorizes across lanes) and
// contraction is pinned off. The n-ary and gather kernels use explicit FMA
// intrinsics and reassociated accumulators, so they agree with the scalar
// oracle only to a tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

std::vector<float> RandomValues(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(count);
  for (float& v : values) v = static_cast<float>(rng.Gaussian());
  return values;
}

float Tolerance(float expected, size_t dim) {
  return 1e-4f + 2e-5f * std::max(std::fabs(expected), 1.0f) *
                     std::sqrt(static_cast<float>(dim));
}

std::vector<Isa> VectorTiers() {
  std::vector<Isa> tiers;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (IsaAvailable(isa)) tiers.push_back(isa);
  }
  return tiers;
}

// The ISSUE acceptance check: a portable binary (no -march=native) must
// still select a vectorized tier at run time on SIMD-capable hardware.
// When PDX_ISA pins the tier (the forced-scalar CI leg), assert the pin
// resolved instead.
TEST(DispatchTierTest, DispatchSelectsWidestTier) {
  Isa want = Isa::kBest;
  const char* env = std::getenv("PDX_ISA");
  const bool pinned =
      env != nullptr && env[0] != '\0' && ParseIsaName(env, &want);
  EXPECT_EQ(DispatchedIsa(), GetKernelTable(want).isa);
  if (!pinned && HostCpuFeatures().avx2 && IsaCarried(Isa::kAvx2)) {
    EXPECT_NE(DispatchedIsa(), Isa::kScalar)
        << "SIMD-capable host must not dispatch to scalar";
  }
}

TEST(DispatchTierTest, TableEntriesAreComplete) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kBest}) {
    const KernelTable& table = GetKernelTable(isa);
    for (Metric metric : {Metric::kL2, Metric::kIp, Metric::kL1}) {
      EXPECT_NE(table.nary_pair(metric), nullptr) << IsaName(isa);
    }
    EXPECT_NE(table.nary_batch, nullptr);
    EXPECT_NE(table.pdx_accumulate, nullptr);
    EXPECT_NE(table.pdx_accumulate_dims, nullptr);
    EXPECT_NE(table.pdx_accumulate_positions, nullptr);
    EXPECT_NE(table.pdx_accumulate_dims_positions, nullptr);
    EXPECT_NE(table.pdx_linear_scan, nullptr);
    EXPECT_NE(table.gather_batch, nullptr);
  }
}

// Regression for the old dispatch fallthrough that returned the *L2* scalar
// kernel for any unresolved (metric, isa) pair: every resolved kernel must
// compute the requested metric, never a different one.
TEST(DispatchTierTest, GetNaryKernelPreservesMetric) {
  const size_t dim = 53;
  const auto a = RandomValues(dim, 11);
  const auto b = RandomValues(dim, 12);
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kBest}) {
    for (Metric metric : {Metric::kL2, Metric::kIp, Metric::kL1}) {
      const float expected = ScalarDistance(metric, a.data(), b.data(), dim);
      const float actual = GetNaryKernel(metric, isa)(a.data(), b.data(), dim);
      EXPECT_NEAR(actual, expected, Tolerance(expected, dim))
          << MetricName(metric) << "/" << IsaName(isa);
    }
  }
}

// ---------------------------------------------------------------------------
// PDX verticals: bit-exact across tiers.
// ---------------------------------------------------------------------------

class VerticalParityTest : public ::testing::TestWithParam<size_t> {
 protected:
  // Dimension-major block of `n` lanes: dimension d occupies
  // block[d*n .. d*n+n).
  void Build(size_t n, size_t dim) {
    n_ = n;
    dim_ = dim;
    block_ = RandomValues(n * dim, 1000 + n + dim);
    query_ = RandomValues(dim, 2000 + dim);
  }

  size_t n_ = 0;
  size_t dim_ = 0;
  std::vector<float> block_;
  std::vector<float> query_;
};

TEST_P(VerticalParityTest, AllFiveKernelsBitExactVsScalarTier) {
  const size_t n = GetParam();
  const size_t dim = 96;
  Build(n, dim);
  const KernelTable& scalar = GetKernelTable(Isa::kScalar);
  ASSERT_EQ(scalar.isa, Isa::kScalar);

  // Dimension list in a shuffled-ish order and a survivor subset.
  std::vector<uint32_t> dims(dim);
  for (size_t d = 0; d < dim; ++d) dims[d] = static_cast<uint32_t>(d);
  std::reverse(dims.begin(), dims.end());
  std::vector<uint32_t> positions;
  for (size_t i = 0; i < n; i += 3) {
    positions.push_back(static_cast<uint32_t>(i));
  }

  for (const Isa isa : VectorTiers()) {
    const KernelTable& tier = GetKernelTable(isa);
    ASSERT_EQ(tier.isa, isa);
    for (const Metric metric : {Metric::kL2, Metric::kIp, Metric::kL1}) {
      SCOPED_TRACE(std::string(MetricName(metric)) + "/" + IsaName(isa) +
                   "/n=" + std::to_string(n));

      std::vector<float> expected(n, 0.5f), actual(n, 0.5f);
      scalar.pdx_accumulate(metric, query_.data(), block_.data(), n, 3,
                            dim - 5, expected.data());
      tier.pdx_accumulate(metric, query_.data(), block_.data(), n, 3,
                          dim - 5, actual.data());
      EXPECT_EQ(expected, actual) << "pdx_accumulate";

      std::fill(expected.begin(), expected.end(), 0.0f);
      std::fill(actual.begin(), actual.end(), 0.0f);
      scalar.pdx_accumulate_dims(metric, query_.data(), block_.data(), n,
                                 dims.data(), dims.size(), expected.data());
      tier.pdx_accumulate_dims(metric, query_.data(), block_.data(), n,
                               dims.data(), dims.size(), actual.data());
      EXPECT_EQ(expected, actual) << "pdx_accumulate_dims";

      std::fill(expected.begin(), expected.end(), 1.0f);
      std::fill(actual.begin(), actual.end(), 1.0f);
      scalar.pdx_accumulate_positions(metric, query_.data(), block_.data(), n,
                                      0, dim, positions.data(),
                                      positions.size(), expected.data());
      tier.pdx_accumulate_positions(metric, query_.data(), block_.data(), n,
                                    0, dim, positions.data(),
                                    positions.size(), actual.data());
      EXPECT_EQ(expected, actual) << "pdx_accumulate_positions";

      std::fill(expected.begin(), expected.end(), 1.0f);
      std::fill(actual.begin(), actual.end(), 1.0f);
      scalar.pdx_accumulate_dims_positions(
          metric, query_.data(), block_.data(), n, dims.data(), dims.size(),
          positions.data(), positions.size(), expected.data());
      tier.pdx_accumulate_dims_positions(
          metric, query_.data(), block_.data(), n, dims.data(), dims.size(),
          positions.data(), positions.size(), actual.data());
      EXPECT_EQ(expected, actual) << "pdx_accumulate_dims_positions";

      scalar.pdx_linear_scan(metric, query_.data(), block_.data(), n, dim,
                             expected.data());
      tier.pdx_linear_scan(metric, query_.data(), block_.data(), n, dim,
                           actual.data());
      EXPECT_EQ(expected, actual) << "pdx_linear_scan";
    }
  }
}

// 64 = the paper's block size; 37/100 exercise partial blocks wider and
// narrower than one SIMD register group.
INSTANTIATE_TEST_SUITE_P(BlockSizes, VerticalParityTest,
                         ::testing::Values(64, 37, 100),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// N-ary and gather: tolerance parity against the scalar tier.
// ---------------------------------------------------------------------------

TEST(DispatchTierTest, NaryBatchAgreesAcrossTiers) {
  const size_t dim = 129;  // Forces masked/scalar tails everywhere.
  const size_t count = 70;
  const auto query = RandomValues(dim, 21);
  const auto data = RandomValues(dim * count, 22);
  const KernelTable& scalar = GetKernelTable(Isa::kScalar);
  for (const Isa isa : VectorTiers()) {
    const KernelTable& tier = GetKernelTable(isa);
    for (const Metric metric : {Metric::kL2, Metric::kIp, Metric::kL1}) {
      std::vector<float> expected(count), actual(count);
      scalar.nary_batch(metric, query.data(), data.data(), count, dim,
                        expected.data());
      tier.nary_batch(metric, query.data(), data.data(), count, dim,
                      actual.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_NEAR(actual[i], expected[i], Tolerance(expected[i], dim))
            << MetricName(metric) << "/" << IsaName(isa) << " vector " << i;
      }
    }
  }
}

TEST(DispatchTierTest, GatherBatchAgreesAcrossTiers) {
  const size_t dim = 40;
  const size_t count = 150;  // Two full 64-lane groups plus a 22-lane tail.
  const auto query = RandomValues(dim, 31);
  const auto data = RandomValues(dim * count, 32);
  const KernelTable& scalar = GetKernelTable(Isa::kScalar);
  for (const Isa isa : VectorTiers()) {
    const KernelTable& tier = GetKernelTable(isa);
    for (const Metric metric : {Metric::kL2, Metric::kIp, Metric::kL1}) {
      std::vector<float> expected(count), actual(count);
      scalar.gather_batch(metric, query.data(), data.data(), count, dim,
                          expected.data());
      tier.gather_batch(metric, query.data(), data.data(), count, dim,
                        actual.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_NEAR(actual[i], expected[i], Tolerance(expected[i], dim))
            << MetricName(metric) << "/" << IsaName(isa) << " vector " << i;
      }
    }
  }
}

}  // namespace
}  // namespace pdx
