#include "kernels/gather_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

using GatherParam = std::tuple<Metric, size_t, size_t>;  // metric, count, dim

class GatherKernelTest : public ::testing::TestWithParam<GatherParam> {};

TEST_P(GatherKernelTest, MatchesScalarOracle) {
  const auto [metric, count, dim] = GetParam();
  Rng rng(count * 3 + dim);
  std::vector<float> data(count * dim);
  std::vector<float> query(dim);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  for (float& v : query) v = static_cast<float>(rng.Gaussian());

  std::vector<float> out(count, -1.0f);
  NaryGatherDistanceBatch(metric, query.data(), data.data(), count, dim,
                          out.data());
  for (size_t i = 0; i < count; ++i) {
    const float expected =
        ScalarDistance(metric, query.data(), data.data() + i * dim, dim);
    ASSERT_NEAR(out[i], expected,
                1e-4f + 1e-5f * std::fabs(expected) * std::sqrt(float(dim)))
        << "vector " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GatherKernelTest,
    ::testing::Combine(
        ::testing::Values(Metric::kL2, Metric::kIp, Metric::kL1),
        ::testing::Values(1, 63, 64, 65, 128, 200),  // Group tails.
        ::testing::Values(4, 16, 96)),
    [](const ::testing::TestParamInfo<GatherParam>& info) {
      return std::string(MetricName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

TEST(GatherKernelTest, EmptyCollection) {
  std::vector<float> query(8, 1.0f);
  NaryGatherDistanceBatch(Metric::kL2, query.data(), nullptr, 0, 8, nullptr);
  // No crash is the assertion.
}

}  // namespace
}  // namespace pdx
