// Runtime CPU feature probing and the PDX_ISA dispatch override.
//
// The override test MUST run before anything in this binary touches
// ActiveKernels()/DispatchedIsa(): the dispatcher resolves the environment
// exactly once and caches the result for the process lifetime, so the env
// var is set in the very first test of the file (gtest runs tests in
// declaration order within a translation unit).

#include <gtest/gtest.h>

#include <cstdlib>

#include "kernels/cpu_features.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/nary_kernels.h"
#include "kernels/gather_kernels.h"

namespace pdx {
namespace {

TEST(PdxIsaOverrideTest, ScalarOverrideRoundTrips) {
  // First dispatch resolution in this process happens under PDX_ISA=scalar;
  // every later ActiveKernels() call must return the same pinned tier.
  ASSERT_EQ(setenv("PDX_ISA", "scalar", /*overwrite=*/1), 0);
  EXPECT_EQ(DispatchedIsa(), Isa::kScalar);
  EXPECT_EQ(ActiveKernels().isa, Isa::kScalar);
  EXPECT_STREQ(IsaName(DispatchedIsa()), "scalar");

  // The override pins dispatch only: direct per-tier addressing and the
  // availability probes still see the real hardware.
  ASSERT_EQ(unsetenv("PDX_ISA"), 0);
  EXPECT_EQ(DispatchedIsa(), Isa::kScalar) << "resolution must be cached";
  if (IsaAvailable(Isa::kAvx2)) {
    EXPECT_EQ(GetKernelTable(Isa::kAvx2).isa, Isa::kAvx2);
  }
}

TEST(ParseIsaNameTest, AcceptsEveryTierName) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kBest}) {
    Isa parsed = Isa::kBest;
    EXPECT_TRUE(ParseIsaName(IsaName(isa), &parsed)) << IsaName(isa);
    EXPECT_EQ(parsed, isa);
  }
}

TEST(ParseIsaNameTest, CaseInsensitive) {
  Isa parsed = Isa::kBest;
  EXPECT_TRUE(ParseIsaName("AVX2", &parsed));
  EXPECT_EQ(parsed, Isa::kAvx2);
  EXPECT_TRUE(ParseIsaName("Scalar", &parsed));
  EXPECT_EQ(parsed, Isa::kScalar);
  EXPECT_TRUE(ParseIsaName("AvX512", &parsed));
  EXPECT_EQ(parsed, Isa::kAvx512);
}

TEST(ParseIsaNameTest, RejectsUnknownAndLeavesOutput) {
  Isa parsed = Isa::kAvx2;
  EXPECT_FALSE(ParseIsaName("", &parsed));
  EXPECT_FALSE(ParseIsaName("avx", &parsed));
  EXPECT_FALSE(ParseIsaName("avx1024", &parsed));
  EXPECT_FALSE(ParseIsaName("scalar ", &parsed));
  EXPECT_EQ(parsed, Isa::kAvx2) << "failed parse must not write output";
}

TEST(CpuFeaturesTest, ProbeIsStable) {
  const CpuFeatures& first = HostCpuFeatures();
  const CpuFeatures& second = HostCpuFeatures();
  EXPECT_EQ(&first, &second) << "probe must be cached, not re-run";
  // AVX-512-capable OS state implies AVX2-capable state (XCR0 superset),
  // and our avx512 tier requires the avx2-class features anyway.
  if (first.avx512) EXPECT_TRUE(first.avx2);
}

TEST(CpuFeaturesTest, AvailabilityIsCarriedAndSupported) {
  EXPECT_TRUE(CpuSupportsIsa(Isa::kScalar));
  EXPECT_TRUE(CpuSupportsIsa(Isa::kBest));
  EXPECT_TRUE(IsaCarried(Isa::kScalar));
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    EXPECT_EQ(IsaAvailable(isa), IsaCarried(isa) && CpuSupportsIsa(isa))
        << IsaName(isa);
  }
  EXPECT_EQ(CpuSupportsIsa(Isa::kAvx2), HostCpuFeatures().avx2);
  EXPECT_EQ(CpuSupportsIsa(Isa::kAvx512), HostCpuFeatures().avx512);
}

TEST(CpuFeaturesTest, LegacyProbesMatchDispatcher) {
  EXPECT_EQ(HasAvx2(), IsaAvailable(Isa::kAvx2));
  EXPECT_EQ(HasAvx512(), IsaAvailable(Isa::kAvx512));
  EXPECT_EQ(HasHardwareGather(), IsaAvailable(Isa::kAvx2));
}

TEST(CpuFeaturesTest, TablesClampDownward) {
  // Every concrete request resolves to an available tier at or below it.
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kBest}) {
    const KernelTable& table = GetKernelTable(isa);
    EXPECT_TRUE(IsaAvailable(table.isa)) << IsaName(isa);
    if (isa != Isa::kBest) {
      EXPECT_LE(static_cast<int>(table.isa), static_cast<int>(isa))
          << IsaName(isa);
    }
  }
  // kBest resolves to the widest available tier.
  const Isa best = GetKernelTable(Isa::kBest).isa;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (IsaAvailable(isa)) {
      EXPECT_GE(static_cast<int>(best), static_cast<int>(isa));
    }
  }
}

}  // namespace
}  // namespace pdx
