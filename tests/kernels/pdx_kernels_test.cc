#include "kernels/pdx_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "kernels/scalar_kernels.h"
#include "storage/pdx_block.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

struct BlockFixture {
  VectorSet vectors;
  PdxStore store;
  std::vector<float> query;
};

BlockFixture MakeFixture(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  BlockFixture fx;
  fx.vectors = VectorSet(dim, n);
  std::vector<float> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    fx.vectors.Append(row.data());
  }
  fx.store = PdxStore::FromVectorSet(fx.vectors, n);  // One block.
  fx.query.resize(dim);
  for (float& v : fx.query) v = static_cast<float>(rng.Gaussian());
  return fx;
}

using PdxKernelParam = std::tuple<Metric, size_t, size_t>;  // metric, n, dim

class PdxKernelTest : public ::testing::TestWithParam<PdxKernelParam> {};

TEST_P(PdxKernelTest, LinearScanMatchesScalarOracle) {
  const auto [metric, n, dim] = GetParam();
  BlockFixture fx = MakeFixture(n, dim, n * 7 + dim);
  const PdxBlock& block = fx.store.block(0);

  std::vector<float> distances(n, -1.0f);
  PdxLinearScan(metric, fx.query.data(), block.data(), n, dim,
                distances.data());
  for (size_t i = 0; i < n; ++i) {
    const float expected =
        ScalarDistance(metric, fx.query.data(), fx.vectors.Vector(i), dim);
    ASSERT_NEAR(distances[i], expected,
                1e-4f + 1e-5f * std::fabs(expected) * std::sqrt(float(dim)))
        << "lane " << i;
  }
}

TEST_P(PdxKernelTest, NovecMatchesVectorized) {
  const auto [metric, n, dim] = GetParam();
  BlockFixture fx = MakeFixture(n, dim, n * 13 + dim);
  const PdxBlock& block = fx.store.block(0);

  std::vector<float> vec(n, 0.0f);
  std::vector<float> novec(n, 0.0f);
  PdxLinearScan(metric, fx.query.data(), block.data(), n, dim, vec.data());
  PdxLinearScanNovec(metric, fx.query.data(), block.data(), n, dim,
                     novec.data());
  for (size_t i = 0; i < n; ++i) {
    // Identical source, identical math: results can differ only through
    // reassociation; keep a tight bound.
    ASSERT_NEAR(vec[i], novec[i], 1e-3f + 1e-4f * std::fabs(vec[i]));
  }
}

TEST_P(PdxKernelTest, IncrementalStepsEqualSingleScan) {
  const auto [metric, n, dim] = GetParam();
  BlockFixture fx = MakeFixture(n, dim, n * 17 + dim);
  const PdxBlock& block = fx.store.block(0);

  std::vector<float> whole(n, 0.0f);
  PdxLinearScan(metric, fx.query.data(), block.data(), n, dim, whole.data());

  // Accumulate in exponentially growing chunks (the PDXearch pattern).
  std::vector<float> chunked(n, 0.0f);
  size_t done = 0;
  size_t step = 2;
  while (done < dim) {
    const size_t take = std::min(step, dim - done);
    PdxAccumulate(metric, fx.query.data(), block.data(), n, done, done + take,
                  chunked.data());
    done += take;
    step *= 2;
  }
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(chunked[i], whole[i], 1e-4f + 1e-5f * std::fabs(whole[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PdxKernelTest,
    ::testing::Combine(
        ::testing::Values(Metric::kL2, Metric::kIp, Metric::kL1),
        ::testing::Values(1, 3, 63, 64, 65, 200),  // Lane counts incl. tails.
        ::testing::Values(1, 2, 7, 16, 33, 128)),
    [](const ::testing::TestParamInfo<PdxKernelParam>& info) {
      return std::string(MetricName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

TEST(PdxKernelDimsTest, ReorderedDimsEqualSequential) {
  const size_t n = 64;
  const size_t dim = 24;
  BlockFixture fx = MakeFixture(n, dim, 5);
  const PdxBlock& block = fx.store.block(0);

  // Reverse visit order must produce identical totals.
  std::vector<uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  std::reverse(order.begin(), order.end());

  std::vector<float> sequential(n, 0.0f);
  std::vector<float> reordered(n, 0.0f);
  PdxLinearScan(Metric::kL2, fx.query.data(), block.data(), n, dim,
                sequential.data());
  PdxAccumulateDims(Metric::kL2, fx.query.data(), block.data(), n,
                    order.data(), dim, reordered.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(reordered[i], sequential[i],
                1e-4f + 1e-5f * std::fabs(sequential[i]));
  }
}

TEST(PdxKernelDimsTest, PartialDimListOnlyTouchesListedDims) {
  const size_t n = 8;
  const size_t dim = 6;
  BlockFixture fx = MakeFixture(n, dim, 6);
  const PdxBlock& block = fx.store.block(0);

  const std::vector<uint32_t> dims = {1, 4};
  std::vector<float> out(n, 0.0f);
  PdxAccumulateDims(Metric::kL2, fx.query.data(), block.data(), n,
                    dims.data(), dims.size(), out.data());
  for (size_t i = 0; i < n; ++i) {
    float expected = 0.0f;
    for (uint32_t d : dims) {
      const float diff = fx.query[d] - fx.vectors.Vector(i)[d];
      expected += diff * diff;
    }
    ASSERT_NEAR(out[i], expected, 1e-5f);
  }
}

TEST(PdxKernelPositionsTest, OnlyListedLanesUpdated) {
  const size_t n = 16;
  const size_t dim = 10;
  BlockFixture fx = MakeFixture(n, dim, 7);
  const PdxBlock& block = fx.store.block(0);

  const std::vector<uint32_t> positions = {0, 5, 15};
  std::vector<float> out(n, 0.0f);
  PdxAccumulatePositions(Metric::kL2, fx.query.data(), block.data(), n, 0,
                         dim, positions.data(), positions.size(), out.data());
  for (size_t i = 0; i < n; ++i) {
    const bool listed =
        std::find(positions.begin(), positions.end(), i) != positions.end();
    if (listed) {
      const float expected =
          ScalarL2(fx.query.data(), fx.vectors.Vector(i), dim);
      ASSERT_NEAR(out[i], expected, 1e-4f);
    } else {
      ASSERT_EQ(out[i], 0.0f) << "lane " << i << " must stay untouched";
    }
  }
}

TEST(PdxKernelPositionsTest, DimsPositionsCombination) {
  const size_t n = 12;
  const size_t dim = 8;
  BlockFixture fx = MakeFixture(n, dim, 8);
  const PdxBlock& block = fx.store.block(0);

  const std::vector<uint32_t> dims = {7, 2, 3};
  const std::vector<uint32_t> positions = {1, 11};
  std::vector<float> out(n, 0.0f);
  PdxAccumulateDimsPositions(Metric::kL1, fx.query.data(), block.data(), n,
                             dims.data(), dims.size(), positions.data(),
                             positions.size(), out.data());
  for (uint32_t lane : positions) {
    float expected = 0.0f;
    for (uint32_t d : dims) {
      expected += std::fabs(fx.query[d] - fx.vectors.Vector(lane)[d]);
    }
    ASSERT_NEAR(out[lane], expected, 1e-5f);
  }
  ASSERT_EQ(out[0], 0.0f);
}

TEST(PdxKernelTest, EmptyDimRangeIsNoop) {
  const size_t n = 4;
  BlockFixture fx = MakeFixture(n, 5, 9);
  std::vector<float> out(n, 3.0f);
  PdxAccumulate(Metric::kL2, fx.query.data(), fx.store.block(0).data(), n, 2,
                2, out.data());
  for (float v : out) ASSERT_EQ(v, 3.0f);
}

}  // namespace
}  // namespace pdx
