// TSan-targeted stress for replicated concurrent dispatch: N dispatcher
// threads x M client threads hammer one hot unsharded collection plus one
// sharded collection through a single SearchService, with per-query k
// overrides that force *different batch keys for the same collection to be
// in flight at once* (the exact scenario the shared set_k/set_nprobe
// mutation used to race on). Assertions:
//
//   - exact parity: every successful result is byte-identical to a direct
//     sequential Searcher::Search with the same knobs;
//   - liveness: every future resolves (a deadlock hangs the binary and the
//     ctest timeout fails CI);
//   - accounting: per-dispatcher dispatch counts partition the total.
//
// The ThreadSanitizer and AddressSanitizer CI jobs run this binary; any
// data race on the dispatch path (searcher config, slot engines, scratch)
// or lifetime bug in the Pending hand-offs surfaces here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datagen.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

using namespace std::chrono_literals;

struct StressFixture {
  Dataset dataset;
  std::vector<std::vector<std::vector<Neighbor>>> expected_hot;      // [k][q]
  std::vector<std::vector<std::vector<Neighbor>>> expected_sharded;  // [k][q]
};

SearcherConfig HotConfig() {
  SearcherConfig config;
  config.layout = SearcherLayout::kFlat;
  config.pruner = PrunerKind::kBond;
  config.k = 10;
  return config;
}

/// Ground truth per k override, computed sequentially up front. The
/// sharded reference is the sharded searcher itself driven sequentially —
/// byte-identical to its own concurrent path is the claim under test.
StressFixture MakeStressFixture(size_t num_shards) {
  SyntheticSpec spec;
  spec.name = "dispatch-stress";
  spec.dim = 24;
  spec.count = 2400;
  spec.num_queries = 16;
  spec.num_clusters = 8;
  spec.seed = 1234;
  spec.distribution = ValueDistribution::kNormal;
  StressFixture fx{GenerateDataset(spec), {}, {}};

  ShardingOptions sharding;
  sharding.num_shards = num_shards;
  auto hot = MakeSearcher(fx.dataset.data, HotConfig());
  auto sharded =
      MakeShardedSearcher(fx.dataset.data, HotConfig(), sharding);
  EXPECT_TRUE(hot.ok());
  EXPECT_TRUE(sharded.ok());
  const size_t nq = fx.dataset.queries.count();
  for (size_t k : {size_t{10}, size_t{5}}) {
    std::vector<std::vector<Neighbor>> hot_k(nq), sharded_k(nq);
    hot.value()->set_k(k);
    sharded.value()->set_k(k);
    for (size_t q = 0; q < nq; ++q) {
      hot_k[q] = hot.value()->Search(fx.dataset.queries.Vector(q));
      sharded_k[q] = sharded.value()->Search(fx.dataset.queries.Vector(q));
    }
    fx.expected_hot.push_back(std::move(hot_k));
    fx.expected_sharded.push_back(std::move(sharded_k));
  }
  return fx;
}

bool SameNeighbors(const std::vector<Neighbor>& actual,
                   const std::vector<Neighbor>& expected) {
  if (actual.size() != expected.size()) return false;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i].id != expected[i].id ||
        actual[i].distance != expected[i].distance) {
      return false;
    }
  }
  return true;
}

TEST(DispatchStressTest, ConcurrentDispatchersKeepExactParity) {
  constexpr size_t kShards = 3;
  constexpr size_t kDispatchers = 4;
  constexpr size_t kClients = 4;
  constexpr size_t kRounds = 6;
  StressFixture fx = MakeStressFixture(kShards);

  ServiceConfig sc;
  sc.threads = 4;
  sc.dispatchers = kDispatchers;
  sc.max_batch = 4;
  sc.max_pending = 4096;
  SearchService service(sc);
  ASSERT_TRUE(
      service.AddCollection("hot", fx.dataset.data, HotConfig()).ok());
  ShardingOptions sharding;
  sharding.num_shards = kShards;
  ASSERT_TRUE(service
                  .AddCollection("sharded", fx.dataset.data, HotConfig(),
                                 sharding)
                  .ok());

  const size_t nq = fx.dataset.queries.count();
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> unresolved{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        struct Outstanding {
          size_t variant;  // 0 = k default (10), 1 = k override (5).
          size_t q;
          bool sharded;
          QueryTicket ticket;
        };
        std::vector<Outstanding> outstanding;
        for (size_t q = 0; q < nq; ++q) {
          // Alternate the k override per client and query so batches with
          // DIFFERENT keys for the SAME collection coexist in the queue —
          // concurrent dispatchers then run them simultaneously on
          // disjoint slot bands.
          const size_t variant = (c + q) % 2;
          QueryOptions options;
          options.k = variant == 0 ? 0 : 5;
          outstanding.push_back(
              {variant, q, false,
               service.Submit("hot", fx.dataset.queries.Vector(q), options)});
          outstanding.push_back({variant, q, true,
                                 service.Submit("sharded",
                                                fx.dataset.queries.Vector(q),
                                                options)});
        }
        for (Outstanding& out : outstanding) {
          // A future that never resolves parks here until the ctest
          // timeout kills the binary — that IS the liveness gate.
          QueryResult result = out.ticket.result.get();
          if (!result.status.ok()) {
            unresolved.fetch_add(1);
            continue;
          }
          const auto& expected = out.sharded
                                     ? fx.expected_sharded[out.variant][out.q]
                                     : fx.expected_hot[out.variant][out.q];
          if (!SameNeighbors(result.neighbors, expected)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "concurrent dispatch diverged from sequential Search";
  EXPECT_EQ(unresolved.load(), 0u) << "some queries failed under stress";

  const ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.dispatchers.size(), kDispatchers);
  uint64_t dispatcher_total = 0;
  for (const DispatcherStats& ds : stats.dispatchers) {
    dispatcher_total += ds.dispatches;
    EXPECT_GE(ds.busy_fraction, 0.0);
    EXPECT_LE(ds.busy_fraction, 1.0);
  }
  uint64_t collection_total = 0;
  for (const auto& [name, cs] : stats.collections) {
    collection_total += cs.dispatches;
    EXPECT_EQ(cs.completed, kClients * kRounds * nq);
  }
  EXPECT_EQ(dispatcher_total, collection_total);
}

TEST(DispatchStressTest, DeadlineShedsStayLiveUnderConcurrentLoad) {
  // Deadline-bearing queries race a busy queue: each must resolve as
  // either OK (dispatched in time, with exact parity) or DeadlineExceeded
  // (shed) — never hang, never return a wrong answer. Exercises the
  // deadline sweep concurrently with live dispatch on every dispatcher.
  StressFixture fx = MakeStressFixture(2);
  ServiceConfig sc;
  sc.threads = 2;
  sc.dispatchers = 3;
  sc.max_batch = 2;
  SearchService service(sc);
  ASSERT_TRUE(
      service.AddCollection("hot", fx.dataset.data, HotConfig()).ok());

  const size_t nq = fx.dataset.queries.count();
  std::atomic<size_t> bad{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < 8; ++round) {
        std::vector<std::pair<size_t, QueryTicket>> tickets;
        for (size_t q = 0; q < nq; ++q) {
          QueryOptions options;
          // A mix of no deadline, generous, and tight-enough-to-expire.
          if ((c + q + round) % 3 == 1) options.timeout = 10s;
          if ((c + q + round) % 3 == 2) options.timeout = 1ms;
          tickets.emplace_back(
              q, service.Submit("hot", fx.dataset.queries.Vector(q), options));
        }
        for (auto& [q, ticket] : tickets) {
          QueryResult result = ticket.result.get();
          if (result.status.ok()) {
            if (!SameNeighbors(result.neighbors, fx.expected_hot[0][q])) {
              bad.fetch_add(1);
            }
          } else if (!result.status.IsDeadlineExceeded()) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0u);

  // Liveness epilogue: expired + completed covers every admitted query.
  const CollectionStats cs = service.Stats().collections.at("hot");
  EXPECT_EQ(cs.admitted, cs.completed + cs.expired);
}

}  // namespace
}  // namespace pdx
