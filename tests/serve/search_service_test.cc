#include "serve/search_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/workloads.h"

namespace pdx {
namespace {

using namespace std::chrono_literals;

struct Fixture {
  Dataset dataset;
  IvfIndex index;
};

Fixture MakeFixture(size_t dim = 24, uint64_t seed = 91, size_t count = 2000,
                    size_t num_queries = 10) {
  SyntheticSpec spec;
  spec.name = "serve-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  Fixture fx{GenerateDataset(spec), {}};
  fx.index = IvfIndex::Build(fx.dataset.data, {});
  return fx;
}

SearcherConfig Config(SearcherLayout layout, PrunerKind pruner,
                      size_t nprobe = 4) {
  SearcherConfig config;
  config.layout = layout;
  config.pruner = pruner;
  config.k = 10;
  config.nprobe = nprobe;
  return config;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& actual,
                         const std::vector<Neighbor>& expected,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual[i].id, expected[i].id) << label << " rank " << i;
    ASSERT_FLOAT_EQ(actual[i].distance, expected[i].distance)
        << label << " rank " << i;
  }
}

// --- Acceptance (a): service results == direct sequential Search ---------

TEST(SearchServiceTest, SubmitMatchesSequentialSearchAllCombinations) {
  Fixture fx = MakeFixture();
  ServiceConfig sc;
  sc.threads = 3;
  SearchService service(sc);

  struct Combo {
    std::string name;
    SearcherConfig config;
  };
  std::vector<Combo> combos;
  for (SearcherLayout layout : {SearcherLayout::kFlat, SearcherLayout::kIvf}) {
    for (PrunerKind pruner :
         {PrunerKind::kLinear, PrunerKind::kAdsampling, PrunerKind::kBsa,
          PrunerKind::kBond}) {
      combos.push_back({std::string(SearcherLayoutName(layout)) + "/" +
                            PrunerKindName(pruner),
                        Config(layout, pruner)});
    }
  }

  for (const Combo& combo : combos) {
    // Hosted searcher and sequential reference share the IVF index on the
    // IVF layout, mirroring the paper's shared-bucket methodology.
    Status added = combo.config.layout == SearcherLayout::kIvf
                       ? service.AddCollection(combo.name, fx.dataset.data,
                                               fx.index, combo.config)
                       : service.AddCollection(combo.name, fx.dataset.data,
                                               combo.config);
    ASSERT_TRUE(added.ok()) << combo.name << ": " << added.ToString();

    auto reference = combo.config.layout == SearcherLayout::kIvf
                         ? MakeSearcher(fx.dataset.data, fx.index, combo.config)
                         : MakeSearcher(fx.dataset.data, combo.config);
    ASSERT_TRUE(reference.ok()) << combo.name;

    std::vector<QueryTicket> tickets;
    for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
      tickets.push_back(service.Submit(combo.name, fx.dataset.queries.Vector(q)));
    }
    for (size_t q = 0; q < tickets.size(); ++q) {
      QueryResult result = tickets[q].result.get();
      ASSERT_TRUE(result.status.ok())
          << combo.name << ": " << result.status.ToString();
      EXPECT_EQ(result.collection, combo.name);
      ExpectSameNeighbors(
          result.neighbors,
          reference.value()->Search(fx.dataset.queries.Vector(q)),
          combo.name + " query " + std::to_string(q));
    }
  }
}

TEST(SearchServiceTest, PerQueryOverridesApply) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("ivf", fx.dataset.data, fx.index,
                                 Config(SearcherLayout::kIvf, PrunerKind::kBond))
                  .ok());
  QueryOptions options;
  options.k = 3;
  QueryResult result =
      service.Submit("ivf", fx.dataset.queries.Vector(0), options).result.get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.neighbors.size(), 3u);

  // And the override matches a direct searcher with the same knobs.
  auto reference =
      MakeSearcher(fx.dataset.data, fx.index,
                   Config(SearcherLayout::kIvf, PrunerKind::kBond));
  ASSERT_TRUE(reference.ok());
  reference.value()->set_k(3);
  ExpectSameNeighbors(result.neighbors,
                      reference.value()->Search(fx.dataset.queries.Vector(0)),
                      "k=3 override");
}

// --- Acceptance (b): explicit backpressure --------------------------------

TEST(SearchServiceTest, FullQueueRejectsWithResourceExhausted) {
  Fixture fx = MakeFixture();
  ServiceConfig sc;
  sc.max_pending = 2;
  SearchService service(sc);
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());

  service.Pause();  // Deterministic: nothing drains while we fill the queue.
  QueryTicket a = service.Submit("flat", fx.dataset.queries.Vector(0));
  QueryTicket b = service.Submit("flat", fx.dataset.queries.Vector(1));
  EXPECT_EQ(service.queue_depth(), 2u);

  QueryTicket rejected = service.Submit("flat", fx.dataset.queries.Vector(2));
  // Rejection is immediate — the future is ready before Resume().
  ASSERT_EQ(rejected.result.wait_for(0s), std::future_status::ready);
  QueryResult result = rejected.result.get();
  EXPECT_TRUE(result.status.IsResourceExhausted())
      << result.status.ToString();
  EXPECT_TRUE(result.neighbors.empty());

  service.Resume();
  EXPECT_TRUE(a.result.get().status.ok());
  EXPECT_TRUE(b.result.get().status.ok());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.collections.at("flat").rejected, 1u);
  EXPECT_EQ(stats.collections.at("flat").completed, 2u);
}

// --- Deadlines ------------------------------------------------------------

TEST(SearchServiceTest, DeadlineExpiryBeforeDispatch) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Pause();
  QueryOptions options;
  options.timeout = 1ms;
  QueryTicket doomed =
      service.Submit("flat", fx.dataset.queries.Vector(0), options);
  QueryTicket fine = service.Submit("flat", fx.dataset.queries.Vector(1));
  std::this_thread::sleep_for(10ms);  // Let the deadline pass while queued.
  service.Resume();

  QueryResult expired = doomed.result.get();
  EXPECT_TRUE(expired.status.IsDeadlineExceeded())
      << expired.status.ToString();
  EXPECT_TRUE(expired.neighbors.empty());
  EXPECT_TRUE(fine.result.get().status.ok());
  EXPECT_EQ(service.Stats().collections.at("flat").expired, 1u);
}

// --- Regression: deadlines must fire while paused / never dispatched -------

TEST(SearchServiceTest, DeadlineShedsWhilePausedWithoutResume) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Pause();
  QueryOptions options;
  options.timeout = 5ms;
  QueryTicket doomed =
      service.Submit("flat", fx.dataset.queries.Vector(0), options);
  QueryTicket survivor = service.Submit("flat", fx.dataset.queries.Vector(1));

  // No Resume(): the dispatchers must still timed-wait on the queued
  // deadline and shed the query when it passes. Before the fix this future
  // stayed unresolved until Resume()/Shutdown — here it must be ready
  // long before the generous bound.
  ASSERT_EQ(doomed.result.wait_for(2s), std::future_status::ready)
      << "deadline-bearing query stranded behind Pause()";
  QueryResult expired = doomed.result.get();
  EXPECT_TRUE(expired.status.IsDeadlineExceeded())
      << expired.status.ToString();

  // The deadline-free query holds (paused means paused for live work).
  EXPECT_EQ(survivor.result.wait_for(0s), std::future_status::timeout);
  EXPECT_EQ(service.Stats().collections.at("flat").expired, 1u);
  EXPECT_EQ(service.queue_depth(), 1u);

  service.Resume();
  EXPECT_TRUE(survivor.result.get().status.ok());
}

// --- Regression: never-queued rejections must not report queue time --------

TEST(SearchServiceTest, RejectionsReportZeroQueueMs) {
  Fixture fx = MakeFixture();
  ServiceConfig sc;
  sc.max_pending = 1;
  SearchService service(sc);
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Pause();
  QueryTicket held = service.Submit("flat", fx.dataset.queries.Vector(0));

  // Admission-rejected: the queue was full, the query never entered it —
  // it spent zero time queued, and must say so (it used to report
  // queue_ms == total_ms despite never waiting anywhere).
  QueryResult rejected =
      service.Submit("flat", fx.dataset.queries.Vector(1)).result.get();
  ASSERT_TRUE(rejected.status.IsResourceExhausted())
      << rejected.status.ToString();
  EXPECT_EQ(rejected.queue_ms, 0.0);
  EXPECT_GE(rejected.total_ms, 0.0);

  // Same for the other never-queued rejections.
  QueryResult unknown =
      service.Submit("ghost", fx.dataset.queries.Vector(0)).result.get();
  ASSERT_TRUE(unknown.status.IsNotFound());
  EXPECT_EQ(unknown.queue_ms, 0.0);

  service.Resume();
  QueryResult ok = held.result.get();
  ASSERT_TRUE(ok.status.ok());
  // A dispatched query still reports its real (positive) queue wait.
  EXPECT_GT(ok.queue_ms, 0.0);
}

// --- Per-dispatcher stats ---------------------------------------------------

TEST(SearchServiceTest, PerDispatcherStatsSplitTheDispatches) {
  Fixture fx = MakeFixture(24, 98, 2000, 16);
  ServiceConfig sc;
  sc.dispatchers = 3;
  sc.threads = 2;
  SearchService service(sc);
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  std::vector<QueryTicket> tickets;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    tickets.push_back(service.Submit("flat", fx.dataset.queries.Vector(q)));
  }
  for (QueryTicket& ticket : tickets) {
    ASSERT_TRUE(ticket.result.get().status.ok());
  }

  const ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.dispatchers.size(), 3u);
  uint64_t dispatcher_total = 0;
  for (const DispatcherStats& ds : stats.dispatchers) {
    dispatcher_total += ds.dispatches;
    EXPECT_GE(ds.busy_fraction, 0.0);
    EXPECT_LE(ds.busy_fraction, 1.0);
  }
  // Every batch was popped by exactly one dispatcher: the per-dispatcher
  // counts partition the per-collection dispatch count.
  EXPECT_EQ(dispatcher_total, stats.collections.at("flat").dispatches);
}

// --- Cancellation ---------------------------------------------------------

TEST(SearchServiceTest, CancelQueuedQuery) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Pause();
  QueryTicket doomed = service.Submit("flat", fx.dataset.queries.Vector(0));
  QueryTicket fine = service.Submit("flat", fx.dataset.queries.Vector(1));

  EXPECT_TRUE(service.Cancel(doomed.id));
  EXPECT_FALSE(service.Cancel(doomed.id));  // Already resolved.
  EXPECT_FALSE(service.Cancel(99999));      // Never existed.

  QueryResult cancelled = doomed.result.get();
  EXPECT_TRUE(cancelled.status.IsCancelled()) << cancelled.status.ToString();

  service.Resume();
  EXPECT_TRUE(fine.result.get().status.ok());
  EXPECT_EQ(service.Stats().collections.at("flat").cancelled, 1u);
}

TEST(SearchServiceTest, RemoveCollectionCancelsItsQueuedQueries) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("a", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  ASSERT_TRUE(service
                  .AddCollection("b", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kLinear))
                  .ok());
  service.Pause();
  QueryTicket doomed = service.Submit("a", fx.dataset.queries.Vector(0));
  QueryTicket fine = service.Submit("b", fx.dataset.queries.Vector(1));
  ASSERT_TRUE(service.RemoveCollection("a").ok());
  EXPECT_TRUE(service.RemoveCollection("a").IsNotFound());
  service.Resume();

  EXPECT_TRUE(doomed.result.get().status.IsCancelled());
  EXPECT_TRUE(fine.result.get().status.ok());
  EXPECT_EQ(service.CollectionNames(), std::vector<std::string>{"b"});
  // Submitting to the removed name now fails fast.
  EXPECT_TRUE(service.Submit("a", fx.dataset.queries.Vector(0))
                  .result.get()
                  .status.IsNotFound());
}

// --- Shutdown -------------------------------------------------------------

TEST(SearchServiceTest, ShutdownResolvesEveryFuture) {
  Fixture fx = MakeFixture(24, 92, 4000, 40);
  auto service = std::make_unique<SearchService>();
  ASSERT_TRUE(service
                  ->AddCollection("ivf", fx.dataset.data, fx.index,
                                  Config(SearcherLayout::kIvf, PrunerKind::kBond,
                                         16))
                  .ok());
  std::vector<QueryTicket> tickets;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    tickets.push_back(service->Submit("ivf", fx.dataset.queries.Vector(q)));
  }
  // Destroy with work in flight: in-flight batches finish, queued queries
  // cancel, nothing hangs and nothing is dropped.
  service.reset();
  size_t ok = 0, cancelled = 0;
  for (QueryTicket& ticket : tickets) {
    ASSERT_EQ(ticket.result.wait_for(0s), std::future_status::ready);
    QueryResult result = ticket.result.get();
    if (result.status.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(result.status.IsCancelled()) << result.status.ToString();
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, tickets.size());
}

TEST(SearchServiceTest, SubmitAfterShutdownIsRejected) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Shutdown();
  service.Shutdown();  // Idempotent.
  QueryResult result =
      service.Submit("flat", fx.dataset.queries.Vector(0)).result.get();
  EXPECT_TRUE(result.status.IsCancelled()) << result.status.ToString();
}

// --- Callback overload ----------------------------------------------------

TEST(SearchServiceTest, CallbackOverloadDelivers) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  std::promise<QueryResult> delivered;
  uint64_t id = service.Submit(
      "flat", fx.dataset.queries.Vector(0), {},
      [&](QueryResult result) { delivered.set_value(std::move(result)); });
  QueryResult result = delivered.get_future().get();
  EXPECT_EQ(result.id, id);
  ASSERT_TRUE(result.status.ok());
  auto reference = MakeSearcher(
      fx.dataset.data, Config(SearcherLayout::kFlat, PrunerKind::kBond));
  ASSERT_TRUE(reference.ok());
  ExpectSameNeighbors(result.neighbors,
                      reference.value()->Search(fx.dataset.queries.Vector(0)),
                      "callback");
}

// --- Admission / config edge cases ----------------------------------------

TEST(SearchServiceTest, RejectsBadCollections) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("dup", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  EXPECT_TRUE(service
                  .AddCollection("dup", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kLinear))
                  .IsInvalidArgument());
  SearcherConfig bad = Config(SearcherLayout::kFlat, PrunerKind::kBond);
  bad.k = 0;
  EXPECT_TRUE(
      service.AddCollection("bad", fx.dataset.data, bad).IsInvalidArgument());
  std::unique_ptr<Searcher> null_searcher;
  EXPECT_TRUE(
      service.AddCollection("null", null_searcher).IsInvalidArgument());
  EXPECT_TRUE(service.Submit("ghost", fx.dataset.queries.Vector(0))
                  .result.get()
                  .status.IsNotFound());
  EXPECT_TRUE(service.Submit("dup", nullptr)
                  .result.get()
                  .status.IsInvalidArgument());
}

TEST(SearchServiceTest, StaleQueryLenIsRejectedNotRead) {
  // The wire handler validates a payload against a CollectionInfo dim
  // snapshot, then Submits with query_len set to that snapshot. If the
  // collection is replaced with a different dimension in between (a
  // concurrent PUT), the service must answer kInvalidArgument under its
  // own mutex — never copy the live dim() floats from the shorter buffer.
  // Pre-fix, ASan flags this test as a heap out-of-bounds read.
  Fixture small = MakeFixture(/*dim=*/8, /*seed=*/12, /*count=*/400);
  Fixture big = MakeFixture(/*dim=*/32, /*seed=*/13, /*count=*/400);
  SearchService service;
  ASSERT_TRUE(
      service
          .AddCollection("swap", small.dataset.data,
                         Config(SearcherLayout::kFlat, PrunerKind::kBond))
          .ok());

  // Exactly dim floats, heap-allocated, so the pre-fix copy of the live
  // (larger) dim is a true out-of-bounds read ASan flags — not a quiet
  // read into neighboring queries of a pooled buffer.
  const std::vector<float> short_query(
      small.dataset.queries.Vector(0),
      small.dataset.queries.Vector(0) + small.dataset.data.dim());
  QueryOptions options;
  options.query_len = short_query.size();  // Snapshot taken here...
  // ...and the collection replaced before Submit.
  ASSERT_TRUE(service.RemoveCollection("swap").ok());
  ASSERT_TRUE(
      service
          .AddCollection("swap", big.dataset.data,
                         Config(SearcherLayout::kFlat, PrunerKind::kBond))
          .ok());

  QueryResult stale =
      service.Submit("swap", short_query.data(), options).result.get();
  EXPECT_TRUE(stale.status.IsInvalidArgument()) << stale.status.ToString();

  // A stated length matching the live collection still serves; 0 keeps
  // the trusted in-process fast path.
  options.query_len = big.dataset.data.dim();
  EXPECT_TRUE(service.Submit("swap", big.dataset.queries.Vector(0), options)
                  .result.get()
                  .status.ok());
  EXPECT_TRUE(service.Submit("swap", big.dataset.queries.Vector(0))
                  .result.get()
                  .status.ok());
}

TEST(SearchServiceTest, AdoptedSearcherIsServed) {
  Fixture fx = MakeFixture();
  auto made = MakeSearcher(fx.dataset.data,
                           Config(SearcherLayout::kFlat, PrunerKind::kBond));
  ASSERT_TRUE(made.ok());
  SearchService service;
  std::unique_ptr<Searcher> searcher = std::move(made).value();
  ASSERT_TRUE(service.AddCollection("adopted", searcher).ok());
  EXPECT_EQ(searcher, nullptr);  // Moved from on success.
  EXPECT_TRUE(service.Submit("adopted", fx.dataset.queries.Vector(0))
                  .result.get()
                  .status.ok());

  // A failed adoption (duplicate name) must NOT consume the caller's
  // searcher — it stays usable and can be hosted under another name.
  auto again = MakeSearcher(fx.dataset.data,
                            Config(SearcherLayout::kFlat, PrunerKind::kBond));
  ASSERT_TRUE(again.ok());
  std::unique_ptr<Searcher> survivor = std::move(again).value();
  EXPECT_TRUE(service.AddCollection("adopted", survivor).IsInvalidArgument());
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->Search(fx.dataset.queries.Vector(0)).size(), 10u);
  EXPECT_TRUE(service.AddCollection("adopted-2", survivor).ok());
}

TEST(SearchServiceTest, AbsurdPerQueryOverridesAreClamped) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("ivf", fx.dataset.data, fx.index,
                                 Config(SearcherLayout::kIvf, PrunerKind::kBond))
                  .ok());
  // k far beyond the collection size and nprobe beyond the bucket count
  // must not crash the dispatcher (e.g. a huge heap reserve) — they clamp
  // to "everything", which with an exact pruner is exact search.
  QueryOptions options;
  options.k = static_cast<size_t>(-1);
  options.nprobe = static_cast<size_t>(-1);
  QueryResult result =
      service.Submit("ivf", fx.dataset.queries.Vector(0), options).result.get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.neighbors.size(), fx.dataset.data.count());
  // And the service keeps serving afterwards.
  EXPECT_TRUE(
      service.Submit("ivf", fx.dataset.queries.Vector(1)).result.get().status.ok());
}

// --- Micro-batching and stats ---------------------------------------------

TEST(SearchServiceTest, PausedBacklogCoalescesIntoBatches) {
  Fixture fx = MakeFixture(24, 93, 2000, 12);
  ServiceConfig sc;
  sc.max_batch = 4;
  SearchService service(sc);
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Pause();
  std::vector<QueryTicket> tickets;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    tickets.push_back(service.Submit("flat", fx.dataset.queries.Vector(q)));
  }
  service.Resume();
  auto reference = MakeSearcher(
      fx.dataset.data, Config(SearcherLayout::kFlat, PrunerKind::kBond));
  ASSERT_TRUE(reference.ok());
  for (size_t q = 0; q < tickets.size(); ++q) {
    QueryResult result = tickets[q].result.get();
    ASSERT_TRUE(result.status.ok());
    ExpectSameNeighbors(result.neighbors,
                        reference.value()->Search(fx.dataset.queries.Vector(q)),
                        "batched query " + std::to_string(q));
  }
  const CollectionStats cs = service.Stats().collections.at("flat");
  EXPECT_EQ(cs.completed, tickets.size());
  // A 12-query backlog at max_batch=4 needs at least 3 dispatches but —
  // micro-batching being the point — far fewer than one per query.
  EXPECT_GE(cs.dispatches, 3u);
  EXPECT_LT(cs.dispatches, tickets.size());
  EXPECT_EQ(cs.latency.count, tickets.size());
  EXPECT_GT(cs.latency.p50_ms, 0.0);
  EXPECT_LE(cs.latency.p50_ms, cs.latency.p99_ms);
}

// --- Acceptance (c): concurrent submitters share ONE pool ------------------

TEST(SearchServiceTest, ConcurrentSubmittersShareOnePoolWithParity) {
  Fixture fx = MakeFixture(24, 94, 3000, 24);
  ServiceConfig sc;
  sc.threads = 3;
  sc.dispatchers = 4;  // Replicated dispatch must preserve exact parity.
  SearchService service(sc);
  ASSERT_TRUE(service
                  .AddCollection("ivf-bond", fx.dataset.data, fx.index,
                                 Config(SearcherLayout::kIvf, PrunerKind::kBond))
                  .ok());
  ASSERT_TRUE(service
                  .AddCollection("flat-ads", fx.dataset.data,
                                 Config(SearcherLayout::kFlat,
                                        PrunerKind::kAdsampling))
                  .ok());

  // Sequential ground truth per collection, computed up front.
  auto ref_bond = MakeSearcher(fx.dataset.data, fx.index,
                               Config(SearcherLayout::kIvf, PrunerKind::kBond));
  auto ref_ads = MakeSearcher(
      fx.dataset.data, Config(SearcherLayout::kFlat, PrunerKind::kAdsampling));
  ASSERT_TRUE(ref_bond.ok());
  ASSERT_TRUE(ref_ads.ok());
  const size_t nq = fx.dataset.queries.count();
  std::vector<std::vector<Neighbor>> expected_bond(nq), expected_ads(nq);
  for (size_t q = 0; q < nq; ++q) {
    expected_bond[q] = ref_bond.value()->Search(fx.dataset.queries.Vector(q));
    expected_ads[q] = ref_ads.value()->Search(fx.dataset.queries.Vector(q));
  }

  // From here on, the query path must construct no ThreadPool: every batch
  // runs on the service's one injected pool.
  const uint64_t pools_before = ThreadPool::num_created();

  constexpr size_t kSubmitters = 4;
  constexpr size_t kRounds = 3;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        std::vector<std::pair<size_t, QueryTicket>> bond_tickets, ads_tickets;
        for (size_t q = t; q < nq; q += kSubmitters) {
          bond_tickets.emplace_back(
              q, service.Submit("ivf-bond", fx.dataset.queries.Vector(q)));
          ads_tickets.emplace_back(
              q, service.Submit("flat-ads", fx.dataset.queries.Vector(q)));
        }
        auto check = [&](std::vector<std::pair<size_t, QueryTicket>>& tickets,
                         const std::vector<std::vector<Neighbor>>& expected) {
          for (auto& [q, ticket] : tickets) {
            QueryResult result = ticket.result.get();
            if (!result.status.ok() ||
                result.neighbors.size() != expected[q].size()) {
              mismatches.fetch_add(1);
              continue;
            }
            for (size_t i = 0; i < expected[q].size(); ++i) {
              if (result.neighbors[i].id != expected[q][i].id ||
                  result.neighbors[i].distance != expected[q][i].distance) {
                mismatches.fetch_add(1);
                break;
              }
            }
          }
        };
        check(bond_tickets, expected_bond);
        check(ads_tickets, expected_ads);
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ThreadPool::num_created(), pools_before)
      << "a searcher constructed a private pool on the query path";

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.pool_threads, 3u);
  EXPECT_EQ(stats.collections.at("ivf-bond").completed, kRounds * nq);
  EXPECT_EQ(stats.collections.at("flat-ads").completed, kRounds * nq);
}

// --- Sharded collections ---------------------------------------------------

TEST(SearchServiceTest, ShardedCollectionMatchesUnshardedWithShardStats) {
  Fixture fx = MakeFixture(24, 96, 3000, 12);
  ServiceConfig sc;
  sc.threads = 3;
  SearchService service(sc);
  ShardingOptions sharding;
  sharding.num_shards = 4;
  ASSERT_TRUE(service
                  .AddCollection("sharded", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond),
                                 sharding)
                  .ok());

  auto reference = MakeSearcher(
      fx.dataset.data, Config(SearcherLayout::kFlat, PrunerKind::kBond));
  ASSERT_TRUE(reference.ok());

  std::vector<QueryTicket> tickets;
  for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
    tickets.push_back(service.Submit("sharded", fx.dataset.queries.Vector(q)));
  }
  for (size_t q = 0; q < tickets.size(); ++q) {
    QueryResult result = tickets[q].result.get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ExpectSameNeighbors(result.neighbors,
                        reference.value()->Search(fx.dataset.queries.Vector(q)),
                        "sharded query " + std::to_string(q));
  }

  const CollectionStats cs = service.Stats().collections.at("sharded");
  EXPECT_EQ(cs.completed, tickets.size());
  EXPECT_EQ(cs.shards, 4u);
  ASSERT_EQ(cs.shard_dispatches.size(), 4u);
  // Every dispatched query fans out to every shard.
  for (uint64_t per_shard : cs.shard_dispatches) {
    EXPECT_EQ(per_shard, tickets.size());
  }
}

// --- Regression: flat batches must not fragment on nprobe ------------------

TEST(SearchServiceTest, FlatBatchCoalescesAcrossNprobeOverrides) {
  Fixture fx = MakeFixture();
  SearchService service;  // max_batch default 8 >= the 4 queries below.
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Pause();
  std::vector<QueryTicket> tickets;
  for (size_t q = 0; q < 4; ++q) {
    // Distinct nprobe per query: a flat search ignores nprobe entirely, so
    // all four must still share ONE SearchBatch dispatch.
    QueryOptions options;
    options.nprobe = q + 1;
    tickets.push_back(
        service.Submit("flat", fx.dataset.queries.Vector(q), options));
  }
  service.Resume();
  for (QueryTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.result.get().status.ok());
  }
  const CollectionStats cs = service.Stats().collections.at("flat");
  EXPECT_EQ(cs.completed, 4u);
  EXPECT_EQ(cs.dispatches, 1u)
      << "flat-layout batch was fragmented by the ignored nprobe knob";
}

// --- Regression: shed queries keep their real queue wait -------------------

TEST(SearchServiceTest, ShedQueriesReportQueueWait) {
  Fixture fx = MakeFixture();
  SearchService service;
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  service.Pause();
  QueryOptions options;
  options.timeout = 1ms;
  QueryTicket doomed =
      service.Submit("flat", fx.dataset.queries.Vector(0), options);
  QueryTicket axed = service.Submit("flat", fx.dataset.queries.Vector(1));
  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(service.Cancel(axed.id));
  service.Resume();

  // The doomed query is shed AT its deadline (dispatchers timed-wait on
  // the earliest queued deadline, even while paused): its future must be
  // ready without Resume() having run — asserted before Resume() in
  // DeadlineShedsWhilePausedWithoutResume; here the paused window already
  // elapsed, so readiness is immediate — and its queue wait is the ~1ms
  // it actually sat queued. (No wall-clock upper bound: that would flake
  // on a descheduled CI host.)
  QueryResult expired = doomed.result.get();
  EXPECT_TRUE(expired.status.IsDeadlineExceeded());
  EXPECT_GE(expired.queue_ms, 1.0);
  // The cancelled query sat queued until the Cancel 30ms in; its reported
  // queue wait is that real wait, not zero.
  QueryResult cancelled = axed.result.get();
  EXPECT_TRUE(cancelled.status.IsCancelled());
  EXPECT_GT(cancelled.queue_ms, 5.0);

  const CollectionStats cs = service.Stats().collections.at("flat");
  EXPECT_EQ(cs.expired, 1u);
  EXPECT_EQ(cs.cancelled, 1u);
  // ...and both waits entered the queue-wait percentiles: exactly the
  // samples that used to be dropped when the queue was in trouble.
  EXPECT_EQ(cs.queue_wait.count, 2u);
  EXPECT_GT(cs.queue_wait.p99_ms, 5.0);
}

// --- Regression: QPS must not decay across idle gaps -----------------------

TEST(SearchServiceTest, QpsTracksRecentWindowAcrossIdleGap) {
  Fixture fx = MakeFixture(8, 97, 400, 8);
  ServiceConfig sc;
  sc.qps_window = 250ms;
  SearchService service(sc);
  ASSERT_TRUE(service
                  .AddCollection("flat", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  auto burst = [&] {
    std::vector<QueryTicket> tickets;
    for (size_t q = 0; q < fx.dataset.queries.count(); ++q) {
      tickets.push_back(service.Submit("flat", fx.dataset.queries.Vector(q)));
    }
    for (QueryTicket& ticket : tickets) {
      ASSERT_TRUE(ticket.result.get().status.ok());
    }
  };

  burst();
  EXPECT_GT(service.Stats().collections.at("flat").qps, 0.0);

  // Idle past the window: the gauge reads 0 (no recent completions), not a
  // stale lifetime average.
  std::this_thread::sleep_for(600ms);
  EXPECT_EQ(service.Stats().collections.at("flat").qps, 0.0);

  // Fresh traffic after the gap: QPS reflects the recent rate. The old
  // first-to-last-completion span included the 600ms gap and could never
  // report more than ~(completed-1)/0.6s again.
  burst();
  EXPECT_GT(service.Stats().collections.at("flat").qps, 25.0);
}

// --- RemoveCollection vs an in-flight batch --------------------------------

/// Wraps a real searcher, signalling when SearchBatch starts and blocking
/// it until released — a deterministic in-flight window for the test.
class SlowSearcher : public Searcher {
 public:
  SlowSearcher(std::unique_ptr<Searcher> inner,
               std::shared_future<void> release, std::promise<void>* started)
      : Searcher(inner->options()),
        inner_(std::move(inner)),
        release_(std::move(release)),
        started_(started) {}

  std::vector<Neighbor> Search(const float* query) override {
    return inner_->Search(query);
  }
  std::vector<std::vector<Neighbor>> SearchBatch(const float* queries,
                                                 size_t num_queries) override {
    if (started_ != nullptr) {
      started_->set_value();
      started_ = nullptr;
    }
    release_.wait();
    return inner_->SearchBatch(queries, num_queries);
  }
  const PdxearchProfile& last_profile() const override {
    return inner_->last_profile();
  }
  const PdxStore& store() const override { return inner_->store(); }
  const IvfIndex* index() const override { return inner_->index(); }

 private:
  std::unique_ptr<Searcher> inner_;
  std::shared_future<void> release_;
  std::promise<void>* started_;
};

TEST(SearchServiceTest, RemoveCollectionWithInFlightBatch) {
  Fixture fx = MakeFixture();
  ServiceConfig sc;
  sc.max_batch = 2;
  // One dispatcher keeps the scenario deterministic: with replicas, a
  // second dispatcher would pop queries 2-3 as a second in-flight batch
  // (queued behind SlowSearcher's serialized fallback) instead of leaving
  // them queued for RemoveCollection to cancel.
  sc.dispatchers = 1;
  SearchService service(sc);

  auto inner = MakeSearcher(fx.dataset.data,
                            Config(SearcherLayout::kFlat, PrunerKind::kBond));
  ASSERT_TRUE(inner.ok());
  std::promise<void> release;
  std::promise<void> started;
  std::unique_ptr<Searcher> slow = std::make_unique<SlowSearcher>(
      std::move(inner).value(), release.get_future().share(), &started);
  ASSERT_TRUE(service.AddCollection("slow", slow).ok());

  service.Pause();
  std::vector<QueryTicket> tickets;
  for (size_t q = 0; q < 4; ++q) {
    tickets.push_back(service.Submit("slow", fx.dataset.queries.Vector(q)));
  }
  service.Resume();
  // The dispatcher is now inside SearchBatch with queries 0-1 (max_batch
  // 2); queries 2-3 are still queued.
  started.get_future().wait();
  ASSERT_TRUE(service.RemoveCollection("slow").ok());

  // Queued queries fail fast, while the batch is still running.
  EXPECT_TRUE(tickets[2].result.get().status.IsCancelled());
  EXPECT_TRUE(tickets[3].result.get().status.IsCancelled());
  ASSERT_EQ(tickets[0].result.wait_for(0s), std::future_status::timeout);

  // Unblock the batch: the dispatcher's shared_ptr kept the collection
  // alive, so the in-flight queries still resolve OK.
  release.set_value();
  for (size_t q = 0; q < 2; ++q) {
    QueryResult result = tickets[q].result.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.neighbors.size(), 10u);
  }
  EXPECT_TRUE(service.CollectionNames().empty());
}

TEST(SearchServiceTest, ServiceLoadHelperDrivesTheService) {
  Fixture fx = MakeFixture(16, 95, 2000, 20);
  ServiceConfig sc;
  sc.threads = 2;
  SearchService service(sc);
  ASSERT_TRUE(service
                  .AddCollection("a", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kBond))
                  .ok());
  ASSERT_TRUE(service
                  .AddCollection("b", fx.dataset.data,
                                 Config(SearcherLayout::kFlat, PrunerKind::kLinear))
                  .ok());
  ServiceLoadOptions load;
  load.submitters = 3;
  load.queries_per_submitter = 20;
  const ServiceLoadResult result =
      RunServiceLoad(service, {"a", "b"}, fx.dataset.queries, load);
  EXPECT_EQ(result.completed, 60u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.qps(), 0.0);
}

}  // namespace
}  // namespace pdx
