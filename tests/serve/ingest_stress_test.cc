#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/any_searcher.h"
#include "serve/search_service.h"
#include "storage/vector_set.h"

// Ingest under fire: N mutator threads stream AddVectors / DeleteVectors /
// upserts through the service while M searcher threads submit queries, on
// a hot unsharded flat collection AND a sharded IVF collection at once.
// After quiesce the hosted results must be byte-identical to a fresh
// searcher built over the tracked survivors — the live-collection
// acceptance criterion — and the ingest counters must reconcile exactly.
// This suite runs under TSan and ASan in CI (the `ingest` label), so any
// lock-order or lifetime mistake in the mutation path fails loudly here.

namespace pdx {
namespace {

using namespace std::chrono_literals;

constexpr size_t kDim = 16;
constexpr size_t kBase = 2000;
constexpr size_t kMutators = 3;
constexpr size_t kSearchers = 4;
constexpr size_t kQueriesPerSearcher = 150;
constexpr size_t kAddsPerMutator = 150;
constexpr size_t kUpsertsPerMutator = 50;
constexpr size_t kInitialDeletesPerMutator = 100;
constexpr size_t kOwnDeletesPerMutator = 30;

VectorSet RandomVectors(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    set.Append(row.data());
  }
  return set;
}

/// One mutator's deterministic contribution, recorded lock-free: id spaces
/// are disjoint (mutator m owns explicit ids 1'000'000 * (m + 1) + j and
/// the initial-id range [m * 200, m * 200 + 100)), so the final state per
/// id is fixed by one thread's program order and the threads' models merge
/// trivially after join.
struct MutatorLog {
  std::map<uint64_t, std::vector<float>> upserted;  ///< Final row per id.
  std::vector<uint64_t> deleted;                    ///< Ids removed.
  Status first_error;                               ///< OK unless something broke.
  uint64_t added_calls = 0;   ///< Rows pushed through AddVectors.
  uint64_t deleted_calls = 0; ///< Rows removed via DeleteVectors.
};

void RunMutator(SearchService& service,
                const std::vector<std::string>& collections, size_t m,
                MutatorLog* log) {
  Rng rng(7'000 + m);
  auto note_error = [log](const Status& status) {
    if (log->first_error.ok() && !status.ok()) log->first_error = status;
  };
  const uint64_t id_base = 1'000'000 * (m + 1);

  // Streaming adds under explicit ids, in batches of 10.
  for (size_t j = 0; j < kAddsPerMutator; j += 10) {
    std::vector<float> rows(10 * kDim);
    std::vector<uint64_t> ids(10);
    for (size_t r = 0; r < 10; ++r) {
      ids[r] = id_base + j + r;
      for (size_t d = 0; d < kDim; ++d) {
        rows[r * kDim + d] = static_cast<float>(rng.Gaussian());
      }
    }
    for (const std::string& name : collections) {
      auto added = service.AddVectors(name, rows.data(), 10, kDim, ids.data());
      note_error(added.status());
      if (added.ok()) log->added_calls += 10;
    }
    // Record after the last collection: same rows went everywhere.
    for (size_t r = 0; r < 10; ++r) {
      log->upserted[ids[r]] = std::vector<float>(
          rows.begin() + r * kDim, rows.begin() + (r + 1) * kDim);
    }
  }

  // Upsert the first kUpsertsPerMutator of our own ids with new values.
  for (size_t j = 0; j < kUpsertsPerMutator; j += 10) {
    std::vector<float> rows(10 * kDim);
    std::vector<uint64_t> ids(10);
    for (size_t r = 0; r < 10; ++r) {
      ids[r] = id_base + j + r;
      for (size_t d = 0; d < kDim; ++d) {
        rows[r * kDim + d] = static_cast<float>(rng.Gaussian());
      }
    }
    for (const std::string& name : collections) {
      auto upserted = service.Upsert(name, rows.data(), 10, kDim, ids.data());
      note_error(upserted.status());
      if (upserted.ok()) log->added_calls += 10;
    }
    for (size_t r = 0; r < 10; ++r) {
      log->upserted[ids[r]] = std::vector<float>(
          rows.begin() + r * kDim, rows.begin() + (r + 1) * kDim);
    }
  }

  // Delete our partition of the initial ids, in batches of 20.
  for (size_t j = 0; j < kInitialDeletesPerMutator; j += 20) {
    std::vector<uint64_t> ids(20);
    for (size_t r = 0; r < 20; ++r) ids[r] = m * 200 + j + r;
    for (const std::string& name : collections) {
      auto deleted = service.DeleteVectors(name, ids.data(), 20, nullptr);
      note_error(deleted.status());
      if (deleted.ok()) log->deleted_calls += deleted.value();
    }
    log->deleted.insert(log->deleted.end(), ids.begin(), ids.end());
  }

  // Delete the tail of our own added ids (they exist: added above).
  {
    std::vector<uint64_t> ids(kOwnDeletesPerMutator);
    for (size_t r = 0; r < kOwnDeletesPerMutator; ++r) {
      ids[r] = id_base + kAddsPerMutator - 1 - r;
    }
    for (const std::string& name : collections) {
      auto deleted = service.DeleteVectors(name, ids.data(), ids.size(),
                                           nullptr);
      note_error(deleted.status());
      if (deleted.ok()) log->deleted_calls += deleted.value();
    }
    for (const uint64_t id : ids) {
      log->upserted.erase(id);
      log->deleted.push_back(id);
    }
  }
}

TEST(IngestStressTest, MutateWhileServingThenExactParity) {
  VectorSet base = RandomVectors(kBase, kDim, 1);

  ServiceConfig sc;
  sc.threads = 4;
  sc.dispatchers = 2;
  sc.max_pending = 4096;  // The stress load must not hit admission limits.
  sc.mutation.compact_threshold = 256;  // Several compactions mid-run.
  sc.mutation.delta_block_capacity = 64;
  MetricsRegistry registry;
  sc.metrics = &registry;
  SearchService service(sc);

  // A hot unsharded flat collection and a sharded IVF collection, both
  // exhaustive (linear pruner; IVF probes every bucket) so quiesce parity
  // is byte-exact.
  SearcherConfig hot;
  hot.layout = SearcherLayout::kFlat;
  hot.pruner = PrunerKind::kLinear;
  hot.k = 10;
  SearcherConfig sharded = hot;
  sharded.layout = SearcherLayout::kIvf;
  sharded.nprobe = 1u << 20;
  ShardingOptions sharding;
  sharding.num_shards = 3;
  ASSERT_TRUE(service.AddCollection("hot", base, hot).ok());
  ASSERT_TRUE(service.AddCollection("sharded", base, sharded, sharding).ok());
  const std::vector<std::string> collections = {"hot", "sharded"};

  // Searchers: submit futures against both collections while the mutators
  // run; every future must resolve (liveness) with OK — the load is sized
  // under max_pending, so admission rejections would be a real bug.
  std::atomic<size_t> search_failures{0};
  std::atomic<size_t> searches_done{0};
  std::vector<std::thread> searchers;
  for (size_t s = 0; s < kSearchers; ++s) {
    searchers.emplace_back([&service, &collections, &search_failures,
                            &searches_done, s] {
      Rng rng(9'000 + s);
      std::vector<float> query(kDim);
      for (size_t q = 0; q < kQueriesPerSearcher; ++q) {
        for (float& v : query) v = static_cast<float>(rng.Gaussian());
        QueryTicket ticket = service.Submit(
            collections[q % collections.size()], query.data());
        const QueryResult result = ticket.result.get();
        if (!result.status.ok()) ++search_failures;
        ++searches_done;
      }
    });
  }

  std::vector<MutatorLog> logs(kMutators);
  std::vector<std::thread> mutators;
  for (size_t m = 0; m < kMutators; ++m) {
    mutators.emplace_back([&service, &collections, m, &logs] {
      RunMutator(service, collections, m, &logs[m]);
    });
  }

  for (std::thread& t : mutators) t.join();
  for (std::thread& t : searchers) t.join();
  EXPECT_EQ(searches_done.load(), kSearchers * kQueriesPerSearcher);
  EXPECT_EQ(search_failures.load(), 0u);
  for (size_t m = 0; m < kMutators; ++m) {
    ASSERT_TRUE(logs[m].first_error.ok())
        << "mutator " << m << ": " << logs[m].first_error.ToString();
  }

  // Merge the disjoint per-mutator logs into the survivor model.
  std::map<uint64_t, std::vector<float>> model;
  for (size_t i = 0; i < base.count(); ++i) {
    model[i] =
        std::vector<float>(base.Vector(i), base.Vector(i) + base.dim());
  }
  uint64_t expect_added = 0;
  uint64_t expect_deleted = 0;
  for (const MutatorLog& log : logs) {
    for (const auto& [id, row] : log.upserted) model[id] = row;
    for (const uint64_t id : log.deleted) model.erase(id);
    expect_added += log.added_calls / collections.size();
    expect_deleted += log.deleted_calls / collections.size();
  }

  // Counters reconcile exactly: every add/delete landed on each collection.
  const ServiceStats stats = service.Stats();
  for (const std::string& name : collections) {
    const auto it = stats.collections.find(name);
    ASSERT_NE(it, stats.collections.end());
    EXPECT_TRUE(it->second.is_mutable) << name;
    EXPECT_EQ(it->second.added, expect_added) << name;
    EXPECT_EQ(it->second.deleted, expect_deleted) << name;
    EXPECT_EQ(it->second.count, model.size()) << name;
  }

  // The delta crossed compact_threshold several times over, so at least
  // one background compaction must complete; poll briefly — the compactor
  // may still be folding when the mutators finish.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  bool compacted = false;
  while (!compacted && std::chrono::steady_clock::now() < deadline) {
    const ServiceStats snap = service.Stats();
    compacted = true;
    for (const std::string& name : collections) {
      compacted = compacted && snap.collections.at(name).compactions >= 1;
    }
    if (!compacted) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(compacted) << "no background compaction completed";

  // Quiesce parity: the hosted results must be byte-identical to a fresh
  // searcher over the survivors. The reference is exhaustive flat/linear —
  // any exact configuration must agree with it bit for bit.
  VectorSet survivors(kDim, model.size());
  std::vector<uint64_t> external;
  external.reserve(model.size());
  for (const auto& [id, row] : model) {
    survivors.Append(row.data());
    external.push_back(id);
  }
  SearcherConfig reference_config;
  reference_config.layout = SearcherLayout::kFlat;
  reference_config.pruner = PrunerKind::kLinear;
  reference_config.k = 10;
  auto reference = MakeSearcher(survivors, reference_config);
  ASSERT_TRUE(reference.ok());

  VectorSet queries = RandomVectors(5, kDim, 2);
  for (size_t q = 0; q < queries.count(); ++q) {
    const std::vector<Neighbor> expected =
        reference.value()->Search(queries.Vector(q));
    for (const std::string& name : collections) {
      QueryTicket ticket = service.Submit(name, queries.Vector(q));
      const QueryResult result = ticket.result.get();
      ASSERT_TRUE(result.status.ok())
          << name << ": " << result.status.ToString();
      ASSERT_EQ(result.neighbors.size(), expected.size()) << name;
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(result.neighbors[i].id, external[expected[i].id])
            << name << " query " << q << " rank " << i;
        ASSERT_EQ(result.neighbors[i].distance, expected[i].distance)
            << name << " query " << q << " rank " << i;
      }
    }
  }

  service.Shutdown();
}

// Mutating a collection the service did not build from vectors must be a
// clean kUnsupported, not a crash — adopted searchers have no delta.
TEST(IngestStressTest, AdoptedCollectionsAreImmutable) {
  VectorSet base = RandomVectors(50, 8, 3);
  SearcherConfig config;
  config.layout = SearcherLayout::kFlat;
  config.pruner = PrunerKind::kLinear;
  auto searcher = MakeSearcher(base, config);
  ASSERT_TRUE(searcher.ok());

  SearchService service{ServiceConfig{}};
  std::unique_ptr<Searcher> adopted = std::move(searcher).value();
  ASSERT_TRUE(service.AddCollection("adopted", adopted).ok());

  std::vector<float> row(8, 0.5f);
  EXPECT_TRUE(service.AddVectors("adopted", row.data(), 1, 8, nullptr)
                  .status()
                  .IsUnsupported());
  const uint64_t id = 0;
  EXPECT_TRUE(
      service.DeleteVectors("adopted", &id, 1, nullptr).status().IsUnsupported());
  EXPECT_TRUE(
      service.Upsert("adopted", row.data(), 1, 8, &id).status().IsUnsupported());
  EXPECT_TRUE(service.AddVectors("ghost", row.data(), 1, 8, nullptr)
                  .status()
                  .IsNotFound());
  service.Shutdown();
}

}  // namespace
}  // namespace pdx
