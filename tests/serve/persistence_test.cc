#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datagen.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

using namespace std::chrono_literals;

Dataset MakeData(size_t dim = 20, size_t count = 1200, uint64_t seed = 31) {
  SyntheticSpec spec;
  spec.name = "persist-serve-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = 6;
  spec.num_clusters = 6;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<Neighbor> SearchOne(SearchService& service,
                                const std::string& name, const float* query) {
  QueryResult result = service.Submit(name, query).result.get();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  return result.neighbors;
}

// Save -> remove -> load through the service: the restored collection
// serves the exact same results, reports its load source, and keeps the
// streaming-mutation surface alive.
TEST(ServicePersistenceTest, SaveRemoveLoadRoundTrip) {
  const Dataset data = MakeData();
  const std::string path = TempPath("svc_roundtrip.pdxc");
  SearchService service(ServiceConfig{});
  SearcherConfig config;
  config.layout = SearcherLayout::kIvf;
  config.pruner = PrunerKind::kBond;
  config.k = 10;
  config.nprobe = 4;
  ASSERT_TRUE(service.AddCollection("c", data.data, config).ok());

  std::vector<std::vector<Neighbor>> before;
  for (size_t q = 0; q < data.queries.count(); ++q) {
    before.push_back(SearchOne(service, "c", data.queries.Vector(q)));
  }

  ASSERT_TRUE(service.SaveCollection("c", path).ok());
  ASSERT_TRUE(service.RemoveCollection("c").ok());
  ASSERT_TRUE(service.LoadCollection("c", path).ok());

  for (size_t q = 0; q < data.queries.count(); ++q) {
    const std::vector<Neighbor> after =
        SearchOne(service, "c", data.queries.Vector(q));
    ASSERT_EQ(after.size(), before[q].size()) << "query " << q;
    for (size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after[i].id, before[q][i].id) << "query " << q;
      EXPECT_EQ(after[i].distance, before[q][i].distance) << "query " << q;
    }
  }

  const ServiceStats stats = service.Stats();
  const CollectionStats& cs = stats.collections.at("c");
  EXPECT_EQ(cs.source, "mmap");
  EXPECT_GT(cs.mapped_bytes, 0u);
  EXPECT_EQ(cs.count, data.data.count());
  // A restored collection is still mutable: the snapshot carries the
  // delta/tombstone machinery, not just the packed base.
  EXPECT_TRUE(cs.is_mutable);
  const float* row = data.data.Vector(0);
  EXPECT_TRUE(service.AddVectors("c", row, 1, data.data.dim(), nullptr).ok());

  std::remove(path.c_str());
}

TEST(ServicePersistenceTest, HeapFallbackLoadServesToo) {
  const Dataset data = MakeData(12, 500, 17);
  const std::string path = TempPath("svc_heap.pdxc");
  SearchService service(ServiceConfig{});
  SearcherConfig config;
  config.k = 5;
  ASSERT_TRUE(service.AddCollection("c", data.data, config).ok());
  ASSERT_TRUE(service.SaveCollection("c", path).ok());
  ASSERT_TRUE(service.RemoveCollection("c").ok());
  ASSERT_TRUE(service.LoadCollection("c", path, /*allow_mmap=*/false).ok());
  EXPECT_FALSE(SearchOne(service, "c", data.queries.Vector(0)).empty());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.collections.at("c").source, "loaded");
  EXPECT_EQ(stats.collections.at("c").mapped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(ServicePersistenceTest, ErrorsSurfaceCleanly) {
  SearchService service(ServiceConfig{});
  EXPECT_TRUE(service.SaveCollection("ghost", TempPath("x.pdxc")).IsNotFound());
  EXPECT_FALSE(service.LoadCollection("c", TempPath("missing.pdxc")).ok());
  // A failed load must not half-host anything.
  EXPECT_TRUE(service.GetCollectionInfo("c").status().IsNotFound());
}

// After SaveCollection marks a path, every background compaction re-saves
// the snapshot there — a restart after the fold replays a short delta, not
// the whole mutation history.
TEST(ServicePersistenceTest, CompactorKeepsSnapshotCurrent) {
  const Dataset data = MakeData(16, 600, 23);
  const std::string path = TempPath("svc_compact.pdxc");
  ServiceConfig sc;
  sc.mutation.compact_threshold = 128;
  SearchService service(sc);
  SearcherConfig config;
  config.k = 5;
  ASSERT_TRUE(service.AddCollection("c", data.data, config).ok());
  ASSERT_TRUE(service.SaveCollection("c", path).ok());
  const uint64_t saved_size = std::filesystem::file_size(path);

  // Push the delta past the threshold so the background compactor folds.
  std::vector<float> rows(256 * data.data.dim());
  for (size_t i = 0; i < 256; ++i) {
    const float* src = data.data.Vector(i % data.data.count());
    std::copy(src, src + data.data.dim(),
              rows.begin() + static_cast<long>(i * data.data.dim()));
  }
  ASSERT_TRUE(service.AddVectors("c", rows.data(), 256, data.data.dim(),
                                 nullptr).ok());

  // Wait for the compaction to finish, then for the re-save it triggers
  // (the write itself is not atomic, so keep polling until a fresh load
  // of the file restores the post-compaction count).
  bool compacted = false;
  for (int spin = 0; spin < 250 && !compacted; ++spin) {
    std::this_thread::sleep_for(20ms);
    compacted = service.Stats().collections.at("c").compactions > 0;
  }
  ASSERT_TRUE(compacted) << "background compaction never ran";
  bool resaved = false;
  for (int spin = 0; spin < 250 && !resaved; ++spin) {
    std::this_thread::sleep_for(20ms);
    if (std::filesystem::file_size(path) == saved_size) continue;
    SearchService fresh(ServiceConfig{});
    if (!fresh.LoadCollection("c", path).ok()) continue;
    const ServiceStats stats = fresh.Stats();
    resaved = stats.collections.at("c").count == data.data.count() + 256;
  }
  EXPECT_TRUE(resaved) << "compactor never re-saved a loadable snapshot";
  service.Shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdx
