#include "index/ivf.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "benchlib/datagen.h"
#include "core/searcher.h"
#include "index/flat.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

Dataset SmallDataset(uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.name = "ivf-test";
  spec.dim = 16;
  spec.count = 2000;
  spec.num_queries = 10;
  spec.num_clusters = 8;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(IvfTest, BucketsPartitionAllVectors) {
  Dataset dataset = SmallDataset();
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  std::set<VectorId> seen;
  size_t total = 0;
  for (size_t b = 0; b < index.num_buckets(); ++b) {
    for (VectorId id : index.bucket(b)) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      ++total;
    }
  }
  EXPECT_EQ(total, dataset.data.count());
  EXPECT_EQ(*seen.rbegin(), dataset.data.count() - 1);
}

TEST(IvfTest, AutoBucketCountIsSqrtN) {
  Dataset dataset = SmallDataset();
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  // sqrt(2000) ~ 44.7 -> 45.
  EXPECT_NEAR(static_cast<double>(index.num_buckets()), 44.7, 2.0);
}

TEST(IvfTest, ExplicitBucketCount) {
  Dataset dataset = SmallDataset();
  IvfOptions options;
  options.num_buckets = 10;
  IvfIndex index = IvfIndex::Build(dataset.data, options);
  EXPECT_EQ(index.num_buckets(), 10u);
}

TEST(IvfTest, MembersAreNearestToOwnCentroid) {
  Dataset dataset = SmallDataset();
  IvfOptions options;
  options.num_buckets = 12;
  IvfIndex index = IvfIndex::Build(dataset.data, options);
  for (size_t b = 0; b < index.num_buckets(); ++b) {
    for (VectorId id : index.bucket(b)) {
      const float own = ScalarL2(dataset.data.Vector(id),
                                 index.centroids().Vector(b), 16);
      for (size_t other = 0; other < index.num_buckets(); ++other) {
        const float d = ScalarL2(dataset.data.Vector(id),
                                 index.centroids().Vector(other), 16);
        ASSERT_GE(d + 1e-3f, own);
      }
    }
  }
}

TEST(IvfTest, RankBucketsAgreesWithNaryRanking) {
  Dataset dataset = SmallDataset();
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto pdx_rank = index.RankBuckets(query);
    const auto nary_rank = index.RankBucketsNary(query);
    ASSERT_EQ(pdx_rank.size(), nary_rank.size());
    // Same ordering (both deterministic with id tie-breaks); tiny float
    // disagreements can flip near-equal neighbors, so compare top half.
    for (size_t i = 0; i < pdx_rank.size() / 2; ++i) {
      ASSERT_EQ(pdx_rank[i], nary_rank[i]) << "query " << q << " pos " << i;
    }
  }
}

TEST(IvfTest, FullProbeEqualsBruteForce) {
  Dataset dataset = SmallDataset();
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  BucketOrderedSet ordered = ReorderByBuckets(dataset.data, index);
  for (size_t q = 0; q < 5; ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto brute = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto ivf_all = IvfNarySearch(index, ordered, query, 10,
                                       index.num_buckets());
    ASSERT_EQ(ivf_all.size(), brute.size());
    for (size_t i = 0; i < brute.size(); ++i) {
      ASSERT_EQ(ivf_all[i].id, brute[i].id) << "query " << q << " rank " << i;
    }
  }
}

TEST(IvfTest, ReorderByBucketsConsistent) {
  Dataset dataset = SmallDataset();
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  BucketOrderedSet ordered = ReorderByBuckets(dataset.data, index);
  EXPECT_EQ(ordered.vectors.count(), dataset.data.count());
  EXPECT_EQ(ordered.offsets.size(), index.num_buckets() + 1);
  EXPECT_EQ(ordered.offsets.back(), dataset.data.count());
  for (size_t b = 0; b < index.num_buckets(); ++b) {
    const auto& bucket = index.bucket(b);
    ASSERT_EQ(ordered.offsets[b + 1] - ordered.offsets[b], bucket.size());
    for (size_t j = 0; j < bucket.size(); ++j) {
      const size_t pos = ordered.offsets[b] + j;
      ASSERT_EQ(ordered.ids[pos], bucket[j]);
      // Row content matches the original vector.
      for (size_t d = 0; d < 16; ++d) {
        ASSERT_EQ(ordered.vectors.Vector(pos)[d],
                  dataset.data.Vector(bucket[j])[d]);
      }
    }
  }
}

TEST(IvfTest, MoreProbesNeverHurtRecallOfTrueNeighbor) {
  Dataset dataset = SmallDataset();
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  BucketOrderedSet ordered = ReorderByBuckets(dataset.data, index);
  const float* query = dataset.queries.Vector(0);
  const auto truth = FlatSearchNary(dataset.data, query, 1, Metric::kL2);

  bool found_before = false;
  for (size_t nprobe : {1u, 4u, 16u, 64u}) {
    const auto result = IvfNarySearch(index, ordered, query, 1,
                                      std::min<size_t>(nprobe,
                                                       index.num_buckets()));
    const bool found = !result.empty() && result[0].id == truth[0].id;
    // Once found at a small nprobe it must stay found at larger nprobe.
    if (found_before) ASSERT_TRUE(found);
    found_before = found_before || found;
  }
  EXPECT_TRUE(found_before);  // Full probe must find it.
}

}  // namespace
}  // namespace pdx
