#include "index/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"

namespace pdx {
namespace {

TEST(TopKTest, EmptyCollectorThreshold) {
  TopK topk(3);
  EXPECT_EQ(topk.size(), 0u);
  EXPECT_FALSE(topk.full());
  EXPECT_EQ(topk.threshold(), std::numeric_limits<float>::infinity());
  EXPECT_TRUE(topk.WouldAccept(1e30f));
}

TEST(TopKTest, FillsUpToK) {
  TopK topk(2);
  topk.Push(0, 5.0f);
  EXPECT_FALSE(topk.full());
  topk.Push(1, 3.0f);
  EXPECT_TRUE(topk.full());
  EXPECT_FLOAT_EQ(topk.threshold(), 5.0f);
}

TEST(TopKTest, RejectsWorseThanKth) {
  TopK topk(2);
  topk.Push(0, 1.0f);
  topk.Push(1, 2.0f);
  topk.Push(2, 3.0f);  // Worse than threshold: ignored.
  const auto results = topk.SortedResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 0u);
  EXPECT_EQ(results[1].id, 1u);
}

TEST(TopKTest, ReplacesWorst) {
  TopK topk(2);
  topk.Push(0, 10.0f);
  topk.Push(1, 20.0f);
  topk.Push(2, 5.0f);
  const auto results = topk.SortedResults();
  EXPECT_EQ(results[0].id, 2u);
  EXPECT_EQ(results[1].id, 0u);
  EXPECT_FLOAT_EQ(topk.threshold(), 10.0f);
}

TEST(TopKTest, SortedResultsAscending) {
  Rng rng(1);
  TopK topk(16);
  for (int i = 0; i < 100; ++i) {
    topk.Push(static_cast<VectorId>(i),
              static_cast<float>(rng.UniformDouble()));
  }
  const auto results = topk.SortedResults();
  ASSERT_EQ(results.size(), 16u);
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_LE(results[i - 1].distance, results[i].distance);
  }
}

TEST(TopKTest, MatchesPartialSortOracle) {
  Rng rng(2);
  const size_t n = 1000;
  const size_t k = 25;
  std::vector<Neighbor> all(n);
  TopK topk(k);
  for (size_t i = 0; i < n; ++i) {
    const float d = static_cast<float>(rng.Gaussian());
    all[i] = Neighbor{static_cast<VectorId>(i), d};
    topk.Push(static_cast<VectorId>(i), d);
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  all.resize(k);
  EXPECT_EQ(topk.SortedResults(), all);
}

TEST(TopKTest, FewerItemsThanK) {
  TopK topk(10);
  topk.Push(3, 1.0f);
  topk.Push(7, 0.5f);
  const auto results = topk.SortedResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 7u);
  EXPECT_FALSE(topk.full());
}

TEST(TopKTest, TiesBrokenById) {
  TopK topk(3);
  topk.Push(9, 1.0f);
  topk.Push(2, 1.0f);
  topk.Push(5, 1.0f);
  const auto results = topk.SortedResults();
  EXPECT_EQ(results[0].id, 2u);
  EXPECT_EQ(results[1].id, 5u);
  EXPECT_EQ(results[2].id, 9u);
}

TEST(TopKTest, ClearResets) {
  TopK topk(2);
  topk.Push(0, 1.0f);
  topk.Push(1, 2.0f);
  topk.Clear();
  EXPECT_EQ(topk.size(), 0u);
  EXPECT_EQ(topk.threshold(), std::numeric_limits<float>::infinity());
}

TEST(TopKTest, KOne) {
  TopK topk(1);
  topk.Push(0, 5.0f);
  topk.Push(1, 3.0f);
  topk.Push(2, 4.0f);
  const auto results = topk.SortedResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
}

}  // namespace
}  // namespace pdx
