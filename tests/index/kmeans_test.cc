#include "index/kmeans.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "common/random.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

// Three well-separated blobs in 2D.
VectorSet ThreeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(2, per_blob * 3);
  const float centers[3][2] = {{0, 0}, {50, 0}, {0, 50}};
  for (int blob = 0; blob < 3; ++blob) {
    for (size_t i = 0; i < per_blob; ++i) {
      const float row[2] = {
          centers[blob][0] + static_cast<float>(rng.Gaussian()),
          centers[blob][1] + static_cast<float>(rng.Gaussian())};
      set.Append(row);
    }
  }
  return set;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  VectorSet data = ThreeBlobs(100, 1);
  KMeansOptions options;
  options.num_clusters = 3;
  KMeansResult result = RunKMeans(data, options);

  // Each blob must map to a single distinct cluster.
  std::set<uint32_t> blob_clusters;
  for (int blob = 0; blob < 3; ++blob) {
    const uint32_t first = result.assignment[blob * 100];
    for (size_t i = 0; i < 100; ++i) {
      ASSERT_EQ(result.assignment[blob * 100 + i], first)
          << "blob " << blob << " item " << i;
    }
    blob_clusters.insert(first);
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
}

TEST(KMeansTest, AssignmentIsNearestCentroid) {
  VectorSet data = ThreeBlobs(50, 2);
  KMeansOptions options;
  options.num_clusters = 5;
  KMeansResult result = RunKMeans(data, options);
  for (size_t i = 0; i < data.count(); ++i) {
    const uint32_t assigned = result.assignment[i];
    const float assigned_d2 =
        ScalarL2(data.Vector(i), result.centroids.Vector(assigned), 2);
    for (size_t c = 0; c < 5; ++c) {
      const float d2 = ScalarL2(data.Vector(i), result.centroids.Vector(c), 2);
      ASSERT_GE(d2 + 1e-4f, assigned_d2)
          << "vector " << i << " closer to centroid " << c;
    }
  }
}

TEST(KMeansTest, ObjectiveMatchesAssignments) {
  VectorSet data = ThreeBlobs(30, 3);
  KMeansOptions options;
  options.num_clusters = 3;
  KMeansResult result = RunKMeans(data, options);
  double expected = 0.0;
  for (size_t i = 0; i < data.count(); ++i) {
    expected += ScalarL2(data.Vector(i),
                         result.centroids.Vector(result.assignment[i]), 2);
  }
  EXPECT_NEAR(result.objective, expected, 1e-2 * (1.0 + expected));
}

TEST(KMeansTest, DeterministicForSeed) {
  VectorSet data = ThreeBlobs(40, 4);
  KMeansOptions options;
  options.num_clusters = 4;
  options.seed = 99;
  KMeansResult a = RunKMeans(data, options);
  KMeansResult b = RunKMeans(data, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(KMeansTest, SingleCluster) {
  VectorSet data = ThreeBlobs(20, 5);
  KMeansOptions options;
  options.num_clusters = 1;
  KMeansResult result = RunKMeans(data, options);
  EXPECT_EQ(result.centroids.count(), 1u);
  for (uint32_t a : result.assignment) ASSERT_EQ(a, 0u);
  // Single centroid converges to the global mean.
  const auto means = data.DimensionMeans();
  EXPECT_NEAR(result.centroids.Vector(0)[0], means[0], 0.5f);
  EXPECT_NEAR(result.centroids.Vector(0)[1], means[1], 0.5f);
}

TEST(KMeansTest, KEqualsN) {
  VectorSet data(1);
  for (float v : {1.0f, 5.0f, 9.0f}) data.Append(&v);
  KMeansOptions options;
  options.num_clusters = 3;
  options.max_points_per_centroid = 0;  // Train on everything.
  KMeansResult result = RunKMeans(data, options);
  // Every point gets its own cluster; objective ~0.
  EXPECT_NEAR(result.objective, 0.0, 1e-6);
}

TEST(KMeansTest, KMeansPlusPlusBeatsOrMatchesRandomSeeding) {
  VectorSet data = ThreeBlobs(60, 6);
  KMeansOptions pp;
  pp.num_clusters = 3;
  pp.use_kmeans_pp = true;
  KMeansOptions random_seed = pp;
  random_seed.use_kmeans_pp = false;
  const double pp_objective = RunKMeans(data, pp).objective;
  const double random_objective = RunKMeans(data, random_seed).objective;
  // k-means++ should never be drastically worse on separated blobs.
  EXPECT_LE(pp_objective, random_objective * 1.5 + 1e-3);
}

TEST(KMeansTest, NearestCentroidHelper) {
  VectorSet centroids(2);
  const float c0[2] = {0, 0};
  const float c1[2] = {10, 10};
  centroids.Append(c0);
  centroids.Append(c1);
  const float q[2] = {9, 9};
  EXPECT_EQ(NearestCentroid(centroids, q), 1u);
}

TEST(KMeansTest, TrainingSampleCapStillCoversSpace) {
  VectorSet data = ThreeBlobs(200, 7);
  KMeansOptions options;
  options.num_clusters = 3;
  options.max_points_per_centroid = 20;  // Heavy subsampling.
  KMeansResult result = RunKMeans(data, options);
  // All three blobs still discovered.
  std::set<uint32_t> clusters(result.assignment.begin(),
                              result.assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
}

}  // namespace
}  // namespace pdx
