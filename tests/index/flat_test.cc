#include "index/flat.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "benchlib/datagen.h"
#include "storage/dsm_store.h"
#include "storage/pdx_store.h"

namespace pdx {
namespace {

Dataset SmallDataset(size_t dim, ValueDistribution distribution) {
  SyntheticSpec spec;
  spec.name = "flat-test";
  spec.dim = dim;
  spec.count = 1500;
  spec.num_queries = 8;
  spec.num_clusters = 6;
  spec.seed = 11 + dim;
  spec.distribution = distribution;
  return GenerateDataset(spec);
}

using FlatParam = std::tuple<Metric, size_t, ValueDistribution>;

class FlatSearchAgreementTest : public ::testing::TestWithParam<FlatParam> {};

// Every layout/kernel combination must return the same exact top-k.
TEST_P(FlatSearchAgreementTest, AllLayoutsAgree) {
  const auto [metric, dim, distribution] = GetParam();
  Dataset dataset = SmallDataset(dim, distribution);
  PdxStore pdx_store = PdxStore::FromVectorSet(dataset.data);
  PdxStore pdx_large = PdxStore::FromVectorSet(dataset.data, 500);
  DsmStore dsm_store = DsmStore::FromVectorSet(dataset.data);

  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto oracle = FlatSearchScalar(dataset.data, query, 10, metric);
    const auto nary = FlatSearchNary(dataset.data, query, 10, metric);
    const auto pdx = FlatSearchPdx(pdx_store, query, 10, metric);
    const auto pdx_big = FlatSearchPdx(pdx_large, query, 10, metric);
    const auto dsm = FlatSearchDsm(dsm_store, query, 10, metric);
    const auto gather = FlatSearchGather(dataset.data, query, 10, metric);

    ASSERT_EQ(oracle.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_EQ(nary[i].id, oracle[i].id) << "nary q" << q << " rank " << i;
      ASSERT_EQ(pdx[i].id, oracle[i].id) << "pdx q" << q << " rank " << i;
      ASSERT_EQ(pdx_big[i].id, oracle[i].id) << "pdx-large q" << q;
      ASSERT_EQ(dsm[i].id, oracle[i].id) << "dsm q" << q << " rank " << i;
      ASSERT_EQ(gather[i].id, oracle[i].id) << "gather q" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatSearchAgreementTest,
    ::testing::Combine(
        ::testing::Values(Metric::kL2, Metric::kIp, Metric::kL1),
        ::testing::Values(8, 33, 96),
        ::testing::Values(ValueDistribution::kNormal,
                          ValueDistribution::kSkewed)),
    [](const ::testing::TestParamInfo<FlatParam>& info) {
      return std::string(MetricName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_" +
             ValueDistributionName(std::get<2>(info.param));
    });

TEST(FlatSearchTest, KLargerThanCollection) {
  Dataset dataset = SmallDataset(8, ValueDistribution::kNormal);
  VectorSet tiny = dataset.data.Select({0, 1, 2});
  const auto result =
      FlatSearchNary(tiny, dataset.queries.Vector(0), 10, Metric::kL2);
  EXPECT_EQ(result.size(), 3u);
}

TEST(FlatSearchTest, IsaTiersAgree) {
  Dataset dataset = SmallDataset(64, ValueDistribution::kNormal);
  const float* query = dataset.queries.Vector(0);
  const auto scalar =
      FlatSearchNary(dataset.data, query, 10, Metric::kL2, Isa::kScalar);
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512, Isa::kBest}) {
    const auto result = FlatSearchNary(dataset.data, query, 10, Metric::kL2,
                                       isa);
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_EQ(result[i].id, scalar[i].id) << IsaName(isa) << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace pdx
