#include "quant/quantized_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "index/flat.h"
#include "kernels/scalar_kernels.h"
#include "quant/quantized_kernels.h"

namespace pdx {
namespace {

Dataset MakeDataset(size_t dim, ValueDistribution distribution,
                    uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "quant-test";
  spec.dim = dim;
  spec.count = 2000;
  spec.num_queries = 10;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = distribution;
  return GenerateDataset(spec);
}

TEST(QuantizedStoreTest, RoundTripWithinHalfStep) {
  Dataset dataset = MakeDataset(12, ValueDistribution::kNormal, 1);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  std::vector<float> restored(12);
  for (VectorId id = 0; id < 200; ++id) {
    store.Dequantize(id, restored.data());
    for (size_t d = 0; d < 12; ++d) {
      const float tolerance = store.scales()[d] * 0.5f + 1e-6f;
      ASSERT_NEAR(restored[d], dataset.data.Vector(id)[d], tolerance)
          << "vector " << id << " dim " << d;
    }
  }
}

TEST(QuantizedStoreTest, CodesCoverFullRangePerDimension) {
  Dataset dataset = MakeDataset(6, ValueDistribution::kSkewed, 2);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  // Min and max of every dimension land on codes 0 and 255 respectively,
  // so the whole budget is used.
  for (size_t d = 0; d < 6; ++d) {
    uint8_t lo = 255;
    uint8_t hi = 0;
    for (size_t b = 0; b < store.num_blocks(); ++b) {
      const uint8_t* codes = store.BlockData(b) + d * store.BlockCount(b);
      for (size_t i = 0; i < store.BlockCount(b); ++i) {
        lo = std::min(lo, codes[i]);
        hi = std::max(hi, codes[i]);
      }
    }
    EXPECT_EQ(lo, 0) << "dim " << d;
    EXPECT_EQ(hi, 255) << "dim " << d;
  }
}

TEST(QuantizedStoreTest, ConstantDimensionSafe) {
  VectorSet vectors(2);
  for (int i = 0; i < 10; ++i) {
    const float row[2] = {5.0f, float(i)};
    vectors.Append(row);
  }
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(vectors);
  std::vector<float> restored(2);
  store.Dequantize(3, restored.data());
  EXPECT_FLOAT_EQ(restored[0], 5.0f);
  EXPECT_NEAR(restored[1], 3.0f, 0.02f);
}

TEST(QuantizedKernelsTest, DistanceMatchesDequantizedReference) {
  Dataset dataset = MakeDataset(24, ValueDistribution::kNormal, 3);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const float* query = dataset.queries.Vector(0);

  std::vector<float> query_prime(24);
  std::vector<float> weights(24);
  store.TransformQuery(query, query_prime.data(), weights.data());
  std::vector<float> out(store.count());
  QuantizedPdxLinearScan(store, query_prime.data(), weights.data(),
                         out.data());

  std::vector<float> restored(24);
  for (VectorId id = 0; id < 100; ++id) {
    store.Dequantize(id, restored.data());
    const float expected = ScalarL2(query, restored.data(), 24);
    ASSERT_NEAR(out[id], expected, 1e-2f + 1e-3f * expected)
        << "vector " << id;
  }
}

TEST(QuantizedKernelsTest, QuantizedDistanceWithinErrorBound) {
  Dataset dataset = MakeDataset(16, ValueDistribution::kSkewed, 4);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  for (size_t q = 0; q < 3; ++q) {
    const float* query = dataset.queries.Vector(q);
    std::vector<float> query_prime(16);
    std::vector<float> weights(16);
    store.TransformQuery(query, query_prime.data(), weights.data());
    std::vector<float> out(store.count());
    QuantizedPdxLinearScan(store, query_prime.data(), weights.data(),
                           out.data());
    const double bound = store.MaxDistanceError(query);
    for (size_t i = 0; i < store.count(); ++i) {
      const float exact = ScalarL2(query, dataset.data.Vector(i), 16);
      ASSERT_LE(std::fabs(out[i] - exact), bound * (1.0 + 1e-3) + 1e-2)
          << "vector " << i;
    }
  }
}

using QuantSearchParam = std::tuple<size_t, ValueDistribution>;

class QuantizedSearchTest
    : public ::testing::TestWithParam<QuantSearchParam> {};

TEST_P(QuantizedSearchTest, RerankedSearchNearExactRecall) {
  const auto [dim, distribution] = GetParam();
  Dataset dataset = MakeDataset(dim, distribution, 50 + dim);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);

  double recall_sum = 0.0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto result = QuantizedFlatSearch(
        store, dataset.data, dataset.queries.Vector(q), 10,
        /*rerank_factor=*/4);
    recall_sum += RecallAtK(result, truth[q], 10);
  }
  EXPECT_GT(recall_sum / dataset.queries.count(), 0.97);
}

TEST_P(QuantizedSearchTest, UnrerankedStillDecent) {
  const auto [dim, distribution] = GetParam();
  Dataset dataset = MakeDataset(dim, distribution, 70 + dim);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);
  double recall_sum = 0.0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto result = QuantizedFlatSearch(
        store, dataset.data, dataset.queries.Vector(q), 10,
        /*rerank_factor=*/0);
    recall_sum += RecallAtK(result, truth[q], 10);
  }
  EXPECT_GT(recall_sum / dataset.queries.count(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantizedSearchTest,
    ::testing::Combine(::testing::Values(16, 64),
                       ::testing::Values(ValueDistribution::kNormal,
                                         ValueDistribution::kSkewed)),
    [](const ::testing::TestParamInfo<QuantSearchParam>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_" +
             ValueDistributionName(std::get<1>(info.param));
    });

TEST(QuantizedSearchTest, RerankFactorImprovesRecall) {
  Dataset dataset = MakeDataset(32, ValueDistribution::kNormal, 90);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);
  auto recall_at_factor = [&](size_t factor) {
    double sum = 0.0;
    for (size_t q = 0; q < dataset.queries.count(); ++q) {
      const auto result = QuantizedFlatSearch(
          store, dataset.data, dataset.queries.Vector(q), 10, factor);
      sum += RecallAtK(result, truth[q], 10);
    }
    return sum / dataset.queries.count();
  };
  EXPECT_GE(recall_at_factor(8) + 1e-9, recall_at_factor(1));
}

}  // namespace
}  // namespace pdx
