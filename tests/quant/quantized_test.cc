#include "quant/quantized_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "index/flat.h"
#include "kernels/scalar_kernels.h"
#include "quant/quantized_kernels.h"

namespace pdx {
namespace {

Dataset MakeDataset(size_t dim, ValueDistribution distribution,
                    uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "quant-test";
  spec.dim = dim;
  spec.count = 2000;
  spec.num_queries = 10;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = distribution;
  return GenerateDataset(spec);
}

TEST(QuantizedStoreTest, RoundTripWithinHalfStep) {
  Dataset dataset = MakeDataset(12, ValueDistribution::kNormal, 1);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  std::vector<float> restored(12);
  for (VectorId id = 0; id < 200; ++id) {
    store.Dequantize(id, restored.data());
    for (size_t d = 0; d < 12; ++d) {
      const float tolerance = store.scales()[d] * 0.5f + 1e-6f;
      ASSERT_NEAR(restored[d], dataset.data.Vector(id)[d], tolerance)
          << "vector " << id << " dim " << d;
    }
  }
}

TEST(QuantizedStoreTest, CodesCoverFullRangePerDimension) {
  Dataset dataset = MakeDataset(6, ValueDistribution::kSkewed, 2);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  // Min and max of every dimension land on codes 0 and 255 respectively,
  // so the whole budget is used.
  for (size_t d = 0; d < 6; ++d) {
    uint8_t lo = 255;
    uint8_t hi = 0;
    for (size_t b = 0; b < store.num_blocks(); ++b) {
      const uint8_t* codes = store.BlockData(b) + d * store.BlockCount(b);
      for (size_t i = 0; i < store.BlockCount(b); ++i) {
        lo = std::min(lo, codes[i]);
        hi = std::max(hi, codes[i]);
      }
    }
    EXPECT_EQ(lo, 0) << "dim " << d;
    EXPECT_EQ(hi, 255) << "dim " << d;
  }
}

TEST(QuantizedStoreTest, ConstantDimensionSafe) {
  VectorSet vectors(2);
  for (int i = 0; i < 10; ++i) {
    const float row[2] = {5.0f, float(i)};
    vectors.Append(row);
  }
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(vectors);
  std::vector<float> restored(2);
  store.Dequantize(3, restored.data());
  EXPECT_FLOAT_EQ(restored[0], 5.0f);
  EXPECT_NEAR(restored[1], 3.0f, 0.02f);
}

// Regression: a constant dimension used to floor the scale at 1e-30f,
// whose square (the code-space weight) underflows to 0.0f while the
// transformed query coordinate (q_d - offset_d) / scale_d blows up to
// ~1e30 — the kernel then computed 0 * inf = NaN, and one NaN poisons
// every distance in the block (NaN compares false, so the top-k heap
// ends up with garbage). This test fails pre-fix: every distance of the
// scan came back NaN whenever the query differed from the collection on
// the constant dimension.
TEST(QuantizedStoreTest, ConstantDimensionQueryOffsetNoNaN) {
  VectorSet vectors(2);
  for (int i = 0; i < 10; ++i) {
    const float row[2] = {5.0f, float(i)};
    vectors.Append(row);
  }
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(vectors);
  // Query differs from the collection on the constant dimension — the
  // exact case where q'_0 = (7 - 5) / scale_0 explodes as scale_0 -> 0.
  const float query[2] = {7.0f, 4.5f};
  std::vector<float> query_prime(2);
  std::vector<float> weights(2);
  store.TransformQuery(query, query_prime.data(), weights.data());
  std::vector<float> out(store.count());
  QuantizedPdxLinearScan(store, query_prime.data(), weights.data(),
                         out.data());
  for (size_t i = 0; i < store.count(); ++i) {
    ASSERT_FALSE(std::isnan(out[i])) << "vector " << i;
    ASSERT_TRUE(std::isfinite(out[i])) << "vector " << i;
  }
  // And the search over those distances still ranks by the varying
  // dimension: vector 4 (value 4.0) and 5 (value 5.0) are nearest to 4.5.
  auto result = QuantizedFlatSearch(store, vectors, query, 2,
                                    /*rerank_factor=*/0);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_TRUE(result.value()[0].id == 4 || result.value()[0].id == 5);
  EXPECT_TRUE(result.value()[1].id == 4 || result.value()[1].id == 5);
}

// A count/dim mismatch between the quantized store and the rerank rows
// must fail loudly with InvalidArgument — in an NDEBUG build the old
// assert-only guard compiled away and the rerank pass read out of bounds.
TEST(QuantizedSearchErrors, MismatchedOriginalsRejected) {
  Dataset dataset = MakeDataset(8, ValueDistribution::kNormal, 11);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);

  VectorSet short_set(8);
  for (VectorId id = 0; id < 5; ++id) {
    short_set.Append(dataset.data.Vector(id));
  }
  auto wrong_count = QuantizedFlatSearch(store, short_set,
                                         dataset.queries.Vector(0), 10, 4);
  ASSERT_FALSE(wrong_count.ok());
  EXPECT_TRUE(wrong_count.status().IsInvalidArgument());

  VectorSet wrong_dim_set(4);
  for (size_t i = 0; i < dataset.data.count(); ++i) {
    wrong_dim_set.Append(dataset.data.Vector(i));  // Truncated rows.
  }
  auto wrong_dim = QuantizedFlatSearch(store, wrong_dim_set,
                                       dataset.queries.Vector(0), 10, 4);
  ASSERT_FALSE(wrong_dim.ok());
  EXPECT_TRUE(wrong_dim.status().IsInvalidArgument());

  auto zero_k =
      QuantizedFlatSearch(store, dataset.data, dataset.queries.Vector(0), 0);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_TRUE(zero_k.status().IsInvalidArgument());
}

TEST(QuantizedKernelsTest, DistanceMatchesDequantizedReference) {
  Dataset dataset = MakeDataset(24, ValueDistribution::kNormal, 3);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const float* query = dataset.queries.Vector(0);

  std::vector<float> query_prime(24);
  std::vector<float> weights(24);
  store.TransformQuery(query, query_prime.data(), weights.data());
  std::vector<float> out(store.count());
  QuantizedPdxLinearScan(store, query_prime.data(), weights.data(),
                         out.data());

  std::vector<float> restored(24);
  for (VectorId id = 0; id < 100; ++id) {
    store.Dequantize(id, restored.data());
    const float expected = ScalarL2(query, restored.data(), 24);
    ASSERT_NEAR(out[id], expected, 1e-2f + 1e-3f * expected)
        << "vector " << id;
  }
}

TEST(QuantizedKernelsTest, QuantizedDistanceWithinErrorBound) {
  Dataset dataset = MakeDataset(16, ValueDistribution::kSkewed, 4);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  for (size_t q = 0; q < 3; ++q) {
    const float* query = dataset.queries.Vector(q);
    std::vector<float> query_prime(16);
    std::vector<float> weights(16);
    store.TransformQuery(query, query_prime.data(), weights.data());
    std::vector<float> out(store.count());
    QuantizedPdxLinearScan(store, query_prime.data(), weights.data(),
                           out.data());
    const double bound = store.MaxDistanceError(query);
    for (size_t i = 0; i < store.count(); ++i) {
      const float exact = ScalarL2(query, dataset.data.Vector(i), 16);
      ASSERT_LE(std::fabs(out[i] - exact), bound * (1.0 + 1e-3) + 1e-2)
          << "vector " << i;
    }
  }
}

using QuantSearchParam = std::tuple<size_t, ValueDistribution>;

class QuantizedSearchTest
    : public ::testing::TestWithParam<QuantSearchParam> {};

TEST_P(QuantizedSearchTest, RerankedSearchNearExactRecall) {
  const auto [dim, distribution] = GetParam();
  Dataset dataset = MakeDataset(dim, distribution, 50 + dim);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);

  double recall_sum = 0.0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto result = QuantizedFlatSearch(
        store, dataset.data, dataset.queries.Vector(q), 10,
        /*rerank_factor=*/4);
    ASSERT_TRUE(result.ok()) << result.status().message();
    recall_sum += RecallAtK(result.value(), truth[q], 10);
  }
  EXPECT_GT(recall_sum / dataset.queries.count(), 0.97);
}

TEST_P(QuantizedSearchTest, RerankFactorTwoStillHitsRecallTarget) {
  const auto [dim, distribution] = GetParam();
  Dataset dataset = MakeDataset(dim, distribution, 130 + dim);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);
  double recall_sum = 0.0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto result = QuantizedFlatSearch(
        store, dataset.data, dataset.queries.Vector(q), 10,
        /*rerank_factor=*/2);
    ASSERT_TRUE(result.ok()) << result.status().message();
    recall_sum += RecallAtK(result.value(), truth[q], 10);
  }
  EXPECT_GT(recall_sum / dataset.queries.count(), 0.95);
}

TEST_P(QuantizedSearchTest, UnrerankedStillDecent) {
  const auto [dim, distribution] = GetParam();
  Dataset dataset = MakeDataset(dim, distribution, 70 + dim);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);
  double recall_sum = 0.0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto result = QuantizedFlatSearch(
        store, dataset.data, dataset.queries.Vector(q), 10,
        /*rerank_factor=*/0);
    ASSERT_TRUE(result.ok()) << result.status().message();
    recall_sum += RecallAtK(result.value(), truth[q], 10);
  }
  EXPECT_GT(recall_sum / dataset.queries.count(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantizedSearchTest,
    ::testing::Combine(::testing::Values(16, 64),
                       ::testing::Values(ValueDistribution::kNormal,
                                         ValueDistribution::kSkewed)),
    [](const ::testing::TestParamInfo<QuantSearchParam>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_" +
             ValueDistributionName(std::get<1>(info.param));
    });

TEST(QuantizedSearchTest, RerankFactorImprovesRecall) {
  Dataset dataset = MakeDataset(32, ValueDistribution::kNormal, 90);
  QuantizedPdxStore store = QuantizedPdxStore::FromVectorSet(dataset.data);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);
  auto recall_at_factor = [&](size_t factor) {
    double sum = 0.0;
    for (size_t q = 0; q < dataset.queries.count(); ++q) {
      const auto result = QuantizedFlatSearch(
          store, dataset.data, dataset.queries.Vector(q), 10, factor);
      EXPECT_TRUE(result.ok()) << result.status().message();
      sum += RecallAtK(result.value(), truth[q], 10);
    }
    return sum / dataset.queries.count();
  };
  EXPECT_GE(recall_at_factor(8) + 1e-9, recall_at_factor(1));
}

}  // namespace
}  // namespace pdx
