// Cross-tier parity of the quantized (u8) vertical kernel.
//
// quant_accumulate is an auto-vectorized template compiled per ISA tier
// with -ffp-contract=off, exactly like the float PdxAccumulate* family:
// per-lane accumulation order is identical across tiers by construction
// (SIMD vectorizes across lanes) and contraction is pinned off, so every
// tier must be BIT-EXACT against the scalar tier — a quantized searcher
// gives byte-identical answers whatever tier dispatch picks.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "kernels/kernel_dispatch.h"

namespace pdx {
namespace {

std::vector<float> RandomFloats(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(count);
  for (float& v : values) v = static_cast<float>(rng.Gaussian());
  return values;
}

std::vector<uint8_t> RandomCodes(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> codes(count);
  for (uint8_t& c : codes) {
    c = static_cast<uint8_t>(rng.UniformInt(256));
  }
  return codes;
}

std::vector<Isa> VectorTiers() {
  std::vector<Isa> tiers;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (IsaAvailable(isa)) tiers.push_back(isa);
  }
  return tiers;
}

TEST(QuantTierParityTest, EveryTierCarriesTheQuantKernel) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kBest}) {
    EXPECT_NE(GetKernelTable(isa).quant_accumulate, nullptr) << IsaName(isa);
  }
}

// Lane counts straddle the SIMD widths (8 floats AVX2, 16 AVX-512):
// remainders, exact multiples, and the full PDX block.
class QuantTierParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(QuantTierParityTest, BitExactAcrossTiersIncludingPartialRanges) {
  const size_t n = GetParam();
  const size_t dim = 96;
  const std::vector<uint8_t> block = RandomCodes(n * dim, 100 + n);
  const std::vector<float> query_prime = RandomFloats(dim, 200 + n);
  std::vector<float> weights = RandomFloats(dim, 300 + n);
  for (float& w : weights) w = w * w;  // Weights are scale^2 — nonnegative.

  // Partial dimension ranges exercise the d_start/d_end stepping the
  // PDXearch loop drives (not just whole-vector scans).
  const size_t ranges[][2] = {{0, dim}, {0, 17}, {17, 63}, {63, dim}};
  for (const auto& range : ranges) {
    std::vector<float> expected(n, 1.5f);  // Accumulates ON TOP of seed.
    GetKernelTable(Isa::kScalar)
        .quant_accumulate(query_prime.data(), weights.data(), block.data(),
                          n, range[0], range[1], expected.data());
    for (Isa isa : VectorTiers()) {
      std::vector<float> actual(n, 1.5f);
      GetKernelTable(isa).quant_accumulate(query_prime.data(),
                                           weights.data(), block.data(), n,
                                           range[0], range[1], actual.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(actual[i], expected[i])
            << IsaName(isa) << " lane " << i << " dims [" << range[0] << ", "
            << range[1] << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, QuantTierParityTest,
                         ::testing::Values(1, 7, 8, 16, 33, 57, 64, 1024));

}  // namespace
}  // namespace pdx
