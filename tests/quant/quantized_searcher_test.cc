// Facade-level tests of the quantized serving tier: SearcherConfig with
// quantization = kU8 routed through MakeSearcher / MakeShardedSearcher,
// the exact-rerank recall contract, batch parity, the rerank_candidates
// counter, the resident-bytes accounting, and the PDXC save -> load round
// trip with zero requantization work.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "core/any_searcher.h"
#include "core/persist.h"
#include "core/sharded_searcher.h"
#include "obs/search_counters.h"
#include "quant/quantized_store.h"

namespace pdx {
namespace {

Dataset MakeData(size_t dim = 32, size_t count = 2000, size_t num_queries = 20,
                 uint64_t seed = 42) {
  SyntheticSpec spec;
  spec.name = "quant-searcher-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

SearcherConfig QuantConfig(SearcherLayout layout, size_t rerank_factor,
                           size_t k = 10) {
  SearcherConfig config;
  config.layout = layout;
  config.quantization = QuantizationKind::kU8;
  config.rerank_factor = rerank_factor;
  config.k = k;
  config.nprobe = 4;
  return config;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// The ISSUE acceptance bar: at rerank_factor = 4 the u8 tier recovers at
// least 0.95 of the exact tier's recall on a flat collection (where the
// exact tier IS the ground truth).
TEST(QuantizedSearcherTest, FlatRerankRecallMeetsAcceptanceBar) {
  Dataset data = MakeData();
  const size_t k = 10;
  auto made = MakeSearcher(data.data, QuantConfig(SearcherLayout::kFlat, 4));
  ASSERT_TRUE(made.ok()) << made.status().message();
  std::unique_ptr<Searcher> searcher = std::move(made).value();

  const auto truth = ComputeGroundTruth(data.data, data.queries, k);
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < data.queries.count(); ++q) {
    results.push_back(searcher->Search(data.queries.Vector(q)));
  }
  EXPECT_GE(MeanRecallAtK(results, truth, k), 0.95);
}

// IVF routing composes with quantization: both searchers visit the same
// nprobe buckets of the facade-built index, so the reranked u8 results
// must track the float IVF results closely.
TEST(QuantizedSearcherTest, IvfQuantizedTracksFloatIvf) {
  Dataset data = MakeData();
  const size_t k = 10;
  SearcherConfig float_config;
  float_config.layout = SearcherLayout::kIvf;
  float_config.pruner = PrunerKind::kLinear;
  float_config.k = k;
  float_config.nprobe = 4;
  // Same seed-deterministic k-means on identical input: the two facades
  // build identical bucket lists, so the candidate sets match.
  auto exact = MakeSearcher(data.data, float_config);
  ASSERT_TRUE(exact.ok()) << exact.status().message();
  auto quant = MakeSearcher(data.data, QuantConfig(SearcherLayout::kIvf, 4));
  ASSERT_TRUE(quant.ok()) << quant.status().message();

  double recall_sum = 0.0;
  for (size_t q = 0; q < data.queries.count(); ++q) {
    const float* query = data.queries.Vector(q);
    const std::vector<Neighbor> reference = exact.value()->Search(query);
    std::vector<VectorId> reference_ids;
    for (const Neighbor& n : reference) reference_ids.push_back(n.id);
    recall_sum +=
        RecallAtK(quant.value()->Search(query), reference_ids, k);
  }
  EXPECT_GE(recall_sum / data.queries.count(), 0.95);
}

// SearchBatch must reproduce sequential Search result-for-result — the
// facade's batch-parity guarantee holds on the quantized tier too.
TEST(QuantizedSearcherTest, BatchMatchesSequential) {
  Dataset data = MakeData(24, 1200, 12, 7);
  auto made = MakeSearcher(data.data, QuantConfig(SearcherLayout::kFlat, 4));
  ASSERT_TRUE(made.ok()) << made.status().message();
  std::unique_ptr<Searcher> searcher = std::move(made).value();

  const std::vector<std::vector<Neighbor>> batched =
      searcher->SearchBatch(data.queries.data(), data.queries.count());
  ASSERT_EQ(batched.size(), data.queries.count());
  for (size_t q = 0; q < data.queries.count(); ++q) {
    const std::vector<Neighbor> sequential =
        searcher->Search(data.queries.Vector(q));
    ASSERT_EQ(batched[q].size(), sequential.size()) << "query " << q;
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, sequential[i].id)
          << "query " << q << " rank " << i;
      EXPECT_EQ(batched[q][i].distance, sequential[i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

// The knob-explicit surface reports how many candidates the exact rerank
// touched: k * rerank_factor when the collection is big enough, and zero
// with rerank disabled (raw quantized distances are served).
TEST(QuantizedSearcherTest, RerankCandidatesCounterSurfaces) {
  Dataset data = MakeData(16, 800, 4, 13);
  const size_t k = 10;
  const size_t rerank_factor = 4;
  auto made =
      MakeSearcher(data.data, QuantConfig(SearcherLayout::kFlat,
                                          rerank_factor, k));
  ASSERT_TRUE(made.ok()) << made.status().message();
  std::unique_ptr<Searcher> searcher = std::move(made).value();
  searcher->ReserveScratch(1);

  std::vector<SearchCounters> counters(data.queries.count());
  (void)searcher->SearchBatchWith(0, QueryKnobs{}, data.queries.data(),
                                  data.queries.count(), nullptr,
                                  counters.data());
  for (size_t q = 0; q < counters.size(); ++q) {
    EXPECT_EQ(counters[q].rerank_candidates, k * rerank_factor)
        << "query " << q;
  }

  auto raw = MakeSearcher(data.data,
                          QuantConfig(SearcherLayout::kFlat, 0, k));
  ASSERT_TRUE(raw.ok()) << raw.status().message();
  raw.value()->ReserveScratch(1);
  std::vector<SearchCounters> raw_counters(data.queries.count());
  (void)raw.value()->SearchBatchWith(0, QueryKnobs{}, data.queries.data(),
                                     data.queries.count(), nullptr,
                                     raw_counters.data());
  for (size_t q = 0; q < raw_counters.size(); ++q) {
    EXPECT_EQ(raw_counters[q].rerank_candidates, 0u) << "query " << q;
  }
}

// The compressed footprint is one byte per value: quantized_bytes() ==
// count * dim, a quarter of the float arena — and the float tier reports
// zero.
TEST(QuantizedSearcherTest, QuantizedBytesIsOneBytePerValue) {
  Dataset data = MakeData(16, 700, 2, 5);
  auto quant =
      MakeSearcher(data.data, QuantConfig(SearcherLayout::kFlat, 4));
  ASSERT_TRUE(quant.ok()) << quant.status().message();
  EXPECT_EQ(quant.value()->quantized_bytes(),
            data.data.count() * data.data.dim());

  SearcherConfig float_config;
  float_config.k = 10;
  auto exact = MakeSearcher(data.data, float_config);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value()->quantized_bytes(), 0u);
}

// Sharded composition: quantized shards behind MakeShardedSearcher serve
// one exact global top-k merge with the same recall bar, and the facade
// sums the per-shard code bytes.
TEST(QuantizedSearcherTest, ShardedQuantizedComposes) {
  Dataset data = MakeData();
  const size_t k = 10;
  ShardingOptions sharding;
  sharding.num_shards = 3;
  auto made = MakeShardedSearcher(
      data.data, QuantConfig(SearcherLayout::kFlat, 4), sharding);
  ASSERT_TRUE(made.ok()) << made.status().message();
  std::unique_ptr<Searcher> searcher = std::move(made).value();
  EXPECT_EQ(searcher->num_shards(), 3u);
  EXPECT_EQ(searcher->dim(), data.data.dim());
  EXPECT_EQ(searcher->quantized_bytes(),
            data.data.count() * data.data.dim());

  const auto truth = ComputeGroundTruth(data.data, data.queries, k);
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < data.queries.count(); ++q) {
    results.push_back(searcher->Search(data.queries.Vector(q)));
  }
  EXPECT_GE(MeanRecallAtK(results, truth, k), 0.95);
}

// Save -> load round trip: the loaded searcher restores the SAME codes
// and parameters (byte-identical results), the config survives
// (quantization + rerank_factor), and loading runs ZERO requantization —
// the codes are views into the image, never re-derived.
TEST(QuantizedSearcherTest, SaveLoadRoundTripWithZeroRequantization) {
  Dataset data = MakeData(24, 1500, 6, 99);
  for (SearcherLayout layout :
       {SearcherLayout::kFlat, SearcherLayout::kIvf}) {
    const std::string label =
        layout == SearcherLayout::kFlat ? "flat" : "ivf";
    auto built = MakeSearcher(data.data, QuantConfig(layout, 4));
    ASSERT_TRUE(built.ok()) << label << ": " << built.status().message();
    std::unique_ptr<Searcher> searcher = std::move(built).value();

    const std::string path = TempPath("quant_roundtrip.pdxc");
    ASSERT_TRUE(searcher->Save(path).ok()) << label;

    for (bool allow_mmap : {true, false}) {
      const uint64_t packs_before = QuantizedPackCount();
      LoadOptions options;
      options.allow_mmap = allow_mmap;
      auto loaded = LoadCollection(path, options);
      ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.status().message();
      EXPECT_EQ(QuantizedPackCount(), packs_before)
          << label << ": loading must not requantize";
      EXPECT_EQ(loaded.value().config.quantization, QuantizationKind::kU8)
          << label;
      EXPECT_EQ(loaded.value().config.rerank_factor, 4u) << label;
      EXPECT_EQ(loaded.value().searcher->quantized_bytes(),
                data.data.count() * data.data.dim())
          << label;
      for (size_t q = 0; q < data.queries.count(); ++q) {
        const float* query = data.queries.Vector(q);
        const std::vector<Neighbor> expect = searcher->Search(query);
        const std::vector<Neighbor> got =
            loaded.value().searcher->Search(query);
        ASSERT_EQ(got.size(), expect.size()) << label << " query " << q;
        for (size_t i = 0; i < expect.size(); ++i) {
          EXPECT_EQ(got[i].id, expect[i].id)
              << label << " query " << q << " rank " << i;
          EXPECT_EQ(got[i].distance, expect[i].distance)
              << label << " query " << q << " rank " << i;
        }
      }
    }
    std::remove(path.c_str());
  }
}

// Config validation at the facade: the u8 tier is L2-only and composes
// with the linear pruner only — everything else is an explicit
// kUnsupported, not a silent wrong answer.
TEST(QuantizedSearcherTest, RejectsUnsupportedCombinations) {
  Dataset data = MakeData(8, 200, 1, 3);
  SearcherConfig config = QuantConfig(SearcherLayout::kFlat, 4);
  config.metric = Metric::kIp;
  auto wrong_metric = MakeSearcher(data.data, config);
  ASSERT_FALSE(wrong_metric.ok());
  EXPECT_TRUE(wrong_metric.status().IsUnsupported());

  config = QuantConfig(SearcherLayout::kFlat, 4);
  config.pruner = PrunerKind::kAdsampling;
  auto wrong_pruner = MakeSearcher(data.data, config);
  ASSERT_FALSE(wrong_pruner.ok());
  EXPECT_TRUE(wrong_pruner.status().IsUnsupported());
}

}  // namespace
}  // namespace pdx
