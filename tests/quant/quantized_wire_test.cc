// The quantized serving tier over the wire: PUT a collection with
// "quantization": "u8" and a rerank factor, search it over a real socket,
// and check the acceptance bar — recall >= 0.95 of the exact tier — plus
// the observable surface: info/stats carry the tier fields, mutations are
// 501 (the u8 tier is immutable), and /metrics exposes
// pdx_quantized_bytes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "core/any_searcher.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

Dataset MakeData(size_t dim = 16, size_t count = 1200, size_t num_queries = 10,
                 uint64_t seed = 321) {
  SyntheticSpec spec;
  spec.name = "quant-wire-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

struct WireStack {
  WireStack() : service(ServiceConfig{}), handler(service), server() {
    Status started = server.Start(handler.AsHttpHandler());
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~WireStack() { server.Stop(); }

  HttpClient NewClient() {
    HttpClient client;
    Status connected = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    return client;
  }

  SearchService service;
  SearchHandler handler;
  HttpServer server;
};

JsonValue VectorsJson(const VectorSet& vectors) {
  JsonValue rows = JsonValue::Array();
  for (size_t i = 0; i < vectors.count(); ++i) {
    JsonValue row = JsonValue::Array();
    const float* v = vectors.Vector(static_cast<VectorId>(i));
    for (size_t d = 0; d < vectors.dim(); ++d) {
      row.Append(static_cast<double>(v[d]));
    }
    rows.Append(std::move(row));
  }
  return rows;
}

JsonValue MustParseBody(const HttpResponse& response) {
  Result<JsonValue> parsed = ParseJson(response.body);
  EXPECT_TRUE(parsed.ok()) << response.body;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

TEST(QuantizedWireTest, U8CollectionServesWithRerankRecall) {
  Dataset data = MakeData();
  const size_t k = 10;
  WireStack stack;
  HttpClient client = stack.NewClient();

  // PUT: a u8 collection with rerank_factor 4.
  JsonValue put = JsonValue::Object();
  put.Set("vectors", VectorsJson(data.data));
  put.Set("layout", "flat");
  put.Set("quantization", "u8");
  put.Set("rerank_factor", static_cast<size_t>(4));
  put.Set("k", k);
  Result<HttpResponse> created =
      client.Roundtrip("PUT", "/collections/q", WriteJson(put));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created.value().status, 201) << created.value().body;
  {
    const JsonValue info = MustParseBody(created.value());
    EXPECT_EQ(info.Find("quantization")->AsString(), "u8");
    EXPECT_EQ(info.Find("rerank_factor")->AsNumber(), 4.0);
    // The compressed footprint: one byte per value, ~4x under the floats.
    EXPECT_EQ(info.Find("quantized_bytes")->AsNumber(),
              static_cast<double>(data.data.count() * data.data.dim()));
  }

  // Search every query over the wire; the exact tier (ground truth) is
  // computed in process on the same floats (the JSON float round trip is
  // identity).
  const auto truth = ComputeGroundTruth(data.data, data.queries, k);
  double recall_sum = 0.0;
  for (size_t q = 0; q < data.queries.count(); ++q) {
    const float* query = data.queries.Vector(static_cast<VectorId>(q));
    JsonValue request = JsonValue::Object();
    JsonValue values = JsonValue::Array();
    for (size_t d = 0; d < data.queries.dim(); ++d) {
      values.Append(static_cast<double>(query[d]));
    }
    request.Set("query", std::move(values));
    Result<HttpResponse> response = client.Roundtrip(
        "POST", "/collections/q/search", WriteJson(request));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().status, 200) << response.value().body;
    const JsonValue body = MustParseBody(response.value());
    const JsonValue* neighbors = body.Find("neighbors");
    ASSERT_NE(neighbors, nullptr);
    std::vector<Neighbor> result;
    for (const JsonValue& hit : neighbors->items()) {
      result.push_back(
          {static_cast<VectorId>(hit.Find("id")->AsNumber()),
           static_cast<float>(hit.Find("distance")->AsNumber())});
    }
    recall_sum += RecallAtK(result, truth[q], k);
  }
  EXPECT_GE(recall_sum / data.queries.count(), 0.95);

  // Stats surface the tier: quantization, rerank accounting, code bytes.
  Result<HttpResponse> stats = client.Roundtrip("GET", "/stats", "");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().status, 200);
  {
    const JsonValue body = MustParseBody(stats.value());
    const JsonValue* entry = body.Find("collections")->Find("q");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->Find("quantization")->AsString(), "u8");
    EXPECT_EQ(entry->Find("rerank_factor")->AsNumber(), 4.0);
    EXPECT_EQ(entry->Find("quantized_bytes")->AsNumber(),
              static_cast<double>(data.data.count() * data.data.dim()));
    // Every served query reranked k * rerank_factor candidates.
    EXPECT_EQ(entry->Find("rerank_candidates")->AsNumber(),
              static_cast<double>(data.queries.count() * k * 4));
    EXPECT_FALSE(entry->Find("mutable")->AsBool());
  }

  // The u8 tier is immutable: streaming ingest answers 501.
  Result<HttpResponse> ingest = client.Roundtrip(
      "POST", "/collections/q/vectors",
      "{\"vectors\": [[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, "
      "9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0]]}");
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(ingest.value().status, 501) << ingest.value().body;

  // The gauge reaches Prometheus.
  Result<HttpResponse> metrics = client.Roundtrip("GET", "/metrics", "");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().body.find("pdx_quantized_bytes"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("pdx_search_rerank_candidates_total"),
            std::string::npos);
}

TEST(QuantizedWireTest, UnknownQuantizationRejectedWith400) {
  Dataset data = MakeData(8, 64, 1, 9);
  WireStack stack;
  HttpClient client = stack.NewClient();
  JsonValue put = JsonValue::Object();
  put.Set("vectors", VectorsJson(data.data));
  put.Set("quantization", "u4");
  Result<HttpResponse> response =
      client.Roundtrip("PUT", "/collections/bad", WriteJson(put));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400) << response.value().body;
}

}  // namespace
}  // namespace pdx
