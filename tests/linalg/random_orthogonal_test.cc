#include "linalg/random_orthogonal.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

class RandomOrthogonalTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RandomOrthogonalTest, IsOrthogonal) {
  Rng rng(42);
  Matrix q = RandomOrthogonalMatrix(GetParam(), rng);
  EXPECT_LT(q.OrthogonalityError(), 1e-4);
}

TEST_P(RandomOrthogonalTest, PreservesDistances) {
  const size_t dim = GetParam();
  Rng rng(43);
  Matrix q = RandomOrthogonalMatrix(dim, rng);

  std::vector<float> a(dim);
  std::vector<float> b(dim);
  for (size_t d = 0; d < dim; ++d) {
    a[d] = static_cast<float>(rng.Gaussian());
    b[d] = static_cast<float>(rng.Gaussian());
  }
  std::vector<float> qa(dim);
  std::vector<float> qb(dim);
  q.Apply(a.data(), qa.data());
  q.Apply(b.data(), qb.data());

  const float original = ScalarL2(a.data(), b.data(), dim);
  const float rotated = ScalarL2(qa.data(), qb.data(), dim);
  EXPECT_NEAR(rotated, original, 1e-3 + 1e-4 * original);
}

INSTANTIATE_TEST_SUITE_P(Dims, RandomOrthogonalTest,
                         ::testing::Values(2, 8, 16, 50, 96));

TEST(RandomOrthogonalTest, DeterministicPerSeed) {
  Rng rng1(7);
  Rng rng2(7);
  Matrix a = RandomOrthogonalMatrix(12, rng1);
  Matrix b = RandomOrthogonalMatrix(12, rng2);
  EXPECT_DOUBLE_EQ(a.FrobeniusDistance(b), 0.0);
}

TEST(RandomOrthogonalTest, DifferentSeedsDiffer) {
  Rng rng1(7);
  Rng rng2(8);
  Matrix a = RandomOrthogonalMatrix(12, rng1);
  Matrix b = RandomOrthogonalMatrix(12, rng2);
  EXPECT_GT(a.FrobeniusDistance(b), 0.1);
}

TEST(RandomOrthogonalTest, RotationMixesCoordinates) {
  // The whole point of ADSampling's rotation: a vector concentrated on one
  // coordinate gets spread across all of them.
  const size_t dim = 64;
  Rng rng(11);
  Matrix q = RandomOrthogonalMatrix(dim, rng);
  std::vector<float> basis(dim, 0.0f);
  basis[0] = 1.0f;
  std::vector<float> rotated(dim);
  q.Apply(basis.data(), rotated.data());
  // Max |component| of a random unit vector in R^64 is far below 1.
  float max_abs = 0.0f;
  for (float v : rotated) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LT(max_abs, 0.9f);
  EXPECT_NEAR(ScalarL2(rotated.data(), std::vector<float>(dim, 0.0f).data(),
                       dim),
              1.0f, 1e-3);
}

}  // namespace
}  // namespace pdx
