#include "linalg/eigen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"

namespace pdx {
namespace {

Matrix RandomSymmetric(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = r; c < n; ++c) {
      const float v = static_cast<float>(rng.Gaussian());
      m.At(r, c) = v;
      m.At(c, r) = v;
    }
  }
  return m;
}

// Residual ||A v - lambda v|| for every eigenpair.
double MaxEigenResidual(const Matrix& a, const EigenDecomposition& eig) {
  const size_t n = a.rows();
  double worst = 0.0;
  for (size_t j = 0; j < n; ++j) {
    double residual = 0.0;
    for (size_t r = 0; r < n; ++r) {
      double av = 0.0;
      for (size_t c = 0; c < n; ++c) {
        av += double(a.At(r, c)) * double(eig.eigenvectors.At(c, j));
      }
      const double diff =
          av - double(eig.eigenvalues[j]) * double(eig.eigenvectors.At(r, j));
      residual += diff * diff;
    }
    worst = std::max(worst, std::sqrt(residual));
  }
  return worst;
}

class EigenSolverTest
    : public ::testing::TestWithParam<std::tuple<size_t, bool>> {};

TEST_P(EigenSolverTest, SatisfiesEigenEquation) {
  const auto [n, use_jacobi] = GetParam();
  Matrix a = RandomSymmetric(n, 100 + n);
  EigenDecomposition eig =
      use_jacobi ? JacobiEigenSymmetric(a) : TridiagonalEigenSymmetric(a);
  EXPECT_LT(MaxEigenResidual(a, eig), 5e-4 * double(n));
}

TEST_P(EigenSolverTest, EigenvaluesDescending) {
  const auto [n, use_jacobi] = GetParam();
  Matrix a = RandomSymmetric(n, 200 + n);
  EigenDecomposition eig =
      use_jacobi ? JacobiEigenSymmetric(a) : TridiagonalEigenSymmetric(a);
  for (size_t i = 1; i < n; ++i) {
    ASSERT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
  }
}

TEST_P(EigenSolverTest, EigenvectorsOrthonormal) {
  const auto [n, use_jacobi] = GetParam();
  Matrix a = RandomSymmetric(n, 300 + n);
  EigenDecomposition eig =
      use_jacobi ? JacobiEigenSymmetric(a) : TridiagonalEigenSymmetric(a);
  EXPECT_LT(eig.eigenvectors.OrthogonalityError(), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EigenSolverTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 16, 40),
                       ::testing::Bool()));

TEST(EigenSolverTest, SolversAgreeOnEigenvalues) {
  Matrix a = RandomSymmetric(24, 7);
  EigenDecomposition jacobi = JacobiEigenSymmetric(a);
  EigenDecomposition tri = TridiagonalEigenSymmetric(a);
  for (size_t i = 0; i < 24; ++i) {
    ASSERT_NEAR(jacobi.eigenvalues[i], tri.eigenvalues[i], 1e-3)
        << "eigenvalue " << i;
  }
}

TEST(EigenSolverTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a.At(0, 0) = 1.0f;
  a.At(1, 1) = 5.0f;
  a.At(2, 2) = 3.0f;
  EigenDecomposition eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 5.0f, 1e-5);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0f, 1e-5);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0f, 1e-5);
}

TEST(EigenSolverTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 2;
  EigenDecomposition eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0f, 1e-5);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0f, 1e-5);
}

TEST(EigenSolverTest, PsdMatrixNonNegativeEigenvalues) {
  // B^T B is positive semi-definite.
  Rng rng(9);
  Matrix b(10, 6);
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      b.At(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  Matrix a = b.Transposed().Multiply(b);
  EigenDecomposition eig = SymmetricEigen(a);
  for (float value : eig.eigenvalues) EXPECT_GE(value, -1e-3);
}

}  // namespace
}  // namespace pdx
