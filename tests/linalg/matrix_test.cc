#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace pdx {
namespace {

TEST(MatrixTest, ConstructsZeroed) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) ASSERT_EQ(m.At(r, c), 0.0f);
  }
}

TEST(MatrixTest, IdentityDiagonal) {
  Matrix id = Matrix::Identity(5);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      ASSERT_EQ(id.At(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix m(2, 3);
  float v = 1.0f;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = v++;
  }
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) ASSERT_EQ(t.At(c, r), m.At(r, c));
  }
  Matrix back = t.Transposed();
  EXPECT_DOUBLE_EQ(back.FrobeniusDistance(m), 0.0);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  Matrix b(2, 2);
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  Matrix c = a.Multiply(b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 50.0f);
}

TEST(MatrixTest, MultiplyByIdentity) {
  Rng rng(1);
  Matrix m(4, 4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      m.At(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  Matrix out = m.Multiply(Matrix::Identity(4));
  EXPECT_LT(out.FrobeniusDistance(m), 1e-6);
}

TEST(MatrixTest, ApplyMatVec) {
  Matrix m(2, 3);
  // Row 0 = [1 0 2], row 1 = [0 3 0].
  m.At(0, 0) = 1;
  m.At(0, 2) = 2;
  m.At(1, 1) = 3;
  const std::vector<float> x = {10.0f, 20.0f, 30.0f};
  const std::vector<float> y = m.Apply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_FLOAT_EQ(y[0], 70.0f);
  EXPECT_FLOAT_EQ(y[1], 60.0f);
}

TEST(MatrixTest, OrthogonalityErrorOfIdentity) {
  EXPECT_LT(Matrix::Identity(8).OrthogonalityError(), 1e-7);
}

TEST(MatrixTest, OrthogonalityErrorDetectsScaling) {
  Matrix m = Matrix::Identity(4);
  m.At(0, 0) = 2.0f;  // Column norm becomes 2.
  EXPECT_NEAR(m.OrthogonalityError(), 3.0, 1e-6);
}

TEST(MatrixTest, ProjectBatchMatchesApply) {
  Rng rng(2);
  const size_t in_dim = 17;
  const size_t out_dim = 9;
  const size_t count = 23;
  Matrix proj(out_dim, in_dim);
  for (size_t r = 0; r < out_dim; ++r) {
    for (size_t c = 0; c < in_dim; ++c) {
      proj.At(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  std::vector<float> data(count * in_dim);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());

  std::vector<float> batch(count * out_dim);
  ProjectBatch(proj, data.data(), count, batch.data());

  std::vector<float> row_out(out_dim);
  for (size_t i = 0; i < count; ++i) {
    proj.Apply(data.data() + i * in_dim, row_out.data());
    for (size_t j = 0; j < out_dim; ++j) {
      ASSERT_NEAR(batch[i * out_dim + j], row_out[j], 1e-3)
          << "row " << i << " col " << j;
    }
  }
}

}  // namespace
}  // namespace pdx
