#include "linalg/pca.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

// Correlated Gaussian data: strong variance along a few directions.
std::vector<float> CorrelatedData(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(count * dim);
  for (size_t i = 0; i < count; ++i) {
    const double shared1 = rng.Gaussian() * 4.0;
    const double shared2 = rng.Gaussian() * 2.0;
    for (size_t d = 0; d < dim; ++d) {
      const double weight1 = std::sin(0.3 * double(d));
      const double weight2 = std::cos(0.7 * double(d));
      data[i * dim + d] = static_cast<float>(
          shared1 * weight1 + shared2 * weight2 + 0.3 * rng.Gaussian());
    }
  }
  return data;
}

TEST(PcaTest, ComponentsOrthonormal) {
  const size_t dim = 24;
  const auto data = CorrelatedData(500, dim, 1);
  Pca pca;
  pca.Fit(data.data(), 500, dim);
  // Rows are components: check row-orthonormality via the transpose.
  EXPECT_LT(pca.components().Transposed().OrthogonalityError(), 1e-3);
}

TEST(PcaTest, VariancesDescending) {
  const size_t dim = 16;
  const auto data = CorrelatedData(400, dim, 2);
  Pca pca;
  pca.Fit(data.data(), 400, dim);
  const auto& variances = pca.explained_variance();
  for (size_t i = 1; i < variances.size(); ++i) {
    ASSERT_GE(variances[i - 1], variances[i] - 1e-4f);
  }
}

TEST(PcaTest, LeadingComponentsCarryMostEnergy) {
  const size_t dim = 32;
  const auto data = CorrelatedData(600, dim, 3);
  Pca pca;
  pca.Fit(data.data(), 600, dim);
  const auto& v = pca.explained_variance();
  double total = 0.0;
  double top4 = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    total += v[i];
    if (i < 4) top4 += v[i];
  }
  // Two shared factors + small noise: the top handful dominates.
  EXPECT_GT(top4 / total, 0.7);
}

TEST(PcaTest, TransformPreservesL2Distances) {
  const size_t dim = 20;
  const size_t count = 300;
  const auto data = CorrelatedData(count, dim, 4);
  Pca pca;
  pca.Fit(data.data(), count, dim);

  std::vector<float> pa(dim);
  std::vector<float> pb(dim);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t i = rng.UniformInt(count);
    const size_t j = rng.UniformInt(count);
    pca.Transform(data.data() + i * dim, pa.data());
    pca.Transform(data.data() + j * dim, pb.data());
    const float original =
        ScalarL2(data.data() + i * dim, data.data() + j * dim, dim);
    const float projected = ScalarL2(pa.data(), pb.data(), dim);
    ASSERT_NEAR(projected, original, 1e-2 + 1e-3 * original);
  }
}

TEST(PcaTest, TransformBatchMatchesSingle) {
  const size_t dim = 12;
  const size_t count = 64;
  const auto data = CorrelatedData(count, dim, 6);
  Pca pca;
  pca.Fit(data.data(), count, dim);

  std::vector<float> batch(count * dim);
  pca.TransformBatch(data.data(), count, batch.data());
  std::vector<float> single(dim);
  for (size_t i = 0; i < count; ++i) {
    pca.Transform(data.data() + i * dim, single.data());
    for (size_t d = 0; d < dim; ++d) {
      ASSERT_NEAR(batch[i * dim + d], single[d], 2e-3);
    }
  }
}

TEST(PcaTest, ReconstructionErrorShrinksWithMoreComponents) {
  const size_t dim = 16;
  const size_t count = 256;
  const auto data = CorrelatedData(count, dim, 7);
  Pca pca;
  pca.Fit(data.data(), count, dim);

  std::vector<float> projected(dim);
  std::vector<float> restored(dim);
  double err_few = 0.0;
  double err_many = 0.0;
  for (size_t i = 0; i < count; ++i) {
    pca.Transform(data.data() + i * dim, projected.data());
    pca.InverseTransform(projected.data(), 2, restored.data());
    err_few += ScalarL2(restored.data(), data.data() + i * dim, dim);
    pca.InverseTransform(projected.data(), dim, restored.data());
    err_many += ScalarL2(restored.data(), data.data() + i * dim, dim);
  }
  EXPECT_LT(err_many, err_few);
  EXPECT_NEAR(err_many / count, 0.0, 1e-2);  // Full rank reconstructs.
}

TEST(PcaTest, SampledFitApproximatesFullFit) {
  const size_t dim = 10;
  const size_t count = 4000;
  const auto data = CorrelatedData(count, dim, 8);
  Pca full;
  full.Fit(data.data(), count, dim);
  Pca sampled;
  sampled.Fit(data.data(), count, dim, /*max_samples=*/500);

  // Leading explained variances should be close in relative terms.
  for (size_t i = 0; i < 3; ++i) {
    const double f = full.explained_variance()[i];
    const double s = sampled.explained_variance()[i];
    ASSERT_NEAR(s / f, 1.0, 0.25) << "component " << i;
  }
}

TEST(PcaTest, FittedFlag) {
  Pca pca;
  EXPECT_FALSE(pca.fitted());
  const auto data = CorrelatedData(10, 4, 9);
  pca.Fit(data.data(), 10, 4);
  EXPECT_TRUE(pca.fitted());
  EXPECT_EQ(pca.dim(), 4u);
}

}  // namespace
}  // namespace pdx
