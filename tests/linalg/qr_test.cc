#include "linalg/qr.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/matrix.h"

namespace pdx {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.At(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  return m;
}

class QrTest : public ::testing::TestWithParam<size_t> {};

TEST_P(QrTest, ReconstructsInput) {
  const size_t n = GetParam();
  Matrix a = RandomMatrix(n, n, 100 + n);
  QrDecomposition qr = HouseholderQr(a);
  Matrix reconstructed = qr.q.Multiply(qr.r);
  // Tolerance scales with problem size (float storage of the factors).
  EXPECT_LT(reconstructed.FrobeniusDistance(a), 1e-3 * double(n));
}

TEST_P(QrTest, QIsOrthogonal) {
  const size_t n = GetParam();
  Matrix a = RandomMatrix(n, n, 200 + n);
  QrDecomposition qr = HouseholderQr(a);
  EXPECT_LT(qr.q.OrthogonalityError(), 1e-4);
}

TEST_P(QrTest, RIsUpperTriangularWithPositiveDiagonal) {
  const size_t n = GetParam();
  Matrix a = RandomMatrix(n, n, 300 + n);
  QrDecomposition qr = HouseholderQr(a);
  for (size_t r = 0; r < n; ++r) {
    EXPECT_GT(qr.r.At(r, r), 0.0f) << "diagonal " << r;
    for (size_t c = 0; c < r; ++c) {
      ASSERT_EQ(qr.r.At(r, c), 0.0f) << "below-diagonal " << r << "," << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrTest,
                         ::testing::Values(1, 2, 3, 8, 16, 33, 64));

TEST(QrTest, TallMatrix) {
  Matrix a = RandomMatrix(10, 4, 999);
  QrDecomposition qr = HouseholderQr(a);
  EXPECT_EQ(qr.q.rows(), 10u);
  EXPECT_EQ(qr.q.cols(), 10u);
  EXPECT_EQ(qr.r.rows(), 10u);
  EXPECT_EQ(qr.r.cols(), 4u);
  Matrix reconstructed = qr.q.Multiply(qr.r);
  EXPECT_LT(reconstructed.FrobeniusDistance(a), 1e-3);
}

TEST(QrTest, RankDeficientDoesNotCrash) {
  Matrix a(4, 4);  // All zeros.
  QrDecomposition qr = HouseholderQr(a);
  EXPECT_LT(qr.q.Multiply(qr.r).FrobeniusDistance(a), 1e-5);
}

}  // namespace
}  // namespace pdx
