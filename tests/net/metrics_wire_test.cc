// Observability over real sockets: GET /metrics returns a structurally
// valid Prometheus exposition whose totals match a quiescent ServiceStats
// snapshot; every response carries X-Request-Id (echoed or minted);
// "trace": true returns the per-stage breakdown; /slowlog and the
// upgraded /healthz round-trip.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

Dataset MakeData(size_t dim = 16, uint64_t seed = 5, size_t count = 1200,
                 size_t num_queries = 8) {
  SyntheticSpec spec;
  spec.name = "metrics-wire";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

/// The wire stack with an injected registry, so metric counts never bleed
/// across test cases through the process-global default.
struct WireStack {
  WireStack() : service(MakeServiceConfig()), handler(service) {
    Status started = server.Start(handler.AsHttpHandler());
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~WireStack() { server.Stop(); }

  ServiceConfig MakeServiceConfig() {
    ServiceConfig config;
    config.threads = 2;
    config.metrics = &registry;
    return config;
  }

  HttpClient NewClient() {
    HttpClient client;
    Status connected = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    return client;
  }

  MetricsRegistry registry;  ///< Declared first: must outlive the service.
  SearchService service;
  SearchHandler handler;
  HttpServer server;
};

JsonValue VectorsJson(const VectorSet& vectors) {
  JsonValue rows = JsonValue::Array();
  for (size_t i = 0; i < vectors.count(); ++i) {
    JsonValue row = JsonValue::Array();
    const float* v = vectors.Vector(static_cast<VectorId>(i));
    for (size_t d = 0; d < vectors.dim(); ++d) {
      row.Append(static_cast<double>(v[d]));
    }
    rows.Append(std::move(row));
  }
  return rows;
}

JsonValue QueryJson(const float* query, size_t dim) {
  JsonValue out = JsonValue::Array();
  for (size_t d = 0; d < dim; ++d) out.Append(static_cast<double>(query[d]));
  return out;
}

JsonValue MustParseBody(const HttpResponse& response) {
  Result<JsonValue> parsed = ParseJson(response.body);
  EXPECT_TRUE(parsed.ok()) << response.body;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

void PutCollection(HttpClient& client, const Dataset& data,
                   const std::string& name) {
  JsonValue put = JsonValue::Object();
  put.Set("vectors", VectorsJson(data.data));
  put.Set("layout", "ivf");
  put.Set("pruner", "bond");
  put.Set("k", static_cast<size_t>(10));
  put.Set("nprobe", static_cast<size_t>(4));
  Result<HttpResponse> created =
      client.Roundtrip("PUT", "/collections/" + name, WriteJson(put));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created.value().status, 201) << created.value().body;
}

void RunSearches(HttpClient& client, const Dataset& data,
                 const std::string& name, size_t count) {
  for (size_t q = 0; q < count; ++q) {
    JsonValue body = JsonValue::Object();
    body.Set("query",
             QueryJson(data.queries.Vector(
                           static_cast<VectorId>(q % data.queries.count())),
                       data.dim()));
    Result<HttpResponse> response = client.Roundtrip(
        "POST", "/collections/" + name + "/search", WriteJson(body));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().status, 200) << response.value().body;
  }
}

/// Parses `name{labels} value` sample lines out of an exposition; returns
/// the value of the exactly-matching series line, or -1.
double SeriesValue(const std::string& exposition, const std::string& series) {
  std::istringstream lines(exposition);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, series.size() + 1, series + " ") == 0) {
      return std::stod(line.substr(series.size() + 1));
    }
  }
  return -1.0;
}

TEST(MetricsWireTest, MetricsExpositionMatchesQuiescentStats) {
  Dataset data = MakeData();
  WireStack stack;
  HttpClient client = stack.NewClient();
  PutCollection(client, data, "demo");
  constexpr size_t kQueries = 6;
  RunSearches(client, data, "demo", kQueries);

  // Every search round-tripped synchronously above, so the service is
  // quiescent: the scrape and the stats snapshot must agree exactly.
  Result<HttpResponse> scrape = client.Roundtrip("GET", "/metrics");
  ASSERT_TRUE(scrape.ok());
  ASSERT_EQ(scrape.value().status, 200);
  EXPECT_EQ(scrape.value().content_type.find("text/plain"), 0u)
      << scrape.value().content_type;
  const std::string& text = scrape.value().body;
  const ServiceStats stats = stack.service.Stats();
  const CollectionStats& cs = stats.collections.at("demo");
  EXPECT_EQ(cs.completed, kQueries);

  EXPECT_DOUBLE_EQ(
      SeriesValue(
          text, "pdx_queries_total{collection=\"demo\",outcome=\"completed\"}"),
      static_cast<double>(cs.completed));
  EXPECT_DOUBLE_EQ(
      SeriesValue(text, "pdx_dispatches_total{collection=\"demo\"}"),
      static_cast<double>(cs.dispatches));
  EXPECT_DOUBLE_EQ(
      SeriesValue(
          text,
          "pdx_query_stage_ms_count{collection=\"demo\",stage=\"total\"}"),
      static_cast<double>(cs.completed));
  EXPECT_DOUBLE_EQ(SeriesValue(text, "pdx_collection_vectors{collection"
                                     "=\"demo\"}"),
                   static_cast<double>(data.data.count()));
  EXPECT_DOUBLE_EQ(SeriesValue(text, "pdx_queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(SeriesValue(text, "pdx_collections"), 1.0);
  EXPECT_GT(SeriesValue(
                text, "pdx_search_values_scanned_total{collection=\"demo\"}"),
            0.0);
  // The ISA info gauge is present with some tier label.
  EXPECT_NE(text.find("pdx_isa_tier{isa=\""), std::string::npos);

  // Structural validation: every non-comment line is `series value`, and
  // histogram buckets are cumulative per series block.
  std::istringstream lines(text);
  std::string line;
  uint64_t previous_bucket = 0;
  bool in_bucket_run = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(line.compare(0, 7, "# HELP ") == 0 ||
                  line.compare(0, 7, "# TYPE ") == 0)
          << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_LT(space + 1, line.size()) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_NO_THROW((void)std::stod(value)) << line;
    const bool is_bucket = line.find("_bucket{") != std::string::npos;
    if (is_bucket) {
      const uint64_t bucket = std::stoull(value);
      if (in_bucket_run) EXPECT_GE(bucket, previous_bucket) << line;
      previous_bucket = bucket;
      in_bucket_run = line.find("le=\"+Inf\"") == std::string::npos;
    } else {
      in_bucket_run = false;
    }
  }
}

TEST(MetricsWireTest, RequestIdIsEchoedOrMinted) {
  Dataset data = MakeData();
  WireStack stack;
  HttpClient client = stack.NewClient();

  // Minted when absent — present on every route, errors included.
  Result<HttpResponse> health = client.Roundtrip("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  const auto minted = health.value().headers.find("x-request-id");
  ASSERT_NE(minted, health.value().headers.end());
  EXPECT_FALSE(minted->second.empty());

  Result<HttpResponse> missing = client.Roundtrip("GET", "/collections/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  EXPECT_NE(missing.value().headers.find("x-request-id"),
            missing.value().headers.end());

  // Echoed when supplied.
  Result<HttpResponse> echoed = client.Roundtrip(
      "GET", "/healthz", "", {{"X-Request-Id", "client-id-123"}});
  ASSERT_TRUE(echoed.ok());
  ASSERT_NE(echoed.value().headers.find("x-request-id"),
            echoed.value().headers.end());
  EXPECT_EQ(echoed.value().headers.at("x-request-id"), "client-id-123");

  // A hostile id is clamped and sanitized, never reflected verbatim.
  const std::string hostile(500, 'a');
  Result<HttpResponse> clamped =
      client.Roundtrip("GET", "/healthz", "", {{"X-Request-Id", hostile}});
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped.value().headers.at("x-request-id"), std::string(128, 'a'));
}

TEST(MetricsWireTest, TracedSearchReturnsStageBreakdown) {
  Dataset data = MakeData();
  WireStack stack;
  HttpClient client = stack.NewClient();
  PutCollection(client, data, "demo");

  JsonValue body = JsonValue::Object();
  body.Set("query", QueryJson(data.queries.Vector(0), data.dim()));
  body.Set("trace", JsonValue(true));
  Result<HttpResponse> response =
      client.Roundtrip("POST", "/collections/demo/search", WriteJson(body),
                       {{"X-Request-Id", "trace-req-1"}});
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200) << response.value().body;
  const JsonValue parsed = MustParseBody(response.value());
  const JsonValue* trace = parsed.Find("trace");
  ASSERT_NE(trace, nullptr) << response.value().body;
  EXPECT_EQ(trace->Find("request_id")->AsString(), "trace-req-1");
  const JsonValue* stages = trace->Find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* stage : {"queue_ms", "dispatch_ms", "search_ms",
                            "deliver_ms", "total_ms"}) {
    ASSERT_NE(stages->Find(stage), nullptr) << stage;
    EXPECT_GE(stages->Find(stage)->AsNumber(), 0.0) << stage;
  }
  EXPECT_GT(stages->Find("search_ms")->AsNumber(), 0.0);
  const JsonValue* counters = trace->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->Find("values_scanned")->AsNumber(), 0.0);
  EXPECT_GT(counters->Find("blocks_visited")->AsNumber(), 0.0);
  ASSERT_NE(counters->Find("pruning_power"), nullptr);

  // An untraced search on the same stack carries no trace object.
  JsonValue plain = JsonValue::Object();
  plain.Set("query", QueryJson(data.queries.Vector(0), data.dim()));
  Result<HttpResponse> untraced = client.Roundtrip(
      "POST", "/collections/demo/search", WriteJson(plain));
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(MustParseBody(untraced.value()).Find("trace"), nullptr);

  // A non-boolean trace knob is a 400, not a silent default.
  JsonValue bad = JsonValue::Object();
  bad.Set("query", QueryJson(data.queries.Vector(0), data.dim()));
  bad.Set("trace", "yes");
  Result<HttpResponse> rejected = client.Roundtrip(
      "POST", "/collections/demo/search", WriteJson(bad));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 400);
}

TEST(MetricsWireTest, SlowlogRoundTrips) {
  Dataset data = MakeData();
  WireStack stack;
  HttpClient client = stack.NewClient();
  PutCollection(client, data, "demo");
  RunSearches(client, data, "demo", 4);

  Result<HttpResponse> slowlog =
      client.Roundtrip("GET", "/collections/demo/slowlog");
  ASSERT_TRUE(slowlog.ok());
  ASSERT_EQ(slowlog.value().status, 200) << slowlog.value().body;
  const JsonValue body = MustParseBody(slowlog.value());
  EXPECT_EQ(body.Find("collection")->AsString(), "demo");
  const JsonValue* entries = body.Find("slowlog");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  ASSERT_GE(entries->size(), 1u);
  double previous = std::numeric_limits<double>::infinity();
  for (const JsonValue& entry : entries->items()) {
    EXPECT_EQ(entry.Find("outcome")->AsString(), "OK");
    const double total = entry.Find("total_ms")->AsNumber();
    EXPECT_LE(total, previous) << "slowlog must be worst-first";
    previous = total;
    ASSERT_NE(entry.Find("counters"), nullptr);
    EXPECT_GT(entry.Find("counters")->Find("values_scanned")->AsNumber(), 0.0);
  }

  Result<HttpResponse> missing =
      client.Roundtrip("GET", "/collections/nope/slowlog");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
}

TEST(MetricsWireTest, HealthzCarriesQueueDepthAndCollectionCounts) {
  Dataset data = MakeData();
  WireStack stack;
  HttpClient client = stack.NewClient();
  PutCollection(client, data, "demo");

  Result<HttpResponse> health = client.Roundtrip("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  ASSERT_EQ(health.value().status, 200);
  const JsonValue body = MustParseBody(health.value());
  EXPECT_EQ(body.Find("status")->AsString(), "ok");
  ASSERT_NE(body.Find("queue_depth"), nullptr);
  EXPECT_EQ(body.Find("queue_depth")->AsNumber(), 0.0);
  const JsonValue* collections = body.Find("collections");
  ASSERT_NE(collections, nullptr);
  ASSERT_TRUE(collections->is_object());
  const JsonValue* demo = collections->Find("demo");
  ASSERT_NE(demo, nullptr);
  EXPECT_EQ(static_cast<size_t>(demo->Find("count")->AsNumber()),
            data.data.count());
}

}  // namespace
}  // namespace pdx
