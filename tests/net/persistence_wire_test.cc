// Wire tests for the persistence routes: POST /collections/<name>/save
// writes a collection file, PUT /collections/<name>/load restores it
// (replacing like PUT), and the load source shows up in GET /stats,
// GET /collections/<name>, and /healthz. Runs the real stack — server,
// sockets, handler, service, storage.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

Dataset MakeData(size_t dim = 14, uint64_t seed = 41, size_t count = 900) {
  SyntheticSpec spec;
  spec.name = "persist-wire-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = 4;
  spec.num_clusters = 6;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

struct WireStack {
  WireStack()
      : service(ServiceConfig{}), handler(service), server(HttpServerConfig{}) {
    Status started = server.Start(handler.AsHttpHandler());
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~WireStack() { server.Stop(); }

  HttpClient NewClient() {
    HttpClient client;
    Status connected = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    return client;
  }

  SearchService service;
  SearchHandler handler;
  HttpServer server;
};

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

JsonValue MustParseBody(const HttpResponse& response) {
  Result<JsonValue> parsed = ParseJson(response.body);
  EXPECT_TRUE(parsed.ok()) << response.body;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

JsonValue VectorsJson(const VectorSet& vectors) {
  JsonValue rows = JsonValue::Array();
  for (size_t i = 0; i < vectors.count(); ++i) {
    JsonValue row = JsonValue::Array();
    const float* v = vectors.Vector(static_cast<VectorId>(i));
    for (size_t d = 0; d < vectors.dim(); ++d) {
      row.Append(static_cast<double>(v[d]));
    }
    rows.Append(std::move(row));
  }
  return rows;
}

std::string SearchBody(const float* query, size_t dim) {
  JsonValue out = JsonValue::Object();
  JsonValue vector = JsonValue::Array();
  for (size_t d = 0; d < dim; ++d) {
    vector.Append(static_cast<double>(query[d]));
  }
  out.Set("query", std::move(vector));
  return WriteJson(out);
}

TEST(PersistenceWireTest, SaveLoadRoundTripOverHttp) {
  Dataset data = MakeData();
  const std::string path = TempPath("wire_roundtrip.pdxc");
  WireStack stack;
  HttpClient client = stack.NewClient();

  JsonValue put = JsonValue::Object();
  put.Set("vectors", VectorsJson(data.data));
  put.Set("pruner", "bond");
  put.Set("k", static_cast<size_t>(8));
  Result<HttpResponse> created =
      client.Roundtrip("PUT", "/collections/demo", WriteJson(put));
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created.value().status, 201) << created.value().body;

  // Baseline results before the save.
  const std::string query_body =
      SearchBody(data.queries.Vector(0), data.queries.dim());
  Result<HttpResponse> before =
      client.Roundtrip("POST", "/collections/demo/search", query_body);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().status, 200) << before.value().body;

  // Save.
  JsonValue save = JsonValue::Object();
  save.Set("path", path);
  Result<HttpResponse> saved =
      client.Roundtrip("POST", "/collections/demo/save", WriteJson(save));
  ASSERT_TRUE(saved.ok());
  ASSERT_EQ(saved.value().status, 200) << saved.value().body;
  EXPECT_EQ(MustParseBody(saved.value()).Find("path")->AsString(), path);

  // Load replaces the live collection (same name, restored from disk).
  JsonValue load = JsonValue::Object();
  load.Set("path", path);
  Result<HttpResponse> loaded =
      client.Roundtrip("PUT", "/collections/demo/load", WriteJson(load));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().status, 201) << loaded.value().body;
  {
    const JsonValue info = MustParseBody(loaded.value());
    EXPECT_EQ(info.Find("count")->AsNumber(), data.data.count());
    EXPECT_EQ(info.Find("source")->AsString(), "mmap");
  }

  // Identical neighbors over the wire: same ids, same distances.
  Result<HttpResponse> after =
      client.Roundtrip("POST", "/collections/demo/search", query_body);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().status, 200) << after.value().body;
  const JsonValue before_hits = MustParseBody(before.value());
  const JsonValue after_hits = MustParseBody(after.value());
  ASSERT_EQ(after_hits.Find("neighbors")->size(),
            before_hits.Find("neighbors")->size());
  for (size_t i = 0; i < after_hits.Find("neighbors")->size(); ++i) {
    const JsonValue& a = after_hits.Find("neighbors")->items()[i];
    const JsonValue& b = before_hits.Find("neighbors")->items()[i];
    EXPECT_EQ(a.Find("id")->AsNumber(), b.Find("id")->AsNumber());
    EXPECT_EQ(a.Find("distance")->AsNumber(), b.Find("distance")->AsNumber());
  }

  // The load source surfaces on every observability route.
  Result<HttpResponse> info =
      client.Roundtrip("GET", "/collections/demo", "");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(MustParseBody(info.value()).Find("source")->AsString(), "mmap");
  Result<HttpResponse> stats = client.Roundtrip("GET", "/stats", "");
  ASSERT_TRUE(stats.ok());
  {
    const JsonValue body = MustParseBody(stats.value());
    const JsonValue* entry = body.Find("collections")->Find("demo");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->Find("source")->AsString(), "mmap");
    EXPECT_GT(entry->Find("mapped_bytes")->AsNumber(), 0.0);
  }
  Result<HttpResponse> healthz = client.Roundtrip("GET", "/healthz", "");
  ASSERT_TRUE(healthz.ok());
  {
    const JsonValue body = MustParseBody(healthz.value());
    const JsonValue* entry = body.Find("collections")->Find("demo");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->Find("source")->AsString(), "mmap");
  }

  // The mmap gauge shows on /metrics too.
  Result<HttpResponse> metrics = client.Roundtrip("GET", "/metrics", "");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().body.find("pdx_mmap_bytes"), std::string::npos);
  EXPECT_NE(metrics.value().body.find("pdx_collection_load_ms"),
            std::string::npos);

  std::remove(path.c_str());
}

TEST(PersistenceWireTest, ErrorMapping) {
  WireStack stack;
  HttpClient client = stack.NewClient();

  // Save of an unknown collection -> 404.
  JsonValue save = JsonValue::Object();
  save.Set("path", TempPath("nope.pdxc"));
  Result<HttpResponse> missing =
      client.Roundtrip("POST", "/collections/ghost/save", WriteJson(save));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  // Load of a nonexistent file -> mapped error, nothing hosted.
  JsonValue load = JsonValue::Object();
  load.Set("path", TempPath("does_not_exist.pdxc"));
  Result<HttpResponse> bad =
      client.Roundtrip("PUT", "/collections/demo/load", WriteJson(load));
  ASSERT_TRUE(bad.ok());
  EXPECT_GE(bad.value().status, 400);
  Result<HttpResponse> info = client.Roundtrip("GET", "/collections/demo", "");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().status, 404);

  // Missing "path" -> 400.
  Result<HttpResponse> nopath =
      client.Roundtrip("PUT", "/collections/demo/load", "{}");
  ASSERT_TRUE(nopath.ok());
  EXPECT_EQ(nopath.value().status, 400);

  // Wrong methods -> 400 with a usage hint.
  Result<HttpResponse> wrong =
      client.Roundtrip("GET", "/collections/demo/save", "");
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(wrong.value().status, 400);
}

}  // namespace
}  // namespace pdx
