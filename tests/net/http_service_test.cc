// End-to-end wire tests: a real HttpServer on an ephemeral loopback port,
// a real socket client, and the full stack underneath — SearchHandler ->
// SearchService -> Searcher. Covers add/search/stats/remove round trips,
// exact parity of wire results vs in-process Searcher::Search, and every
// Status -> HTTP error mapping (404 unknown collection, 400 bad JSON,
// 413 oversized body, 429 queue full, 504 expired deadline).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datagen.h"
#include "core/sharded_searcher.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

using namespace std::chrono_literals;

Dataset MakeData(size_t dim = 16, uint64_t seed = 77, size_t count = 1500,
                 size_t num_queries = 8) {
  SyntheticSpec spec;
  spec.name = "net-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

/// The whole wire stack for one test: service + handler + server, torn
/// down in the safe order (server first — responders reference the
/// handler's service).
struct WireStack {
  explicit WireStack(ServiceConfig service_config = {},
                     HttpServerConfig server_config = {})
      : service(service_config), handler(service), server(server_config) {
    Status started = server.Start(handler.AsHttpHandler());
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~WireStack() { server.Stop(); }

  HttpClient NewClient() {
    HttpClient client;
    Status connected = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    return client;
  }

  SearchService service;
  SearchHandler handler;
  HttpServer server;
};

/// Serializes `vectors` as the PUT payload's "vectors" array.
JsonValue VectorsJson(const VectorSet& vectors) {
  JsonValue rows = JsonValue::Array();
  for (size_t i = 0; i < vectors.count(); ++i) {
    JsonValue row = JsonValue::Array();
    const float* v = vectors.Vector(static_cast<VectorId>(i));
    for (size_t d = 0; d < vectors.dim(); ++d) {
      row.Append(static_cast<double>(v[d]));
    }
    rows.Append(std::move(row));
  }
  return rows;
}

JsonValue QueryJson(const float* query, size_t dim) {
  JsonValue out = JsonValue::Array();
  for (size_t d = 0; d < dim; ++d) out.Append(static_cast<double>(query[d]));
  return out;
}

JsonValue MustParseBody(const HttpResponse& response) {
  Result<JsonValue> parsed = ParseJson(response.body);
  EXPECT_TRUE(parsed.ok()) << response.body;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

/// Client-side reconstitution of a transported failure: error bodies are
/// {"error", "status"}, and StatusCodeFromName + Status::FromCode rebuild
/// the Status a server-side caller would have seen.
Status WireStatus(const HttpResponse& response) {
  const JsonValue body = MustParseBody(response);
  const JsonValue* code = body.Find("status");
  const JsonValue* error = body.Find("error");
  return Status::FromCode(
      StatusCodeFromName(code != nullptr ? code->AsString() : ""),
      error != nullptr && error->is_string() ? error->AsString() : "");
}

/// Asserts the wire "neighbors" array is exactly `expected` — id for id,
/// distance for distance (the JSON number round trip is float-exact).
void ExpectWireNeighbors(const JsonValue& neighbors,
                         const std::vector<Neighbor>& expected,
                         const std::string& label) {
  ASSERT_TRUE(neighbors.is_array()) << label;
  ASSERT_EQ(neighbors.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const JsonValue& hit = neighbors.items()[i];
    ASSERT_TRUE(hit.is_object()) << label;
    EXPECT_EQ(static_cast<VectorId>(hit.Find("id")->AsNumber()),
              expected[i].id)
        << label << " rank " << i;
    EXPECT_EQ(static_cast<float>(hit.Find("distance")->AsNumber()),
              expected[i].distance)
        << label << " rank " << i;
  }
}

// --- Add / search / stats / remove over real sockets ------------------------

TEST(HttpServiceTest, WireLifecycleWithExactSearchParity) {
  Dataset data = MakeData();
  WireStack stack;
  HttpClient client = stack.NewClient();

  // PUT: build an IVF/bond collection from a row-major float payload.
  JsonValue put = JsonValue::Object();
  put.Set("vectors", VectorsJson(data.data));
  put.Set("layout", "ivf");
  put.Set("pruner", "bond");
  put.Set("k", static_cast<size_t>(10));
  put.Set("nprobe", static_cast<size_t>(4));
  Result<HttpResponse> created =
      client.Roundtrip("PUT", "/collections/demo", WriteJson(put));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created.value().status, 201) << created.value().body;
  {
    const JsonValue info = MustParseBody(created.value());
    EXPECT_EQ(info.Find("name")->AsString(), "demo");
    EXPECT_EQ(info.Find("dim")->AsNumber(), data.data.dim());
    EXPECT_EQ(info.Find("count")->AsNumber(), data.data.count());
    EXPECT_EQ(info.Find("layout")->AsString(), "ivf");
    EXPECT_EQ(info.Find("pruner")->AsString(), "bond");
  }

  // The in-process reference: the same floats (the JSON round trip is
  // float-exact: float -> shortest double decimal -> float is identity),
  // the same config — but its own index build. IVF build is seeded and
  // deterministic over identical input, so parity is exact.
  SearcherConfig reference_config;
  reference_config.layout = SearcherLayout::kIvf;
  reference_config.pruner = PrunerKind::kBond;
  reference_config.k = 10;
  reference_config.nprobe = 4;
  auto reference = MakeSearcher(data.data, reference_config);
  ASSERT_TRUE(reference.ok());

  // Single-query searches: wire results must be the in-process results.
  for (size_t q = 0; q < data.queries.count(); ++q) {
    JsonValue request = JsonValue::Object();
    request.Set("query",
                QueryJson(data.queries.Vector(static_cast<VectorId>(q)),
                          data.queries.dim()));
    Result<HttpResponse> response = client.Roundtrip(
        "POST", "/collections/demo/search", WriteJson(request));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().status, 200) << response.value().body;
    const JsonValue body = MustParseBody(response.value());
    EXPECT_EQ(body.Find("collection")->AsString(), "demo");
    EXPECT_EQ(body.Find("status")->AsString(), "OK");
    EXPECT_GE(body.Find("total_ms")->AsNumber(), 0.0);
    ExpectWireNeighbors(
        *body.Find("neighbors"),
        reference.value()->Search(data.queries.Vector(static_cast<VectorId>(q))),
        "query " + std::to_string(q));
  }

  // Batched search: one POST, per-query results in order.
  {
    JsonValue request = JsonValue::Object();
    JsonValue queries = JsonValue::Array();
    for (size_t q = 0; q < data.queries.count(); ++q) {
      queries.Append(QueryJson(data.queries.Vector(static_cast<VectorId>(q)),
                               data.queries.dim()));
    }
    request.Set("queries", std::move(queries));
    Result<HttpResponse> response = client.Roundtrip(
        "POST", "/collections/demo/search", WriteJson(request));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response.value().status, 200) << response.value().body;
    const JsonValue body = MustParseBody(response.value());
    const JsonValue* results = body.Find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->size(), data.queries.count());
    for (size_t q = 0; q < data.queries.count(); ++q) {
      const JsonValue& item = results->items()[q];
      EXPECT_EQ(item.Find("status")->AsString(), "OK");
      ExpectWireNeighbors(
          *item.Find("neighbors"),
          reference.value()->Search(
              data.queries.Vector(static_cast<VectorId>(q))),
          "batched query " + std::to_string(q));
    }
  }

  // GET /collections and /collections/demo.
  {
    Result<HttpResponse> list = client.Roundtrip("GET", "/collections");
    ASSERT_TRUE(list.ok());
    EXPECT_EQ(list.value().status, 200);
    const JsonValue body = MustParseBody(list.value());
    ASSERT_EQ(body.Find("collections")->size(), 1u);
    EXPECT_EQ(body.Find("collections")->items()[0].AsString(), "demo");

    Result<HttpResponse> info = client.Roundtrip("GET", "/collections/demo");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().status, 200);
    EXPECT_EQ(MustParseBody(info.value()).Find("max_nprobe")->AsNumber(),
              reference.value()->max_nprobe());
  }

  // GET /stats reflects the served traffic.
  {
    Result<HttpResponse> stats = client.Roundtrip("GET", "/stats");
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats.value().status, 200);
    const JsonValue body = MustParseBody(stats.value());
    const JsonValue* demo = body.Find("collections")->Find("demo");
    ASSERT_NE(demo, nullptr);
    // Every wire query completed: 8 single + 8 batched.
    EXPECT_EQ(demo->Find("completed")->AsNumber(),
              2.0 * static_cast<double>(data.queries.count()));
    EXPECT_EQ(demo->Find("rejected")->AsNumber(), 0.0);
    EXPECT_GE(demo->Find("dispatches")->AsNumber(), 1.0);
    EXPECT_EQ(body.Find("pool_threads")->AsNumber(),
              stack.service.pool_threads());
  }

  // GET /healthz.
  {
    Result<HttpResponse> health = client.Roundtrip("GET", "/healthz");
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health.value().status, 200);
    EXPECT_EQ(MustParseBody(health.value()).Find("status")->AsString(), "ok");
  }

  // DELETE, then the collection is gone — over the wire and in process.
  {
    Result<HttpResponse> removed =
        client.Roundtrip("DELETE", "/collections/demo");
    ASSERT_TRUE(removed.ok());
    EXPECT_EQ(removed.value().status, 200);
    Result<HttpResponse> missing =
        client.Roundtrip("DELETE", "/collections/demo");
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(missing.value().status, 404);
    EXPECT_TRUE(stack.service.CollectionNames().empty());
  }
}

TEST(HttpServiceTest, PerRequestKnobOverridesApply) {
  Dataset data = MakeData();
  WireStack stack;
  SearcherConfig config;
  config.layout = SearcherLayout::kIvf;
  config.pruner = PrunerKind::kBond;
  config.nprobe = 4;
  ASSERT_TRUE(stack.service.AddCollection("ivf", data.data, config).ok());
  HttpClient client = stack.NewClient();

  JsonValue request = JsonValue::Object();
  request.Set("query", QueryJson(data.queries.Vector(0), data.queries.dim()));
  request.Set("k", static_cast<size_t>(3));
  request.Set("nprobe", static_cast<size_t>(8));
  Result<HttpResponse> response = client.Roundtrip(
      "POST", "/collections/ivf/search", WriteJson(request));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200) << response.value().body;

  auto reference = MakeSearcher(data.data, config);
  ASSERT_TRUE(reference.ok());
  reference.value()->set_k(3);
  reference.value()->set_nprobe(8);
  ExpectWireNeighbors(*MustParseBody(response.value()).Find("neighbors"),
                      reference.value()->Search(data.queries.Vector(0)),
                      "k=3 nprobe=8");
}

TEST(HttpServiceTest, ShardedCollectionOverTheWire) {
  Dataset data = MakeData(16, 79, 2000, 4);
  WireStack stack;
  HttpClient client = stack.NewClient();

  JsonValue put = JsonValue::Object();
  put.Set("vectors", VectorsJson(data.data));
  put.Set("layout", "flat");
  put.Set("pruner", "bond");
  put.Set("shards", static_cast<size_t>(3));
  put.Set("assignment", "round-robin");
  Result<HttpResponse> created =
      client.Roundtrip("PUT", "/collections/sharded", WriteJson(put));
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created.value().status, 201) << created.value().body;
  EXPECT_EQ(MustParseBody(created.value()).Find("shards")->AsNumber(), 3.0);

  // Wire-vs-in-process parity: the reference is the SAME sharded build
  // (shard slices change block boundaries, so distances can differ from an
  // unsharded searcher by a few ULPs — sharded-vs-unsharded equivalence is
  // core_sharded_searcher_test's business, not the wire's).
  SearcherConfig config;  // Defaults: flat / bond / k=10.
  ShardingOptions reference_sharding;
  reference_sharding.num_shards = 3;
  reference_sharding.assignment = ShardAssignment::kRoundRobin;
  auto reference = MakeShardedSearcher(data.data, config, reference_sharding);
  ASSERT_TRUE(reference.ok());
  for (size_t q = 0; q < data.queries.count(); ++q) {
    JsonValue request = JsonValue::Object();
    request.Set("query",
                QueryJson(data.queries.Vector(static_cast<VectorId>(q)),
                          data.queries.dim()));
    Result<HttpResponse> response = client.Roundtrip(
        "POST", "/collections/sharded/search", WriteJson(request));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response.value().status, 200) << response.value().body;
    // Exact scatter-gather parity, served over a socket.
    ExpectWireNeighbors(
        *MustParseBody(response.value()).Find("neighbors"),
        reference.value()->Search(data.queries.Vector(static_cast<VectorId>(q))),
        "sharded query " + std::to_string(q));
  }

  // Per-shard dispatch counters ride /stats.
  Result<HttpResponse> stats = client.Roundtrip("GET", "/stats");
  ASSERT_TRUE(stats.ok());
  const JsonValue stats_body = MustParseBody(stats.value());
  const JsonValue* entry = stats_body.Find("collections")->Find("sharded");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->Find("shard_dispatches")->size(), 3u);
  for (const JsonValue& per_shard : entry->Find("shard_dispatches")->items()) {
    EXPECT_EQ(per_shard.AsNumber(),
              static_cast<double>(data.queries.count()));
  }
}

// --- Error mappings over real sockets ---------------------------------------

TEST(HttpServiceTest, UnknownCollectionMapsTo404) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  JsonValue request = JsonValue::Object();
  JsonValue query = JsonValue::Array();
  query.Append(1.0);
  request.Set("query", std::move(query));
  Result<HttpResponse> response = client.Roundtrip(
      "POST", "/collections/ghost/search", WriteJson(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
  const Status reconstituted = WireStatus(response.value());
  EXPECT_TRUE(reconstituted.IsNotFound()) << reconstituted.ToString();
  EXPECT_EQ(reconstituted.message(), "no collection named ghost");
  // Unknown routes are 404 too.
  Result<HttpResponse> route = client.Roundtrip("GET", "/nonsense");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().status, 404);
}

TEST(HttpServiceTest, BadJsonAndBadQueriesMapTo400) {
  Dataset data = MakeData();
  WireStack stack;
  SearcherConfig config;
  ASSERT_TRUE(stack.service.AddCollection("flat", data.data, config).ok());
  HttpClient client = stack.NewClient();

  // Malformed JSON.
  Result<HttpResponse> bad_json = client.Roundtrip(
      "POST", "/collections/flat/search", "{\"query\": [1, 2,");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json.value().status, 400);
  EXPECT_EQ(MustParseBody(bad_json.value()).Find("status")->AsString(),
            "InvalidArgument");

  // Valid JSON, wrong shape: dimension mismatch must be a 400, never an
  // out-of-bounds read of the short payload.
  Result<HttpResponse> short_query = client.Roundtrip(
      "POST", "/collections/flat/search", "{\"query\": [1.0, 2.0]}");
  ASSERT_TRUE(short_query.ok());
  EXPECT_EQ(short_query.value().status, 400);

  // NaN cannot enter through the wire.
  Result<HttpResponse> nan_query = client.Roundtrip(
      "POST", "/collections/flat/search", "{\"query\": [NaN]}");
  ASSERT_TRUE(nan_query.ok());
  EXPECT_EQ(nan_query.value().status, 400);

  // Nor can a finite double that would overflow to float infinity at the
  // kernel boundary (1e300 parses fine as a double).
  std::string big_query = "{\"query\": [1e300";
  for (size_t d = 1; d < data.data.dim(); ++d) big_query += ", 0";
  big_query += "]}";
  Result<HttpResponse> overflow_query =
      client.Roundtrip("POST", "/collections/flat/search", big_query);
  ASSERT_TRUE(overflow_query.ok());
  EXPECT_EQ(overflow_query.value().status, 400);
  EXPECT_TRUE(WireStatus(overflow_query.value()).IsInvalidArgument());

  // Neither "query" nor "queries".
  Result<HttpResponse> no_query =
      client.Roundtrip("POST", "/collections/flat/search", "{}");
  ASSERT_TRUE(no_query.ok());
  EXPECT_EQ(no_query.value().status, 400);

  // Wrong method on a search route.
  Result<HttpResponse> wrong_method =
      client.Roundtrip("GET", "/collections/flat/search");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 400);
}

TEST(HttpServiceTest, OversizedBodyMapsTo413) {
  HttpServerConfig server_config;
  server_config.max_body_bytes = 1024;
  WireStack stack({}, server_config);
  HttpClient client = stack.NewClient();
  const std::string big(4096, 'x');
  Result<HttpResponse> response =
      client.Roundtrip("POST", "/collections/any/search", big);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 413);
}

TEST(HttpServiceTest, QueueFullMapsTo429WithRetryAfter) {
  Dataset data = MakeData();
  ServiceConfig service_config;
  service_config.max_pending = 2;
  WireStack stack(service_config);
  SearcherConfig config;
  ASSERT_TRUE(stack.service.AddCollection("flat", data.data, config).ok());

  // Deterministic backpressure: pause dispatch, fill the whole admission
  // queue with pipelined wire queries, then one more must bounce.
  stack.service.Pause();
  HttpClient filler = stack.NewClient();
  JsonValue request = JsonValue::Object();
  request.Set("query", QueryJson(data.queries.Vector(0), data.queries.dim()));
  const std::string body = WriteJson(request);
  ASSERT_TRUE(filler.SendRequest("POST", "/collections/flat/search", body).ok());
  ASSERT_TRUE(filler.SendRequest("POST", "/collections/flat/search", body).ok());
  // Admission happens on the connection thread; wait until both queued.
  for (int i = 0; i < 1000 && stack.service.queue_depth() < 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(stack.service.queue_depth(), 2u);

  HttpClient overflow = stack.NewClient();
  Result<HttpResponse> rejected =
      overflow.Roundtrip("POST", "/collections/flat/search", body);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected.value().status, 429);
  EXPECT_TRUE(WireStatus(rejected.value()).IsResourceExhausted())
      << rejected.value().body;
  // Backpressure is retryable and says when.
  ASSERT_EQ(rejected.value().headers.count("retry-after"), 1u);
  EXPECT_EQ(rejected.value().headers.at("retry-after"), "1");

  // Drain: the held queries complete once dispatch resumes.
  stack.service.Resume();
  for (int i = 0; i < 2; ++i) {
    Result<HttpResponse> held = filler.ReadResponse();
    ASSERT_TRUE(held.ok()) << held.status().ToString();
    EXPECT_EQ(held.value().status, 200);
  }
}

TEST(HttpServiceTest, ExpiredDeadlineMapsTo504) {
  Dataset data = MakeData();
  WireStack stack;
  SearcherConfig config;
  ASSERT_TRUE(stack.service.AddCollection("flat", data.data, config).ok());

  // Paused service: the query's deadline passes in the queue, the sweep
  // sheds it (even while paused), and the wire answer is 504 — without a
  // Resume() ever happening.
  stack.service.Pause();
  HttpClient client = stack.NewClient();
  JsonValue request = JsonValue::Object();
  request.Set("query", QueryJson(data.queries.Vector(0), data.queries.dim()));
  request.Set("deadline_ms", static_cast<size_t>(5));
  Result<HttpResponse> response = client.Roundtrip(
      "POST", "/collections/flat/search", WriteJson(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 504);
  EXPECT_TRUE(WireStatus(response.value()).IsDeadlineExceeded())
      << response.value().body;
  stack.service.Resume();
}

TEST(HttpServiceTest, MalformedHttpIsAnswered400AndClosed) {
  WireStack stack;
  {
    HttpClient client = stack.NewClient();
    ASSERT_TRUE(client.SendRaw("THIS IS NOT HTTP\r\n\r\n").ok());
    Result<HttpResponse> response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 400);
    // After a framing error the byte stream is garbage; the server closes.
    Result<HttpResponse> after = client.ReadResponse();
    EXPECT_FALSE(after.ok());
  }
  {
    // An unsupported version string is a 400 as well.
    HttpClient client = stack.NewClient();
    ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/2.0\r\n\r\n").ok());
    Result<HttpResponse> response = client.ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 400);
  }
  {
    // Chunked bodies are out of the supported subset: 501, explicitly.
    HttpClient client = stack.NewClient();
    ASSERT_TRUE(client
                    .SendRaw("POST /collections/x/search HTTP/1.1\r\n"
                             "Transfer-Encoding: chunked\r\n\r\n")
                    .ok());
    Result<HttpResponse> response = client.ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 501);
  }
  // The server survives all of it.
  HttpClient client = stack.NewClient();
  Result<HttpResponse> health = client.Roundtrip("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
}

TEST(HttpServiceTest, DuplicateContentLengthMapsTo400) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  // Two conflicting Content-Length values are the classic
  // request-smuggling shape behind an intermediary that picks the other
  // one; the server must refuse to pick either.
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n"
                           "Content-Length: 0\r\n"
                           "Content-Length: 5\r\n\r\nhello")
                  .ok());
  Result<HttpResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 400);
  // Framing is unrecoverable after conflicting lengths: the server closes.
  Result<HttpResponse> after = client.ReadResponse();
  EXPECT_FALSE(after.ok());
}

// --- Pipelining -------------------------------------------------------------

TEST(HttpServiceTest, PipelinedResponsesArriveInRequestOrder) {
  Dataset data = MakeData();
  WireStack stack;
  SearcherConfig config;
  ASSERT_TRUE(stack.service.AddCollection("flat", data.data, config).ok());
  auto reference = MakeSearcher(data.data, config);
  ASSERT_TRUE(reference.ok());

  HttpClient client = stack.NewClient();
  // Distinct k per request: response i must carry exactly i+1 neighbors,
  // so any reordering is visible.
  constexpr size_t kPipelined = 6;
  for (size_t i = 0; i < kPipelined; ++i) {
    JsonValue request = JsonValue::Object();
    request.Set("query",
                QueryJson(data.queries.Vector(0), data.queries.dim()));
    request.Set("k", i + 1);
    ASSERT_TRUE(client
                    .SendRequest("POST", "/collections/flat/search",
                                 WriteJson(request))
                    .ok());
  }
  EXPECT_EQ(client.inflight(), kPipelined);
  for (size_t i = 0; i < kPipelined; ++i) {
    Result<HttpResponse> response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().status, 200);
    const JsonValue body = MustParseBody(response.value());
    EXPECT_EQ(body.Find("neighbors")->size(), i + 1)
        << "pipelined response " << i << " out of order";
  }
}

// --- Regression: /stats is ONE consistent snapshot --------------------------

TEST(HttpServiceTest, StatsSnapshotKeepsDispatchInvariantUnderLoad) {
  Dataset data = MakeData(16, 81, 1500, 8);
  ServiceConfig service_config;
  service_config.dispatchers = 3;
  service_config.threads = 2;
  WireStack stack(service_config);
  SearcherConfig config;
  ASSERT_TRUE(stack.service.AddCollection("a", data.data, config).ok());
  SearcherConfig linear = config;
  linear.pruner = PrunerKind::kLinear;
  ASSERT_TRUE(stack.service.AddCollection("b", data.data, linear).ok());

  // Client threads hammer both collections while the main thread polls
  // GET /stats: in EVERY snapshot the per-dispatcher dispatch counts must
  // sum exactly to the per-collection total — the whole snapshot is taken
  // under one lock, so a half-updated pair can never be observed.
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", stack.server.port()).ok()) return;
      JsonValue request = JsonValue::Object();
      request.Set("query",
                  QueryJson(data.queries.Vector(t % data.queries.count()),
                            data.queries.dim()));
      const std::string body = WriteJson(request);
      const std::string target =
          t % 2 == 0 ? "/collections/a/search" : "/collections/b/search";
      while (!stop.load()) {
        Result<HttpResponse> response =
            client.Roundtrip("POST", target, body);
        if (!response.ok()) return;
      }
    });
  }

  HttpClient stats_client = stack.NewClient();
  size_t snapshots_with_traffic = 0;
  for (int poll = 0; poll < 50; ++poll) {
    Result<HttpResponse> stats = stats_client.Roundtrip("GET", "/stats");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_EQ(stats.value().status, 200);
    const JsonValue body = MustParseBody(stats.value());
    double dispatcher_total = 0;
    ASSERT_EQ(body.Find("dispatchers")->size(), 3u);
    for (const JsonValue& ds : body.Find("dispatchers")->items()) {
      dispatcher_total += ds.Find("dispatches")->AsNumber();
    }
    double collection_total = 0;
    for (const auto& [name, entry] : body.Find("collections")->members()) {
      collection_total += entry.Find("dispatches")->AsNumber();
    }
    EXPECT_EQ(dispatcher_total, collection_total)
        << "snapshot " << poll << " tore the dispatch accounting: "
        << stats.value().body;
    if (dispatcher_total > 0) ++snapshots_with_traffic;
    std::this_thread::sleep_for(2ms);
  }
  stop.store(true);
  for (std::thread& client : clients) client.join();
  // The invariant must have been exercised against live counters, not a
  // parked service.
  EXPECT_GT(snapshots_with_traffic, 0u);
}

// --- Server lifecycle -------------------------------------------------------

TEST(HttpServiceTest, ServerStopResolvesCleanly) {
  Dataset data = MakeData();
  auto stack = std::make_unique<WireStack>();
  SearcherConfig config;
  ASSERT_TRUE(stack->service.AddCollection("flat", data.data, config).ok());
  HttpClient client = stack->NewClient();
  JsonValue request = JsonValue::Object();
  request.Set("query", QueryJson(data.queries.Vector(0), data.queries.dim()));
  Result<HttpResponse> ok = client.Roundtrip(
      "POST", "/collections/flat/search", WriteJson(request));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().status, 200);
  // Destroy server + service with the client still connected: Stop() must
  // not hang on the idle keep-alive connection.
  stack.reset();
  // The client now sees a closed connection.
  Result<HttpResponse> gone = client.Roundtrip("GET", "/healthz");
  EXPECT_FALSE(gone.ok());
}

TEST(HttpServiceTest, PortZeroPicksAnEphemeralPortAndRebindsFail) {
  WireStack stack;
  EXPECT_GT(stack.server.port(), 0);
  // A second server on the same fixed port must fail loudly.
  HttpServerConfig clash;
  clash.port = stack.server.port();
  HttpServer second(clash);
  SearchService unused_service;
  SearchHandler unused_handler(unused_service);
  Status started = second.Start(unused_handler.AsHttpHandler());
  EXPECT_FALSE(started.ok());
  EXPECT_TRUE(started.IsIoError()) << started.ToString();
}

}  // namespace
}  // namespace pdx
