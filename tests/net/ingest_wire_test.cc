// Streaming ingest over real sockets: POST /collections/<name>/vectors in
// both wire formats (NDJSON rows and a single JSON object), upsert via
// ids, DELETE /collections/<name>/vectors/<id>, the /stats and /metrics
// ingest surfaces, and the PUT-replace contract (slowlog resets, the
// Prometheus counters stay cumulative).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

struct WireStack {
  WireStack() : service(MakeServiceConfig()), handler(service) {
    Status started = server.Start(handler.AsHttpHandler());
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~WireStack() { server.Stop(); }

  ServiceConfig MakeServiceConfig() {
    ServiceConfig config;
    config.threads = 2;
    config.metrics = &registry;
    return config;
  }

  HttpClient NewClient() {
    HttpClient client;
    Status connected = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    return client;
  }

  MetricsRegistry registry;  ///< Declared first: must outlive the service.
  SearchService service;
  SearchHandler handler;
  HttpServer server;
};

JsonValue MustParseBody(const HttpResponse& response) {
  Result<JsonValue> parsed = ParseJson(response.body);
  EXPECT_TRUE(parsed.ok()) << response.body;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

/// Hosts a small flat/linear collection of axis-aligned rows: row i is
/// dim zeros with value (i + 1) at dimension 0, so exact-match queries
/// have unambiguous nearest neighbors.
void PutAxisCollection(HttpClient& client, const std::string& name,
                       size_t count, size_t dim) {
  JsonValue rows = JsonValue::Array();
  for (size_t i = 0; i < count; ++i) {
    JsonValue row = JsonValue::Array();
    row.Append(static_cast<double>(i + 1));
    for (size_t d = 1; d < dim; ++d) row.Append(0.0);
    rows.Append(std::move(row));
  }
  JsonValue put = JsonValue::Object();
  put.Set("vectors", std::move(rows));
  put.Set("layout", "flat");
  put.Set("pruner", "linear");
  put.Set("k", static_cast<size_t>(3));
  Result<HttpResponse> created =
      client.Roundtrip("PUT", "/collections/" + name, WriteJson(put));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created.value().status, 201) << created.value().body;
}

std::vector<size_t> TopIds(const JsonValue& search_body) {
  std::vector<size_t> ids;
  const JsonValue* neighbors = search_body.Find("neighbors");
  if (neighbors == nullptr) return ids;
  for (const JsonValue& hit : neighbors->items()) {
    ids.push_back(static_cast<size_t>(hit.Find("id")->AsNumber()));
  }
  return ids;
}

JsonValue Search(HttpClient& client, const std::string& name, double x,
                 size_t dim) {
  JsonValue query = JsonValue::Array();
  query.Append(x);
  for (size_t d = 1; d < dim; ++d) query.Append(0.0);
  JsonValue body = JsonValue::Object();
  body.Set("query", std::move(query));
  Result<HttpResponse> response = client.Roundtrip(
      "POST", "/collections/" + name + "/search", WriteJson(body));
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200) << response.value().body;
  return MustParseBody(response.value());
}

double SeriesValue(const std::string& exposition, const std::string& series) {
  std::istringstream lines(exposition);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, series.size() + 1, series + " ") == 0) {
      return std::stod(line.substr(series.size() + 1));
    }
  }
  return -1.0;
}

// --- NDJSON ingest ------------------------------------------------------

TEST(IngestWireTest, NdjsonAddAssignsIdsAndServesRows) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  const size_t dim = 4;
  PutAxisCollection(client, "live", 6, dim);

  // Three NDJSON rows (plain arrays: auto-assigned ids), with a blank
  // line and \r\n endings in the mix.
  const std::string ndjson =
      "[100,0,0,0]\r\n"
      "\r\n"
      "[200,0,0,0]\n"
      "[300,0,0,0]\n";
  Result<HttpResponse> posted =
      client.Roundtrip("POST", "/collections/live/vectors", ndjson);
  ASSERT_TRUE(posted.ok());
  ASSERT_EQ(posted.value().status, 200) << posted.value().body;
  const JsonValue body = MustParseBody(posted.value());
  EXPECT_EQ(body.Find("added")->AsNumber(), 3.0);
  const JsonValue* ids = body.Find("ids");
  ASSERT_NE(ids, nullptr);
  ASSERT_EQ(ids->size(), 3u);
  // Auto ids continue after the 6 PUT rows.
  EXPECT_EQ(ids->items()[0].AsNumber(), 6.0);
  EXPECT_EQ(ids->items()[1].AsNumber(), 7.0);
  EXPECT_EQ(ids->items()[2].AsNumber(), 8.0);

  // The appended rows are immediately searchable, no rebuild involved.
  const JsonValue found = Search(client, "live", 200.0, dim);
  const std::vector<size_t> top = TopIds(found);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0], 7u);
}

TEST(IngestWireTest, NdjsonObjectRowsCarryExplicitIds) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  const size_t dim = 4;
  PutAxisCollection(client, "live", 4, dim);

  const std::string ndjson =
      "{\"id\": 50, \"vector\": [500,0,0,0]}\n"
      "{\"id\": 60, \"vector\": [600,0,0,0]}\n";
  Result<HttpResponse> posted =
      client.Roundtrip("POST", "/collections/live/vectors", ndjson);
  ASSERT_TRUE(posted.ok());
  ASSERT_EQ(posted.value().status, 200) << posted.value().body;
  const JsonValue body = MustParseBody(posted.value());
  EXPECT_EQ(body.Find("ids")->items()[0].AsNumber(), 50.0);
  EXPECT_EQ(body.Find("ids")->items()[1].AsNumber(), 60.0);

  const std::vector<size_t> top = TopIds(Search(client, "live", 600.0, dim));
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0], 60u);
}

// --- JSON-object ingest and upsert --------------------------------------

TEST(IngestWireTest, JsonBodyWithIdsUpserts) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  const size_t dim = 4;
  PutAxisCollection(client, "live", 5, dim);

  // Row with id 2 already exists (value 3 at dim 0); upsert moves it.
  JsonValue vectors = JsonValue::Array();
  JsonValue replacement = JsonValue::Array();
  replacement.Append(900.0);
  for (size_t d = 1; d < dim; ++d) replacement.Append(0.0);
  vectors.Append(std::move(replacement));
  JsonValue ids = JsonValue::Array();
  ids.Append(static_cast<size_t>(2));
  JsonValue body = JsonValue::Object();
  body.Set("vectors", std::move(vectors));
  body.Set("ids", std::move(ids));
  Result<HttpResponse> posted = client.Roundtrip(
      "POST", "/collections/live/vectors", WriteJson(body));
  ASSERT_TRUE(posted.ok());
  ASSERT_EQ(posted.value().status, 200) << posted.value().body;

  // Same id, new location; the collection did not grow.
  const std::vector<size_t> top = TopIds(Search(client, "live", 900.0, dim));
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0], 2u);
  Result<HttpResponse> info = client.Roundtrip("GET", "/collections/live");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(MustParseBody(info.value()).Find("count")->AsNumber(), 5.0);
}

// --- DELETE by id -------------------------------------------------------

TEST(IngestWireTest, DeleteVectorRoutes) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  const size_t dim = 4;
  PutAxisCollection(client, "live", 5, dim);

  Result<HttpResponse> removed =
      client.Roundtrip("DELETE", "/collections/live/vectors/3");
  ASSERT_TRUE(removed.ok());
  ASSERT_EQ(removed.value().status, 200) << removed.value().body;
  EXPECT_EQ(MustParseBody(removed.value()).Find("deleted")->AsNumber(), 1.0);

  // The tombstoned row never surfaces again, even as an exact match.
  const std::vector<size_t> top = TopIds(Search(client, "live", 4.0, dim));
  for (const size_t id : top) EXPECT_NE(id, 3u);

  // Double delete: 404. Unknown id: 404. Garbage id: 400.
  Result<HttpResponse> again =
      client.Roundtrip("DELETE", "/collections/live/vectors/3");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().status, 404) << again.value().body;
  Result<HttpResponse> missing =
      client.Roundtrip("DELETE", "/collections/live/vectors/4096");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  Result<HttpResponse> garbage =
      client.Roundtrip("DELETE", "/collections/live/vectors/abc");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage.value().status, 400);
  Result<HttpResponse> huge =
      client.Roundtrip("DELETE", "/collections/live/vectors/4294967295");
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge.value().status, 400);
}

// --- Malformed ingest bodies --------------------------------------------

TEST(IngestWireTest, RejectsMalformedIngest) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  const size_t dim = 4;
  PutAxisCollection(client, "live", 3, dim);

  // Mixed id presence across NDJSON rows.
  Result<HttpResponse> mixed = client.Roundtrip(
      "POST", "/collections/live/vectors",
      "[1,0,0,0]\n{\"id\": 9, \"vector\": [2,0,0,0]}\n");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed.value().status, 400) << mixed.value().body;

  // Dimension mismatch against the hosted collection.
  Result<HttpResponse> short_row =
      client.Roundtrip("POST", "/collections/live/vectors", "[1,0]\n");
  ASSERT_TRUE(short_row.ok());
  EXPECT_EQ(short_row.value().status, 400);

  // Empty body, wrong method, unknown collection.
  Result<HttpResponse> empty =
      client.Roundtrip("POST", "/collections/live/vectors", "  \n ");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().status, 400);
  Result<HttpResponse> wrong_method =
      client.Roundtrip("GET", "/collections/live/vectors");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 400);
  Result<HttpResponse> ghost =
      client.Roundtrip("POST", "/collections/ghost/vectors", "[1,0,0,0]\n");
  ASSERT_TRUE(ghost.ok());
  EXPECT_EQ(ghost.value().status, 404);

  // Ids beyond the VectorId range.
  Result<HttpResponse> big_id = client.Roundtrip(
      "POST", "/collections/live/vectors",
      "{\"id\": 4294967295, \"vector\": [1,0,0,0]}\n");
  ASSERT_TRUE(big_id.ok());
  EXPECT_EQ(big_id.value().status, 400);

  // Nothing above mutated the collection.
  Result<HttpResponse> info = client.Roundtrip("GET", "/collections/live");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(MustParseBody(info.value()).Find("count")->AsNumber(), 3.0);
}

// --- Observability: /stats rows and /metrics series ---------------------

TEST(IngestWireTest, StatsAndMetricsCarryIngestState) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  const size_t dim = 4;
  PutAxisCollection(client, "live", 5, dim);

  Result<HttpResponse> posted = client.Roundtrip(
      "POST", "/collections/live/vectors", "[9,0,0,0]\n[8,0,0,0]\n");
  ASSERT_TRUE(posted.ok());
  ASSERT_EQ(posted.value().status, 200);
  Result<HttpResponse> removed =
      client.Roundtrip("DELETE", "/collections/live/vectors/0");
  ASSERT_TRUE(removed.ok());
  ASSERT_EQ(removed.value().status, 200);

  Result<HttpResponse> stats = client.Roundtrip("GET", "/stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().status, 200);
  const JsonValue body = MustParseBody(stats.value());
  const JsonValue* live = body.Find("collections")->Find("live");
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(live->Find("mutable")->AsBool());
  EXPECT_EQ(live->Find("count")->AsNumber(), 6.0);  // 5 + 2 - 1.
  EXPECT_EQ(live->Find("delta")->AsNumber(), 2.0);
  EXPECT_EQ(live->Find("tombstones")->AsNumber(), 1.0);
  EXPECT_EQ(live->Find("added")->AsNumber(), 2.0);
  EXPECT_EQ(live->Find("deleted")->AsNumber(), 1.0);
  EXPECT_EQ(live->Find("compactions")->AsNumber(), 0.0);
  EXPECT_GE(live->Find("delta_blocks")->AsNumber(), 1.0);
  EXPECT_GE(live->Find("base_blocks")->AsNumber(), 1.0);

  Result<HttpResponse> scrape = client.Roundtrip("GET", "/metrics");
  ASSERT_TRUE(scrape.ok());
  const std::string& text = scrape.value().body;
  EXPECT_DOUBLE_EQ(
      SeriesValue(text, "pdx_ingested_vectors_total{collection=\"live\"}"),
      2.0);
  EXPECT_DOUBLE_EQ(
      SeriesValue(text, "pdx_deleted_vectors_total{collection=\"live\"}"),
      1.0);
  EXPECT_DOUBLE_EQ(SeriesValue(text, "pdx_delta_vectors{collection=\"live\"}"),
                   2.0);
  EXPECT_DOUBLE_EQ(SeriesValue(text, "pdx_tombstones{collection=\"live\"}"),
                   1.0);
  EXPECT_DOUBLE_EQ(
      SeriesValue(text, "pdx_collection_vectors{collection=\"live\"}"), 6.0);
}

// --- PUT-replace semantics: slowlog resets, counters stay cumulative ----

TEST(IngestWireTest, PutReplaceResetsSlowlogKeepsCounters) {
  WireStack stack;
  HttpClient client = stack.NewClient();
  const size_t dim = 4;
  PutAxisCollection(client, "live", 5, dim);
  (void)Search(client, "live", 1.0, dim);
  (void)Search(client, "live", 2.0, dim);

  // Two completed queries: in the slowlog and the Prometheus counter.
  Result<HttpResponse> slowlog =
      client.Roundtrip("GET", "/collections/live/slowlog");
  ASSERT_TRUE(slowlog.ok());
  EXPECT_EQ(MustParseBody(slowlog.value()).Find("slowlog")->size(), 2u);
  Result<HttpResponse> scrape = client.Roundtrip("GET", "/metrics");
  ASSERT_TRUE(scrape.ok());
  EXPECT_DOUBLE_EQ(
      SeriesValue(
          scrape.value().body,
          "pdx_queries_total{collection=\"live\",outcome=\"completed\"}"),
      2.0);

  // Replace the collection under the same name. The slowlog describes the
  // hosted searcher — which is new — so it resets; the Prometheus counters
  // are cumulative time series keyed by name and must NOT reset.
  PutAxisCollection(client, "live", 7, dim);
  slowlog = client.Roundtrip("GET", "/collections/live/slowlog");
  ASSERT_TRUE(slowlog.ok());
  EXPECT_EQ(MustParseBody(slowlog.value()).Find("slowlog")->size(), 0u)
      << slowlog.value().body;

  (void)Search(client, "live", 1.0, dim);
  scrape = client.Roundtrip("GET", "/metrics");
  ASSERT_TRUE(scrape.ok());
  EXPECT_DOUBLE_EQ(
      SeriesValue(
          scrape.value().body,
          "pdx_queries_total{collection=\"live\",outcome=\"completed\"}"),
      3.0);  // 2 before the replace + 1 after: cumulative.
  // The replacement is mutable again (it was built from vectors).
  Result<HttpResponse> posted = client.Roundtrip(
      "POST", "/collections/live/vectors", "[5,0,0,0]\n");
  ASSERT_TRUE(posted.ok());
  EXPECT_EQ(posted.value().status, 200) << posted.value().body;
}

}  // namespace
}  // namespace pdx
