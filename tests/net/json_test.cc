#include "net/json.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>
#include <random>
#include <string>

namespace pdx {
namespace {

Result<JsonValue> Parse(const std::string& text) { return ParseJson(text); }

JsonValue MustParse(const std::string& text) {
  Result<JsonValue> parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

// --- Basic parsing ----------------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_EQ(MustParse("true").AsBool(), true);
  EXPECT_EQ(MustParse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(MustParse("42").AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-0.5").AsNumber(), -0.5);
  EXPECT_DOUBLE_EQ(MustParse("1.25e2").AsNumber(), 125.0);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
  EXPECT_DOUBLE_EQ(MustParse("  7  ").AsNumber(), 7.0);
}

TEST(JsonTest, ParsesNestedStructures) {
  const JsonValue doc =
      MustParse(R"({"a": [1, 2, [3]], "b": {"c": "x", "d": null}})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].AsNumber(), 1.0);
  ASSERT_TRUE(a->items()[2].is_array());
  EXPECT_DOUBLE_EQ(a->items()[2].items()[0].AsNumber(), 3.0);
  const JsonValue* b = doc.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->Find("c")->AsString(), "x");
  EXPECT_TRUE(b->Find("d")->is_null());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d\b\f\n\r\t")").AsString(),
            "a\"b\\c/d\b\f\n\r\t");
  // \uXXXX: ASCII, two-byte, three-byte, and a surrogate pair.
  EXPECT_EQ(MustParse(R"("\u0041")").AsString(), "A");
  EXPECT_EQ(MustParse(R"("\u00e9")").AsString(), "\xc3\xa9");
  EXPECT_EQ(MustParse(R"("\u20ac")").AsString(), "\xe2\x82\xac");
  EXPECT_EQ(MustParse(R"("\ud83d\ude00")").AsString(),
            "\xf0\x9f\x98\x80");  // U+1F600
  // Raw UTF-8 passes through byte-identically.
  EXPECT_EQ(MustParse("\"caf\xc3\xa9\"").AsString(), "caf\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "   ",         "{",           "[",
      "{\"a\":}",   "[1,]",        "{\"a\" 1}",   "tru",
      "nul",        "01",          "1.",          ".5",
      "1e",         "+1",          "\"unterminated", "[1 2]",
      "{\"a\":1,}", "\"\\x\"",     "\"\\u12\"",   "\"\\ud800\"",
      "\"\\ud800\\u0041\"",        "42 43",       "[1],",
      "{'a':1}",    "\"tab\there\"",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Parse(text).ok()) << "accepted: " << text;
  }
}

// --- NaN / Infinity rejection ----------------------------------------------

TEST(JsonTest, RejectsNonFiniteNumbers) {
  // The tokens are not JSON...
  EXPECT_FALSE(Parse("NaN").ok());
  EXPECT_FALSE(Parse("nan").ok());
  EXPECT_FALSE(Parse("Infinity").ok());
  EXPECT_FALSE(Parse("-Infinity").ok());
  EXPECT_FALSE(Parse("[1, NaN]").ok());
  // ...and a syntactically valid number must not overflow to infinity.
  EXPECT_FALSE(Parse("1e999").ok());
  EXPECT_FALSE(Parse("-1e999").ok());
  // Underflow rounds to zero rather than failing.
  EXPECT_DOUBLE_EQ(MustParse("1e-999").AsNumber(), 0.0);
}

TEST(JsonTest, NumbersParseUnderCommaDecimalLocale) {
  // The parser pins the "C" locale internally: an embedding process that
  // sets a comma-decimal LC_NUMERIC must not make valid JSON like 1.5
  // unparseable (plain strtod would stop at the '.').
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  bool switched = false;
  for (const char* name : {"de_DE.UTF-8", "fr_FR.UTF-8", "de_DE", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      switched = true;
      break;
    }
  }
  if (!switched) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  Result<JsonValue> parsed = Parse("[1.5, -2.25e1]");
  std::setlocale(LC_NUMERIC, saved.c_str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed.value().items()[0].AsNumber(), 1.5);
  EXPECT_DOUBLE_EQ(parsed.value().items()[1].AsNumber(), -22.5);
}

TEST(JsonTest, WriterRefusesNonFiniteAsNull) {
  // The writer's contract: non-finite numbers become null (debug builds
  // assert; this test documents the release-mode behavior).
#ifdef NDEBUG
  EXPECT_EQ(WriteJson(JsonValue(std::numeric_limits<double>::quiet_NaN())),
            "null");
  EXPECT_EQ(WriteJson(JsonValue(std::numeric_limits<double>::infinity())),
            "null");
#else
  GTEST_SKIP() << "debug builds assert on non-finite numbers";
#endif
}

// --- Depth bound ------------------------------------------------------------

TEST(JsonTest, DeepNestingIsBoundedNotFatal) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += '[';
  // With the default bound this must return an error, not overflow the
  // stack.
  EXPECT_FALSE(Parse(deep).ok());
  // A document at a modest depth parses fine.
  std::string ok = "1";
  for (int i = 0; i < 32; ++i) ok = "[" + ok + "]";
  EXPECT_TRUE(Parse(ok).ok());
  // An explicit tighter bound applies.
  EXPECT_FALSE(ParseJson(ok, 8).ok());
}

// --- Truncation never crashes ----------------------------------------------

TEST(JsonTest, EveryPrefixOfAValidDocumentFailsCleanly) {
  const std::string doc =
      R"({"name": "caf\u00e9", "values": [1.5, -2e-3, true, null], )"
      R"("nested": {"deep": [[["x"]]], "n": 1234567890123}})";
  ASSERT_TRUE(Parse(doc).ok());
  for (size_t cut = 0; cut < doc.size(); ++cut) {
    const Result<JsonValue> parsed = Parse(doc.substr(0, cut));
    // No prefix of this document is itself valid JSON (the top level is an
    // object that only closes at the last byte) — and none may crash.
    EXPECT_FALSE(parsed.ok()) << "prefix length " << cut;
    EXPECT_TRUE(parsed.status().IsInvalidArgument());
  }
}

// --- Writer -----------------------------------------------------------------

TEST(JsonTest, WriterEscapesAndOrdersDeterministically) {
  JsonValue doc = JsonValue::Object();
  doc.Set("quote\"back\\slash", "line\nbreak\ttab");
  doc.Set("ctrl", std::string("\x01\x1f"));
  JsonValue arr = JsonValue::Array();
  arr.Append(1.0);
  arr.Append(false);
  arr.Append(JsonValue::Null());
  doc.Set("arr", std::move(arr));
  EXPECT_EQ(WriteJson(doc),
            "{\"quote\\\"back\\\\slash\":\"line\\nbreak\\ttab\","
            "\"ctrl\":\"\\u0001\\u001f\",\"arr\":[1,false,null]}");
}

TEST(JsonTest, NumbersRoundTripShortest) {
  EXPECT_EQ(WriteJson(JsonValue(3.0)), "3");
  EXPECT_EQ(WriteJson(JsonValue(0.1)), "0.1");
  EXPECT_EQ(WriteJson(JsonValue(-0.0)), "-0");
  EXPECT_EQ(WriteJson(JsonValue(1e300)), "1e+300");
  EXPECT_EQ(WriteJson(JsonValue(static_cast<size_t>(9007199254740992))),
            "9007199254740992");  // 2^53 — the integer-exact ceiling.
}

// --- Round-trip property test ----------------------------------------------

/// Generates a random JSON value of bounded depth: the property-test
/// driver for write -> parse -> compare.
class RandomJson {
 public:
  explicit RandomJson(uint64_t seed) : rng_(seed) {}

  JsonValue Value(size_t depth) {
    // Leaves only at the bottom; containers get rarer with depth.
    const int kind = static_cast<int>(rng_() % (depth == 0 ? 4u : 6u));
    switch (kind) {
      case 0:
        return JsonValue::Null();
      case 1:
        return JsonValue(rng_() % 2 == 0);
      case 2:
        return JsonValue(Number());
      case 3:
        return JsonValue(String());
      case 4: {
        JsonValue array = JsonValue::Array();
        const size_t n = rng_() % 5;
        for (size_t i = 0; i < n; ++i) array.Append(Value(depth - 1));
        return array;
      }
      default: {
        JsonValue object = JsonValue::Object();
        const size_t n = rng_() % 5;
        for (size_t i = 0; i < n; ++i) {
          object.Set(String() + std::to_string(i), Value(depth - 1));
        }
        return object;
      }
    }
  }

 private:
  double Number() {
    switch (rng_() % 4) {
      case 0:
        return static_cast<double>(static_cast<int64_t>(rng_() % 2000001) -
                                   1000000);
      case 1:
        return std::uniform_real_distribution<double>(-1e6, 1e6)(rng_);
      case 2:
        // The full finite double range, log-uniform-ish via exponents.
        return std::ldexp(
            std::uniform_real_distribution<double>(-1.0, 1.0)(rng_),
            static_cast<int>(rng_() % 2000) - 1000);
      default:
        return 0.0;
    }
  }

  std::string String() {
    // Bytes across the whole range: ASCII, controls (escaped), UTF-8
    // sequences built from code points (always valid UTF-8).
    std::string s;
    const size_t n = rng_() % 12;
    for (size_t i = 0; i < n; ++i) {
      switch (rng_() % 4) {
        case 0:
          s.push_back(static_cast<char>('a' + rng_() % 26));
          break;
        case 1:
          s.push_back(static_cast<char>(rng_() % 0x20));  // Control chars.
          break;
        case 2:
          s.append("\"\\/ \xc3\xa9");  // The escape-heavy suspects.
          break;
        default: {
          // A multi-byte code point, encoded by the parser's own path via
          // an escape round-trip: just use a known UTF-8 snippet.
          s.append("\xe2\x82\xac");
          break;
        }
      }
    }
    return s;
  }

  std::mt19937_64 rng_;
};

TEST(JsonTest, RandomValuesRoundTripExactly) {
  RandomJson gen(20260731);
  for (int trial = 0; trial < 500; ++trial) {
    const JsonValue original = gen.Value(4);
    const std::string wire = WriteJson(original);
    Result<JsonValue> reparsed = Parse(wire);
    ASSERT_TRUE(reparsed.ok())
        << "writer produced unparseable JSON: " << wire << " -> "
        << reparsed.status().ToString();
    // Exact equality: numbers round-trip bit-for-bit (shortest-form
    // to_chars), strings byte-for-byte, structure node-for-node.
    EXPECT_TRUE(reparsed.value() == original) << wire;
    // And the round trip is a fixed point: writing again yields the same
    // bytes.
    EXPECT_EQ(WriteJson(reparsed.value()), wire);
  }
}

TEST(JsonTest, RandomDocumentPrefixesNeverCrash) {
  RandomJson gen(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string wire = WriteJson(gen.Value(3));
    for (size_t cut = 0; cut <= wire.size(); ++cut) {
      // Some prefixes of some documents ARE valid JSON ("[1,2]" cut to
      // "1"... is not, but "1000" cut to "100" is). Only the no-crash,
      // no-hang property is universal.
      (void)Parse(wire.substr(0, cut));
    }
  }
}

}  // namespace
}  // namespace pdx
