// Wire concurrency stress: M client threads x pipelined requests against a
// hot (unsharded) and a sharded collection, with a collection-churn thread
// adding/removing a third name the whole time. Every response must be
// accounted for, every search answer must be byte-exact against the
// in-process reference, and the final /stats snapshot must balance. Runs
// in the TSan and ASan CI jobs next to serve_dispatch_stress_test — the
// data-race and lifetime gate for the whole net/ + serve/ stack.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datagen.h"
#include "core/sharded_searcher.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

JsonValue QueryJson(const float* query, size_t dim) {
  JsonValue out = JsonValue::Array();
  for (size_t d = 0; d < dim; ++d) out.Append(static_cast<double>(query[d]));
  return out;
}

TEST(HttpStressTest, PipelinedClientsAgainstHotAndShardedCollections) {
  SyntheticSpec spec;
  spec.name = "net-stress";
  spec.dim = 16;
  spec.count = 2000;
  spec.num_queries = 8;
  spec.num_clusters = 8;
  spec.seed = 83;
  spec.distribution = ValueDistribution::kNormal;
  Dataset data = GenerateDataset(spec);

  ServiceConfig service_config;
  service_config.threads = 2;
  service_config.dispatchers = 2;
  service_config.max_pending = 4096;
  SearchService service(service_config);

  SearcherConfig hot;  // flat / bond: exact, so parity is byte-exact.
  ASSERT_TRUE(service.AddCollection("hot", data.data, hot).ok());
  ShardingOptions sharding;
  sharding.num_shards = 3;
  ASSERT_TRUE(service.AddCollection("sharded", data.data, hot, sharding).ok());

  SearchHandler handler(service);
  HttpServer server;
  ASSERT_TRUE(server.Start(handler.AsHttpHandler()).ok());

  // Ground truth, computed sequentially up front — per target, because a
  // sharded build's distances can differ from the unsharded ones by ULPs
  // (different block boundaries per shard slice).
  auto reference_hot = MakeSearcher(data.data, hot);
  auto reference_sharded = MakeShardedSearcher(data.data, hot, sharding);
  ASSERT_TRUE(reference_hot.ok());
  ASSERT_TRUE(reference_sharded.ok());
  const size_t nq = data.queries.count();
  std::vector<std::vector<Neighbor>> expected_hot(nq), expected_sharded(nq);
  std::vector<std::string> bodies(nq);
  for (size_t q = 0; q < nq; ++q) {
    expected_hot[q] = reference_hot.value()->Search(
        data.queries.Vector(static_cast<VectorId>(q)));
    expected_sharded[q] = reference_sharded.value()->Search(
        data.queries.Vector(static_cast<VectorId>(q)));
    JsonValue request = JsonValue::Object();
    request.Set("query",
                QueryJson(data.queries.Vector(static_cast<VectorId>(q)),
                          data.queries.dim()));
    bodies[q] = WriteJson(request);
  }

  constexpr size_t kClients = 4;
  constexpr size_t kRounds = 4;
  constexpr size_t kPipeline = 16;
  std::atomic<size_t> responses{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> non_200{0};

  // A churn thread PUTs and DELETEs a third collection the whole time:
  // the searchers under "hot"/"sharded" must be completely unaffected.
  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return;
    JsonValue put = JsonValue::Object();
    JsonValue rows = JsonValue::Array();
    for (size_t i = 0; i < 64; ++i) {
      rows.Append(QueryJson(data.data.Vector(static_cast<VectorId>(i)),
                            data.data.dim()));
    }
    put.Set("vectors", std::move(rows));
    const std::string body = WriteJson(put);
    while (!stop_churn.load()) {
      Result<HttpResponse> created =
          client.Roundtrip("PUT", "/collections/churn", body);
      if (!created.ok() || created.value().status != 201) return;
      Result<HttpResponse> removed =
          client.Roundtrip("DELETE", "/collections/churn");
      if (!removed.ok() || removed.value().status != 200) return;
    }
  });

  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        mismatches.fetch_add(1);
        return;
      }
      const std::string target = t % 2 == 0 ? "/collections/hot/search"
                                            : "/collections/sharded/search";
      const std::vector<std::vector<Neighbor>>& expected =
          t % 2 == 0 ? expected_hot : expected_sharded;
      for (size_t round = 0; round < kRounds; ++round) {
        // Fill the pipeline, then drain it: every request gets exactly one
        // response, in order.
        std::vector<size_t> sent;
        for (size_t i = 0; i < kPipeline; ++i) {
          const size_t q = (t + round + i) % nq;
          if (!client.SendRequest("POST", target, bodies[q]).ok()) {
            mismatches.fetch_add(1);
            return;
          }
          sent.push_back(q);
        }
        for (const size_t q : sent) {
          Result<HttpResponse> response = client.ReadResponse();
          if (!response.ok()) {
            mismatches.fetch_add(1);
            return;
          }
          responses.fetch_add(1);
          if (response.value().status != 200) {
            non_200.fetch_add(1);
            continue;
          }
          Result<JsonValue> body = ParseJson(response.value().body);
          if (!body.ok()) {
            mismatches.fetch_add(1);
            continue;
          }
          const JsonValue* neighbors = body.value().Find("neighbors");
          if (neighbors == nullptr ||
              neighbors->size() != expected[q].size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < expected[q].size(); ++i) {
            const JsonValue& hit = neighbors->items()[i];
            if (static_cast<VectorId>(hit.Find("id")->AsNumber()) !=
                    expected[q][i].id ||
                static_cast<float>(hit.Find("distance")->AsNumber()) !=
                    expected[q][i].distance) {
              mismatches.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  stop_churn.store(true);
  churn.join();

  // Every pipelined request came back, every answer exact, none failed.
  EXPECT_EQ(responses.load(), kClients * kRounds * kPipeline);
  EXPECT_EQ(non_200.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  // Final wire snapshot balances: dispatcher counts sum to collection
  // dispatches, and completions cover every search served.
  HttpClient stats_client;
  ASSERT_TRUE(stats_client.Connect("127.0.0.1", server.port()).ok());
  Result<HttpResponse> stats = stats_client.Roundtrip("GET", "/stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().status, 200);
  Result<JsonValue> body = ParseJson(stats.value().body);
  ASSERT_TRUE(body.ok());
  double dispatcher_total = 0;
  for (const JsonValue& ds : body.value().Find("dispatchers")->items()) {
    dispatcher_total += ds.Find("dispatches")->AsNumber();
  }
  double collection_total = 0;
  double completed_total = 0;
  for (const auto& [name, entry] :
       body.value().Find("collections")->members()) {
    collection_total += entry.Find("dispatches")->AsNumber();
    completed_total += entry.Find("completed")->AsNumber();
  }
  EXPECT_EQ(dispatcher_total, collection_total) << stats.value().body;
  // hot + sharded searches; the churn collection served none.
  EXPECT_GE(completed_total,
            static_cast<double>(kClients * kRounds * kPipeline));

  server.Stop();
  service.Shutdown();
}

/// Many short-lived connections racing the acceptor's reaping: no leak,
/// no hang, every connection served (or crisply refused at the 503 cap).
TEST(HttpStressTest, ConnectionChurnAndCapacityCap) {
  SyntheticSpec spec;
  spec.name = "net-churn";
  spec.dim = 8;
  spec.count = 400;
  spec.num_queries = 4;
  spec.num_clusters = 4;
  spec.seed = 85;
  spec.distribution = ValueDistribution::kNormal;
  Dataset data = GenerateDataset(spec);

  SearchService service;
  SearcherConfig config;
  ASSERT_TRUE(service.AddCollection("flat", data.data, config).ok());
  SearchHandler handler(service);
  HttpServerConfig server_config;
  server_config.max_connections = 8;
  HttpServer server(server_config);
  ASSERT_TRUE(server.Start(handler.AsHttpHandler()).ok());

  constexpr size_t kThreads = 4;
  constexpr size_t kConnectionsPerThread = 25;
  std::atomic<size_t> served{0};
  std::atomic<size_t> refused{0};
  std::atomic<size_t> broken{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kConnectionsPerThread; ++i) {
        HttpClient client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) {
          broken.fetch_add(1);
          continue;
        }
        Result<HttpResponse> response = client.Roundtrip("GET", "/healthz");
        if (!response.ok()) {
          broken.fetch_add(1);
        } else if (response.value().status == 200) {
          served.fetch_add(1);
        } else if (response.value().status == 503) {
          refused.fetch_add(1);  // Over the connection cap: explicit, not a hang.
        } else {
          broken.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(broken.load(), 0u);
  EXPECT_EQ(served.load() + refused.load(), kThreads * kConnectionsPerThread);
  // With 4 concurrent clients against a cap of 8 the cap should never
  // actually bind — but a few refusals are acceptable if reaping lags.
  EXPECT_GT(served.load(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace pdx
