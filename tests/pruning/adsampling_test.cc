#include "pruning/adsampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "core/searcher.h"
#include "index/flat.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

Dataset SmallDataset(size_t dim = 32, uint64_t seed = 3) {
  SyntheticSpec spec;
  spec.name = "ads-test";
  spec.dim = dim;
  spec.count = 3000;
  spec.num_queries = 20;
  spec.num_clusters = 10;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(AdSamplingTest, RatiosEndpoints) {
  AdSamplingPruner pruner(100);
  EXPECT_FLOAT_EQ(pruner.Ratio(100), 1.0f);
  EXPECT_FLOAT_EQ(pruner.Ratio(0), 0.0f);
}

TEST(AdSamplingTest, RatiosMatchFormula) {
  const float eps0 = 2.1f;
  AdSamplingPruner pruner(64, eps0);
  for (size_t d = 1; d < 64; ++d) {
    const double amplifier = 1.0 + eps0 / std::sqrt(double(d));
    const double expected = double(d) / 64.0 * amplifier * amplifier;
    ASSERT_NEAR(pruner.Ratio(d), expected, 1e-5) << "d=" << d;
  }
}

TEST(AdSamplingTest, RatiosIncreaseUntilFinalDim) {
  // Monotone over the hypothesis-testing range; at d == D the test becomes
  // exact and the multiplier snaps down to 1 (no amplification needed).
  AdSamplingPruner pruner(128);
  for (size_t d = 2; d < 128; ++d) {
    ASSERT_GT(pruner.Ratio(d), pruner.Ratio(d - 1));
  }
  EXPECT_FLOAT_EQ(pruner.Ratio(128), 1.0f);
  EXPECT_GT(pruner.Ratio(127), 1.0f);  // Amplified above the exact test.
}

TEST(AdSamplingTest, TransformPreservesPairwiseDistances) {
  Dataset dataset = SmallDataset();
  AdSamplingPruner pruner(32);
  VectorSet rotated = pruner.TransformCollection(dataset.data);
  std::vector<float> rotated_query(32);
  for (size_t q = 0; q < 5; ++q) {
    pruner.TransformQuery(dataset.queries.Vector(q), rotated_query.data());
    for (size_t i = 0; i < 50; ++i) {
      const float original =
          ScalarL2(dataset.queries.Vector(q), dataset.data.Vector(i), 32);
      const float after =
          ScalarL2(rotated_query.data(), rotated.Vector(i), 32);
      ASSERT_NEAR(after, original, 1e-2f + 1e-4f * original);
    }
  }
}

TEST(AdSamplingTest, FilterKeepsOnlyPassingLanes) {
  AdSamplingPruner pruner(16, 2.1f);
  AdSamplingPruner::QueryState qs;  // Filter does not read the state.
  // distances over 8 of 16 dims; threshold 10.
  const float threshold = 10.0f;
  const float bound = threshold * pruner.Ratio(8);
  std::vector<float> distances = {bound - 1.0f, bound + 1.0f, 0.0f,
                                  bound - 0.01f};
  std::vector<uint32_t> positions = {0, 1, 2, 3};
  const size_t alive = pruner.FilterSurvivors(
      qs, 0, distances.data(), 8, threshold, positions.data(), 4);
  ASSERT_EQ(alive, 3u);
  EXPECT_EQ(positions[0], 0u);
  EXPECT_EQ(positions[1], 2u);
  EXPECT_EQ(positions[2], 3u);
}

TEST(AdSamplingTest, FilterAtFullDimIsExact) {
  AdSamplingPruner pruner(4);
  AdSamplingPruner::QueryState qs;
  std::vector<float> distances = {5.0f, 15.0f};
  std::vector<uint32_t> positions = {0, 1};
  const size_t alive = pruner.FilterSurvivors(qs, 0, distances.data(), 4,
                                              10.0f, positions.data(), 2);
  ASSERT_EQ(alive, 1u);
  EXPECT_EQ(positions[0], 0u);
}

TEST(AdSamplingTest, HorizontalSearchHighRecall) {
  Dataset dataset = SmallDataset(48, 5);
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  AdSamplingPruner pruner(48, 2.1f);
  VectorSet rotated = pruner.TransformCollection(dataset.data);
  BucketOrderedSet ordered = ReorderByBuckets(rotated, index);
  DualBlockStore dual = DualBlockStore::FromVectorSet(ordered.vectors, 12);

  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);
  double recall_sum = 0.0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto result = IvfHorizontalAdsSearch(
        pruner, index, dual, ordered.ids, ordered.offsets,
        dataset.queries.Vector(q), 10, index.num_buckets(),
        HorizontalKernel::kSimd, 12);
    recall_sum += RecallAtK(result, truth[q], 10);
  }
  // Full probing + eps0=2.1: recall should be essentially 1.
  EXPECT_GT(recall_sum / dataset.queries.count(), 0.95);
}

TEST(AdSamplingTest, ScalarAndSimdHorizontalAgree) {
  Dataset dataset = SmallDataset(24, 6);
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  AdSamplingPruner pruner(24, 2.1f);
  VectorSet rotated = pruner.TransformCollection(dataset.data);
  BucketOrderedSet ordered = ReorderByBuckets(rotated, index);
  DualBlockStore dual = DualBlockStore::FromVectorSet(ordered.vectors, 6);

  for (size_t q = 0; q < 5; ++q) {
    const auto scalar = IvfHorizontalAdsSearch(
        pruner, index, dual, ordered.ids, ordered.offsets,
        dataset.queries.Vector(q), 10, 8, HorizontalKernel::kScalar, 6);
    const auto simd = IvfHorizontalAdsSearch(
        pruner, index, dual, ordered.ids, ordered.offsets,
        dataset.queries.Vector(q), 10, 8, HorizontalKernel::kSimd, 6);
    ASSERT_EQ(scalar.size(), simd.size());
    for (size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(scalar[i].id, simd[i].id) << "query " << q << " rank " << i;
    }
  }
}

TEST(AdSamplingTest, DeterministicRotationPerSeed) {
  AdSamplingPruner a(16, 2.1f, 7);
  AdSamplingPruner b(16, 2.1f, 7);
  EXPECT_DOUBLE_EQ(a.rotation().FrobeniusDistance(b.rotation()), 0.0);
  AdSamplingPruner c(16, 2.1f, 8);
  EXPECT_GT(a.rotation().FrobeniusDistance(c.rotation()), 0.1);
}

TEST(AdSamplingTest, LargerEpsilonPrunesLess) {
  // Bigger eps0 -> bigger ratio -> harder to prune (more conservative).
  AdSamplingPruner tight(64, 1.0f);
  AdSamplingPruner loose(64, 4.0f);
  for (size_t d = 1; d < 64; ++d) {
    ASSERT_LT(tight.Ratio(d), loose.Ratio(d));
  }
}

}  // namespace
}  // namespace pdx
