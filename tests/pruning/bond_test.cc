#include "pruning/bond.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/random.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

bool IsPermutation(const std::vector<uint32_t>& order, size_t dim) {
  if (order.size() != dim) return false;
  std::set<uint32_t> seen(order.begin(), order.end());
  return seen.size() == dim && *seen.rbegin() == dim - 1;
}

class VisitOrderTest : public ::testing::TestWithParam<DimensionOrder> {};

TEST_P(VisitOrderTest, IsAlwaysAPermutation) {
  const size_t dim = 37;
  Rng rng(1);
  std::vector<float> query(dim);
  std::vector<float> means(dim);
  for (size_t d = 0; d < dim; ++d) {
    query[d] = static_cast<float>(rng.Gaussian());
    means[d] = static_cast<float>(rng.Gaussian());
  }
  const auto order = ComputeVisitOrder(query.data(), means, GetParam(), 8);
  EXPECT_TRUE(IsPermutation(order, dim))
      << DimensionOrderName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Criteria, VisitOrderTest,
    ::testing::Values(DimensionOrder::kSequential,
                      DimensionOrder::kDecreasingQuery,
                      DimensionOrder::kDistanceToMeans,
                      DimensionOrder::kDimensionZones));

TEST(VisitOrderTest, SequentialIsIdentity) {
  std::vector<float> query(5, 0.0f);
  std::vector<float> means(5, 0.0f);
  const auto order =
      ComputeVisitOrder(query.data(), means, DimensionOrder::kSequential);
  for (uint32_t d = 0; d < 5; ++d) EXPECT_EQ(order[d], d);
}

TEST(VisitOrderTest, DecreasingSortsByAbsoluteQueryValue) {
  const std::vector<float> query = {0.5f, -3.0f, 1.0f, 2.0f};
  const std::vector<float> means(4, 0.0f);
  const auto order = ComputeVisitOrder(query.data(), means,
                                       DimensionOrder::kDecreasingQuery);
  EXPECT_EQ(order[0], 1u);  // |-3| biggest.
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
}

TEST(VisitOrderTest, DistanceToMeansUsesMeans) {
  // Query value 5 everywhere; means differ -> ranking by |5 - mean|.
  const std::vector<float> query = {5.0f, 5.0f, 5.0f};
  const std::vector<float> means = {5.0f, 0.0f, 3.0f};
  const auto order = ComputeVisitOrder(query.data(), means,
                                       DimensionOrder::kDistanceToMeans);
  EXPECT_EQ(order[0], 1u);  // Distance 5.
  EXPECT_EQ(order[1], 2u);  // Distance 2.
  EXPECT_EQ(order[2], 0u);  // Distance 0.
}

TEST(VisitOrderTest, ZonesKeepDimensionsContiguous) {
  const size_t dim = 32;
  const size_t zone_size = 8;
  Rng rng(2);
  std::vector<float> query(dim);
  std::vector<float> means(dim, 0.0f);
  for (float& v : query) v = static_cast<float>(rng.Gaussian());
  const auto order = ComputeVisitOrder(query.data(), means,
                                       DimensionOrder::kDimensionZones,
                                       zone_size);
  ASSERT_TRUE(IsPermutation(order, dim));
  // Within every zone-size window of the order, dims must be consecutive
  // and ascending (whole zones are emitted atomically).
  for (size_t z = 0; z < dim / zone_size; ++z) {
    const uint32_t base = order[z * zone_size];
    EXPECT_EQ(base % zone_size, 0u) << "zone " << z << " starts mid-zone";
    for (size_t j = 1; j < zone_size; ++j) {
      ASSERT_EQ(order[z * zone_size + j], base + j);
    }
  }
}

TEST(VisitOrderTest, ZonesRankedByDistanceToMeans) {
  // Two zones of two dims; second zone has far larger |q - mean|.
  const std::vector<float> query = {0.1f, 0.1f, 9.0f, 9.0f};
  const std::vector<float> means = {0.0f, 0.0f, 0.0f, 0.0f};
  const auto order = ComputeVisitOrder(query.data(), means,
                                       DimensionOrder::kDimensionZones, 2);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 1u);
}

TEST(VisitOrderTest, ZoneSizeLargerThanDim) {
  const std::vector<float> query = {1.0f, 2.0f};
  const std::vector<float> means = {0.0f, 0.0f};
  const auto order = ComputeVisitOrder(query.data(), means,
                                       DimensionOrder::kDimensionZones, 64);
  EXPECT_TRUE(IsPermutation(order, 2));
}

TEST(BondBoundTest, UpperBoundDominatesTrueDistance) {
  const size_t dim = 12;
  Rng rng(3);
  const size_t count = 200;
  std::vector<float> data(count * dim);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  DimensionStats stats = ComputeStats(data.data(), count, dim);

  std::vector<float> query(dim);
  for (float& v : query) v = static_cast<float>(rng.Gaussian());

  std::vector<uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  const auto suffix = BondUpperBoundSuffix(query.data(), stats, order);
  ASSERT_EQ(suffix.size(), dim + 1);
  EXPECT_FLOAT_EQ(suffix[dim], 0.0f);

  // partial(j) + suffix[j] >= full distance for every vector and depth.
  for (size_t i = 0; i < count; ++i) {
    const float* v = data.data() + i * dim;
    const float full = ScalarL2(query.data(), v, dim);
    float partial = 0.0f;
    for (size_t j = 0; j <= dim; ++j) {
      ASSERT_GE(partial + suffix[j], full * (1.0f - 1e-5f) - 1e-4f)
          << "vector " << i << " depth " << j;
      if (j < dim) {
        const float diff = query[order[j]] - v[order[j]];
        partial += diff * diff;
      }
    }
  }
}

TEST(BondBoundTest, SuffixDecreasesMonotonically) {
  const size_t dim = 6;
  Rng rng(4);
  std::vector<float> data(50 * dim);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  DimensionStats stats = ComputeStats(data.data(), 50, dim);
  std::vector<float> query(dim, 0.5f);
  std::vector<uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  const auto suffix = BondUpperBoundSuffix(query.data(), stats, order);
  for (size_t j = 1; j <= dim; ++j) ASSERT_LE(suffix[j], suffix[j - 1]);
}

TEST(BondTest, OrderNames) {
  EXPECT_STREQ(DimensionOrderName(DimensionOrder::kSequential), "sequential");
  EXPECT_STREQ(DimensionOrderName(DimensionOrder::kDecreasingQuery),
               "decreasing");
  EXPECT_STREQ(DimensionOrderName(DimensionOrder::kDistanceToMeans),
               "distance-to-means");
  EXPECT_STREQ(DimensionOrderName(DimensionOrder::kDimensionZones),
               "dimension-zones");
}

}  // namespace
}  // namespace pdx
