#include "pruning/bsa.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "core/searcher.h"
#include "index/flat.h"
#include "kernels/scalar_kernels.h"

namespace pdx {
namespace {

Dataset SmallDataset(size_t dim = 24, uint64_t seed = 21) {
  SyntheticSpec spec;
  spec.name = "bsa-test";
  spec.dim = dim;
  spec.count = 2500;
  spec.num_queries = 15;
  spec.num_clusters = 8;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(BsaTest, SuffixNormsMatchDirectComputation) {
  const std::vector<float> v = {3.0f, -4.0f, 12.0f};
  std::vector<float> out(4);
  BsaPruner::SuffixNorms(v.data(), 3, out.data());
  EXPECT_FLOAT_EQ(out[3], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 12.0f);
  EXPECT_FLOAT_EQ(out[1], std::sqrt(16.0f + 144.0f));
  EXPECT_FLOAT_EQ(out[0], 13.0f);  // sqrt(9+16+144) = 13.
}

TEST(BsaTest, SuffixNormsMonotoneDecreasing) {
  const std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> out(5);
  BsaPruner::SuffixNorms(v.data(), 4, out.data());
  for (size_t d = 1; d <= 4; ++d) ASSERT_LE(out[d], out[d - 1]);
}

TEST(BsaTest, TransformPreservesDistances) {
  Dataset dataset = SmallDataset();
  BsaPruner pruner(dataset.data, 1.0f);
  VectorSet projected = pruner.TransformCollection(dataset.data);
  std::vector<float> projected_query(dataset.dim());
  for (size_t q = 0; q < 5; ++q) {
    pruner.TransformQuery(dataset.queries.Vector(q), projected_query.data());
    for (size_t i = 0; i < 40; ++i) {
      const float original = ScalarL2(dataset.queries.Vector(q),
                                      dataset.data.Vector(i), dataset.dim());
      const float after = ScalarL2(projected_query.data(),
                                   projected.Vector(i), dataset.dim());
      ASSERT_NEAR(after, original, 1e-2f + 1e-3f * original);
    }
  }
}

TEST(BsaTest, CauchySchwarzBoundIsLowerBound) {
  // With m=1 the estimate must never exceed the true distance.
  Dataset dataset = SmallDataset(16, 22);
  BsaPruner pruner(dataset.data, 1.0f);
  VectorSet projected = pruner.TransformCollection(dataset.data);

  const size_t dim = dataset.dim();
  std::vector<float> suffix_v(dim + 1);
  for (size_t q = 0; q < 5; ++q) {
    BsaPruner::QueryState qs =
        pruner.PrepareQuery(dataset.queries.Vector(q));
    for (size_t i = 0; i < 30; ++i) {
      const float* v = projected.Vector(i);
      BsaPruner::SuffixNorms(v, dim, suffix_v.data());
      const float full = ScalarL2(qs.query.data(), v, dim);
      float partial = 0.0f;
      for (size_t d = 0; d < dim; ++d) {
        const float sv = suffix_v[d];
        const float sq = qs.suffix_norms[d];
        const float estimate = partial + sv * sv + sq * sq - 2.0f * sv * sq;
        ASSERT_LE(estimate, full * (1.0f + 1e-4f) + 1e-3f)
            << "vector " << i << " depth " << d;
        const float diff = qs.query[d] - v[d];
        partial += diff * diff;
      }
    }
  }
}

TEST(BsaTest, ExactWithMultiplierOne) {
  // m=1 keeps the bound exact, so a full-probe BSA search is brute force.
  Dataset dataset = SmallDataset(20, 23);
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  BsaConfig config;
  config.multiplier = 1.0f;
  auto searcher = MakeBsaIvfSearcher(dataset.data, index, config);

  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto actual = searcher->Search(query, 10, index.num_buckets());
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id) << "query " << q << " rank "
                                              << i;
    }
  }
}

TEST(BsaTest, SmallerMultiplierPrunesMore) {
  Dataset dataset = SmallDataset(24, 24);
  IvfIndex index = IvfIndex::Build(dataset.data, {});

  BsaConfig exact;
  exact.multiplier = 1.0f;
  auto exact_searcher = MakeBsaIvfSearcher(dataset.data, index, exact);
  BsaConfig aggressive;
  aggressive.multiplier = 0.2f;
  auto aggressive_searcher =
      MakeBsaIvfSearcher(dataset.data, index, aggressive);

  uint64_t scanned_exact = 0;
  uint64_t scanned_aggressive = 0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    exact_searcher->Search(query, 10, index.num_buckets());
    scanned_exact += exact_searcher->last_profile().values_scanned;
    aggressive_searcher->Search(query, 10, index.num_buckets());
    scanned_aggressive += aggressive_searcher->last_profile().values_scanned;
  }
  EXPECT_LT(scanned_aggressive, scanned_exact);
}

TEST(BsaTest, AggressiveMultiplierStillDecentRecall) {
  Dataset dataset = SmallDataset(32, 25);
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  BsaConfig config;
  config.multiplier = 0.8f;
  auto searcher = MakeBsaIvfSearcher(dataset.data, index, config);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 10, Metric::kL2);
  double recall_sum = 0.0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto result =
        searcher->Search(dataset.queries.Vector(q), 10, index.num_buckets());
    recall_sum += RecallAtK(result, truth[q], 10);
  }
  EXPECT_GT(recall_sum / dataset.queries.count(), 0.8);
}

TEST(BsaTest, HorizontalBsaMatchesPdxBsaWhenExact) {
  Dataset dataset = SmallDataset(16, 26);
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  BsaPruner pruner(dataset.data, 1.0f);
  VectorSet projected = pruner.TransformCollection(dataset.data);
  BucketOrderedSet ordered = ReorderByBuckets(projected, index);
  DualBlockStore dual = DualBlockStore::FromVectorSet(ordered.vectors, 4);

  // Per-position suffix norms.
  const size_t dim = dataset.dim();
  std::vector<float> suffix((dim + 1) * ordered.vectors.count());
  for (size_t pos = 0; pos < ordered.vectors.count(); ++pos) {
    BsaPruner::SuffixNorms(ordered.vectors.Vector(pos), dim,
                           suffix.data() + pos * (dim + 1));
  }

  for (size_t q = 0; q < 5; ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto horizontal = IvfHorizontalBsaSearch(
        pruner, index, dual, ordered.ids, ordered.offsets, suffix, query, 10,
        index.num_buckets(), /*use_simd=*/true, 4);
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(horizontal[i].id, expected[i].id)
          << "query " << q << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace pdx
