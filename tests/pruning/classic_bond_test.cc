#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "benchlib/datagen.h"
#include "index/flat.h"
#include "pruning/bond.h"
#include "storage/block_stats.h"
#include "storage/dsm_store.h"

namespace pdx {
namespace {

Dataset MakeDataset(size_t dim, ValueDistribution distribution,
                    uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "classic-bond";
  spec.dim = dim;
  spec.count = 1500;
  spec.num_queries = 10;
  spec.num_clusters = 6;
  spec.seed = seed;
  spec.distribution = distribution;
  return GenerateDataset(spec);
}

using ClassicParam = std::tuple<DimensionOrder, ValueDistribution, size_t>;

class ClassicBondTest : public ::testing::TestWithParam<ClassicParam> {};

// The 2002 algorithm is exact: identical results to brute force under any
// visit order and distribution.
TEST_P(ClassicBondTest, EqualsBruteForce) {
  const auto [order, distribution, dim] = GetParam();
  Dataset dataset = MakeDataset(dim, distribution, 5 + dim);
  DsmStore store = DsmStore::FromVectorSet(dataset.data);
  const DimensionStats stats =
      ComputeStats(dataset.data.data(), dataset.data.count(), dim);

  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto actual = ClassicBondSearch(store, stats, query, 10, order);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id)
          << DimensionOrderName(order) << " query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClassicBondTest,
    ::testing::Combine(
        ::testing::Values(DimensionOrder::kSequential,
                          DimensionOrder::kDecreasingQuery,
                          DimensionOrder::kDistanceToMeans),
        ::testing::Values(ValueDistribution::kNormal,
                          ValueDistribution::kSkewed),
        ::testing::Values(12, 40)),
    [](const ::testing::TestParamInfo<ClassicParam>& info) {
      std::string name = DimensionOrderName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + ValueDistributionName(std::get<1>(info.param)) +
             "_d" + std::to_string(std::get<2>(info.param));
    });

TEST(ClassicBondTest, EmptyCollection) {
  VectorSet empty(4);
  DsmStore store = DsmStore::FromVectorSet(empty);
  DimensionStats stats = ComputeStats(nullptr, 0, 4);
  const float query[4] = {1, 2, 3, 4};
  EXPECT_TRUE(ClassicBondSearch(store, stats, query, 5).empty());
}

TEST(ClassicBondTest, KLargerThanCollection) {
  Dataset dataset = MakeDataset(8, ValueDistribution::kNormal, 99);
  VectorSet tiny = dataset.data.Select({0, 1, 2});
  DsmStore store = DsmStore::FromVectorSet(tiny);
  const DimensionStats stats = ComputeStats(tiny.data(), 3, 8);
  const auto result =
      ClassicBondSearch(store, stats, dataset.queries.Vector(0), 10);
  EXPECT_EQ(result.size(), 3u);
}

TEST(ClassicBondTest, SkewedDataPrunesAggressively) {
  // Not a timing test: just confirm it still returns exact results when
  // pruning is heavy (skewed data has powerful min/max bounds).
  Dataset dataset = MakeDataset(24, ValueDistribution::kSkewed, 101);
  DsmStore store = DsmStore::FromVectorSet(dataset.data);
  const DimensionStats stats =
      ComputeStats(dataset.data.data(), dataset.data.count(), 24);
  const float* query = dataset.queries.Vector(0);
  const auto expected = FlatSearchNary(dataset.data, query, 1, Metric::kL2);
  const auto actual = ClassicBondSearch(store, stats, query, 1);
  ASSERT_EQ(actual.size(), 1u);
  EXPECT_EQ(actual[0].id, expected[0].id);
}

}  // namespace
}  // namespace pdx
