#include "pruning/pdx_bond.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "benchlib/datagen.h"
#include "core/searcher.h"
#include "index/flat.h"

namespace pdx {
namespace {

Dataset MakeDataset(size_t dim, ValueDistribution distribution,
                    uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "bond-test";
  spec.dim = dim;
  spec.count = 2200;
  spec.num_queries = 12;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = distribution;
  return GenerateDataset(spec);
}

using BondParam = std::tuple<DimensionOrder, ValueDistribution, size_t>;

class PdxBondExactnessTest : public ::testing::TestWithParam<BondParam> {};

// The central property of PDX-BOND: it is EXACT — same results as brute
// force, for every order criterion, on every distribution.
TEST_P(PdxBondExactnessTest, FlatSearchEqualsBruteForce) {
  const auto [order, distribution, dim] = GetParam();
  Dataset dataset = MakeDataset(dim, distribution, 31 + dim);

  BondConfig config;
  config.order = order;
  config.zone_size = 8;
  config.block_capacity = 512;
  auto searcher = MakeBondFlatSearcher(dataset.data, config);

  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL2);
    const auto actual = searcher->Search(query, 10);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id)
          << DimensionOrderName(order) << " query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PdxBondExactnessTest,
    ::testing::Combine(
        ::testing::Values(DimensionOrder::kSequential,
                          DimensionOrder::kDecreasingQuery,
                          DimensionOrder::kDistanceToMeans,
                          DimensionOrder::kDimensionZones),
        ::testing::Values(ValueDistribution::kNormal,
                          ValueDistribution::kSkewed),
        ::testing::Values(16, 48)),
    [](const ::testing::TestParamInfo<BondParam>& info) {
      std::string name = DimensionOrderName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" +
             ValueDistributionName(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

// The partial-distance lower bound is monotone for L1 too (a sum of
// absolute values), so PDX-BOND must be exact under the Manhattan metric
// as well.
TEST(PdxBondTest, ExactUnderL1Metric) {
  Dataset dataset = MakeDataset(24, ValueDistribution::kSkewed, 76);
  BondConfig config;
  config.order = DimensionOrder::kDistanceToMeans;
  config.block_capacity = 512;
  config.search.metric = Metric::kL1;
  auto searcher = MakeBondFlatSearcher(dataset.data, config);
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const float* query = dataset.queries.Vector(q);
    const auto expected = FlatSearchNary(dataset.data, query, 10, Metric::kL1);
    const auto actual = searcher->Search(query, 10);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].id, expected[i].id) << "L1 query " << q;
    }
  }
}

TEST(PdxBondTest, IvfSearchExactWithinProbedBuckets) {
  Dataset dataset = MakeDataset(24, ValueDistribution::kSkewed, 77);
  IvfIndex index = IvfIndex::Build(dataset.data, {});
  auto bond = MakeBondIvfSearcher(dataset.data, index, {});
  BucketOrderedSet ordered = ReorderByBuckets(dataset.data, index);

  // Same nprobe: PDX-BOND must return exactly what the N-ary linear scan
  // over the same buckets returns (both are exact within probed buckets).
  size_t comparisons = 0;
  for (size_t nprobe : {1u, 4u, 16u}) {
    for (size_t q = 0; q < 6; ++q) {
      const float* query = dataset.queries.Vector(q);
      // The two searchers rank buckets with different kernels; skip queries
      // where float noise reorders near-tied centroids (different probe
      // sets are incomparable).
      const auto rank_pdx = index.RankBuckets(query);
      const auto rank_nary = index.RankBucketsNary(query);
      if (!std::equal(rank_pdx.begin(), rank_pdx.begin() + nprobe,
                      rank_nary.begin())) {
        continue;
      }
      ++comparisons;
      const auto expected = IvfNarySearch(index, ordered, query, 10, nprobe);
      const auto actual = bond->Search(query, 10, nprobe);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i].id, expected[i].id)
            << "nprobe " << nprobe << " query " << q << " rank " << i;
      }
    }
  }
  EXPECT_GT(comparisons, 0u) << "all queries had tied bucket rankings";
}

TEST(PdxBondTest, PruningActuallyHappensOnSkewedData) {
  Dataset dataset = MakeDataset(32, ValueDistribution::kSkewed, 78);
  // Blocks smaller than the collection: pruning needs a threshold from a
  // previous block (a single-block collection is all START phase).
  BondConfig config = DefaultFlatBondConfig();
  config.block_capacity = 256;
  auto searcher = MakeBondFlatSearcher(dataset.data, config);
  searcher->Search(dataset.queries.Vector(0), 10);
  const PdxearchProfile& profile = searcher->last_profile();
  EXPECT_GT(profile.values_total, 0u);
  EXPECT_LT(profile.values_scanned, profile.values_total)
      << "no values were pruned at all";
  EXPECT_GT(profile.pruning_power(), 0.05);
}

TEST(PdxBondTest, QueryPreparationComputesOrderOnce) {
  std::vector<float> means = {0.0f, 0.0f, 0.0f};
  PdxBondPruner pruner(means, DimensionOrder::kDistanceToMeans);
  const float query[3] = {0.0f, 5.0f, 1.0f};
  const auto qs = pruner.PrepareQuery(query);
  ASSERT_EQ(qs.visit_order.size(), 3u);
  EXPECT_EQ(qs.visit_order[0], 1u);
  EXPECT_EQ(qs.visit_order[1], 2u);
  EXPECT_EQ(qs.visit_order[2], 0u);
  EXPECT_EQ(pruner.KernelQuery(qs), query);  // No transformation.
}

TEST(PdxBondTest, SequentialOrderHasNoVisitOrder) {
  PdxBondPruner pruner(std::vector<float>(4, 0.0f),
                       DimensionOrder::kSequential);
  const float query[4] = {1, 2, 3, 4};
  const auto qs = pruner.PrepareQuery(query);
  EXPECT_FALSE(pruner.has_visit_order());
  EXPECT_EQ(pruner.VisitOrder(qs), nullptr);
}

TEST(PdxBondTest, FilterSurvivorsThresholdSemantics) {
  PdxBondPruner pruner(std::vector<float>(2, 0.0f));
  PdxBondPruner::QueryState qs;
  std::vector<float> distances = {1.0f, 10.0f, 5.0f};
  std::vector<uint32_t> positions = {0, 1, 2};
  const size_t alive = pruner.FilterSurvivors(qs, 0, distances.data(), 1,
                                              5.0f, positions.data(), 3);
  ASSERT_EQ(alive, 1u);  // Only strict < threshold survives.
  EXPECT_EQ(positions[0], 0u);
}

}  // namespace
}  // namespace pdx
