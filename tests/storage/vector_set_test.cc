#include "storage/vector_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace pdx {
namespace {

std::vector<float> MakeRow(size_t dim, float base) {
  std::vector<float> row(dim);
  for (size_t d = 0; d < dim; ++d) row[d] = base + float(d);
  return row;
}

TEST(VectorSetTest, EmptyConstruction) {
  VectorSet set(8);
  EXPECT_EQ(set.dim(), 8u);
  EXPECT_EQ(set.count(), 0u);
  EXPECT_TRUE(set.empty());
}

TEST(VectorSetTest, AppendAssignsSequentialIds) {
  VectorSet set(4);
  const auto r0 = MakeRow(4, 0.0f);
  const auto r1 = MakeRow(4, 10.0f);
  EXPECT_EQ(set.Append(r0.data()), 0u);
  EXPECT_EQ(set.Append(r1.data()), 1u);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_FLOAT_EQ(set.Vector(1)[2], 12.0f);
}

TEST(VectorSetTest, AppendBatch) {
  std::vector<float> rows = {1, 2, 3, 4, 5, 6};
  VectorSet set(3);
  set.AppendBatch(rows.data(), 2);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_FLOAT_EQ(set.Vector(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(set.Vector(1)[2], 6.0f);
}

TEST(VectorSetTest, GrowthBeyondInitialCapacity) {
  VectorSet set(2, 1);
  for (int i = 0; i < 100; ++i) {
    const float row[2] = {float(i), float(-i)};
    set.Append(row);
  }
  EXPECT_EQ(set.count(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FLOAT_EQ(set.Vector(i)[0], float(i));
    ASSERT_FLOAT_EQ(set.Vector(i)[1], float(-i));
  }
}

TEST(VectorSetTest, UpdateInPlace) {
  VectorSet set(3);
  set.Append(MakeRow(3, 0.0f).data());
  const float updated[3] = {9, 8, 7};
  set.Update(0, updated);
  EXPECT_FLOAT_EQ(set.Vector(0)[0], 9.0f);
  EXPECT_FLOAT_EQ(set.Vector(0)[2], 7.0f);
}

TEST(VectorSetTest, CloneIsDeep) {
  VectorSet set(2);
  const float row[2] = {1.0f, 2.0f};
  set.Append(row);
  VectorSet copy = set.Clone();
  const float changed[2] = {5.0f, 5.0f};
  copy.Update(0, changed);
  EXPECT_FLOAT_EQ(set.Vector(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(copy.Vector(0)[0], 5.0f);
}

TEST(VectorSetTest, SelectPreservesOrder) {
  VectorSet set(2);
  for (int i = 0; i < 5; ++i) {
    const float row[2] = {float(i), 0.0f};
    set.Append(row);
  }
  VectorSet selected = set.Select({4, 0, 2});
  ASSERT_EQ(selected.count(), 3u);
  EXPECT_FLOAT_EQ(selected.Vector(0)[0], 4.0f);
  EXPECT_FLOAT_EQ(selected.Vector(1)[0], 0.0f);
  EXPECT_FLOAT_EQ(selected.Vector(2)[0], 2.0f);
}

TEST(VectorSetTest, DimensionMeans) {
  VectorSet set(2);
  const float r0[2] = {1.0f, 10.0f};
  const float r1[2] = {3.0f, 30.0f};
  set.Append(r0);
  set.Append(r1);
  const auto means = set.DimensionMeans();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_FLOAT_EQ(means[0], 2.0f);
  EXPECT_FLOAT_EQ(means[1], 20.0f);
}

TEST(VectorSetTest, DimensionMeansOfEmpty) {
  VectorSet set(3);
  const auto means = set.DimensionMeans();
  for (float m : means) EXPECT_FLOAT_EQ(m, 0.0f);
}

TEST(VectorSetTest, FromRowMajor) {
  Rng rng(1);
  std::vector<float> data(12 * 7);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  VectorSet set = VectorSet::FromRowMajor(data.data(), 12, 7);
  EXPECT_EQ(set.count(), 12u);
  EXPECT_EQ(set.dim(), 7u);
  for (size_t i = 0; i < 12; ++i) {
    for (size_t d = 0; d < 7; ++d) {
      ASSERT_EQ(set.Vector(i)[d], data[i * 7 + d]);
    }
  }
}

}  // namespace
}  // namespace pdx
