#include "storage/delta_store.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "storage/pdx_block.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

std::vector<float> RandomRow(Rng& rng, size_t dim) {
  std::vector<float> row(dim);
  for (float& v : row) v = static_cast<float>(rng.Gaussian());
  return row;
}

TEST(DeltaStoreTest, EmptyShape) {
  DeltaStore store(8, 4);
  EXPECT_EQ(store.dim(), 8u);
  EXPECT_EQ(store.block_capacity(), 4u);
  EXPECT_EQ(store.count(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.num_blocks(), 0u);
  EXPECT_EQ(store.tail_repacks(), 0u);
}

TEST(DeltaStoreTest, ZeroCapacityMeansDefaultBlockSize) {
  DeltaStore store(4, 0);
  EXPECT_EQ(store.block_capacity(), kPdxBlockSize);
}

TEST(DeltaStoreTest, AppendCrossesBlockBoundaries) {
  const size_t dim = 6;
  const size_t capacity = 4;
  const size_t count = 11;  // 2 sealed blocks + a 3-lane tail.
  Rng rng(42);
  DeltaStore store(dim, capacity);
  VectorSet mirror(dim, count);
  for (size_t i = 0; i < count; ++i) {
    const std::vector<float> row = RandomRow(rng, dim);
    mirror.Append(row.data());
    store.Append(row.data(), static_cast<VectorId>(100 + i));
  }
  EXPECT_EQ(store.count(), count);
  ASSERT_EQ(store.num_blocks(), 3u);
  EXPECT_EQ(store.block(0).count(), capacity);
  EXPECT_EQ(store.block(1).count(), capacity);
  EXPECT_EQ(store.block(2).count(), count - 2 * capacity);

  // Every lane round-trips: values via ExtractLane, global ids via id().
  std::vector<float> lane(dim);
  size_t row = 0;
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    const PdxBlock& block = store.block(b);
    EXPECT_EQ(block.dim(), dim);
    for (size_t i = 0; i < block.count(); ++i, ++row) {
      EXPECT_EQ(block.id(i), static_cast<VectorId>(100 + row));
      EXPECT_EQ(store.slot(row), static_cast<VectorId>(100 + row));
      block.ExtractLane(i, lane.data());
      for (size_t d = 0; d < dim; ++d) {
        ASSERT_EQ(lane[d], mirror.Vector(row)[d])
            << "block " << b << " lane " << i << " dim " << d;
      }
      ASSERT_EQ(mirror.Vector(row)[0], store.rows().Vector(row)[0]);
    }
  }
}

TEST(DeltaStoreTest, EveryAppendIsExactlyOneTailRepack) {
  Rng rng(7);
  DeltaStore store(3, 4);
  for (size_t i = 1; i <= 13; ++i) {
    const std::vector<float> row = RandomRow(rng, 3);
    store.Append(row.data(), static_cast<VectorId>(i));
    EXPECT_EQ(store.tail_repacks(), i);
  }
}

TEST(DeltaStoreTest, SealedBlockStorageIsStableAcrossLaterAppends) {
  // The O(block_capacity x dim) append bound requires sealed blocks to be
  // left alone: their data pointer must never move (and their contents
  // never change) no matter how many appends follow.
  const size_t dim = 5;
  const size_t capacity = 4;
  Rng rng(11);
  DeltaStore store(dim, capacity);
  for (size_t i = 0; i < capacity; ++i) {
    const std::vector<float> row = RandomRow(rng, dim);
    store.Append(row.data(), static_cast<VectorId>(i));
  }
  ASSERT_EQ(store.num_blocks(), 1u);
  const float* sealed_data = store.block(0).data();
  std::vector<float> sealed_copy(sealed_data, sealed_data + capacity * dim);

  for (size_t i = capacity; i < capacity * 8; ++i) {
    const std::vector<float> row = RandomRow(rng, dim);
    store.Append(row.data(), static_cast<VectorId>(i));
    ASSERT_EQ(store.block(0).data(), sealed_data);
  }
  for (size_t v = 0; v < sealed_copy.size(); ++v) {
    ASSERT_EQ(sealed_data[v], sealed_copy[v]) << "sealed value " << v;
  }
}

TEST(DeltaStoreTest, ClearKeepsShapeDropsRows) {
  Rng rng(3);
  DeltaStore store(4, 2);
  for (size_t i = 0; i < 5; ++i) {
    const std::vector<float> row = RandomRow(rng, 4);
    store.Append(row.data(), static_cast<VectorId>(i));
  }
  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.count(), 0u);
  EXPECT_EQ(store.num_blocks(), 0u);
  EXPECT_EQ(store.dim(), 4u);
  EXPECT_EQ(store.block_capacity(), 2u);
  // The region stays usable after the reset.
  const std::vector<float> row = RandomRow(rng, 4);
  store.Append(row.data(), 99);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.block(0).id(0), 99u);
}

}  // namespace
}  // namespace pdx
