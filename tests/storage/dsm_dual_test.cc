#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "storage/dsm_store.h"
#include "storage/dual_block.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

VectorSet RandomVectors(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    set.Append(row.data());
  }
  return set;
}

TEST(DsmStoreTest, ColumnsHoldDimensionValues) {
  VectorSet vectors = RandomVectors(50, 6, 1);
  DsmStore store = DsmStore::FromVectorSet(vectors);
  EXPECT_EQ(store.count(), 50u);
  EXPECT_EQ(store.dim(), 6u);
  for (size_t d = 0; d < 6; ++d) {
    const float* column = store.Dimension(d);
    for (size_t i = 0; i < 50; ++i) {
      ASSERT_EQ(column[i], vectors.Vector(i)[d]) << "dim " << d << " i " << i;
    }
  }
}

TEST(DsmStoreTest, EmptyCollection) {
  VectorSet vectors(4);
  DsmStore store = DsmStore::FromVectorSet(vectors);
  EXPECT_EQ(store.count(), 0u);
}

class DualBlockTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DualBlockTest, HeadTailReconstruct) {
  const size_t split = GetParam();
  const size_t dim = 12;
  VectorSet vectors = RandomVectors(20, dim, 2);
  DualBlockStore store = DualBlockStore::FromVectorSet(vectors, split);
  EXPECT_EQ(store.split_dim(), std::min(split, dim));

  for (size_t i = 0; i < 20; ++i) {
    const float* original = vectors.Vector(i);
    for (size_t d = 0; d < store.split_dim(); ++d) {
      ASSERT_EQ(store.Head(i)[d], original[d]);
    }
    for (size_t d = store.split_dim(); d < dim; ++d) {
      ASSERT_EQ(store.Tail(i)[d - store.split_dim()], original[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, DualBlockTest,
                         ::testing::Values(0, 1, 4, 11, 12, 50));

TEST(DualBlockTest, HeadsAreContiguous) {
  const size_t dim = 8;
  const size_t split = 3;
  VectorSet vectors = RandomVectors(5, dim, 3);
  DualBlockStore store = DualBlockStore::FromVectorSet(vectors, split);
  // Head(i+1) should start exactly split floats after Head(i).
  for (size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_EQ(store.Head(i) + split, store.Head(i + 1));
  }
}

}  // namespace
}  // namespace pdx
