#include "storage/block_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "storage/pdx_block.h"

namespace pdx {
namespace {

TEST(BlockStatsTest, ComputeStatsKnownValues) {
  // Two dims, three vectors.
  const std::vector<float> data = {1.0f, 10.0f,  //
                                   2.0f, 20.0f,  //
                                   3.0f, 30.0f};
  DimensionStats stats = ComputeStats(data.data(), 3, 2);
  EXPECT_FLOAT_EQ(stats.means[0], 2.0f);
  EXPECT_FLOAT_EQ(stats.means[1], 20.0f);
  EXPECT_NEAR(stats.variances[0], 2.0f / 3.0f, 1e-5);
  EXPECT_FLOAT_EQ(stats.minimums[0], 1.0f);
  EXPECT_FLOAT_EQ(stats.maximums[1], 30.0f);
}

TEST(BlockStatsTest, BlockStatsMatchHorizontalStats) {
  Rng rng(1);
  const size_t dim = 7;
  const size_t n = 33;
  std::vector<float> data(n * dim);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());

  PdxBlock block(dim, n);
  for (size_t i = 0; i < n; ++i) {
    block.FillLane(i, data.data() + i * dim, static_cast<VectorId>(i));
  }
  const DimensionStats from_block = ComputeBlockStats(block);
  const DimensionStats direct = ComputeStats(data.data(), n, dim);
  for (size_t d = 0; d < dim; ++d) {
    ASSERT_NEAR(from_block.means[d], direct.means[d], 1e-5);
    ASSERT_NEAR(from_block.variances[d], direct.variances[d], 1e-4);
    ASSERT_EQ(from_block.minimums[d], direct.minimums[d]);
    ASSERT_EQ(from_block.maximums[d], direct.maximums[d]);
  }
}

TEST(BlockStatsTest, MergeEqualsWholeComputation) {
  Rng rng(2);
  const size_t dim = 5;
  std::vector<float> part_a(40 * dim);
  std::vector<float> part_b(25 * dim);
  for (float& v : part_a) v = static_cast<float>(rng.Gaussian(1.0, 2.0));
  for (float& v : part_b) v = static_cast<float>(rng.Gaussian(-3.0, 0.5));

  DimensionStats stats_a = ComputeStats(part_a.data(), 40, dim);
  DimensionStats stats_b = ComputeStats(part_b.data(), 25, dim);
  DimensionStats merged = MergeStats(stats_a, 40, stats_b, 25);

  std::vector<float> all;
  all.insert(all.end(), part_a.begin(), part_a.end());
  all.insert(all.end(), part_b.begin(), part_b.end());
  DimensionStats whole = ComputeStats(all.data(), 65, dim);

  for (size_t d = 0; d < dim; ++d) {
    ASSERT_NEAR(merged.means[d], whole.means[d], 1e-4);
    ASSERT_NEAR(merged.variances[d], whole.variances[d],
                1e-3 * (1.0 + whole.variances[d]));
    ASSERT_EQ(merged.minimums[d], whole.minimums[d]);
    ASSERT_EQ(merged.maximums[d], whole.maximums[d]);
  }
}

TEST(BlockStatsTest, MergeWithEmptySide) {
  const std::vector<float> data = {1.0f, 2.0f, 3.0f};
  DimensionStats stats = ComputeStats(data.data(), 3, 1);
  DimensionStats empty = ComputeStats(data.data(), 0, 1);
  DimensionStats merged_left = MergeStats(empty, 0, stats, 3);
  DimensionStats merged_right = MergeStats(stats, 3, empty, 0);
  EXPECT_FLOAT_EQ(merged_left.means[0], 2.0f);
  EXPECT_FLOAT_EQ(merged_right.means[0], 2.0f);
}

TEST(BlockStatsTest, ConstantDimensionHasZeroVariance) {
  const std::vector<float> data = {5.0f, 5.0f, 5.0f, 5.0f};
  DimensionStats stats = ComputeStats(data.data(), 4, 1);
  EXPECT_FLOAT_EQ(stats.variances[0], 0.0f);
  EXPECT_FLOAT_EQ(stats.minimums[0], 5.0f);
  EXPECT_FLOAT_EQ(stats.maximums[0], 5.0f);
}

}  // namespace
}  // namespace pdx
