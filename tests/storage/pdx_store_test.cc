#include "storage/pdx_store.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "common/random.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

VectorSet RandomVectors(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    set.Append(row.data());
  }
  return set;
}

class PdxStoreRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(PdxStoreRoundTripTest, TransposeRoundTrip) {
  const auto [count, dim, block_capacity] = GetParam();
  VectorSet original = RandomVectors(count, dim, count * 31 + dim);
  PdxStore store = PdxStore::FromVectorSet(original, block_capacity);
  EXPECT_EQ(store.count(), count);
  EXPECT_EQ(store.dim(), dim);

  VectorSet restored = store.ToVectorSet();
  ASSERT_EQ(restored.count(), count);
  for (size_t i = 0; i < count; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      ASSERT_EQ(restored.Vector(i)[d], original.Vector(i)[d])
          << "vector " << i << " dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PdxStoreRoundTripTest,
    ::testing::Values(std::make_tuple(1, 4, 64), std::make_tuple(64, 8, 64),
                      std::make_tuple(65, 8, 64), std::make_tuple(100, 3, 16),
                      std::make_tuple(130, 5, 64),
                      std::make_tuple(1000, 12, 256),
                      std::make_tuple(63, 7, 64)));

TEST(PdxStoreTest, BlockCountAndSizes) {
  VectorSet vectors = RandomVectors(130, 4, 1);
  PdxStore store = PdxStore::FromVectorSet(vectors, 64);
  ASSERT_EQ(store.num_blocks(), 3u);
  EXPECT_EQ(store.block(0).count(), 64u);
  EXPECT_EQ(store.block(1).count(), 64u);
  EXPECT_EQ(store.block(2).count(), 2u);
}

TEST(PdxStoreTest, DimensionMajorWithinBlock) {
  VectorSet vectors(2);
  const float r0[2] = {1.0f, 2.0f};
  const float r1[2] = {3.0f, 4.0f};
  vectors.Append(r0);
  vectors.Append(r1);
  PdxStore store = PdxStore::FromVectorSet(vectors, 64);
  const PdxBlock& block = store.block(0);
  // Dimension 0 of both vectors adjacent, then dimension 1.
  EXPECT_FLOAT_EQ(block.Dimension(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(block.Dimension(0)[1], 3.0f);
  EXPECT_FLOAT_EQ(block.Dimension(1)[0], 2.0f);
  EXPECT_FLOAT_EQ(block.Dimension(1)[1], 4.0f);
}

TEST(PdxStoreTest, GroupsMapToBlocks) {
  VectorSet vectors = RandomVectors(200, 6, 2);
  std::vector<std::vector<VectorId>> groups(3);
  for (VectorId id = 0; id < 200; ++id) groups[id % 3].push_back(id);
  PdxStore store = PdxStore::FromGroups(vectors, groups, 32);
  ASSERT_EQ(store.num_groups(), 3u);

  // Every group's blocks hold exactly the group's ids.
  for (size_t g = 0; g < 3; ++g) {
    const auto [first, last] = store.GroupBlockRange(g);
    std::set<VectorId> found;
    for (size_t b = first; b < last; ++b) {
      for (VectorId id : store.block(b).ids()) found.insert(id);
    }
    std::set<VectorId> expected(groups[g].begin(), groups[g].end());
    EXPECT_EQ(found, expected) << "group " << g;
  }
}

TEST(PdxStoreTest, GroupsWithEmptyGroup) {
  VectorSet vectors = RandomVectors(10, 3, 3);
  std::vector<std::vector<VectorId>> groups(3);
  for (VectorId id = 0; id < 10; ++id) groups[2].push_back(id);
  PdxStore store = PdxStore::FromGroups(vectors, groups, 4);
  const auto [f0, l0] = store.GroupBlockRange(0);
  EXPECT_EQ(f0, l0);  // Empty group -> empty block range.
  const auto [f2, l2] = store.GroupBlockRange(2);
  EXPECT_EQ(l2 - f2, 3u);  // ceil(10/4).
}

TEST(PdxStoreTest, CollectionStatsMatchDirectComputation) {
  VectorSet vectors = RandomVectors(300, 5, 4);
  PdxStore store = PdxStore::FromVectorSet(vectors, 64);
  const DimensionStats direct =
      ComputeStats(vectors.data(), vectors.count(), vectors.dim());
  for (size_t d = 0; d < 5; ++d) {
    EXPECT_NEAR(store.stats().means[d], direct.means[d], 1e-4);
    EXPECT_NEAR(store.stats().variances[d], direct.variances[d], 1e-3);
    EXPECT_EQ(store.stats().minimums[d], direct.minimums[d]);
    EXPECT_EQ(store.stats().maximums[d], direct.maximums[d]);
  }
}

TEST(PdxStoreTest, BlockStatsPerBlock) {
  VectorSet vectors(1);
  for (float v : {1.0f, 2.0f, 3.0f, 10.0f}) vectors.Append(&v);
  PdxStore store = PdxStore::FromVectorSet(vectors, 2);
  ASSERT_EQ(store.num_blocks(), 2u);
  EXPECT_FLOAT_EQ(store.block_stats()[0].means[0], 1.5f);
  EXPECT_FLOAT_EQ(store.block_stats()[1].means[0], 6.5f);
  EXPECT_FLOAT_EQ(store.stats().means[0], 4.0f);
}

TEST(PdxBlockTest, FillAndExtractLane) {
  PdxBlock block(3, 4);
  const float row[3] = {7.0f, 8.0f, 9.0f};
  block.FillLane(2, row, 42);
  EXPECT_EQ(block.id(2), 42u);
  float out[3];
  block.ExtractLane(2, out);
  EXPECT_FLOAT_EQ(out[0], 7.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(out[2], 9.0f);
}

TEST(PdxBlockTest, UnfilledLanesAreZero) {
  PdxBlock block(2, 3);
  EXPECT_FLOAT_EQ(block.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(block.At(1, 2), 0.0f);
}

}  // namespace
}  // namespace pdx
