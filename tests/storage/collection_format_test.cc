#include "storage/collection_format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/any_searcher.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

// Byte offsets pinned by the format doc in collection_format.h. These are
// the on-disk contract: moving any of them is a format break and must come
// with a version bump.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffSectionCount = 8;
constexpr size_t kOffReserved = 12;
constexpr size_t kOffFileSize = 16;
constexpr size_t kOffHeaderChecksum = 24;
constexpr size_t kSectionTableStart = 32;
constexpr size_t kSectionEntrySize = 32;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

VectorSet RandomVectors(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    set.Append(row.data());
  }
  return set;
}

/// Writes one small flat/BOND collection file and returns its bytes.
std::vector<uint8_t> WriteSampleFile(const std::string& path) {
  const VectorSet vectors = RandomVectors(300, 16, 7);
  SearcherConfig config;
  config.layout = SearcherLayout::kFlat;
  config.pruner = PrunerKind::kBond;
  config.k = 5;
  auto made = MakeSearcher(vectors, std::move(config));
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  EXPECT_TRUE(made.value()->Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

void WriteBytes(const std::string& path, const uint8_t* data, size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(reinterpret_cast<const char*>(data), static_cast<long>(size));
  ASSERT_TRUE(out.good());
}

template <typename T>
T ReadAt(const std::vector<uint8_t>& bytes, size_t offset) {
  T value{};
  EXPECT_LE(offset + sizeof(T), bytes.size());
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

/// Recomputes and patches the header checksum so a surgical header edit
/// (e.g. the version bump test) fails for the edited field, not the
/// checksum.
void FixHeaderChecksum(std::vector<uint8_t>& bytes) {
  const uint32_t sections = ReadAt<uint32_t>(bytes, kOffSectionCount);
  uint64_t checksum = Fnv1a64(bytes.data(), kOffHeaderChecksum);
  checksum = Fnv1a64(bytes.data() + kSectionTableStart,
                     sections * kSectionEntrySize, checksum);
  std::memcpy(bytes.data() + kOffHeaderChecksum, &checksum, sizeof(checksum));
}

TEST(CollectionFormatTest, GoldenHeaderAndSectionTableLayout) {
  const std::string path = TempPath("golden.pdxc");
  const std::vector<uint8_t> bytes = WriteSampleFile(path);
  ASSERT_GE(bytes.size(), kSectionTableStart);

  // Header, field by field, at pinned offsets.
  EXPECT_EQ(std::memcmp(bytes.data() + kOffMagic, "PDXC", 4), 0);
  EXPECT_EQ(ReadAt<uint32_t>(bytes, kOffVersion), kCollectionFormatVersion);
  const uint32_t sections = ReadAt<uint32_t>(bytes, kOffSectionCount);
  EXPECT_GE(sections, 3u);  // At least meta + store meta/ids/stats/arena.
  EXPECT_EQ(ReadAt<uint32_t>(bytes, kOffReserved), 0u);
  EXPECT_EQ(ReadAt<uint64_t>(bytes, kOffFileSize), bytes.size());
  uint64_t expected = Fnv1a64(bytes.data(), kOffHeaderChecksum);
  expected = Fnv1a64(bytes.data() + kSectionTableStart,
                     sections * kSectionEntrySize, expected);
  EXPECT_EQ(ReadAt<uint64_t>(bytes, kOffHeaderChecksum), expected);

  // Section table: 32-byte entries {u32 kind, u32 unit, u64 offset,
  // u64 size, u64 checksum}, payloads in bounds and checksums true.
  bool saw_meta = false;
  bool saw_arena = false;
  for (uint32_t s = 0; s < sections; ++s) {
    const size_t entry = kSectionTableStart + s * kSectionEntrySize;
    const uint32_t kind = ReadAt<uint32_t>(bytes, entry);
    const uint64_t offset = ReadAt<uint64_t>(bytes, entry + 8);
    const uint64_t size = ReadAt<uint64_t>(bytes, entry + 16);
    const uint64_t checksum = ReadAt<uint64_t>(bytes, entry + 24);
    EXPECT_GE(kind, static_cast<uint32_t>(SectionKind::kCollectionMeta));
    EXPECT_LE(kind, static_cast<uint32_t>(SectionKind::kTombstones));
    ASSERT_LE(offset + size, bytes.size());
    EXPECT_EQ(Fnv1a64(bytes.data() + offset, size), checksum);
    if (kind == static_cast<uint32_t>(SectionKind::kCollectionMeta)) {
      saw_meta = true;
      EXPECT_EQ(size, sizeof(SavedMeta));
      EXPECT_EQ(sizeof(SavedMeta), 184u);
    }
    if (kind == static_cast<uint32_t>(SectionKind::kStoreArena)) {
      saw_arena = true;
      // The mmap zero-copy contract: arenas start 64-byte-aligned.
      EXPECT_EQ(offset % 64, 0u);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_arena);

  // And the file actually loads.
  auto image = CollectionImage::Load(path);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image.value()->meta().count, 300u);
  EXPECT_EQ(image.value()->meta().dim, 16u);
}

TEST(CollectionFormatTest, FutureVersionIsRejectedAsInvalidArgument) {
  const std::string path = TempPath("future.pdxc");
  std::vector<uint8_t> bytes = WriteSampleFile(path);
  const uint32_t future = kCollectionFormatVersion + 1;
  std::memcpy(bytes.data() + kOffVersion, &future, sizeof(future));
  // With a true checksum the ONLY complaint left is the version — pinning
  // that old readers reject newer files explicitly, not as corruption.
  FixHeaderChecksum(bytes);
  WriteBytes(path, bytes.data(), bytes.size());
  auto image = CollectionImage::Load(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument());
  EXPECT_NE(image.status().message().find("newer"), std::string::npos)
      << image.status().ToString();
}

TEST(CollectionFormatTest, VersionZeroIsCorruption) {
  const std::string path = TempPath("vzero.pdxc");
  std::vector<uint8_t> bytes = WriteSampleFile(path);
  const uint32_t zero = 0;
  std::memcpy(bytes.data() + kOffVersion, &zero, sizeof(zero));
  FixHeaderChecksum(bytes);
  WriteBytes(path, bytes.data(), bytes.size());
  auto image = CollectionImage::Load(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsCorruption());
}

TEST(CollectionFormatTest, BadMagicIsCorruption) {
  const std::string path = TempPath("magic.pdxc");
  std::vector<uint8_t> bytes = WriteSampleFile(path);
  bytes[0] = 'Q';
  WriteBytes(path, bytes.data(), bytes.size());
  auto image = CollectionImage::Load(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsCorruption());
}

TEST(CollectionFormatTest, EveryPrefixTruncationFailsCleanly) {
  const std::string path = TempPath("whole.pdxc");
  const std::vector<uint8_t> bytes = WriteSampleFile(path);
  ASSERT_GT(bytes.size(), 0u);
  const std::string cut = TempPath("cut.pdxc");
  // EVERY proper prefix, not a sample: any cut point — mid-header,
  // mid-table, mid-payload — must fail validation with a Status, never
  // load half a collection and never crash. Heap path keeps the loop fast
  // (no mmap/munmap churn) and runs the same validation code.
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(cut, bytes.data(), len);
    auto image = CollectionImage::Load(cut, /*allow_mmap=*/false);
    ASSERT_FALSE(image.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST(CollectionFormatTest, FlippedChecksumBytesFailLoad) {
  const std::string path = TempPath("flip.pdxc");
  const std::vector<uint8_t> bytes = WriteSampleFile(path);
  const std::string corrupt = TempPath("flip_corrupt.pdxc");
  const uint32_t sections = ReadAt<uint32_t>(bytes, kOffSectionCount);

  // Flip each byte of the header checksum itself...
  std::vector<size_t> targets;
  for (size_t i = 0; i < 8; ++i) targets.push_back(kOffHeaderChecksum + i);
  // ...each byte of every per-section checksum field...
  for (uint32_t s = 0; s < sections; ++s) {
    const size_t entry = kSectionTableStart + s * kSectionEntrySize;
    for (size_t i = 0; i < 8; ++i) targets.push_back(entry + 24 + i);
  }
  for (const size_t at : targets) {
    std::vector<uint8_t> mutated = bytes;
    mutated[at] ^= 0xff;
    WriteBytes(corrupt, mutated.data(), mutated.size());
    auto image = CollectionImage::Load(corrupt, /*allow_mmap=*/false);
    ASSERT_FALSE(image.ok()) << "checksum byte " << at << " flip loaded";
  }

  // ...and one byte in the middle of every section payload: the payload
  // checksum must catch single-bit rot anywhere, not only in the header.
  for (uint32_t s = 0; s < sections; ++s) {
    const size_t entry = kSectionTableStart + s * kSectionEntrySize;
    const uint64_t offset = ReadAt<uint64_t>(bytes, entry + 8);
    const uint64_t size = ReadAt<uint64_t>(bytes, entry + 16);
    if (size == 0) continue;
    std::vector<uint8_t> mutated = bytes;
    mutated[offset + size / 2] ^= 0x01;
    WriteBytes(corrupt, mutated.data(), mutated.size());
    auto image = CollectionImage::Load(corrupt, /*allow_mmap=*/false);
    ASSERT_FALSE(image.ok()) << "payload flip in section " << s << " loaded";
  }
}

TEST(CollectionFormatTest, FnvChecksumIsPinned) {
  // The checksum algorithm is part of the format: a "faster" replacement
  // would silently orphan every existing file. Standard FNV-1a 64 vectors.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  const uint8_t a = 'a';
  EXPECT_EQ(Fnv1a64(&a, 1), 0xaf63dc4c8601ec8cull);
  const uint8_t foobar[6] = {'f', 'o', 'o', 'b', 'a', 'r'};
  EXPECT_EQ(Fnv1a64(foobar, 6), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace pdx
