#include "storage/fvecs_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"

namespace pdx {
namespace {

class FvecsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pdx_fvecs_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

VectorSet RandomVectors(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    set.Append(row.data());
  }
  return set;
}

TEST_F(FvecsIoTest, FvecsRoundTrip) {
  VectorSet original = RandomVectors(37, 9, 1);
  ASSERT_TRUE(WriteFvecs(Path("a.fvecs"), original).ok());
  Result<VectorSet> restored = ReadFvecs(Path("a.fvecs"));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().count(), 37u);
  ASSERT_EQ(restored.value().dim(), 9u);
  for (size_t i = 0; i < 37; ++i) {
    for (size_t d = 0; d < 9; ++d) {
      ASSERT_EQ(restored.value().Vector(i)[d], original.Vector(i)[d]);
    }
  }
}

TEST_F(FvecsIoTest, EmptyFvecsFileIsCorruption) {
  // A zero-record file has no dimensionality — readers reject it rather
  // than hand back an unusable empty set.
  VectorSet empty(5);
  ASSERT_TRUE(WriteFvecs(Path("empty.fvecs"), empty).ok());
  Result<VectorSet> restored = ReadFvecs(Path("empty.fvecs"));
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsCorruption());
}

TEST_F(FvecsIoTest, EmptyIvecsAndBvecsAreCorruption) {
  std::FILE* f = std::fopen(Path("empty.ivecs").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  Result<std::vector<std::vector<int32_t>>> ivecs =
      ReadIvecs(Path("empty.ivecs"));
  ASSERT_FALSE(ivecs.ok());
  EXPECT_TRUE(ivecs.status().IsCorruption());

  f = std::fopen(Path("empty.bvecs").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  Result<VectorSet> bvecs = ReadBvecs(Path("empty.bvecs"));
  ASSERT_FALSE(bvecs.ok());
  EXPECT_TRUE(bvecs.status().IsCorruption());
}

TEST_F(FvecsIoTest, TruncatedHeaderIsCorruption) {
  // One complete record followed by a 2-byte header tail: the file was cut
  // mid-header. Must be Corruption, not a silently shorter collection.
  std::FILE* f = std::fopen(Path("cut.fvecs").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 4;
  const float values[4] = {1, 2, 3, 4};
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 4, f);
  std::fwrite(&dim, 2, 1, f);  // Partial next header.
  std::fclose(f);

  Result<VectorSet> result = ReadFvecs(Path("cut.fvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(FvecsIoTest, BvecsInconsistentDimIsCorruption) {
  std::FILE* f = std::fopen(Path("mixed.bvecs").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint8_t bytes[4] = {1, 2, 3, 4};
  int32_t dim = 2;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(bytes, 1, 2, f);
  dim = 4;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(bytes, 1, 4, f);
  std::fclose(f);

  Result<VectorSet> result = ReadBvecs(Path("mixed.bvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(FvecsIoTest, MissingFileIsIoError) {
  Result<VectorSet> result = ReadFvecs(Path("does_not_exist.fvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

TEST_F(FvecsIoTest, TruncatedRecordIsCorruption) {
  // Write a header claiming 8 floats but provide only 2.
  std::FILE* f = std::fopen(Path("trunc.fvecs").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 8;
  const float values[2] = {1.0f, 2.0f};
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 2, f);
  std::fclose(f);

  Result<VectorSet> result = ReadFvecs(Path("trunc.fvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(FvecsIoTest, InconsistentDimIsCorruption) {
  std::FILE* f = std::fopen(Path("mixed.fvecs").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const float values[4] = {1, 2, 3, 4};
  int32_t dim = 2;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 2, f);
  dim = 4;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fwrite(values, sizeof(float), 4, f);
  std::fclose(f);

  Result<VectorSet> result = ReadFvecs(Path("mixed.fvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(FvecsIoTest, NegativeDimIsCorruption) {
  std::FILE* f = std::fopen(Path("neg.fvecs").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = -3;
  std::fwrite(&dim, sizeof(dim), 1, f);
  std::fclose(f);
  Result<VectorSet> result = ReadFvecs(Path("neg.fvecs"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(FvecsIoTest, IvecsRoundTrip) {
  std::vector<std::vector<int32_t>> rows = {
      {1, 2, 3}, {4, 5, 6}, {-1, 0, 7}};
  ASSERT_TRUE(WriteIvecs(Path("gt.ivecs"), rows).ok());
  auto restored = ReadIvecs(Path("gt.ivecs"));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), rows);
}

TEST_F(FvecsIoTest, IvecsRaggedRowsRejected) {
  std::vector<std::vector<int32_t>> rows = {{1, 2}, {3}};
  Status status = WriteIvecs(Path("ragged.ivecs"), rows);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(FvecsIoTest, BvecsRoundTripWithClamping) {
  VectorSet original(3);
  const float r0[3] = {0.0f, 128.0f, 255.0f};
  const float r1[3] = {-5.0f, 300.0f, 12.4f};  // Clamp + round.
  original.Append(r0);
  original.Append(r1);
  ASSERT_TRUE(WriteBvecs(Path("b.bvecs"), original).ok());
  auto restored = ReadBvecs(Path("b.bvecs"));
  ASSERT_TRUE(restored.ok());
  EXPECT_FLOAT_EQ(restored.value().Vector(0)[1], 128.0f);
  EXPECT_FLOAT_EQ(restored.value().Vector(1)[0], 0.0f);    // Clamped up.
  EXPECT_FLOAT_EQ(restored.value().Vector(1)[1], 255.0f);  // Clamped down.
  EXPECT_FLOAT_EQ(restored.value().Vector(1)[2], 12.0f);   // Rounded.
}

}  // namespace
}  // namespace pdx
