#include "benchlib/datagen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "benchlib/workloads.h"
#include "common/math_utils.h"

namespace pdx {
namespace {

SyntheticSpec BasicSpec(ValueDistribution distribution) {
  SyntheticSpec spec;
  spec.name = "datagen";
  spec.dim = 12;
  spec.count = 3000;
  spec.num_queries = 50;
  spec.num_clusters = 6;
  spec.seed = 3;
  spec.distribution = distribution;
  return spec;
}

TEST(DatagenTest, ShapesMatchSpec) {
  Dataset dataset = GenerateDataset(BasicSpec(ValueDistribution::kNormal));
  EXPECT_EQ(dataset.data.count(), 3000u);
  EXPECT_EQ(dataset.data.dim(), 12u);
  EXPECT_EQ(dataset.queries.count(), 50u);
  EXPECT_EQ(dataset.queries.dim(), 12u);
}

TEST(DatagenTest, DeterministicPerSeed) {
  Dataset a = GenerateDataset(BasicSpec(ValueDistribution::kNormal));
  Dataset b = GenerateDataset(BasicSpec(ValueDistribution::kNormal));
  for (size_t i = 0; i < 100; ++i) {
    for (size_t d = 0; d < 12; ++d) {
      ASSERT_EQ(a.data.Vector(i)[d], b.data.Vector(i)[d]);
    }
  }
}

TEST(DatagenTest, DifferentSeedsDiffer) {
  SyntheticSpec spec = BasicSpec(ValueDistribution::kNormal);
  Dataset a = GenerateDataset(spec);
  spec.seed = 4;
  Dataset b = GenerateDataset(spec);
  EXPECT_NE(a.data.Vector(0)[0], b.data.Vector(0)[0]);
}

TEST(DatagenTest, SkewedDataIsNonNegativeAndSkewed) {
  Dataset dataset = GenerateDataset(BasicSpec(ValueDistribution::kSkewed));
  std::vector<float> dim0;
  for (size_t i = 0; i < dataset.data.count(); ++i) {
    const float v = dataset.data.Vector(i)[0];
    ASSERT_GT(v, 0.0f);  // exp() transform.
    dim0.push_back(v);
  }
  // Positive skew: mean > median for a long right tail.
  const double mean = Mean(dim0);
  const double median = Percentile(dim0, 50);
  EXPECT_GT(mean, median);
}

TEST(DatagenTest, NormalDataRoughlySymmetric) {
  Dataset dataset = GenerateDataset(BasicSpec(ValueDistribution::kNormal));
  std::vector<float> dim0;
  for (size_t i = 0; i < dataset.data.count(); ++i) {
    dim0.push_back(dataset.data.Vector(i)[0]);
  }
  const double mean = Mean(dim0);
  const double median = Percentile(dim0, 50);
  EXPECT_NEAR(mean, median, 0.5 * std::sqrt(Variance(dim0)) + 0.2);
}

TEST(DatagenTest, HasClusterStructure) {
  // Between-cluster spread should make variance much larger than the
  // within-cluster noise (scale <= 1.6).
  Dataset dataset = GenerateDataset(BasicSpec(ValueDistribution::kNormal));
  std::vector<float> dim3;
  for (size_t i = 0; i < dataset.data.count(); ++i) {
    dim3.push_back(dataset.data.Vector(i)[3]);
  }
  EXPECT_GT(Variance(dim3), 1.0);
}

TEST(WorkloadsTest, PaperRosterHasTenDatasets) {
  const auto roster = PaperWorkloads();
  ASSERT_EQ(roster.size(), 10u);
  EXPECT_EQ(roster.front().dim, 16u);   // NYTimes.
  EXPECT_EQ(roster.back().dim, 1536u);  // OpenAI.
}

TEST(WorkloadsTest, ScaleMultipliesCounts) {
  const auto base = PaperWorkloads(1.0);
  const auto half = PaperWorkloads(0.5);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(half[i].count),
                static_cast<double>(base[i].count) * 0.5,
                static_cast<double>(base[i].count) * 0.1 + 1001.0);
  }
}

TEST(WorkloadsTest, DistributionsMatchPaperTable) {
  const auto roster = PaperWorkloads();
  // SIFT-128 (index 3) and OpenAI-1536 (index 9) are skewed.
  EXPECT_EQ(roster[3].distribution, ValueDistribution::kSkewed);
  EXPECT_EQ(roster[9].distribution, ValueDistribution::kSkewed);
  // GloVe-50 (index 1) and Contriever-768 (index 6) are normal.
  EXPECT_EQ(roster[1].distribution, ValueDistribution::kNormal);
  EXPECT_EQ(roster[6].distribution, ValueDistribution::kNormal);
}

}  // namespace
}  // namespace pdx
