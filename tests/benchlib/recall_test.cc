#include "benchlib/recall.h"

#include <gtest/gtest.h>

#include <vector>

#include "benchlib/datagen.h"
#include "index/flat.h"

namespace pdx {
namespace {

TEST(RecallTest, PerfectResultScoresOne) {
  const std::vector<VectorId> truth = {1, 2, 3};
  const std::vector<Neighbor> result = {{1, 0.1f}, {2, 0.2f}, {3, 0.3f}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 3), 1.0);
}

TEST(RecallTest, OrderDoesNotMatter) {
  const std::vector<VectorId> truth = {1, 2, 3};
  const std::vector<Neighbor> result = {{3, 0.1f}, {1, 0.2f}, {2, 0.3f}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 3), 1.0);
}

TEST(RecallTest, PartialOverlap) {
  const std::vector<VectorId> truth = {1, 2, 3, 4};
  const std::vector<Neighbor> result = {{1, 0.1f}, {9, 0.2f}, {3, 0.3f},
                                        {8, 0.4f}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 4), 0.5);
}

TEST(RecallTest, EmptyResultScoresZero) {
  const std::vector<VectorId> truth = {1, 2};
  EXPECT_DOUBLE_EQ(RecallAtK({}, truth, 2), 0.0);
}

TEST(RecallTest, OnlyFirstKOfResultCounts) {
  const std::vector<VectorId> truth = {1};
  const std::vector<Neighbor> result = {{9, 0.1f}, {1, 0.2f}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 1), 0.0);
}

TEST(RecallTest, MeanRecall) {
  const std::vector<std::vector<VectorId>> truth = {{1}, {2}};
  const std::vector<std::vector<Neighbor>> results = {{{1, 0.0f}},
                                                      {{3, 0.0f}}};
  EXPECT_DOUBLE_EQ(MeanRecallAtK(results, truth, 1), 0.5);
}

TEST(RecallTest, GroundTruthMatchesFlatSearch) {
  SyntheticSpec spec;
  spec.name = "recall";
  spec.dim = 10;
  spec.count = 800;
  spec.num_queries = 6;
  spec.seed = 1;
  Dataset dataset = GenerateDataset(spec);
  const auto truth =
      ComputeGroundTruth(dataset.data, dataset.queries, 5, Metric::kL2);
  ASSERT_EQ(truth.size(), 6u);
  for (size_t q = 0; q < 6; ++q) {
    const auto expected =
        FlatSearchNary(dataset.data, dataset.queries.Vector(q), 5,
                       Metric::kL2);
    ASSERT_EQ(truth[q].size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_EQ(truth[q][i], expected[i].id) << "query " << q;
    }
  }
}

}  // namespace
}  // namespace pdx
