#include "benchlib/workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchlib/datagen.h"

namespace pdx {
namespace {

Dataset SmallDataset() {
  SyntheticSpec spec;
  spec.name = "workloads-test";
  spec.dim = 16;
  spec.count = 1500;
  spec.num_queries = 3;
  spec.num_clusters = 6;
  spec.seed = 5;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

TEST(WorkloadsTest, PaperRosterShapes) {
  const auto workloads = PaperWorkloads(1.0);
  ASSERT_EQ(workloads.size(), 10u);  // Table 1's ten datasets.
  for (const auto& spec : workloads) {
    EXPECT_GT(spec.dim, 0u);
    EXPECT_GE(spec.count, 1000u);
  }
}

TEST(WorkloadsTest, PrunerRosterCoversAllPruners) {
  const auto roster = PrunerRoster(SearcherLayout::kIvf, 5, 8, 2);
  ASSERT_EQ(roster.size(), 4u);
  for (const auto& [name, config] : roster) {
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(config.layout, SearcherLayout::kIvf);
    EXPECT_EQ(config.k, 5u);
    EXPECT_EQ(config.nprobe, 8u);
    EXPECT_EQ(config.threads, 2u);
  }
}

TEST(WorkloadsTest, BuildPrunerRosterFlatAndIvf) {
  Dataset dataset = SmallDataset();
  const auto flat = BuildPrunerRoster(dataset.data, nullptr,
                                      SearcherLayout::kFlat, 5);
  ASSERT_EQ(flat.size(), 4u);
  for (const auto& entry : flat) {
    ASSERT_NE(entry.searcher, nullptr) << entry.name;
    EXPECT_EQ(entry.searcher->Search(dataset.queries.Vector(0)).size(), 5u)
        << entry.name;
  }

  IvfIndex index = IvfIndex::Build(dataset.data, {});
  const auto ivf = BuildPrunerRoster(dataset.data, &index,
                                     SearcherLayout::kIvf, 5, 4);
  ASSERT_EQ(ivf.size(), 4u);
  for (const auto& entry : ivf) {
    EXPECT_EQ(entry.searcher->index(), &index) << entry.name;
  }
}

TEST(WorkloadsTest, BuildPrunerRosterCustomizeFiltersAndTunes) {
  Dataset dataset = SmallDataset();
  const auto roster = BuildPrunerRoster(
      dataset.data, nullptr, SearcherLayout::kFlat, 5, 16, 1,
      [](const std::string&, SearcherConfig& config) {
        if (config.pruner == PrunerKind::kLinear) return false;
        config.block_capacity = 128;
        return true;
      });
  ASSERT_EQ(roster.size(), 3u);
  for (const auto& entry : roster) {
    EXPECT_EQ(entry.searcher->options().block_capacity, 128u) << entry.name;
  }
}

}  // namespace
}  // namespace pdx
