#include "benchlib/latency.h"

#include <gtest/gtest.h>

namespace pdx {
namespace {

TEST(LatencyRecorderTest, EmptySummaryIsZeros) {
  LatencyRecorder recorder;
  const LatencySummary summary = recorder.Summary();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.p50_ms, 0.0);
  EXPECT_EQ(summary.p99_ms, 0.0);
}

TEST(LatencyRecorderTest, PercentilesOnKnownDistribution) {
  LatencyRecorder recorder;
  // 1..100 ms: nearest-rank percentiles are exactly the rank values.
  for (int i = 1; i <= 100; ++i) recorder.Record(static_cast<double>(i));
  const LatencySummary summary = recorder.Summary();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.min_ms, 1.0);
  EXPECT_EQ(summary.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 50.5);
  EXPECT_EQ(summary.p50_ms, 50.0);
  EXPECT_EQ(summary.p95_ms, 95.0);
  EXPECT_EQ(summary.p99_ms, 99.0);
}

TEST(LatencyRecorderTest, SingleSampleIsEveryPercentile) {
  LatencyRecorder recorder;
  recorder.Record(7.0);
  const LatencySummary summary = recorder.Summary();
  EXPECT_EQ(summary.p50_ms, 7.0);
  EXPECT_EQ(summary.p95_ms, 7.0);
  EXPECT_EQ(summary.p99_ms, 7.0);
}

TEST(LatencyRecorderTest, WindowSlidesButTotalsRemember) {
  LatencyRecorder recorder(4);
  for (int i = 1; i <= 8; ++i) recorder.Record(static_cast<double>(i));
  const LatencySummary summary = recorder.Summary();
  EXPECT_EQ(summary.count, 8u);        // All samples counted...
  EXPECT_EQ(summary.min_ms, 1.0);      // ...and remembered in the extrema,
  EXPECT_EQ(summary.p50_ms, 6.0);      // but percentiles see only {5,6,7,8}.
  EXPECT_EQ(summary.p99_ms, 8.0);
}

TEST(LatencyRecorderTest, MergeCombinesWorkers) {
  LatencyRecorder a, b;
  for (int i = 1; i <= 50; ++i) a.Record(static_cast<double>(i));
  for (int i = 51; i <= 100; ++i) b.Record(static_cast<double>(i));
  a.Merge(b);
  const LatencySummary summary = a.Summary();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.min_ms, 1.0);
  EXPECT_EQ(summary.max_ms, 100.0);
  EXPECT_EQ(summary.p50_ms, 50.0);
  EXPECT_EQ(summary.p99_ms, 99.0);
  // Merging an empty recorder changes nothing.
  a.Merge(LatencyRecorder());
  EXPECT_EQ(a.Summary().count, 100u);
}

TEST(LatencyRecorderTest, ResetClears) {
  LatencyRecorder recorder;
  recorder.Record(3.0);
  recorder.Reset();
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.Summary().p50_ms, 0.0);
}

TEST(LatencyRecorderTest, ToStringMentionsPercentiles) {
  LatencyRecorder recorder;
  recorder.Record(2.0);
  const std::string text = recorder.Summary().ToString();
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace pdx
