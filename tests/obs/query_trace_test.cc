// End-to-end tracing through a real SearchService: trace off yields a
// null trace (and costs nothing visible), trace on yields a stage
// breakdown whose parts sum to the whole plus nonzero search-work
// counters; the slowlog retains the worst queries; the injected registry
// agrees with ServiceStats once the service is quiescent.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/datagen.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

using namespace std::chrono_literals;

Dataset MakeData(size_t dim = 24, uint64_t seed = 17, size_t count = 2000,
                 size_t num_queries = 16) {
  SyntheticSpec spec;
  spec.name = "trace-test";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = num_queries;
  spec.num_clusters = 8;
  spec.seed = seed;
  spec.distribution = ValueDistribution::kNormal;
  return GenerateDataset(spec);
}

SearcherConfig Config() {
  SearcherConfig config;
  config.layout = SearcherLayout::kIvf;
  config.pruner = PrunerKind::kBond;
  config.k = 10;
  config.nprobe = 4;
  return config;
}

TEST(QueryTraceTest, UntracedQueriesCarryNoTrace) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 2;
  sc.metrics = &registry;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());

  QueryTicket ticket = service.Submit("docs", data.queries.Vector(0));
  QueryResult result = ticket.result.get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.trace, nullptr);
}

TEST(QueryTraceTest, TracedQueryReportsStagesAndCounters) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 2;
  sc.metrics = &registry;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());

  QueryOptions options;
  options.trace = true;
  options.request_id = "trace-me-7";
  QueryTicket ticket = service.Submit("docs", data.queries.Vector(1), options);
  QueryResult result = ticket.result.get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_NE(result.trace, nullptr);
  const QueryTrace& trace = *result.trace;
  EXPECT_EQ(trace.request_id, "trace-me-7");

  // The four stages partition submission -> completion exactly (same
  // clock, same endpoints); allow only fp rounding slack.
  EXPECT_GE(trace.queue_ms, 0.0);
  EXPECT_GE(trace.stage_ms, 0.0);
  EXPECT_GT(trace.search_ms, 0.0);
  EXPECT_GE(trace.deliver_ms, 0.0);
  const double sum =
      trace.queue_ms + trace.stage_ms + trace.search_ms + trace.deliver_ms;
  EXPECT_NEAR(sum, trace.total_ms, 0.01) << "stages must partition total";
  EXPECT_DOUBLE_EQ(trace.total_ms, result.total_ms);
  EXPECT_DOUBLE_EQ(trace.queue_ms, result.queue_ms);

  // A real search did real work: the counters came up from the engine.
  EXPECT_GT(trace.counters.blocks_visited, 0u);
  EXPECT_GT(trace.counters.values_scanned, 0u);
  EXPECT_GT(trace.counters.dims_scanned, 0u);
  // BOND pruned something on a clustered dataset; pruning power is a
  // fraction of the scanned+avoided universe.
  EXPECT_GE(trace.counters.pruning_power(), 0.0);
  EXPECT_LE(trace.counters.pruning_power(), 1.0);
}

TEST(QueryTraceTest, TracedAndUntracedResultsAreIdentical) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 1;
  sc.dispatchers = 1;
  sc.metrics = &registry;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());

  for (size_t q = 0; q < 4; ++q) {
    QueryResult plain =
        service.Submit("docs", data.queries.Vector(q)).result.get();
    QueryOptions options;
    options.trace = true;
    QueryResult traced =
        service.Submit("docs", data.queries.Vector(q), options).result.get();
    ASSERT_TRUE(plain.status.ok());
    ASSERT_TRUE(traced.status.ok());
    ASSERT_EQ(plain.neighbors.size(), traced.neighbors.size());
    for (size_t i = 0; i < plain.neighbors.size(); ++i) {
      EXPECT_EQ(plain.neighbors[i].id, traced.neighbors[i].id);
      EXPECT_EQ(plain.neighbors[i].distance, traced.neighbors[i].distance);
    }
  }
}

TEST(QueryTraceTest, SlowLogRetainsWorstQueriesWorstFirst) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 2;
  sc.metrics = &registry;
  sc.slowlog_capacity = 3;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());

  for (size_t q = 0; q < 8; ++q) {
    ASSERT_TRUE(
        service.Submit("docs", data.queries.Vector(q)).result.get().status.ok());
  }
  Result<std::vector<SlowQueryEntry>> slowlog = service.SlowLog("docs");
  ASSERT_TRUE(slowlog.ok());
  const std::vector<SlowQueryEntry>& entries = slowlog.value();
  ASSERT_LE(entries.size(), 3u);
  ASSERT_GE(entries.size(), 1u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].total_ms, entries[i].total_ms) << "not sorted";
  }
  for (const SlowQueryEntry& entry : entries) {
    EXPECT_EQ(entry.outcome, "OK");
    EXPECT_GT(entry.total_ms, 0.0);
    EXPECT_GT(entry.counters.values_scanned, 0u);  // Populated untraced too.
  }
  EXPECT_FALSE(service.SlowLog("nope").ok());
}

TEST(QueryTraceTest, RegistryAgreesWithServiceStatsWhenQuiescent) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 2;
  sc.metrics = &registry;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());

  constexpr size_t kQueries = 12;
  for (size_t q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(service
                    .Submit("docs", data.queries.Vector(q % 16))
                    .result.get()
                    .status.ok());
  }
  // .get() returned for every query => the service is quiescent; both
  // views must agree exactly.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.collections.at("docs").completed, kQueries);
  const std::string scrape = registry.WritePrometheus();
  EXPECT_NE(
      scrape.find(
          "pdx_queries_total{collection=\"docs\",outcome=\"completed\"} " +
          std::to_string(kQueries) + "\n"),
      std::string::npos)
      << scrape;
  // Stage histograms observed every completion.
  EXPECT_NE(
      scrape.find("pdx_query_stage_ms_count{collection=\"docs\","
                  "stage=\"total\"} " +
                  std::to_string(kQueries) + "\n"),
      std::string::npos)
      << scrape;
  // Process gauges carry the fixed shape.
  EXPECT_NE(scrape.find("pdx_pool_threads 2\n"), std::string::npos) << scrape;
  EXPECT_NE(scrape.find("pdx_queue_depth 0\n"), std::string::npos) << scrape;
}

TEST(QueryTraceTest, BusyFractionIsWindowedAndBounded) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 2;
  sc.metrics = &registry;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());
  for (size_t q = 0; q < 8; ++q) {
    ASSERT_TRUE(
        service.Submit("docs", data.queries.Vector(q)).result.get().status.ok());
  }
  const ServiceStats stats = service.Stats();
  double total_busy = 0.0;
  for (const DispatcherStats& ds : stats.dispatchers) {
    EXPECT_GE(ds.busy_fraction, 0.0);
    EXPECT_LE(ds.busy_fraction, 1.0);
    total_busy += ds.busy_fraction;
  }
  // Something dispatched, so some dispatcher was busy inside the window.
  EXPECT_GT(total_busy, 0.0);
}

// --- Sampled tracing: ServiceConfig::trace_sample_rate -------------------

TEST(QueryTraceTest, SampleRateTracesEveryNthQueryDeterministically) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 2;
  sc.metrics = &registry;
  sc.trace_sample_rate = 0.25;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());

  // The selector is a deterministic error accumulator, not an RNG: at rate
  // 1/4 exactly every 4th admitted query is promoted — the 4th, 8th, ...
  // — so sequential submission pins both the count and the positions.
  std::vector<bool> traced;
  for (size_t q = 0; q < 16; ++q) {
    QueryOptions options;
    options.request_id = "sampled-" + std::to_string(q);
    QueryResult result =
        service.Submit("docs", data.queries.Vector(q % data.queries.count()),
                       options)
            .result.get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    traced.push_back(result.trace != nullptr);
    if (result.trace != nullptr) {
      // A sampled trace is a full trace: correlation id and real work.
      EXPECT_EQ(result.trace->request_id, "sampled-" + std::to_string(q));
      EXPECT_GT(result.trace->counters.values_scanned, 0u);
    }
  }
  for (size_t q = 0; q < 16; ++q) {
    EXPECT_EQ(traced[q], (q + 1) % 4 == 0) << "query " << q;
  }
}

TEST(QueryTraceTest, SampleRateOneTracesEverythingZeroNothing) {
  Dataset data = MakeData();
  for (const double rate : {0.0, 1.0, -3.0}) {
    MetricsRegistry registry;
    ServiceConfig sc;
    sc.threads = 2;
    sc.metrics = &registry;
    sc.trace_sample_rate = rate;  // Negative clamps to off, never throws.
    SearchService service(sc);
    ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());
    for (size_t q = 0; q < 4; ++q) {
      QueryResult result =
          service.Submit("docs", data.queries.Vector(q)).result.get();
      ASSERT_TRUE(result.status.ok());
      EXPECT_EQ(result.trace != nullptr, rate == 1.0) << "rate " << rate;
    }
  }
}

TEST(QueryTraceTest, ExplicitTraceWinsOverSampling) {
  Dataset data = MakeData();
  MetricsRegistry registry;
  ServiceConfig sc;
  sc.threads = 2;
  sc.metrics = &registry;
  sc.trace_sample_rate = 0.25;
  SearchService service(sc);
  ASSERT_TRUE(service.AddCollection("docs", data.data, Config()).ok());
  // An opted-in query is always traced and does NOT consume the sampling
  // accumulator — the 4th un-opted query after it still gets promoted.
  QueryOptions opt_in;
  opt_in.trace = true;
  opt_in.request_id = "explicit";
  QueryResult explicit_result =
      service.Submit("docs", data.queries.Vector(0), opt_in).result.get();
  ASSERT_TRUE(explicit_result.status.ok());
  ASSERT_NE(explicit_result.trace, nullptr);
  EXPECT_EQ(explicit_result.trace->request_id, "explicit");
  size_t sampled = 0;
  for (size_t q = 0; q < 4; ++q) {
    QueryResult result =
        service.Submit("docs", data.queries.Vector(q)).result.get();
    ASSERT_TRUE(result.status.ok());
    if (result.trace != nullptr) ++sampled;
  }
  EXPECT_EQ(sampled, 1u);
}

}  // namespace
}  // namespace pdx
