// MetricsRegistry unit tests: instrument semantics, get-or-create child
// identity, type-conflict failure, an exact golden of the Prometheus text
// exposition, a writers-vs-scrape race (the TSan target), and the
// zero-allocation guarantee of every hot-path instrument call.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/search_counters.h"
#include "obs/slow_query_log.h"

// Global operator new/delete overrides that count every heap allocation in
// the binary. The zero-allocation test snapshots the counter around the
// instrument calls the dispatch path makes per query; everything else in
// the binary just pays one relaxed add per allocation.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdx {
namespace {

TEST(MetricsTest, CounterGaugeHistogramSemantics) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.GetCounter("c_total", "help");
  counter->Inc();
  counter->Inc(41);
  EXPECT_EQ(counter->value(), 42u);

  MetricGauge* gauge = registry.GetGauge("g", "help");
  gauge->Set(2.5);
  gauge->Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.0);

  MetricHistogram* histogram =
      registry.GetHistogram("h", "help", {1.0, 10.0, 100.0});
  histogram->Observe(0.5);    // bucket 0 (le=1)
  histogram->Observe(1.0);    // bucket 0 (inclusive upper bound)
  histogram->Observe(50.0);   // bucket 2 (le=100)
  histogram->Observe(1e9);    // +Inf bucket
  EXPECT_EQ(histogram->bucket(0), 2u);
  EXPECT_EQ(histogram->bucket(1), 0u);
  EXPECT_EQ(histogram->bucket(2), 1u);
  EXPECT_EQ(histogram->bucket(3), 1u);  // +Inf
  EXPECT_EQ(histogram->count(), 4u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0.5 + 1.0 + 50.0 + 1e9);
}

TEST(MetricsTest, ExponentialBoundsAscendGeometrically) {
  const std::vector<double> bounds = ExponentialBounds(0.01, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.01);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
  }
  const std::vector<double> serving = DefaultLatencyBoundsMs();
  ASSERT_FALSE(serving.empty());
  // 10us up to tens of seconds: wide enough that neither a sub-batch
  // stage time nor a stuck-queue pathology saturates an end bucket.
  EXPECT_DOUBLE_EQ(serving.front(), 0.01);
  EXPECT_GT(serving.back(), 10'000.0);
}

TEST(MetricsTest, GetOrCreateReturnsTheSameInstrument) {
  MetricsRegistry registry;
  MetricCounter* a =
      registry.GetCounter("requests_total", "help", {{"collection", "x"}});
  MetricCounter* b =
      registry.GetCounter("requests_total", "help", {{"collection", "x"}});
  MetricCounter* other =
      registry.GetCounter("requests_total", "help", {{"collection", "y"}});
  EXPECT_EQ(a, b);        // Same (name, labels) => same child: a collection
  EXPECT_NE(a, other);    // re-added under one name keeps its series.
  a->Inc(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(other->value(), 0u);
}

TEST(MetricsTest, TypeAndBoundsConflictsThrow) {
  MetricsRegistry registry;
  registry.GetCounter("name", "help");
  EXPECT_THROW(registry.GetGauge("name", "help"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("name", "help", {1.0}), std::logic_error);
  registry.GetHistogram("h", "help", {1.0, 2.0});
  EXPECT_THROW(registry.GetHistogram("h", "help", {1.0, 3.0}),
               std::logic_error);
  // Same bounds is NOT a conflict — it is the get-or-create path.
  EXPECT_EQ(registry.GetHistogram("h", "help", {1.0, 2.0}),
            registry.GetHistogram("h", "help", {1.0, 2.0}));
}

// The exposition golden: exact text, byte for byte. Values are chosen to
// have unambiguous shortest-round-trip renderings.
TEST(MetricsTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("pdx_queries_total", "Queries by outcome",
                      {{"collection", "docs"}, {"outcome", "completed"}})
      ->Inc(7);
  registry.GetGauge("pdx_queue_depth", "Queries waiting for dispatch")
      ->Set(3);
  MetricHistogram* h = registry.GetHistogram(
      "pdx_stage_ms", "Stage latency", {0.5, 2.0}, {{"stage", "queue"}});
  h->Observe(0.25);
  h->Observe(1.5);
  h->Observe(99.0);
  const std::string expected =
      "# HELP pdx_queries_total Queries by outcome\n"
      "# TYPE pdx_queries_total counter\n"
      "pdx_queries_total{collection=\"docs\",outcome=\"completed\"} 7\n"
      "# HELP pdx_queue_depth Queries waiting for dispatch\n"
      "# TYPE pdx_queue_depth gauge\n"
      "pdx_queue_depth 3\n"
      "# HELP pdx_stage_ms Stage latency\n"
      "# TYPE pdx_stage_ms histogram\n"
      "pdx_stage_ms_bucket{stage=\"queue\",le=\"0.5\"} 1\n"
      "pdx_stage_ms_bucket{stage=\"queue\",le=\"2\"} 2\n"
      "pdx_stage_ms_bucket{stage=\"queue\",le=\"+Inf\"} 3\n"
      "pdx_stage_ms_sum{stage=\"queue\"} 100.75\n"
      "pdx_stage_ms_count{stage=\"queue\"} 3\n";
  EXPECT_EQ(registry.WritePrometheus(), expected);
}

TEST(MetricsTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("c", "h", {{"name", "a\\b\"c\nd"}})->Inc();
  const std::string out = registry.WritePrometheus();
  EXPECT_NE(out.find("c{name=\"a\\\\b\\\"c\\nd\"} 1\n"), std::string::npos)
      << out;
}

// Structural validation of a scraped document, reused by the wire test's
// logic in spirit: every non-comment line is `name{...} value`, histogram
// buckets are cumulative (monotonically non-decreasing), and each
// histogram's +Inf bucket equals its _count.
TEST(MetricsTest, ExpositionParsesAndBucketsAreCumulative) {
  MetricsRegistry registry;
  MetricHistogram* h =
      registry.GetHistogram("lat_ms", "h", DefaultLatencyBoundsMs());
  for (int i = 0; i < 100; ++i) h->Observe(0.01 * i);
  registry.GetCounter("done_total", "h")->Inc(100);

  std::istringstream lines(registry.WritePrometheus());
  std::string line;
  uint64_t previous_bucket = 0;
  uint64_t inf_bucket = 0;
  uint64_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    if (line.compare(0, 14, "lat_ms_bucket{") == 0) {
      const uint64_t bucket = std::stoull(value);
      EXPECT_GE(bucket, previous_bucket) << line;
      previous_bucket = bucket;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_bucket = bucket;
    } else if (line.compare(0, 13, "lat_ms_count ") == 0) {
      count = std::stoull(value);
    }
  }
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(inf_bucket, count);
}

// M writer threads hammer one counter/gauge/histogram while the main
// thread scrapes in a loop — the TSan job runs exactly this binary, so a
// data race between Observe and WritePrometheus fails CI loudly.
TEST(MetricsTest, ConcurrentWritersAndScrapeAgree) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.GetCounter("ops_total", "h");
  MetricGauge* gauge = registry.GetGauge("depth", "h");
  MetricHistogram* histogram =
      registry.GetHistogram("lat", "h", DefaultLatencyBoundsMs());

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 10'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter->Inc();
        gauge->Set(static_cast<double>(t));
        histogram->Observe(0.001 * static_cast<double>(i % 1000));
      }
    });
  }
  // Scrape while the writers are live: the content is torn by design, but
  // it must be readable and race-free.
  for (int i = 0; i < 50; ++i) {
    const std::string scrape = registry.WritePrometheus();
    EXPECT_NE(scrape.find("# TYPE ops_total counter"), std::string::npos);
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
}

// The "tracing off costs nothing" contract, at the instrument layer: the
// calls the dispatch/completion path makes per query — Inc, Set, Observe,
// SlowQueryLog::Qualifies on a full log — must allocate NOTHING. (The
// serving layer's side of the same contract is the pre-reserved per-
// dispatcher counter scratch; see search_service.h.)
TEST(MetricsTest, HotPathInstrumentCallsDoNotAllocate) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.GetCounter("c_total", "h");
  MetricGauge* gauge = registry.GetGauge("g", "h");
  MetricHistogram* histogram =
      registry.GetHistogram("h_ms", "h", DefaultLatencyBoundsMs());
  SlowQueryLog slowlog(2);
  // Fill the slowlog so Qualifies exercises its steady state: a full log
  // rejecting faster queries via the lock-free threshold.
  for (int i = 0; i < 4; ++i) {
    SlowQueryEntry entry;
    entry.total_ms = 100.0 + i;
    slowlog.Add(entry);
  }
  SearchCounters a, b;
  a.values_scanned = 7;

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter->Inc();
    gauge->Set(static_cast<double>(i));
    histogram->Observe(0.5);
    b += a;
    // A fast query against a full log of slow ones: the common case.
    if (slowlog.Qualifies(1.0)) ADD_FAILURE() << "1ms must not qualify";
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "hot-path instrument calls allocated";
  EXPECT_EQ(b.values_scanned, 7000u);
}

TEST(MetricsTest, SlowQueryLogKeepsWorstSortedAndBounded) {
  SlowQueryLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  const double totals[] = {5.0, 1.0, 9.0, 3.0, 7.0};
  uint64_t id = 0;
  for (const double total : totals) {
    EXPECT_TRUE(log.Qualifies(total) || log.Snapshot().size() >= 3);
    SlowQueryEntry entry;
    entry.id = ++id;
    entry.total_ms = total;
    log.Add(entry);
  }
  const std::vector<SlowQueryEntry> worst = log.Snapshot();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_DOUBLE_EQ(worst[0].total_ms, 9.0);
  EXPECT_DOUBLE_EQ(worst[1].total_ms, 7.0);
  EXPECT_DOUBLE_EQ(worst[2].total_ms, 5.0);
  // Below the retained floor: rejected without touching the lock.
  EXPECT_FALSE(log.Qualifies(4.9));
  EXPECT_TRUE(log.Qualifies(5.1));
}

TEST(MetricsTest, SearchCountersAccumulateAndReportPruningPower) {
  SearchCounters c;
  EXPECT_DOUBLE_EQ(c.pruning_power(), 0.0);  // No work yet: defined as 0.
  c.values_scanned = 25;
  c.values_avoided = 75;
  EXPECT_DOUBLE_EQ(c.pruning_power(), 0.75);
  SearchCounters d;
  d.blocks_visited = 2;
  d.values_scanned = 5;
  c += d;
  EXPECT_EQ(c.blocks_visited, 2u);
  EXPECT_EQ(c.values_scanned, 30u);
}

}  // namespace
}  // namespace pdx
