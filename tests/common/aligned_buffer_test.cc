#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/types.h"

namespace pdx {
namespace {

TEST(AlignedBufferTest, DefaultEmpty) {
  AlignedBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.data(), nullptr);
}

TEST(AlignedBufferTest, AllocatesRequestedCount) {
  AlignedBuffer buffer(100);
  EXPECT_EQ(buffer.size(), 100u);
  ASSERT_NE(buffer.data(), nullptr);
}

TEST(AlignedBufferTest, AlignmentIs64Bytes) {
  for (size_t count : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer buffer(count);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % kPdxAlignment, 0u)
        << "count=" << count;
  }
}

TEST(AlignedBufferTest, ZeroInitialized) {
  AlignedBuffer buffer(513);
  for (size_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], 0.0f) << "index " << i;
  }
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(16);
  a[3] = 42.0f;
  float* raw = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b[3], 42.0f);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBufferTest, MoveAssignReleasesOld) {
  AlignedBuffer a(8);
  AlignedBuffer b(4);
  b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
}

TEST(AlignedBufferTest, CloneIsIndependent) {
  AlignedBuffer a(10);
  a[0] = 1.0f;
  AlignedBuffer b = a.Clone();
  EXPECT_EQ(b[0], 1.0f);
  b[0] = 2.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(AlignedBufferTest, ResetReallocatesZeroed) {
  AlignedBuffer buffer(4);
  buffer[0] = 5.0f;
  buffer.Reset(32);
  EXPECT_EQ(buffer.size(), 32u);
  for (float v : buffer) ASSERT_EQ(v, 0.0f);
}

TEST(AlignedBufferTest, IterationCoversAll) {
  AlignedBuffer buffer(5);
  for (size_t i = 0; i < 5; ++i) buffer[i] = float(i);
  float sum = 0.0f;
  for (float v : buffer) sum += v;
  EXPECT_EQ(sum, 10.0f);
}

}  // namespace
}  // namespace pdx
