#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace pdx {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformFloatRespectsRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.UniformFloat(-2.5f, 7.5f);
    ASSERT_GE(v, -2.5f);
    ASSERT_LT(v, 7.5f);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  // Each bin should get roughly 1000 draws.
  for (int count : histogram) EXPECT_NEAR(count, 1000, 200);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint32_t v : sample) ASSERT_LT(v, 1000u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace pdx
