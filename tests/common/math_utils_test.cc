#include "common/math_utils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pdx {
namespace {

TEST(MathUtilsTest, SquaredNorm) {
  const float values[] = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(SquaredNorm(values, 2), 25.0f);
  EXPECT_FLOAT_EQ(Norm(values, 2), 5.0f);
}

TEST(MathUtilsTest, NormOfEmpty) {
  EXPECT_FLOAT_EQ(SquaredNorm(nullptr, 0), 0.0f);
}

TEST(MathUtilsTest, MeanAndVariance) {
  const std::vector<float> values = {2.0f, 4.0f, 4.0f, 4.0f,
                                     5.0f, 5.0f, 7.0f, 9.0f};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(Variance(values), 4.0);
}

TEST(MathUtilsTest, MeanOfEmpty) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0f}), 0.0);
}

TEST(MathUtilsTest, PercentileEndpoints) {
  std::vector<float> values = {1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 4.0);
}

TEST(MathUtilsTest, PercentileInterpolates) {
  std::vector<float> values = {10.0f, 20.0f};
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 15.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 12.5);
}

TEST(MathUtilsTest, PercentileUnsortedInput) {
  std::vector<float> values = {5.0f, 1.0f, 3.0f};
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
}

TEST(MathUtilsTest, PercentileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0f}, 99), 7.0);
}

TEST(MathUtilsTest, GeometricMean) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({3.0, 3.0, 3.0}), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

TEST(MathUtilsTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 8), 0u);
  EXPECT_EQ(RoundUp(1, 8), 8u);
  EXPECT_EQ(RoundUp(8, 8), 8u);
  EXPECT_EQ(RoundUp(9, 8), 16u);
  EXPECT_EQ(RoundUp(17, 5), 20u);
}

TEST(MathUtilsTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0));
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-9));
  EXPECT_TRUE(ApproxEqual(1e6, 1e6 * (1 + 1e-6)));
  EXPECT_FALSE(ApproxEqual(1.0, 1.1));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-9));
  EXPECT_FALSE(ApproxEqual(0.0, 1e-3));
}

}  // namespace
}  // namespace pdx
