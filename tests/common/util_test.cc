// Tests for the small utility substrates: Timer, ParallelFor, cache
// detection, byte formatting, bench text tables.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "benchlib/bench_utils.h"
#include "benchlib/profile.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace pdx {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 500.0);
  EXPECT_NEAR(timer.ElapsedSeconds(), timer.ElapsedMillis() / 1000.0, 0.01);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 10.0);
}

TEST(TimerTest, Monotone) {
  Timer timer;
  const int64_t a = timer.ElapsedNanos();
  const int64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCount) {
  bool called = false;
  ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleItem) {
  int value = 0;
  ParallelFor(1, [&](size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ProfileTest, CacheLevelsOrdered) {
  const CacheInfo info = DetectCaches();
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_GE(info.l2_bytes, info.l1d_bytes);
  EXPECT_GE(info.l3_bytes, info.l2_bytes);
}

TEST(ProfileTest, CacheLevelNames) {
  CacheInfo info;
  info.l1d_bytes = 32 << 10;
  info.l2_bytes = 1 << 20;
  info.l3_bytes = 32 << 20;
  EXPECT_EQ(CacheLevelName(16 << 10, info), "L1");
  EXPECT_EQ(CacheLevelName(512 << 10, info), "L2");
  EXPECT_EQ(CacheLevelName(16 << 20, info), "L3");
  EXPECT_EQ(CacheLevelName(256 << 20, info), "DRAM");
}

TEST(ProfileTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.0KiB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.0MiB");
  EXPECT_EQ(FormatBytes(size_t(2) << 30), "2.0GiB");
}

TEST(BenchUtilsTest, MedianRunNanosPositive) {
  const double ns = MedianRunNanos([]() {
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
  });
  EXPECT_GT(ns, 0.0);
}

TEST(BenchUtilsTest, TextTableNumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(1234.0, 0), "1234");
}

}  // namespace
}  // namespace pdx
