#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace pdx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgument) {
  Status status = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_FALSE(status.IsIoError());
  EXPECT_EQ(status.message(), "bad dim");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, IoError) {
  Status status = Status::IoError("disk");
  EXPECT_TRUE(status.IsIoError());
  EXPECT_EQ(status.ToString(), "IoError: disk");
}

TEST(StatusTest, NotFound) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
}

TEST(StatusTest, Corruption) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
}

TEST(StatusTest, Unsupported) {
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
}

TEST(StatusTest, ServingCodes) {
  Status full = Status::ResourceExhausted("queue full");
  EXPECT_TRUE(full.IsResourceExhausted());
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.ToString(), "ResourceExhausted: queue full");
  EXPECT_TRUE(Status::DeadlineExceeded("late").IsDeadlineExceeded());
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_TRUE(Status::Cancelled("gone").IsCancelled());
  EXPECT_EQ(Status::Cancelled("gone").ToString(), "Cancelled: gone");
  EXPECT_TRUE(Status::Internal("broke").IsInternal());
  EXPECT_EQ(Status::Internal("broke").ToString(), "Internal: broke");
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::Corruption("truncated");
  Status b = a;
  EXPECT_TRUE(b.IsCorruption());
  EXPECT_EQ(b.message(), "truncated");
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.IsCorruption());  // b unaffected.
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(result.value_or(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

namespace {
Status FailsInner() { return Status::IoError("inner"); }
Status Propagates() {
  PDX_RETURN_IF_ERROR(FailsInner());
  return Status::OK();  // Unreachable.
}
Status PropagatesOk() {
  PDX_RETURN_IF_ERROR(Status::OK());
  return Status::InvalidArgument("reached end");
}
}  // namespace

TEST(StatusTest, ReturnIfErrorPropagatesFailure) {
  EXPECT_TRUE(Propagates().IsIoError());
}

TEST(StatusTest, ReturnIfErrorPassesOk) {
  EXPECT_TRUE(PropagatesOk().IsInvalidArgument());
}

TEST(StatusTest, CodeNamesRoundTripEveryCode) {
  // The wire form: a Status transported as {name, message} must
  // reconstitute to the same code on the far side, for every code.
  for (Status::Code code :
       {Status::Code::kOk, Status::Code::kInvalidArgument,
        Status::Code::kIoError, Status::Code::kNotFound,
        Status::Code::kCorruption, Status::Code::kUnsupported,
        Status::Code::kResourceExhausted, Status::Code::kDeadlineExceeded,
        Status::Code::kCancelled, Status::Code::kInternal}) {
    EXPECT_EQ(StatusCodeFromName(StatusCodeName(code)), code);
    const Status rebuilt = Status::FromCode(code, "carried message");
    EXPECT_EQ(rebuilt.code(), code);
    if (code == Status::Code::kOk) {
      // OK carries no message by construction.
      EXPECT_TRUE(rebuilt.ok());
      EXPECT_TRUE(rebuilt.message().empty());
    } else {
      EXPECT_EQ(rebuilt.message(), "carried message");
    }
  }
  // A name from a newer peer's vocabulary must stay a failure.
  EXPECT_EQ(StatusCodeFromName("SomeFutureCode"), Status::Code::kInternal);
  EXPECT_EQ(StatusCodeFromName(""), Status::Code::kInternal);
}

}  // namespace
}  // namespace pdx
