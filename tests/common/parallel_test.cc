#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pdx {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i, size_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreDense) {
  ThreadPool pool(3);
  std::atomic<size_t> max_worker{0};
  pool.ParallelFor(500, [&](size_t, size_t worker) {
    size_t seen = max_worker.load();
    while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_LT(max_worker.load(), 3u);
}

TEST(ThreadPoolTest, SizeOneRunsInlineAndInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  // No synchronization needed below precisely because the loop is inline.
  std::vector<size_t> order;
  pool.ParallelFor(64, [&](size_t i, size_t worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  std::vector<size_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i, size_t) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ThreadPoolTest, SmallJobsTouchAtMostOneThreadPerItem) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<std::thread::id> executors;
  pool.ParallelFor(3, [&](size_t, size_t) {
    std::lock_guard<std::mutex> lock(mu);
    executors.insert(std::this_thread::get_id());
  });
  // 3 items -> at most 3 distinct executing threads, however many wake.
  EXPECT_LE(executors.size(), 3u);
}

TEST(ThreadPoolTest, VaryingJobSizesReuseThePoolCorrectly) {
  ThreadPool pool(6);
  for (size_t count : {2u, 500u, 3u, 64u, 1u, 200u}) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(count, [&](size_t i, size_t) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), count * (count - 1) / 2) << "count " << count;
  }
}

TEST(ThreadPoolTest, NestedCallsRunInlineWithEnclosingWorkerId) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(8, [&](size_t, size_t outer_worker) {
    pool.ParallelFor(10, [&](size_t i, size_t worker) {
      // Re-entrant loops stay on the worker and keep its id, so per-worker
      // scratch indexed by `worker` never aliases another thread's slot.
      EXPECT_EQ(worker, outer_worker);
      inner_total.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8u * 45u);
}

TEST(ThreadPoolTest, CrossPoolCallsStayParallelAndComplete) {
  // Only *same-pool* re-entrancy runs inline; a different pool reached from
  // inside a job keeps its own workers (the serving topology: SearchBatch's
  // pool driven from a task on the shared pool).
  ThreadPool outer(2);
  ThreadPool inner(3);
  std::atomic<size_t> total{0};
  std::atomic<size_t> inner_max_worker{0};
  outer.ParallelFor(6, [&](size_t, size_t) {
    inner.ParallelFor(50, [&](size_t i, size_t worker) {
      size_t seen = inner_max_worker.load();
      while (worker > seen &&
             !inner_max_worker.compare_exchange_weak(seen, worker)) {
      }
      total.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 6u * 1225u);
  EXPECT_LT(inner_max_worker.load(), 3u);
}

TEST(ThreadPoolTest, SandwichedReentrancyRunsInlineWithOriginalWorkerId) {
  // A -> B -> A on one thread: the innermost A-loop must find A's frame
  // below B's on the stack and run inline as A's worker — not submit a
  // fresh job to A under a second worker id (which would alias per-worker
  // scratch indexed by A's ids on this thread).
  ThreadPool a(2);
  ThreadPool b(2);
  std::atomic<size_t> total{0};
  a.ParallelFor(4, [&](size_t, size_t outer_worker) {
    // count == 1 keeps b's part on this thread, so the chain is
    // deterministic.
    b.ParallelFor(1, [&](size_t, size_t) {
      a.ParallelFor(5, [&](size_t i, size_t worker) {
        EXPECT_EQ(worker, outer_worker);
        total.fetch_add(i, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(total.load(), 4u * 10u);
}

TEST(ThreadPoolTest, ConcurrentCallersShareTheWorkers) {
  // The replicated-dispatcher topology: several threads each submit their
  // own loop to ONE pool. Loops run side by side (no caller blocks until
  // another caller's whole loop finishes), every index of every loop runs
  // exactly once, and each caller only ever participates in its own loop.
  ThreadPool pool(4);
  constexpr size_t kCallers = 3;
  constexpr size_t kRounds = 20;
  constexpr size_t kCount = 257;
  std::vector<std::thread> callers;
  std::atomic<size_t> failures{0};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> hits(kCount);
        std::atomic<size_t> sum{0};
        pool.ParallelFor(kCount, [&](size_t i, size_t worker) {
          if (worker >= pool.num_threads()) failures.fetch_add(1);
          hits[i].fetch_add(1, std::memory_order_relaxed);
          sum.fetch_add(i + c, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < kCount; ++i) {
          if (hits[i].load() != 1) failures.fetch_add(1);
        }
        if (sum.load() != kCount * (kCount - 1) / 2 + c * kCount) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ThreadPoolTest, ConcurrentCallersOnSequentialPoolRunInline) {
  // A size-1 pool runs every loop inline on its caller; concurrent callers
  // are each their own loop's worker 0 on their own thread, so nothing
  // serializes and nothing races.
  ThreadPool pool(1);
  std::vector<std::thread> callers;
  std::atomic<size_t> total{0};
  for (size_t c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        pool.ParallelFor(64, [&](size_t, size_t worker) {
          if (worker == 0) total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 50u * 64u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i, size_t) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<size_t> count{0};
  pool.ParallelFor(10, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t, size_t) { FAIL(); });
}

TEST(ParallelForTest, FreeFunctionCoversAllIndices) {
  constexpr size_t kCount = 333;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace pdx
