// Figure 8: all pruning algorithms on the PDX layout — PDX-ADS, PDX-BSA,
// PDX-BOND — against the FAISS-like IVF_FLAT linear scan (KNN=10).
//
// Paper shape to reproduce: all PDX pruners beat the linear-scan baseline;
// ADSampling leads at high dimensionality (its projection buys pruning
// power), PDX-BOND is competitive at ~0.9 recall despite being exact and
// preprocessing-free; BSA can trail ADSampling on low-D datasets.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace pdx {
namespace {

void RunDataset(const SyntheticSpec& spec) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);

  // The whole pruner roster through the runtime facade, sharing one IVF
  // index (threads = 1: the paper's single-threaded query methodology).
  std::vector<NamedSearcher> roster = BuildPrunerRoster(
      s.dataset.data, &s.index, SearcherLayout::kIvf, s.k,
      /*nprobe=*/16, /*threads=*/1,
      [&](const std::string&, SearcherConfig& config) {
        if (config.pruner == PrunerKind::kLinear) {
          return false;  // The FAISS-like scan below is the baseline here.
        }
        // The paper tunes BSA's multiplier per dataset to match
        // ADSampling's recall; the m-scaled bound is far too aggressive at
        // low D (few suffix dims to absorb the estimate's error), so keep
        // the exact bound there.
        if (config.pruner == PrunerKind::kBsa) {
          config.bsa_multiplier = s.dataset.dim() >= 128 ? 0.8f : 1.0f;
        }
        return true;
      });

  TextTable table({"dataset", "nprobe", "method", "recall@10", "QPS",
                   "p50(ms)", "p95(ms)", "p99(ms)"});
  for (size_t nprobe : bench::NprobeLadder(s.index.num_buckets())) {
    auto add = [&](const std::string& method, const bench::SweepResult& r) {
      table.AddRow({spec.name, std::to_string(nprobe), method,
                    TextTable::Num(r.recall, 3), TextTable::Num(r.qps, 0),
                    TextTable::Num(r.latency.p50_ms, 3),
                    TextTable::Num(r.latency.p95_ms, 3),
                    TextTable::Num(r.latency.p99_ms, 3)});
    };
    for (NamedSearcher& entry : roster) {
      entry.searcher->set_nprobe(nprobe);
      add(entry.name, bench::MeasureSweep(s, [&](size_t q) {
            return entry.searcher->Search(s.dataset.queries.Vector(q));
          }));
    }
    add("FAISS-like", bench::MeasureSweep(s, [&](size_t q) {
          return IvfNarySearch(s.index, s.ordered,
                               s.dataset.queries.Vector(q), s.k, nprobe);
        }));
  }
  table.Print();
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Figure 8: PDX-ADS / PDX-BSA / PDX-BOND vs FAISS-like on IVF "
      "(KNN=10)");
  const double scale = BenchScaleFromEnv();
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 40;
    RunDataset(spec);
  }
  return 0;
}
