// Figure 8: all pruning algorithms on the PDX layout — PDX-ADS, PDX-BSA,
// PDX-BOND — against the FAISS-like IVF_FLAT linear scan (KNN=10).
//
// Paper shape to reproduce: all PDX pruners beat the linear-scan baseline;
// ADSampling leads at high dimensionality (its projection buys pruning
// power), PDX-BOND is competitive at ~0.9 recall despite being exact and
// preprocessing-free; BSA can trail ADSampling on low-D datasets.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace pdx {
namespace {

void RunDataset(const SyntheticSpec& spec) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);

  auto ads = MakeAdsIvfSearcher(s.dataset.data, s.index, {});
  BsaConfig bsa_config;
  // The paper tunes BSA's multiplier per dataset to match ADSampling's
  // recall; the m-scaled bound is far too aggressive at low D (few suffix
  // dims to absorb the estimate's error), so keep the exact bound there.
  bsa_config.multiplier = s.dataset.dim() >= 128 ? 0.8f : 1.0f;
  auto bsa = MakeBsaIvfSearcher(s.dataset.data, s.index, bsa_config);
  auto bond = MakeBondIvfSearcher(s.dataset.data, s.index, {});

  TextTable table({"dataset", "nprobe", "method", "recall@10",
                          "QPS"});
  for (size_t nprobe : bench::NprobeLadder(s.index.num_buckets())) {
    auto add = [&](const char* method, const bench::SweepResult& r) {
      table.AddRow({spec.name, std::to_string(nprobe), method,
                    TextTable::Num(r.recall, 3),
                    TextTable::Num(r.qps, 0)});
    };
    add("PDX-ADS", bench::MeasureSweep(s, [&](size_t q) {
          return ads->Search(s.dataset.queries.Vector(q), s.k, nprobe);
        }));
    add("PDX-BSA", bench::MeasureSweep(s, [&](size_t q) {
          return bsa->Search(s.dataset.queries.Vector(q), s.k, nprobe);
        }));
    add("PDX-BOND", bench::MeasureSweep(s, [&](size_t q) {
          return bond->Search(s.dataset.queries.Vector(q), s.k, nprobe);
        }));
    add("FAISS-like", bench::MeasureSweep(s, [&](size_t q) {
          return IvfNarySearch(s.index, s.ordered,
                               s.dataset.queries.Vector(q), s.k, nprobe);
        }));
  }
  table.Print();
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Figure 8: PDX-ADS / PDX-BSA / PDX-BOND vs FAISS-like on IVF "
      "(KNN=10)");
  const double scale = BenchScaleFromEnv();
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 40;
    RunDataset(spec);
  }
  return 0;
}
