// Figure 9: exact-search QPS (KNN=10) across the whole dataset roster —
// PDX-BOND and the PDX linear scan against horizontal SIMD scans (the
// FAISS/USearch role), a DSM linear scan, and a scalar baseline (the
// Scikit-learn role).
//
// Paper shape to reproduce: PDX-BOND and PDX-LINEAR win everywhere;
// horizontal SIMD needs high dimensionality to approach them; DSM trails
// PDX (~1.5x); the scalar baseline is slowest.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace pdx {
namespace {

void RunDataset(const SyntheticSpec& spec) {
  Dataset dataset = GenerateDataset(spec);
  const size_t k = 10;

  PdxStore pdx_store = PdxStore::FromVectorSet(dataset.data);
  DsmStore dsm_store = DsmStore::FromVectorSet(dataset.data);
  // Flat PDX-BOND: <=10K partitions, distance-to-means order (Section 6.5),
  // partition size capped so small collections still have several blocks.
  BondConfig bond_config = DefaultFlatBondConfig();
  bond_config.block_capacity =
      std::min<size_t>(kExactSearchBlockCapacity,
                       std::max<size_t>(1024, dataset.data.count() / 8));
  auto bond = MakeBondFlatSearcher(dataset.data, bond_config);

  const size_t nq = dataset.queries.count();
  TextTable table({"dataset", "method", "QPS", "speedup vs scalar"});
  double scalar_qps = 0.0;
  auto measure = [&](const char* name, auto&& fn) {
    Timer timer;
    for (size_t q = 0; q < nq; ++q) fn(dataset.queries.Vector(q));
    const double qps = nq / timer.ElapsedSeconds();
    if (scalar_qps == 0.0) scalar_qps = qps;  // First row is the baseline.
    table.AddRow({spec.name, name, TextTable::Num(qps, 0),
                  TextTable::Num(qps / scalar_qps)});
  };

  measure("Sklearn-like (scalar)", [&](const float* q) {
    FlatSearchScalar(dataset.data, q, k, Metric::kL2);
  });
  measure("FAISS-like (N-ary SIMD)", [&](const float* q) {
    FlatSearchNary(dataset.data, q, k, Metric::kL2, Isa::kBest);
  });
  measure("USearch-like (N-ary AVX2)", [&](const float* q) {
    FlatSearchNary(dataset.data, q, k, Metric::kL2, Isa::kAvx2);
  });
  measure("DSM-LINEAR-SCAN", [&](const float* q) {
    FlatSearchDsm(dsm_store, q, k, Metric::kL2);
  });
  measure("PDX-LINEAR-SCAN", [&](const float* q) {
    FlatSearchPdx(pdx_store, q, k, Metric::kL2);
  });
  measure("PDX-BOND", [&](const float* q) { bond->Search(q, k); });
  table.Print();
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner("Figure 9: exact-search QPS across the dataset roster");
  const double scale = BenchScaleFromEnv();
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 30;
    RunDataset(spec);
  }
  return 0;
}
