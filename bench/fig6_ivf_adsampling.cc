// Figure 6: QPS vs recall on an IVF index (K=10), comparing three versions
// of ADSampling — vanilla scalar (SCALAR-ADS), SIMDized horizontal
// (SIMD-ADS), and PDXearch (PDX-ADS) — against IVF_FLAT linear scans
// standing in for FAISS (shared index) and Milvus (its own k-means).
//
// Paper shape to reproduce: only PDX-ADS beats the linear-scan systems
// everywhere; SIMD-ADS can *lose* to them (the paper's key negative
// result); gaps grow with dimensionality and recall.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace pdx {
namespace {

void RunDataset(const SyntheticSpec& spec) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);
  const size_t dim = s.dataset.dim();
  const size_t delta_d = std::min<size_t>(32, std::max<size_t>(1, dim / 4));

  // Shared preprocessing: one rotation used by all three ADS variants.
  AdsConfig ads_config;
  auto pdx_ads = MakeAdsIvfSearcher(s.dataset.data, s.index, ads_config);
  const AdSamplingPruner& pruner = pdx_ads->pruner();
  VectorSet rotated = pruner.TransformCollection(s.dataset.data);
  BucketOrderedSet rotated_ordered = ReorderByBuckets(rotated, s.index);
  DualBlockStore dual =
      DualBlockStore::FromVectorSet(rotated_ordered.vectors, delta_d);

  // Milvus stand-in: builds its *own* IVF index (different seed).
  IvfOptions milvus_options;
  milvus_options.seed = 1337;
  IvfIndex milvus_index = IvfIndex::Build(s.dataset.data, milvus_options);
  BucketOrderedSet milvus_ordered =
      ReorderByBuckets(s.dataset.data, milvus_index);

  TextTable table({"dataset", "nprobe", "method", "recall@10",
                          "QPS"});
  for (size_t nprobe : bench::NprobeLadder(s.index.num_buckets())) {
    auto add = [&](const char* method, const bench::SweepResult& r) {
      table.AddRow({spec.name, std::to_string(nprobe), method,
                    TextTable::Num(r.recall, 3),
                    TextTable::Num(r.qps, 0)});
    };
    add("SCALAR-ADS", bench::MeasureSweep(s, [&](size_t q) {
          return IvfHorizontalAdsSearch(
              pruner, s.index, dual, rotated_ordered.ids,
              rotated_ordered.offsets, s.dataset.queries.Vector(q), s.k,
              nprobe, HorizontalKernel::kScalar, delta_d);
        }));
    add("SIMD-ADS", bench::MeasureSweep(s, [&](size_t q) {
          return IvfHorizontalAdsSearch(
              pruner, s.index, dual, rotated_ordered.ids,
              rotated_ordered.offsets, s.dataset.queries.Vector(q), s.k,
              nprobe, HorizontalKernel::kSimd, delta_d);
        }));
    add("PDX-ADS", bench::MeasureSweep(s, [&](size_t q) {
          return pdx_ads->Search(s.dataset.queries.Vector(q), s.k, nprobe);
        }));
    add("FAISS-like", bench::MeasureSweep(s, [&](size_t q) {
          return IvfNarySearch(s.index, s.ordered,
                               s.dataset.queries.Vector(q), s.k, nprobe);
        }));
    add("Milvus-like", bench::MeasureSweep(s, [&](size_t q) {
          return IvfNarySearch(milvus_index, milvus_ordered,
                               s.dataset.queries.Vector(q), s.k, nprobe);
        }));
  }
  table.Print();
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Figure 6: IVF QPS vs recall — SCALAR-ADS / SIMD-ADS / PDX-ADS vs "
      "FAISS/Milvus stand-ins (KNN=10)");
  const double scale = BenchScaleFromEnv();
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 40;
    RunDataset(spec);
  }
  return 0;
}
