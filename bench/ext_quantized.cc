// Extension bench (paper Section 7 future work): u8-quantized PDX blocks.
// "A follow-up to the PDX layout would be on efficient compressed
// representations of dimensions within blocks. This would reduce even more
// the memory/network bandwidth needed and bring more benefits to the PDX
// distance kernels which are memory-bounded."
//
// Measures: quantized PDX scan (+ re-rank) vs float32 PDX scan vs N-ary
// SIMD scan, with recall of the quantized search. Expected shape: the u8
// scan approaches 4x on memory-bound working sets (quarter the bytes) and
// re-ranking restores near-perfect recall at negligible cost.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "quant/quantized_kernels.h"
#include "quant/quantized_store.h"

int main() {
  using namespace pdx;
  PrintBanner(
      "Extension: u8-quantized PDX blocks vs float32 PDX vs N-ary SIMD "
      "(exact 10-NN + re-rank)");
  const double scale = BenchScaleFromEnv();

  TextTable table({"dataset", "method", "QPS", "recall@10"});
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 30;
    Dataset dataset = GenerateDataset(spec);
    const size_t k = 10;
    const size_t nq = dataset.queries.count();

    PdxStore pdx_store = PdxStore::FromVectorSet(dataset.data);
    QuantizedPdxStore quant = QuantizedPdxStore::FromVectorSet(dataset.data);
    const auto truth = ComputeGroundTruth(dataset.data, dataset.queries, k);

    auto run = [&](const char* name, auto&& fn) {
      std::vector<std::vector<Neighbor>> results;
      results.reserve(nq);
      Timer timer;
      for (size_t q = 0; q < nq; ++q) {
        results.push_back(fn(dataset.queries.Vector(q)));
      }
      const double qps = nq / timer.ElapsedSeconds();
      table.AddRow({spec.name, name, TextTable::Num(qps, 0),
                    TextTable::Num(MeanRecallAtK(results, truth, k), 3)});
    };

    run("N-ary SIMD f32", [&](const float* q) {
      return FlatSearchNary(dataset.data, q, k, Metric::kL2);
    });
    run("PDX f32", [&](const float* q) {
      return FlatSearchPdx(pdx_store, q, k, Metric::kL2);
    });
    run("PDX u8 (no rerank)", [&](const float* q) {
      return QuantizedFlatSearch(quant, dataset.data, q, k, 0);
    });
    run("PDX u8 + rerank x4", [&](const float* q) {
      return QuantizedFlatSearch(quant, dataset.data, q, k, 4);
    });
  }
  table.Print();
  return 0;
}
