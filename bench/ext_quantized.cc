// Extension bench (paper Section 7 future work): u8-quantized PDX blocks.
// "A follow-up to the PDX layout would be on efficient compressed
// representations of dimensions within blocks. This would reduce even more
// the memory/network bandwidth needed and bring more benefits to the PDX
// distance kernels which are memory-bounded."
//
// Measures: the quantized serving tier (MakeSearcher with quantization =
// kU8, with and without rerank) vs float32 PDX scan vs N-ary SIMD scan,
// with recall of the quantized search — the fig8-style recall-delta view.
// Expected shape: the u8 scan approaches 4x on memory-bound working sets
// (quarter the bytes) and re-ranking restores near-perfect recall at
// negligible cost.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/any_searcher.h"

int main() {
  using namespace pdx;
  PrintBanner(
      "Extension: u8-quantized serving tier vs float32 PDX vs N-ary SIMD "
      "(exact 10-NN + re-rank)");
  const double scale = BenchScaleFromEnv();

  TextTable table({"dataset", "method", "QPS", "recall@10"});
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 30;
    Dataset dataset = GenerateDataset(spec);
    const size_t k = 10;
    const size_t nq = dataset.queries.count();

    PdxStore pdx_store = PdxStore::FromVectorSet(dataset.data);
    const auto truth = ComputeGroundTruth(dataset.data, dataset.queries, k);

    // Both quantized rungs go through the facade — the exact path a
    // serving collection with `"quantization": "u8"` runs.
    auto make_quantized = [&](size_t rerank_factor) {
      SearcherConfig config;
      config.layout = SearcherLayout::kFlat;
      config.quantization = QuantizationKind::kU8;
      config.rerank_factor = rerank_factor;
      config.k = k;
      auto made = MakeSearcher(dataset.data, config);
      if (!made.ok()) {
        std::fprintf(stderr, "quantized searcher: %s\n",
                     made.status().message().c_str());
        std::exit(1);
      }
      return std::move(made).value();
    };
    std::unique_ptr<Searcher> quant_raw = make_quantized(0);
    std::unique_ptr<Searcher> quant_rerank = make_quantized(4);

    auto run = [&](const char* name, auto&& fn) {
      std::vector<std::vector<Neighbor>> results;
      results.reserve(nq);
      Timer timer;
      for (size_t q = 0; q < nq; ++q) {
        results.push_back(fn(dataset.queries.Vector(q)));
      }
      const double qps = nq / timer.ElapsedSeconds();
      table.AddRow({spec.name, name, TextTable::Num(qps, 0),
                    TextTable::Num(MeanRecallAtK(results, truth, k), 3)});
    };

    run("N-ary SIMD f32", [&](const float* q) {
      return FlatSearchNary(dataset.data, q, k, Metric::kL2);
    });
    run("PDX f32", [&](const float* q) {
      return FlatSearchPdx(pdx_store, q, k, Metric::kL2);
    });
    run("PDX u8 (no rerank)",
        [&](const float* q) { return quant_raw->Search(q); });
    run("PDX u8 + rerank x4",
        [&](const float* q) { return quant_rerank->Search(q); });
  }
  table.Print();
  return 0;
}
