#ifndef PDX_BENCH_BENCH_COMMON_H_
#define PDX_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the per-table/figure benchmark binaries.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "benchlib/bench_utils.h"
#include "benchlib/datagen.h"
#include "benchlib/latency.h"
#include "benchlib/recall.h"
#include "benchlib/workloads.h"
#include "common/timer.h"
#include "core/pdx.h"

namespace pdx {
namespace bench {

/// Everything the IVF experiments need about one dataset, built once.
struct IvfScenario {
  Dataset dataset;
  IvfIndex index;
  BucketOrderedSet ordered;  // Raw vectors in bucket order.
  std::vector<std::vector<VectorId>> truth;
  size_t k = 10;
};

inline IvfScenario BuildIvfScenario(const SyntheticSpec& spec,
                                    size_t k = 10) {
  IvfScenario s;
  s.k = k;
  s.dataset = GenerateDataset(spec);
  s.index = IvfIndex::Build(s.dataset.data, {});
  s.ordered = ReorderByBuckets(s.dataset.data, s.index);
  s.truth = ComputeGroundTruth(s.dataset.data, s.dataset.queries, k);
  return s;
}

/// Runs `search(query_index)` for every query; returns mean recall, QPS,
/// and the per-query latency distribution (p50/p95/p99).
struct SweepResult {
  double recall = 0.0;
  double qps = 0.0;
  LatencySummary latency;
};

inline SweepResult MeasureSweep(
    const IvfScenario& s,
    const std::function<std::vector<Neighbor>(size_t)>& search) {
  const size_t nq = s.dataset.queries.count();
  std::vector<std::vector<Neighbor>> results;
  results.reserve(nq);
  LatencyRecorder latencies;
  Timer timer;
  for (size_t q = 0; q < nq; ++q) {
    Timer per_query;
    results.push_back(search(q));
    latencies.Record(per_query.ElapsedMillis());
  }
  const double seconds = timer.ElapsedSeconds();
  SweepResult out;
  out.qps = static_cast<double>(nq) / seconds;
  out.recall = MeanRecallAtK(results, s.truth, s.k);
  out.latency = latencies.Summary();
  return out;
}

/// nprobe ladder clipped to the bucket count (the paper sweeps to 512).
inline std::vector<size_t> NprobeLadder(size_t num_buckets) {
  std::vector<size_t> ladder;
  for (size_t p : {2u, 8u, 32u, 128u}) {
    ladder.push_back(std::min<size_t>(p, num_buckets));
  }
  // Dedup in case the bucket count clipped several rungs together.
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

}  // namespace bench
}  // namespace pdx

#endif  // PDX_BENCH_BENCH_COMMON_H_
