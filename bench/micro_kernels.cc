// Google-benchmark microbenchmarks of the raw distance kernels — the
// per-operation numbers behind Tables 4/5 and Figure 12, with
// statistically managed timing.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "kernels/gather_kernels.h"
#include "kernels/nary_kernels.h"
#include "kernels/pdx_kernels.h"
#include "kernels/scalar_kernels.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

constexpr size_t kCount = 16384;

struct Fixture {
  VectorSet nary;
  PdxStore pdx;
  std::vector<float> query;
  std::vector<float> out;
};

Fixture MakeFixture(size_t dim) {
  Rng rng(dim);
  Fixture fx;
  fx.nary = VectorSet(dim, kCount);
  std::vector<float> row(dim);
  for (size_t i = 0; i < kCount; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    fx.nary.Append(row.data());
  }
  fx.pdx = PdxStore::FromVectorSet(fx.nary);
  fx.query.resize(dim);
  for (float& v : fx.query) v = static_cast<float>(rng.Gaussian());
  fx.out.resize(kCount);
  return fx;
}

void BM_NaryL2(benchmark::State& state) {
  Fixture fx = MakeFixture(state.range(0));
  for (auto _ : state) {
    NaryDistanceBatch(Metric::kL2, fx.query.data(), fx.nary.data(), kCount,
                      fx.nary.dim(), fx.out.data());
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}

void BM_ScalarL2(benchmark::State& state) {
  Fixture fx = MakeFixture(state.range(0));
  for (auto _ : state) {
    ScalarDistanceBatch(Metric::kL2, fx.query.data(), fx.nary.data(), kCount,
                        fx.nary.dim(), fx.out.data());
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}

void BM_PdxL2(benchmark::State& state) {
  Fixture fx = MakeFixture(state.range(0));
  for (auto _ : state) {
    size_t offset = 0;
    for (size_t b = 0; b < fx.pdx.num_blocks(); ++b) {
      const PdxBlock& block = fx.pdx.block(b);
      PdxLinearScan(Metric::kL2, fx.query.data(), block.data(),
                    block.count(), block.dim(), fx.out.data() + offset);
      offset += block.count();
    }
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}

void BM_GatherL2(benchmark::State& state) {
  Fixture fx = MakeFixture(state.range(0));
  for (auto _ : state) {
    NaryGatherDistanceBatch(Metric::kL2, fx.query.data(), fx.nary.data(),
                            kCount, fx.nary.dim(), fx.out.data());
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}

BENCHMARK(BM_ScalarL2)->Arg(8)->Arg(128)->Arg(1024);
BENCHMARK(BM_NaryL2)->Arg(8)->Arg(128)->Arg(1024);
BENCHMARK(BM_PdxL2)->Arg(8)->Arg(128)->Arg(1024);
BENCHMARK(BM_GatherL2)->Arg(128);

}  // namespace
}  // namespace pdx

BENCHMARK_MAIN();
