// Google-benchmark microbenchmarks of the raw distance kernels — the
// per-operation numbers behind Tables 4/5 and Figure 12, with
// statistically managed timing.
//
// Every kernel family (n-ary batch, PDX linear scan, gather) is registered
// once per ISA tier this binary carries AND the host can run, addressed
// directly through GetKernelTable() — one run therefore measures the whole
// scalar/AVX2/AVX-512 ladder, not just the dispatched tier.
//
// Pass --json=PATH (e.g. --json=BENCH_kernels.json) to additionally write a
// machine-readable summary with per-tier GB/s and speedup-vs-scalar.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "kernels/kernel_dispatch.h"
#include "net/json.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {
namespace {

constexpr size_t kCount = 16384;

struct Fixture {
  VectorSet nary;
  PdxStore pdx;
  std::vector<float> query;
  std::vector<float> out;
};

Fixture MakeFixture(size_t dim) {
  Rng rng(dim);
  Fixture fx;
  fx.nary = VectorSet(dim, kCount);
  std::vector<float> row(dim);
  for (size_t i = 0; i < kCount; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    fx.nary.Append(row.data());
  }
  fx.pdx = PdxStore::FromVectorSet(fx.nary);
  fx.query.resize(dim);
  for (float& v : fx.query) v = static_cast<float>(rng.Gaussian());
  fx.out.resize(kCount);
  return fx;
}

// One registered benchmark: (family, tier, dim), keyed by the name google
// benchmark reports so the JSON emitter can find its timing afterwards.
struct Registration {
  std::string run_name;  // e.g. "nary_l2/avx2/128"
  std::string family;
  Isa isa = Isa::kScalar;
  size_t dim = 0;
};

std::vector<Registration>& Registrations() {
  static std::vector<Registration> regs;
  return regs;
}

void BenchNary(benchmark::State& state, const KernelTable* table,
               size_t dim) {
  Fixture fx = MakeFixture(dim);
  for (auto _ : state) {
    table->nary_batch(Metric::kL2, fx.query.data(), fx.nary.data(), kCount,
                      dim, fx.out.data());
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetBytesProcessed(state.iterations() * kCount * dim * sizeof(float));
}

void BenchPdx(benchmark::State& state, const KernelTable* table, size_t dim) {
  Fixture fx = MakeFixture(dim);
  for (auto _ : state) {
    size_t offset = 0;
    for (size_t b = 0; b < fx.pdx.num_blocks(); ++b) {
      const PdxBlock& block = fx.pdx.block(b);
      table->pdx_linear_scan(Metric::kL2, fx.query.data(), block.data(),
                             block.count(), block.dim(),
                             fx.out.data() + offset);
      offset += block.count();
    }
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetBytesProcessed(state.iterations() * kCount * dim * sizeof(float));
}

void BenchGather(benchmark::State& state, const KernelTable* table,
                 size_t dim) {
  Fixture fx = MakeFixture(dim);
  for (auto _ : state) {
    table->gather_batch(Metric::kL2, fx.query.data(), fx.nary.data(), kCount,
                        dim, fx.out.data());
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetBytesProcessed(state.iterations() * kCount * dim * sizeof(float));
}

void RegisterAll() {
  using BenchFn = void (*)(benchmark::State&, const KernelTable*, size_t);
  const std::pair<const char*, BenchFn> families[] = {
      {"nary_l2", &BenchNary},
      {"pdx_l2", &BenchPdx},
      {"gather_l2", &BenchGather},
  };
  const size_t dims[] = {8, 128, 1024};
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (!IsaAvailable(isa)) continue;
    const KernelTable* table = &GetKernelTable(isa);
    for (const auto& [family, fn] : families) {
      for (const size_t dim : dims) {
        const std::string name =
            std::string(family) + "/" + IsaName(isa) + "/" +
            std::to_string(dim);
        Registrations().push_back(Registration{name, family, isa, dim});
        benchmark::RegisterBenchmark(name.c_str(), fn, table, dim);
      }
    }
  }
}

// Console output plus a capture of every run's timing for the JSON emitter.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.iterations == 0) continue;
      seconds_per_run_[run.benchmark_name()] =
          run.real_accumulated_time / static_cast<double>(run.iterations);
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
  const std::map<std::string, double>& seconds_per_run() const {
    return seconds_per_run_;
  }

 private:
  std::map<std::string, double> seconds_per_run_;
};

int WriteJsonSummary(const std::string& path,
                     const std::map<std::string, double>& seconds_per_run) {
  // Scalar baselines per (family, dim) for speedup-vs-scalar.
  std::map<std::string, double> scalar_seconds;
  for (const Registration& reg : Registrations()) {
    auto it = seconds_per_run.find(reg.run_name);
    if (it == seconds_per_run.end()) continue;
    if (reg.isa == Isa::kScalar) {
      scalar_seconds[reg.family + "/" + std::to_string(reg.dim)] = it->second;
    }
  }

  JsonValue results = JsonValue::Array();
  for (const Registration& reg : Registrations()) {
    auto it = seconds_per_run.find(reg.run_name);
    if (it == seconds_per_run.end()) continue;
    const double seconds = it->second;
    const double bytes = static_cast<double>(kCount) * reg.dim *
                         sizeof(float);
    JsonValue entry = JsonValue::Object();
    entry.Set("family", reg.family);
    entry.Set("isa", IsaName(reg.isa));
    entry.Set("dim", reg.dim);
    entry.Set("ns_per_vector", seconds * 1e9 / static_cast<double>(kCount));
    entry.Set("gb_per_s", seconds > 0.0 ? bytes / seconds / 1e9 : 0.0);
    auto base = scalar_seconds.find(reg.family + "/" +
                                    std::to_string(reg.dim));
    if (base != scalar_seconds.end() && seconds > 0.0) {
      entry.Set("speedup_vs_scalar", base->second / seconds);
    }
    results.Append(std::move(entry));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "micro_kernels");
  doc.Set("count", kCount);
  doc.Set("dispatched_isa", IsaName(DispatchedIsa()));
  doc.Set("results", std::move(results));

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "micro_kernels: cannot write %s\n", path.c_str());
    return 1;
  }
  out << WriteJson(doc) << "\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace pdx

int main(int argc, char** argv) {
  // Peel off our own --json=PATH flag before google benchmark sees argv.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  pdx::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pdx::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    return pdx::WriteJsonSummary(json_path, reporter.seconds_per_run());
  }
  return 0;
}
