// Section 6.4 / Figure 5 ablation: dimension visit-order criteria for
// PDX-BOND — sequential vs BOND's decreasing-query-value vs
// distance-to-means vs dimension zones — plus a zone-size sweep.
//
// Paper shape to reproduce: on IVF (small blocks), dimension zones beat
// plain distance-to-means (~30%) and decreasing (~40%) thanks to
// sequential stretches; on flat exact search (large blocks),
// distance-to-means achieves the best pruning and wins.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace pdx {
namespace {

void RunIvf(const SyntheticSpec& spec, TextTable& table) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);
  const size_t nprobe = std::min<size_t>(64, s.index.num_buckets());

  auto measure = [&](DimensionOrder order, size_t zone_size) {
    BondConfig config;
    config.order = order;
    config.zone_size = zone_size;
    auto searcher = MakeBondIvfSearcher(s.dataset.data, s.index, config);
    double power = 0.0;
    Timer timer;
    for (size_t q = 0; q < s.dataset.queries.count(); ++q) {
      searcher->Search(s.dataset.queries.Vector(q), s.k, nprobe);
      power += searcher->last_profile().pruning_power();
    }
    const double qps = s.dataset.queries.count() / timer.ElapsedSeconds();
    std::string label = DimensionOrderName(order);
    if (order == DimensionOrder::kDimensionZones) {
      label += "(z=" + std::to_string(zone_size) + ")";
    }
    table.AddRow({spec.name, "ivf", label, TextTable::Num(qps, 0),
                  TextTable::Num(
                      100.0 * power / s.dataset.queries.count(), 1) +
                      "%"});
  };

  measure(DimensionOrder::kSequential, 16);
  measure(DimensionOrder::kDecreasingQuery, 16);
  measure(DimensionOrder::kDistanceToMeans, 16);
  for (size_t zone : {4u, 16u, 64u}) {
    measure(DimensionOrder::kDimensionZones, zone);
  }
}

void RunFlat(const SyntheticSpec& spec, TextTable& table) {
  Dataset dataset = GenerateDataset(spec);
  auto measure = [&](DimensionOrder order) {
    BondConfig config = DefaultFlatBondConfig();
    config.order = order;
    config.block_capacity =
        std::max<size_t>(1024, dataset.data.count() / 8);
    auto searcher = MakeBondFlatSearcher(dataset.data, config);
    double power = 0.0;
    Timer timer;
    for (size_t q = 0; q < dataset.queries.count(); ++q) {
      searcher->Search(dataset.queries.Vector(q), 10);
      power += searcher->last_profile().pruning_power();
    }
    const double qps = dataset.queries.count() / timer.ElapsedSeconds();
    table.AddRow({spec.name, "flat", DimensionOrderName(order),
                  TextTable::Num(qps, 0),
                  TextTable::Num(
                      100.0 * power / dataset.queries.count(), 1) +
                      "%"});
  };
  measure(DimensionOrder::kSequential);
  measure(DimensionOrder::kDecreasingQuery);
  measure(DimensionOrder::kDistanceToMeans);
  measure(DimensionOrder::kDimensionZones);
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Section 6.4: PDX-BOND dimension-order criteria ablation "
      "(+ zone-size sweep)");
  const double scale = BenchScaleFromEnv();
  TextTable table(
      {"dataset", "setting", "criterion", "QPS", "pruning power"});
  for (SyntheticSpec spec : CoreWorkloads(scale)) {
    spec.num_queries = 30;
    RunIvf(spec, table);
    RunFlat(spec, table);
  }
  table.Print();
  return 0;
}
