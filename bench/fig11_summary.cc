// Figure 11: geometric-mean speedup summary over all datasets, per
// "architecture". The paper runs four CPUs; this reproduction has one
// host, so the architecture axis is substituted by kernel ISA tiers
// (scalar / AVX2 / AVX512) for the horizontal competitors, while PDX stays
// the same intrinsic-free auto-vectorized source everywhere (its whole
// point). Baselines follow the paper: Scikit-learn-like scalar scan for
// exact search, scalar IVF linear scan for approximate search.
//
// Paper shape to reproduce: PDX-BOND and PDX-LINEAR on top for exact
// search on every tier; PDX-ADS dominates approximate search; horizontal
// competitors' standing depends on their ISA tier.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"

namespace pdx {
namespace {

struct Speedups {
  std::map<std::string, std::vector<double>> by_method;
  void Add(const std::string& method, double value) {
    by_method[method].push_back(value);
  }
};

void RunExact(const SyntheticSpec& spec, Speedups& out) {
  Dataset dataset = GenerateDataset(spec);
  const size_t k = 10;
  const size_t nq = dataset.queries.count();
  PdxStore pdx_store = PdxStore::FromVectorSet(dataset.data);
  DsmStore dsm_store = DsmStore::FromVectorSet(dataset.data);
  BondConfig bond_config = DefaultFlatBondConfig();
  bond_config.block_capacity =
      std::min<size_t>(kExactSearchBlockCapacity,
                       std::max<size_t>(1024, dataset.data.count() / 8));
  auto bond = MakeBondFlatSearcher(dataset.data, bond_config);

  auto qps = [&](auto&& fn) {
    Timer timer;
    for (size_t q = 0; q < nq; ++q) fn(dataset.queries.Vector(q));
    return nq / timer.ElapsedSeconds();
  };
  const double base = qps([&](const float* q) {
    FlatSearchScalar(dataset.data, q, k, Metric::kL2);
  });
  out.Add("exact/NARY-scalar", 1.0);
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    const double v = qps([&](const float* q) {
      FlatSearchNary(dataset.data, q, k, Metric::kL2, isa);
    });
    out.Add(std::string("exact/NARY-") + IsaName(isa), v / base);
  }
  out.Add("exact/DSM-LINEAR",
          qps([&](const float* q) {
            FlatSearchDsm(dsm_store, q, k, Metric::kL2);
          }) /
              base);
  out.Add("exact/PDX-LINEAR",
          qps([&](const float* q) {
            FlatSearchPdx(pdx_store, q, k, Metric::kL2);
          }) /
              base);
  out.Add("exact/PDX-BOND",
          qps([&](const float* q) { bond->Search(q, k); }) / base);
}

void RunApproximate(const SyntheticSpec& spec, Speedups& out) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);
  const size_t nprobe = std::min<size_t>(64, s.index.num_buckets());
  const size_t dim = s.dataset.dim();
  const size_t delta_d = std::min<size_t>(32, std::max<size_t>(1, dim / 4));

  auto ads = MakeAdsIvfSearcher(s.dataset.data, s.index, {});
  const AdSamplingPruner& pruner = ads->pruner();
  VectorSet rotated = pruner.TransformCollection(s.dataset.data);
  BucketOrderedSet rotated_ordered = ReorderByBuckets(rotated, s.index);
  DualBlockStore dual =
      DualBlockStore::FromVectorSet(rotated_ordered.vectors, delta_d);

  auto qps = [&](auto&& fn) {
    Timer timer;
    for (size_t q = 0; q < s.dataset.queries.count(); ++q) {
      fn(s.dataset.queries.Vector(q));
    }
    return s.dataset.queries.count() / timer.ElapsedSeconds();
  };
  // Baseline: scalar (non-SIMD) IVF linear scan, as in the paper.
  const double base = qps([&](const float* q) {
    IvfNarySearch(s.index, s.ordered, q, s.k, nprobe, Metric::kL2,
                  Isa::kScalar);
  });
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    const double v = qps([&](const float* q) {
      IvfNarySearch(s.index, s.ordered, q, s.k, nprobe, Metric::kL2, isa);
    });
    out.Add(std::string("ivf/FAISS-") + IsaName(isa), v / base);
  }
  out.Add("ivf/SIMD-ADS",
          qps([&](const float* q) {
            IvfHorizontalAdsSearch(pruner, s.index, dual,
                                   rotated_ordered.ids,
                                   rotated_ordered.offsets, q, s.k, nprobe,
                                   HorizontalKernel::kSimd, delta_d);
          }) /
              base);
  out.Add("ivf/PDX-ADS",
          qps([&](const float* q) { return ads->Search(q, s.k, nprobe); }) /
              base);
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Figure 11: geomean speedups over all datasets (ISA tiers substitute "
      "the paper's four CPUs)");
  const double scale = BenchScaleFromEnv();

  Speedups speedups;
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 20;
    RunExact(spec, speedups);
  }
  for (SyntheticSpec spec : CoreWorkloads(scale)) {
    spec.num_queries = 20;
    RunApproximate(spec, speedups);
  }

  TextTable table({"setting/method", "geomean speedup vs baseline"});
  for (const auto& [method, values] : speedups.by_method) {
    table.AddRow({method, TextTable::Num(GeometricMean(values))});
  }
  table.Print();
  std::printf(
      "\nBaselines: exact = Sklearn-like scalar scan; ivf = scalar IVF "
      "linear scan. Expected shape: PDX-BOND/PDX-LINEAR lead exact search; "
      "PDX-ADS leads IVF search on every tier.\n");
  return 0;
}
