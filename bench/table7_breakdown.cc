// Table 7: end-to-end IVF query runtime broken into four phases — distance
// calculation, find-nearest-buckets, bounds evaluation, and query
// preprocessing — for N-ary ADS, PDX ADS, N-ary BSA, PDX BSA, and PDX-BOND
// on the OpenAI-like/1536 dataset.
//
// Methodology note: the PDX variants are instrumented natively (PDXearch
// phases are separate loops, so timers are cheap). For the horizontal
// variants the interleaved per-chunk bound test cannot be wall-clocked
// without distorting it, so its cost is reconstructed as
//   bound_tests x per-test cost (micro-benchmarked below),
// and distance time is the measured remainder. The paper used CPU
// profilers for the same purpose.
//
// Paper shape to reproduce: PDX versions slash the bounds-evaluation share
// (branchless, evaluated fewer times) and the find-buckets phase (PDX
// centroids); PDX-BOND's preprocessing is ~free.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"
#include "common/random.h"

namespace pdx {
namespace {

// Cost of one ADS-style hypothesis test in ns, micro-benchmarked.
double PerBoundTestNanos() {
  volatile float sink = 0.0f;
  const size_t iterations = 1 << 22;
  std::vector<float> distances(1024);
  std::vector<float> ratios(1024);
  Rng rng(5);
  for (size_t i = 0; i < 1024; ++i) {
    distances[i] = static_cast<float>(rng.UniformDouble());
    ratios[i] = static_cast<float>(rng.UniformDouble()) + 0.5f;
  }
  Timer timer;
  float acc = 0.0f;
  for (size_t i = 0; i < iterations; ++i) {
    const size_t j = i & 1023;
    acc += (distances[j] >= 1.7f * ratios[j]) ? 1.0f : 0.0f;
  }
  sink = acc;
  (void)sink;
  return static_cast<double>(timer.ElapsedNanos()) / iterations;
}

struct Breakdown {
  double total_ms = 0.0;
  double distance_ms = 0.0;
  double buckets_ms = 0.0;
  double bounds_ms = 0.0;
  double preprocess_ms = 0.0;
};

void AddRow(TextTable& table, const char* algo, const Breakdown& b) {
  auto cell = [&](double part) {
    return TextTable::Num(100.0 * part / b.total_ms, 1) + "% (" +
           TextTable::Num(part, 3) + "ms)";
  };
  table.AddRow({algo, TextTable::Num(b.total_ms, 3),
                cell(b.distance_ms), cell(b.buckets_ms), cell(b.bounds_ms),
                cell(b.preprocess_ms)});
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Table 7: IVF query runtime breakdown, OpenAI-like/1536 (KNN=10)");
  const double scale = BenchScaleFromEnv();

  SyntheticSpec spec;
  spec.name = "openai-1536";
  spec.dim = 1536;
  spec.count = std::max<size_t>(2000, static_cast<size_t>(10000 * scale));
  spec.num_queries = 20;
  spec.num_clusters = 32;
  spec.distribution = ValueDistribution::kSkewed;
  spec.seed = 42 + 1536;
  bench::IvfScenario s = bench::BuildIvfScenario(spec);
  const size_t nprobe = std::min<size_t>(48, s.index.num_buckets());
  const double per_test_ns = PerBoundTestNanos();
  std::printf("per bound-test cost (micro-benchmarked): %.2f ns\n",
              per_test_ns);

  // PDX variants: native phase instrumentation.
  AdsConfig ads_config;
  ads_config.search.collect_phase_times = true;
  auto pdx_ads = MakeAdsIvfSearcher(s.dataset.data, s.index, ads_config);
  BsaConfig bsa_config;
  bsa_config.multiplier = 0.8f;
  bsa_config.search.collect_phase_times = true;
  auto pdx_bsa = MakeBsaIvfSearcher(s.dataset.data, s.index, bsa_config);
  BondConfig bond_config;
  bond_config.search.collect_phase_times = true;
  auto pdx_bond = MakeBondIvfSearcher(s.dataset.data, s.index, bond_config);

  // Horizontal variants share the rotation/projection of the PDX ones.
  const AdSamplingPruner& ads_pruner = pdx_ads->pruner();
  VectorSet rotated = ads_pruner.TransformCollection(s.dataset.data);
  BucketOrderedSet rotated_ordered = ReorderByBuckets(rotated, s.index);
  DualBlockStore rotated_dual =
      DualBlockStore::FromVectorSet(rotated_ordered.vectors, 32);

  const BsaPruner& bsa_pruner = pdx_bsa->pruner();
  VectorSet projected = bsa_pruner.TransformCollection(s.dataset.data);
  BucketOrderedSet projected_ordered = ReorderByBuckets(projected, s.index);
  DualBlockStore projected_dual =
      DualBlockStore::FromVectorSet(projected_ordered.vectors, 32);
  std::vector<float> suffix((spec.dim + 1) * projected_ordered.vectors.count());
  for (size_t pos = 0; pos < projected_ordered.vectors.count(); ++pos) {
    BsaPruner::SuffixNorms(projected_ordered.vectors.Vector(pos), spec.dim,
                           suffix.data() + pos * (spec.dim + 1));
  }

  const size_t nq = s.dataset.queries.count();
  TextTable table({"algorithm", "query(ms)", "distance calc",
                          "find buckets", "bounds eval", "preprocessing"});

  // --- N-ary ADS ---
  {
    Breakdown b;
    HorizontalSearchCounters counters;
    Timer timer;
    for (size_t q = 0; q < nq; ++q) {
      const float* query = s.dataset.queries.Vector(q);
      Timer phase;
      AdSamplingPruner::QueryState qs = ads_pruner.PrepareQuery(query);
      b.preprocess_ms += phase.ElapsedMillis();
      phase.Reset();
      auto ranked = s.index.RankBucketsNary(query);
      b.buckets_ms += phase.ElapsedMillis();
      (void)qs;
      (void)ranked;
      IvfHorizontalAdsSearch(ads_pruner, s.index, rotated_dual,
                             rotated_ordered.ids, rotated_ordered.offsets,
                             query, s.k, nprobe, HorizontalKernel::kSimd, 32,
                             &counters);
    }
    const double measured_total_ms = timer.ElapsedMillis() / nq;
    b.preprocess_ms /= nq;
    b.buckets_ms /= nq;
    b.bounds_ms = per_test_ns * 1e-6 * double(counters.bound_tests) / nq;
    // The loop ran prepare+rank twice (once standalone for timing, once
    // inside the search), so subtract both copies from the measured total.
    b.distance_ms = std::max(
        0.0, measured_total_ms - 2.0 * (b.preprocess_ms + b.buckets_ms) -
                 b.bounds_ms);
    b.total_ms =
        b.preprocess_ms + b.buckets_ms + b.bounds_ms + b.distance_ms;
    AddRow(table, "N-ary ADS", b);
  }

  // --- PDX ADS / PDX BSA / PDX BOND: native profiles ---
  auto run_pdx = [&](const char* name, auto& searcher) {
    Breakdown b;
    for (size_t q = 0; q < nq; ++q) {
      searcher->Search(s.dataset.queries.Vector(q), s.k, nprobe);
      const PdxearchProfile& p = searcher->last_profile();
      b.preprocess_ms += p.preprocess_ms;
      b.buckets_ms += p.find_buckets_ms;
      b.bounds_ms += p.bounds_ms;
      b.distance_ms += p.distance_ms;
    }
    b.preprocess_ms /= nq;
    b.buckets_ms /= nq;
    b.bounds_ms /= nq;
    b.distance_ms /= nq;
    b.total_ms =
        b.preprocess_ms + b.buckets_ms + b.bounds_ms + b.distance_ms;
    AddRow(table, name, b);
  };
  run_pdx("PDX ADS", pdx_ads);

  // --- N-ary BSA ---
  {
    Breakdown b;
    HorizontalSearchCounters counters;
    Timer timer;
    for (size_t q = 0; q < nq; ++q) {
      const float* query = s.dataset.queries.Vector(q);
      Timer phase;
      BsaPruner::QueryState qs = bsa_pruner.PrepareQuery(query);
      b.preprocess_ms += phase.ElapsedMillis();
      phase.Reset();
      auto ranked = s.index.RankBucketsNary(query);
      b.buckets_ms += phase.ElapsedMillis();
      (void)qs;
      (void)ranked;
      IvfHorizontalBsaSearch(bsa_pruner, s.index, projected_dual,
                             projected_ordered.ids,
                             projected_ordered.offsets, suffix, query, s.k,
                             nprobe, /*use_simd=*/true, 32, &counters);
    }
    const double measured_total_ms = timer.ElapsedMillis() / nq;
    b.preprocess_ms /= nq;
    b.buckets_ms /= nq;
    // BSA's test costs ~2x ADS's (two extra FMAs + loads of suffix norms).
    b.bounds_ms = 2.0 * per_test_ns * 1e-6 *
                  double(counters.bound_tests) / nq;
    b.distance_ms = std::max(
        0.0, measured_total_ms - 2.0 * (b.preprocess_ms + b.buckets_ms) -
                 b.bounds_ms);
    b.total_ms =
        b.preprocess_ms + b.buckets_ms + b.bounds_ms + b.distance_ms;
    AddRow(table, "N-ary BSA", b);
  }

  run_pdx("PDX BSA", pdx_bsa);
  run_pdx("PDX BOND", pdx_bond);
  table.Print();
  std::printf(
      "\nExpected shape: PDX rows collapse the bounds-eval share to a few "
      "percent, spend less on distance calc and on finding buckets; "
      "PDX-BOND preprocessing is near zero.\n");
  return 0;
}
