// Table 4: speedup of the auto-vectorized PDX distance kernels over the
// horizontal explicit-SIMD kernels (SimSIMD-style L2/IP, FAISS-style L1)
// on random float32 collections across dimensionalities.
//
// Paper shape to reproduce: PDX never loses; largest wins at D <= 32
// (5-7x), ~1.5x at D > 32, ~2x averaged over all D.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"
#include "common/random.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/nary_kernels.h"
#include "kernels/pdx_kernels.h"
#include "storage/pdx_store.h"

namespace pdx {
namespace {

struct KernelsFixture {
  VectorSet nary;
  PdxStore pdx;
  std::vector<float> query;
};

KernelsFixture MakeFixture(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  KernelsFixture fx;
  fx.nary = VectorSet(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    fx.nary.Append(row.data());
  }
  fx.pdx = PdxStore::FromVectorSet(fx.nary, kPdxBlockSize);
  fx.query.resize(dim);
  for (float& v : fx.query) v = static_cast<float>(rng.Gaussian());
  return fx;
}

double MeasureNaryNanos(const KernelsFixture& fx, Metric metric,
                        std::vector<float>& out) {
  return MedianRunNanos([&]() {
    NaryDistanceBatch(metric, fx.query.data(), fx.nary.data(),
                      fx.nary.count(), fx.nary.dim(), out.data());
  });
}

double MeasurePdxNanos(const KernelsFixture& fx, Metric metric,
                       std::vector<float>& out) {
  return MedianRunNanos([&]() {
    size_t offset = 0;
    for (size_t b = 0; b < fx.pdx.num_blocks(); ++b) {
      const PdxBlock& block = fx.pdx.block(b);
      PdxLinearScan(metric, fx.query.data(), block.data(), block.count(),
                    block.dim(), out.data() + offset);
      offset += block.count();
    }
  });
}

const char* DimBucket(size_t dim) {
  if (dim == 8) return "D=8";
  if (dim <= 32) return "D=16,32";
  return "D>32";
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  const double scale = BenchScaleFromEnv();
  PrintBanner("Table 4: PDX auto-vectorized vs N-ary explicit-SIMD kernels");
  std::printf("dispatched SIMD tier: %s\n", IsaName(DispatchedIsa()));

  const std::vector<size_t> dims = {8,   16,  32,   64,   128, 192,
                                    256, 512, 1024, 1536, 4096};
  const std::vector<Metric> metrics = {Metric::kL2, Metric::kIp, Metric::kL1};

  TextTable table(
      {"metric", "D", "N", "nary_ns/vec", "pdx_ns/vec", "speedup"});
  // bucket -> list of speedups, per metric, for the Table 4 aggregation.
  std::map<std::string, std::vector<double>> aggregate;

  for (Metric metric : metrics) {
    for (size_t dim : dims) {
      // Two working sets per dimensionality, echoing the paper's 64-131K
      // collection sweep: one cache-resident (~2 MB) and one
      // memory-resident (~64 MB, scaled).
      const size_t cache_count =
          std::max<size_t>(256, (2u << 20) / (sizeof(float) * dim));
      const size_t memory_count = std::max<size_t>(
          cache_count * 2,
          static_cast<size_t>(scale * double(64u << 20) /
                              double(sizeof(float) * dim)));
      for (size_t count : {cache_count, memory_count}) {
        KernelsFixture fx = MakeFixture(count, dim, 1000 + dim);
        std::vector<float> out(count);
        const double nary_ns = MeasureNaryNanos(fx, metric, out);
        const double pdx_ns = MeasurePdxNanos(fx, metric, out);
        const double speedup = nary_ns / pdx_ns;
        table.AddRow({MetricName(metric), std::to_string(dim),
                      std::to_string(count),
                      TextTable::Num(nary_ns / count, 1),
                      TextTable::Num(pdx_ns / count, 1),
                      TextTable::Num(speedup)});
        aggregate[std::string(MetricName(metric)) + " " + DimBucket(dim)]
            .push_back(speedup);
        aggregate[std::string(MetricName(metric)) + " All"].push_back(
            speedup);
      }
    }
  }
  table.Print();

  PrintBanner("Table 4 aggregation (geomean speedup per dim bucket)");
  TextTable agg({"metric/bucket", "geomean speedup"});
  for (const auto& [key, values] : aggregate) {
    agg.AddRow({key, TextTable::Num(GeometricMean(values))});
  }
  agg.Print();
  return 0;
}
