// Figure 7: adaptive (exponential) fetch steps vs ADSampling's fixed
// Δd = 32, per query, on a GIST-like dataset (960 dims, skewed) — the very
// dataset the Δd=32 default was tuned on.
//
// Paper shape to reproduce: ~43% of queries improve, a few >= 1.5x, <1%
// regress by more than 10%.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"

int main() {
  using namespace pdx;
  PrintBanner("Figure 7: adaptive vs fixed (Δd=32) steps on GIST-like/960");
  const double scale = BenchScaleFromEnv();

  SyntheticSpec spec;
  spec.name = "gist-960";
  spec.dim = 960;
  spec.count = std::max<size_t>(2000, static_cast<size_t>(12000 * scale));
  spec.num_queries = 100;
  spec.num_clusters = 24;
  spec.distribution = ValueDistribution::kSkewed;
  spec.seed = 42 + 960;

  bench::IvfScenario s = bench::BuildIvfScenario(spec);
  AdsConfig adaptive_config;
  adaptive_config.search.adaptive_steps = true;
  auto adaptive = MakeAdsIvfSearcher(s.dataset.data, s.index,
                                     adaptive_config);
  AdsConfig fixed_config;
  fixed_config.search.adaptive_steps = false;
  fixed_config.search.fixed_step = 32;
  auto fixed = MakeAdsIvfSearcher(s.dataset.data, s.index, fixed_config);

  const size_t nprobe = std::min<size_t>(64, s.index.num_buckets());
  size_t faster_150 = 0;
  size_t faster_110 = 0;
  size_t faster_any = 0;
  size_t slower_110 = 0;
  std::vector<double> speedups;
  for (size_t q = 0; q < s.dataset.queries.count(); ++q) {
    const float* query = s.dataset.queries.Vector(q);
    const double fixed_ns = MedianRunNanos(
        [&]() { fixed->Search(query, s.k, nprobe); }, 5);
    const double adaptive_ns = MedianRunNanos(
        [&]() { adaptive->Search(query, s.k, nprobe); }, 5);
    const double speedup = fixed_ns / adaptive_ns;
    speedups.push_back(speedup);
    if (speedup >= 1.5) ++faster_150;
    if (speedup >= 1.1) ++faster_110;
    if (speedup > 1.0) ++faster_any;
    if (speedup < 1.0 / 1.1) ++slower_110;
  }

  const size_t nq = speedups.size();
  TextTable table({"bucket", "queries", "fraction"});
  auto frac = [&](size_t count) {
    return TextTable::Num(100.0 * count / nq, 1) + "%";
  };
  table.AddRow({"faster (any)", std::to_string(faster_any),
                frac(faster_any)});
  table.AddRow({"faster >=1.1x", std::to_string(faster_110),
                frac(faster_110)});
  table.AddRow({"faster >=1.5x", std::to_string(faster_150),
                frac(faster_150)});
  table.AddRow({"slower >=1.1x", std::to_string(slower_110),
                frac(slower_110)});
  table.Print();

  std::vector<float> as_float(speedups.begin(), speedups.end());
  std::printf(
      "speedup quartiles: p25=%.2f p50=%.2f p75=%.2f max=%.2f\n",
      Percentile(as_float, 25), Percentile(as_float, 50),
      Percentile(as_float, 75), Percentile(as_float, 100));
  std::printf(
      "Expected shape: a large minority of queries improve, a tail "
      ">=1.5x, almost none regress >10%%.\n");
  return 0;
}
