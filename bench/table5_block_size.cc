// Table 5: effect of the PDX block size (16..512 vectors) on the L2 kernel
// speedup over the N-ary SIMD kernel.
//
// Paper shape to reproduce: 64 is the sweet spot (distance accumulators
// stay resident in the SIMD register file); smaller blocks under-utilize
// registers, larger blocks spill to intermediate loads/stores.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"
#include "common/random.h"
#include "kernels/nary_kernels.h"
#include "kernels/pdx_kernels.h"
#include "storage/pdx_store.h"

namespace pdx {
namespace {

VectorSet RandomCollection(size_t count, size_t dim, uint64_t seed) {
  Rng rng(seed);
  VectorSet set(dim, count);
  std::vector<float> row(dim);
  for (size_t i = 0; i < count; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    set.Append(row.data());
  }
  return set;
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  const double scale = BenchScaleFromEnv();
  PrintBanner("Table 5: PDX L2 speedup vs N-ary per PDX block size");

  const std::vector<size_t> block_sizes = {16, 32, 64, 128, 256, 512};
  const std::vector<size_t> dims = {64, 128, 384, 1024};
  const size_t count =
      std::max<size_t>(4096, static_cast<size_t>(32768 * scale));

  TextTable table({"D", "block", "nary_ns/vec", "pdx_ns/vec",
                          "speedup"});
  std::vector<std::vector<double>> per_block(block_sizes.size());

  for (size_t dim : dims) {
    VectorSet nary = RandomCollection(count, dim, 77 + dim);
    std::vector<float> query(dim);
    Rng rng(99 + dim);
    for (float& v : query) v = static_cast<float>(rng.Gaussian());
    std::vector<float> out(count);

    const double nary_ns = MedianRunNanos([&]() {
      NaryDistanceBatch(Metric::kL2, query.data(), nary.data(), count, dim,
                        out.data());
    });

    for (size_t bi = 0; bi < block_sizes.size(); ++bi) {
      PdxStore store = PdxStore::FromVectorSet(nary, block_sizes[bi]);
      const double pdx_ns = MedianRunNanos([&]() {
        size_t offset = 0;
        for (size_t b = 0; b < store.num_blocks(); ++b) {
          const PdxBlock& block = store.block(b);
          PdxLinearScan(Metric::kL2, query.data(), block.data(),
                        block.count(), block.dim(), out.data() + offset);
          offset += block.count();
        }
      });
      const double speedup = nary_ns / pdx_ns;
      per_block[bi].push_back(speedup);
      table.AddRow({std::to_string(dim), std::to_string(block_sizes[bi]),
                    TextTable::Num(nary_ns / count, 1),
                    TextTable::Num(pdx_ns / count, 1),
                    TextTable::Num(speedup)});
    }
  }
  table.Print();

  PrintBanner("Table 5 aggregation (geomean speedup per block size)");
  TextTable agg({"block size", "geomean speedup"});
  for (size_t bi = 0; bi < block_sizes.size(); ++bi) {
    agg.AddRow({std::to_string(block_sizes[bi]),
                TextTable::Num(GeometricMean(per_block[bi]))});
  }
  agg.Print();
  std::printf(
      "\nExpected shape: peak at block size 64 (register-resident "
      "accumulators), degradation at 16 and at >=256.\n");
  return 0;
}
