// Figure 12 + Section 7 "PDXearch on N-ary storage": the N-ary+Gather
// kernel (on-the-fly transposition with AVX2 gathers) vs the N-ary SIMD
// kernel vs true PDX, across working-set sizes spanning L1 -> DRAM.
//
// Paper shape to reproduce: the gather kernel is always slowest (gather
// micro-ops + memory stalls), even when data fits in cache — proving the
// PDX layout must be materialized; all kernels converge toward memory
// bound beyond L3, but gather stays behind.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "benchlib/profile.h"
#include "common/random.h"
#include "kernels/gather_kernels.h"
#include "kernels/nary_kernels.h"
#include "kernels/pdx_kernels.h"
#include "storage/pdx_store.h"

int main() {
  using namespace pdx;
  PrintBanner(
      "Figure 12: N-ary+Gather vs N-ary SIMD vs PDX across working-set "
      "sizes (L2 distance, D=128)");
  const CacheInfo caches = DetectCaches();
  std::printf("caches: L1d=%s L2=%s L3=%s | hardware gather: %s\n",
              FormatBytes(caches.l1d_bytes).c_str(),
              FormatBytes(caches.l2_bytes).c_str(),
              FormatBytes(caches.l3_bytes).c_str(),
              HasHardwareGather() ? "yes (AVX2)" : "no (strided loads)");

  const size_t dim = 128;
  const double scale = BenchScaleFromEnv();
  std::vector<size_t> counts = {64, 256, 1024, 4096, 16384, 65536, 262144};
  if (scale < 1.0) counts.pop_back();

  TextTable table({"N", "working set", "level", "gather ns/vec",
                          "nary ns/vec", "pdx ns/vec", "gather/pdx",
                          "gather/nary"});
  for (size_t count : counts) {
    Rng rng(count);
    VectorSet nary(dim, count);
    std::vector<float> row(dim);
    for (size_t i = 0; i < count; ++i) {
      for (float& v : row) v = static_cast<float>(rng.Gaussian());
      nary.Append(row.data());
    }
    PdxStore pdx_store = PdxStore::FromVectorSet(nary);
    std::vector<float> query(dim);
    for (float& v : query) v = static_cast<float>(rng.Gaussian());
    std::vector<float> out(count);

    const double gather_ns = MedianRunNanos([&]() {
      NaryGatherDistanceBatch(Metric::kL2, query.data(), nary.data(), count,
                              dim, out.data());
    }, 5);
    const double nary_ns = MedianRunNanos([&]() {
      NaryDistanceBatch(Metric::kL2, query.data(), nary.data(), count, dim,
                        out.data());
    }, 5);
    const double pdx_ns = MedianRunNanos([&]() {
      size_t offset = 0;
      for (size_t b = 0; b < pdx_store.num_blocks(); ++b) {
        const PdxBlock& block = pdx_store.block(b);
        PdxLinearScan(Metric::kL2, query.data(), block.data(), block.count(),
                      block.dim(), out.data() + offset);
        offset += block.count();
      }
    }, 5);

    const size_t bytes = count * dim * sizeof(float);
    table.AddRow({std::to_string(count), FormatBytes(bytes),
                  CacheLevelName(bytes, caches),
                  TextTable::Num(gather_ns / count, 1),
                  TextTable::Num(nary_ns / count, 1),
                  TextTable::Num(pdx_ns / count, 1),
                  TextTable::Num(gather_ns / pdx_ns),
                  TextTable::Num(gather_ns / nary_ns)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: gather/pdx >> 1 everywhere (paper: 1.9-17x on "
      "Intel, up to 130x on Zen4); gather also loses to plain N-ary "
      "SIMD, so on-the-fly transposition never pays off.\n");
  return 0;
}
