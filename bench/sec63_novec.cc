// Section 6.3 ablation: "PDX vs N-ary disabling vectorization". The PDX
// kernels are recompiled with -fno-tree-vectorize (see src/CMakeLists.txt)
// and compared against the scalar horizontal scan: even without SIMD, the
// dimension-by-dimension layout keeps a speedup from better access
// patterns and branchless structure (paper: ~1.8x).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"
#include "kernels/pdx_kernels.h"
#include "kernels/scalar_kernels.h"
#include "storage/pdx_store.h"

int main() {
  using namespace pdx;
  PrintBanner(
      "Section 6.3: PDX with auto-vectorization disabled vs scalar N-ary");
  const double scale = BenchScaleFromEnv();

  TextTable table({"dataset", "scalar nary ns/vec",
                          "pdx novec ns/vec", "pdx vec ns/vec",
                          "novec speedup", "vec speedup"});
  std::vector<double> novec_speedups;
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    spec.num_queries = 10;
    Dataset dataset = GenerateDataset(spec);
    PdxStore store = PdxStore::FromVectorSet(dataset.data);
    const size_t count = dataset.data.count();
    const size_t dim = dataset.dim();
    std::vector<float> out(count);
    const float* query = dataset.queries.Vector(0);

    const double nary_ns = MedianRunNanos([&]() {
      ScalarDistanceBatch(Metric::kL2, query, dataset.data.data(), count,
                          dim, out.data());
    });
    auto pdx_run = [&](auto kernel) {
      return MedianRunNanos([&]() {
        size_t offset = 0;
        for (size_t b = 0; b < store.num_blocks(); ++b) {
          const PdxBlock& block = store.block(b);
          kernel(Metric::kL2, query, block.data(), block.count(),
                 block.dim(), out.data() + offset);
          offset += block.count();
        }
      });
    };
    const double novec_ns = pdx_run(&PdxLinearScanNovec);
    const double vec_ns = pdx_run(&PdxLinearScan);
    novec_speedups.push_back(nary_ns / novec_ns);
    table.AddRow({spec.name, TextTable::Num(nary_ns / count, 1),
                  TextTable::Num(novec_ns / count, 1),
                  TextTable::Num(vec_ns / count, 1),
                  TextTable::Num(nary_ns / novec_ns),
                  TextTable::Num(nary_ns / vec_ns)});
  }
  table.Print();
  std::printf(
      "\ngeomean no-vectorization speedup: %.2fx (paper reports ~1.8x "
      "including pruning effects)\n",
      GeometricMean(novec_speedups));
  return 0;
}
