// Tables 2 & 6: pruning behavior of ADSampling (Table 2) and PDX-BOND
// (Table 6) when testing at every dimension (Δd=1), K=10: best / p50 /
// p25 / worst fraction of dimension values avoided per query, plus the
// shape of the unpruned-fraction curve.
//
// Paper shape to reproduce: skewed datasets (GIST/MSong/SIFT/OpenAI
// stand-ins) prune far better than normal ones (NYTimes/GloVe/DEEP/
// Contriever stand-ins); pruning has a query-dependent starting point then
// collapses exponentially; PDX-BOND's power is slightly below ADSampling's.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"
#include "core/pruning_trace.h"

namespace pdx {
namespace {

struct PowerSummary {
  double best = 0.0;
  double p50 = 0.0;
  double p25 = 0.0;
  double worst = 0.0;
  std::vector<double> median_curve_checkpoints;  // Alive at D/8, D/4, D/2.
};

template <typename Searcher>
PowerSummary MeasurePruningPower(Searcher& searcher, const Dataset& dataset) {
  const size_t dim = dataset.dim();
  searcher->mutable_options().adaptive_steps = false;
  searcher->mutable_options().fixed_step = 1;  // Test at every dimension.

  std::vector<float> avoided;
  std::vector<float> alive_d8;
  std::vector<float> alive_d4;
  std::vector<float> alive_d2;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    PruningTrace trace(dim);
    searcher->mutable_options().step_observer =
        [&trace](size_t dims, size_t alive, size_t n) {
          trace.Observe(dims, alive, n);
        };
    searcher->Search(dataset.queries.Vector(q), 10);
    avoided.push_back(static_cast<float>(trace.ValuesAvoided()));
    alive_d8.push_back(static_cast<float>(trace.AliveFraction(dim / 8)));
    alive_d4.push_back(static_cast<float>(trace.AliveFraction(dim / 4)));
    alive_d2.push_back(static_cast<float>(trace.AliveFraction(dim / 2)));
  }
  searcher->mutable_options().step_observer = nullptr;

  PowerSummary out;
  out.best = Percentile(avoided, 100);
  out.p50 = Percentile(avoided, 50);
  out.p25 = Percentile(avoided, 25);
  out.worst = Percentile(avoided, 0);
  out.median_curve_checkpoints = {Percentile(alive_d8, 50),
                                  Percentile(alive_d4, 50),
                                  Percentile(alive_d2, 50)};
  return out;
}

void AddRows(TextTable& table, const char* dataset,
             const char* distribution, const char* algo,
             const PowerSummary& p) {
  auto pct = [](double v) { return TextTable::Num(100.0 * v, 1); };
  table.AddRow({dataset, distribution, algo, pct(p.best), pct(p.p50),
                pct(p.p25), pct(p.worst),
                pct(p.median_curve_checkpoints[0]),
                pct(p.median_curve_checkpoints[1]),
                pct(p.median_curve_checkpoints[2])});
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Tables 2 & 6: pruning power (% values avoided) at Δd=1, K=10 — "
      "ADSampling (Table 2) and PDX-BOND (Table 6)");
  const double scale = BenchScaleFromEnv();

  // The paper shows 8 of the 10 datasets: 4 skewed + 4 normal.
  std::vector<SyntheticSpec> roster;
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    if (spec.name == "glove-200" || spec.name == "arxiv-768") continue;
    spec.num_queries = 30;
    // Δd=1 tracing is O(N*D) predicate work per query: trim collections.
    spec.count = std::max<size_t>(2000, spec.count / 2);
    roster.push_back(spec);
  }

  TextTable table({"dataset", "dist", "algo", "best%", "p50%",
                          "p25%", "worst%", "alive@D/8", "alive@D/4",
                          "alive@D/2"});
  for (const SyntheticSpec& spec : roster) {
    Dataset dataset = GenerateDataset(spec);
    const char* dist = ValueDistributionName(spec.distribution);

    AdsConfig ads_config;
    ads_config.block_capacity = 1024;
    auto ads = MakeAdsFlatSearcher(dataset.data, ads_config);
    AddRows(table, spec.name.c_str(), dist, "ADSampling",
            MeasurePruningPower(ads, dataset));

    BondConfig bond_config = DefaultFlatBondConfig();
    bond_config.block_capacity = 1024;
    auto bond = MakeBondFlatSearcher(dataset.data, bond_config);
    AddRows(table, spec.name.c_str(), dist, "PDX-BOND",
            MeasurePruningPower(bond, dataset));
  }
  table.Print();
  std::printf(
      "\nExpected shape: skewed datasets prune best; power-law decay of "
      "the alive fraction; PDX-BOND slightly below ADSampling.\n");
  return 0;
}
