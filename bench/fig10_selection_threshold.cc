// Figure 10: effect of the selection-percentage threshold (when PDXearch
// advances from WARMUP to PRUNE) on the speedup of PDX-ADS over a PDX
// linear scan, on an IVF index.
//
// Paper shape to reproduce: too early (<10%) and too late (>40%) both
// hurt; a broad sweet spot around 20%; 5% vs 20% nearly indistinguishable
// (pruning collapses exponentially, both are hit in the same step); on
// low-pruning datasets (NYTimes-like/16) the linear scan wins outright.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace pdx {
namespace {

void RunDataset(const SyntheticSpec& spec, TextTable& table) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);
  const size_t nprobe = std::min<size_t>(64, s.index.num_buckets());

  auto linear = MakeLinearIvfSearcher(s.dataset.data, s.index);
  const bench::SweepResult linear_result =
      bench::MeasureSweep(s, [&](size_t q) {
        return linear->Search(s.dataset.queries.Vector(q), s.k, nprobe);
      });

  auto ads = MakeAdsIvfSearcher(s.dataset.data, s.index, {});
  for (float threshold : {0.02f, 0.05f, 0.10f, 0.20f, 0.40f, 0.60f, 0.80f}) {
    ads->mutable_options().selection_fraction = threshold;
    const bench::SweepResult r = bench::MeasureSweep(s, [&](size_t q) {
      return ads->Search(s.dataset.queries.Vector(q), s.k, nprobe);
    });
    table.AddRow({spec.name,
                  TextTable::Num(100.0 * threshold, 0) + "%",
                  TextTable::Num(r.qps, 0),
                  TextTable::Num(r.qps / linear_result.qps)});
  }
}

}  // namespace
}  // namespace pdx

int main() {
  using namespace pdx;
  PrintBanner(
      "Figure 10: selection-percentage threshold vs speedup over PDX "
      "linear scan (IVF, PDX-ADS)");
  const double scale = BenchScaleFromEnv();
  TextTable table(
      {"dataset", "threshold", "QPS", "speedup vs PDX linear"});
  // Six datasets as in the figure: a spread of dims and distributions.
  for (SyntheticSpec spec : PaperWorkloads(scale)) {
    if (spec.name == "glove-200" || spec.name == "arxiv-768" ||
        spec.name == "deep-96" || spec.name == "msong-420") {
      continue;
    }
    spec.num_queries = 30;
    RunDataset(spec, table);
  }
  table.Print();
  return 0;
}
