// Serving-layer benchmark: throughput under concurrency through the async
// SearchService — N client threads multiplexed over ONE shared pool, with
// FIFO admission and opportunistic micro-batching — against the direct
// single-caller SearchBatch baseline on the same collections.
//
// Expected shape: service QPS grows with submitters until the pool
// saturates (on a many-core host); tail latency (p99) grows with the queue
// depth the extra submitters sustain. The "direct" row is the zero-shell
// upper bound for one caller.
//
// The --dispatchers=N[,M,...] axis (default 1,2,4) replicates the
// dispatcher: each rung runs the same multi-collection load with that many
// concurrent dispatch threads, all over the one shared pool. With >1
// dispatcher, batches for the two collections — and back-to-back batches
// for one hot collection — run concurrently on disjoint slot bands, so
// aggregate QPS should beat the dispatchers=1 rung once submitters keep
// the queue non-empty.
//
// The --shards=N[,M,...] axis (default 1,2,4) additionally hosts ONE hot
// collection sharded across that many searchers and drives it alone: on a
// multi-core host the sharded rungs beat shards=1 because every query fans
// out over the whole pool instead of serializing behind one searcher.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

void RunDataset(const SyntheticSpec& spec,
                const std::vector<size_t>& dispatcher_counts) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);

  SearcherConfig bond = {};
  bond.layout = SearcherLayout::kIvf;
  bond.pruner = PrunerKind::kBond;
  bond.nprobe = 16;
  SearcherConfig ads = bond;
  ads.pruner = PrunerKind::kAdsampling;

  TextTable table({"dataset", "mode", "disp", "submitters", "QPS", "p50(ms)",
                   "p95(ms)", "p99(ms)", "rejected"});

  // Baseline: one caller, direct batched searcher, same pool size.
  {
    auto direct = MakeSearcher(s.dataset.data, s.index, [&] {
      SearcherConfig config = bond;
      config.threads = 0;
      return config;
    }());
    if (direct.ok()) {
      direct.value()->SearchBatch(s.dataset.queries.data(),
                                  s.dataset.queries.count());
      const BatchProfile& bp = direct.value()->last_batch_profile();
      const LatencySummary lat = bp.latency_summary();
      table.AddRow({spec.name, "direct", "-", "1", TextTable::Num(bp.qps(), 0),
                    TextTable::Num(lat.p50_ms, 3),
                    TextTable::Num(lat.p95_ms, 3),
                    TextTable::Num(lat.p99_ms, 3), "0"});
    }
  }

  for (size_t dispatchers : dispatcher_counts) {
    for (size_t submitters : {1u, 4u, 8u}) {
      // Fresh service per rung so the stats (percentiles, QPS span)
      // describe exactly this concurrency level.
      ServiceConfig sc;
      sc.threads = 0;  // One worker per hardware thread.
      sc.max_pending = 4096;
      sc.dispatchers = dispatchers;
      SearchService service(sc);
      if (!service.AddCollection("bond", s.dataset.data, s.index, bond).ok() ||
          !service.AddCollection("ads", s.dataset.data, s.index, ads).ok()) {
        std::fprintf(stderr, "serve_throughput: AddCollection failed\n");
        return;
      }
      ServiceLoadOptions load;
      load.submitters = submitters;
      load.queries_per_submitter = 200;
      const ServiceLoadResult result = RunServiceLoad(
          service, {"bond", "ads"}, s.dataset.queries, load);
      // Percentiles from the service's own per-collection recorders, merged
      // across the two collections by taking the worse (serving headline
      // numbers are per-collection; the table wants one line).
      const ServiceStats stats = service.Stats();
      LatencySummary worst;
      for (const auto& [name, cs] : stats.collections) {
        if (cs.latency.p99_ms >= worst.p99_ms) worst = cs.latency;
      }
      table.AddRow({spec.name, "service", std::to_string(dispatchers),
                    std::to_string(submitters),
                    TextTable::Num(result.qps(), 0),
                    TextTable::Num(worst.p50_ms, 3),
                    TextTable::Num(worst.p95_ms, 3),
                    TextTable::Num(worst.p99_ms, 3),
                    std::to_string(result.rejected)});
    }
  }
  table.Print();
}

// One hot collection sharded N ways: the scatter-gather scaling axis.
// `dispatchers` replicates the dispatcher so several batches for the one
// hot name can be in flight at once.
void RunShardScaling(const SyntheticSpec& spec,
                     const std::vector<size_t>& shard_counts,
                     size_t dispatchers) {
  Dataset dataset = GenerateDataset(spec);

  SearcherConfig bond = {};
  bond.layout = SearcherLayout::kIvf;
  bond.pruner = PrunerKind::kBond;
  bond.nprobe = 16;

  TextTable table({"dataset", "shards", "QPS", "p50(ms)", "p95(ms)",
                   "p99(ms)", "shard dispatches"});
  for (size_t shards : shard_counts) {
    ServiceConfig sc;
    sc.threads = 0;  // One worker per hardware thread.
    sc.max_pending = 4096;
    sc.dispatchers = dispatchers;
    SearchService service(sc);
    ShardingOptions sharding;
    sharding.num_shards = shards;
    if (!service.AddCollection("hot", dataset.data, bond, sharding).ok()) {
      std::fprintf(stderr, "serve_throughput: sharded AddCollection failed\n");
      return;
    }
    ServiceLoadOptions load;
    load.submitters = 4;
    load.queries_per_submitter = 200;
    const ServiceLoadResult result =
        RunServiceLoad(service, {"hot"}, dataset.queries, load);
    const CollectionStats cs = service.Stats().collections.at("hot");
    // An unsharded searcher keeps no per-shard counters; "-" beats a
    // misleading 0 next to the sharded rows.
    const std::string fanouts =
        cs.shard_dispatches.empty()
            ? "-"
            : std::to_string(std::accumulate(cs.shard_dispatches.begin(),
                                             cs.shard_dispatches.end(),
                                             uint64_t{0}));
    table.AddRow({spec.name, std::to_string(shards),
                  TextTable::Num(result.qps(), 0),
                  TextTable::Num(cs.latency.p50_ms, 3),
                  TextTable::Num(cs.latency.p95_ms, 3),
                  TextTable::Num(cs.latency.p99_ms, 3), fanouts});
  }
  table.Print();
}

/// Parses `--<name>=N[,M,...]` from argv into a size list; `fallback` when
/// the flag is absent or empty.
std::vector<size_t> ParseSizeListFlag(int argc, char** argv,
                                      const char* prefix,
                                      std::vector<size_t> fallback) {
  std::vector<size_t> counts = std::move(fallback);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) != 0) continue;
    counts.clear();
    for (const char* p = argv[i] + std::strlen(prefix); *p != '\0';) {
      char* end = nullptr;
      const unsigned long value = std::strtoul(p, &end, 10);
      if (end == p) break;  // Not a number: stop parsing the list.
      if (value > 0) counts.push_back(static_cast<size_t>(value));
      p = *end == ',' ? end + 1 : end;
    }
    if (counts.empty()) counts = {1};
  }
  return counts;
}

}  // namespace
}  // namespace pdx

int main(int argc, char** argv) {
  using namespace pdx;
  PrintBanner(
      "Serving: SearchService throughput under concurrency (2 collections, "
      "one shared pool, --dispatchers axis)");
  const double scale = BenchScaleFromEnv();
  const std::vector<size_t> shard_counts =
      ParseSizeListFlag(argc, argv, "--shards=", {1, 2, 4});
  const std::vector<size_t> dispatcher_counts =
      ParseSizeListFlag(argc, argv, "--dispatchers=", {1, 2, 4});
  for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
    spec.num_queries = 100;
    RunDataset(spec, dispatcher_counts);
  }
  // The shard sweep runs at the deepest requested replication so the one
  // hot collection actually has several batches in flight.
  const size_t max_dispatchers = *std::max_element(dispatcher_counts.begin(),
                                                   dispatcher_counts.end());
  PrintBanner(
      "Serving: one hot collection sharded across searchers "
      "(scatter-gather top-k, --shards axis, dispatchers=" +
      std::to_string(max_dispatchers) + ")");
  for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
    spec.num_queries = 100;
    RunShardScaling(spec, shard_counts, max_dispatchers);
  }
  return 0;
}
