// Serving-layer benchmark: throughput under concurrency through the async
// SearchService — N client threads multiplexed over ONE shared pool, with
// FIFO admission and opportunistic micro-batching — against the direct
// single-caller SearchBatch baseline on the same collections.
//
// Expected shape: service QPS grows with submitters until the pool
// saturates (on a many-core host); tail latency (p99) grows with the queue
// depth the extra submitters sustain. The "direct" row is the zero-shell
// upper bound for one caller.
//
// The --dispatchers=N[,M,...] axis (default 1,2,4) replicates the
// dispatcher: each rung runs the same multi-collection load with that many
// concurrent dispatch threads, all over the one shared pool. With >1
// dispatcher, batches for the two collections — and back-to-back batches
// for one hot collection — run concurrently on disjoint slot bands, so
// aggregate QPS should beat the dispatchers=1 rung once submitters keep
// the queue non-empty.
//
// The --shards=N[,M,...] axis (default 1,2,4) additionally hosts ONE hot
// collection sharded across that many searchers and drives it alone: on a
// multi-core host the sharded rungs beat shards=1 because every query fans
// out over the whole pool instead of serializing behind one searcher.

// The --http flag appends a wire rung: the same service behind the
// dependency-free HTTP front end (src/net/), driven by pipelined
// HttpClient loadgen threads over loopback sockets. The delta between the
// in-process "service" rows and the "http" rows is the wire tax: JSON
// encode/decode + socket hops + connection handling.
//
// The --ingest flag appends a live-mutation rung: mutator threads stream
// AddVectors batches into one mutable collection WHILE searchers drive it,
// at several base sizes. Compaction is disabled for the rung so the add
// column measures the pure append path (repack one partial tail block);
// the headline is the p50 ratio across base sizes, which should sit near
// 1.0 because append cost does not depend on how large the base is. Pass
// --json=PATH (e.g. --json=BENCH_ingest.json) to also write the rung as
// machine-readable JSON.
//
// The --persist flag appends a cold-start rung: at base sizes {N/4, N/2,
// N} it times building a collection from vectors (k-means + packing +
// transforms) against restoring the same collection from a saved file via
// mmap, and reports cold-start-to-first-query for the restored path. The
// pack/kmeans columns count PDX store packs and k-means runs during the
// load — both must be 0 (restore does no index work; that is the point of
// the format). Writes BENCH_persist.json (or --json=PATH when given).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "index/kmeans.h"
#include "storage/pdx_store.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

namespace pdx {
namespace {

struct HttpLoadResult {
  size_t completed = 0;
  size_t failed = 0;
  double wall_ms = 0.0;
  LatencyRecorder latency{1 << 16};  ///< Per-request wire round trips, ms.
  double qps() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(completed) / wall_ms
                         : 0.0;
  }
};

/// Drives the wire front end at `port` from `submitters` client threads,
/// each pipelining `window` POST /search requests round-robin across
/// `collections` — the HTTP analog of RunServiceLoad.
HttpLoadResult RunHttpLoad(uint16_t port,
                           const std::vector<std::string>& collections,
                           const VectorSet& queries, size_t submitters,
                           size_t queries_per_submitter, size_t window = 16) {
  // Request bodies are pre-serialized: the bench measures serving + wire,
  // not the loadgen's own JSON formatting.
  std::vector<std::string> bodies;
  bodies.reserve(queries.count());
  for (size_t q = 0; q < queries.count(); ++q) {
    JsonValue request = JsonValue::Object();
    JsonValue values = JsonValue::Array();
    const float* vector = queries.Vector(static_cast<VectorId>(q));
    for (size_t d = 0; d < queries.dim(); ++d) {
      values.Append(static_cast<double>(vector[d]));
    }
    request.Set("query", std::move(values));
    bodies.push_back(WriteJson(request));
  }

  std::vector<HttpLoadResult> per_thread(submitters);
  Timer wall;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      HttpLoadResult& mine = per_thread[t];
      HttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        mine.failed = queries_per_submitter;
        return;
      }
      std::vector<Timer> started(window);
      size_t sent = 0;
      size_t received = 0;
      while (received < queries_per_submitter) {
        while (sent < queries_per_submitter &&
               sent - received < window) {
          const std::string& target =
              collections[sent % collections.size()];
          started[sent % window] = Timer();
          if (!client
                   .SendRequest("POST", "/collections/" + target + "/search",
                                bodies[sent % bodies.size()])
                   .ok()) {
            mine.failed += queries_per_submitter - received;
            return;
          }
          ++sent;
        }
        Result<HttpResponse> response = client.ReadResponse();
        if (!response.ok()) {
          mine.failed += queries_per_submitter - received;
          return;
        }
        mine.latency.Record(started[received % window].ElapsedMillis());
        ++received;
        if (response.value().status == 200) {
          ++mine.completed;
        } else {
          ++mine.failed;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HttpLoadResult total;
  total.wall_ms = wall.ElapsedMillis();
  for (HttpLoadResult& mine : per_thread) {
    total.completed += mine.completed;
    total.failed += mine.failed;
    total.latency.Merge(mine.latency);
  }
  return total;
}

void RunDataset(const SyntheticSpec& spec,
                const std::vector<size_t>& dispatcher_counts) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);

  SearcherConfig bond = {};
  bond.layout = SearcherLayout::kIvf;
  bond.pruner = PrunerKind::kBond;
  bond.nprobe = 16;
  SearcherConfig ads = bond;
  ads.pruner = PrunerKind::kAdsampling;

  TextTable table({"dataset", "mode", "disp", "submitters", "QPS", "p50(ms)",
                   "p95(ms)", "p99(ms)", "rejected"});

  // Baseline: one caller, direct batched searcher, same pool size.
  {
    auto direct = MakeSearcher(s.dataset.data, s.index, [&] {
      SearcherConfig config = bond;
      config.threads = 0;
      return config;
    }());
    if (direct.ok()) {
      direct.value()->SearchBatch(s.dataset.queries.data(),
                                  s.dataset.queries.count());
      const BatchProfile& bp = direct.value()->last_batch_profile();
      const LatencySummary lat = bp.latency_summary();
      table.AddRow({spec.name, "direct", "-", "1", TextTable::Num(bp.qps(), 0),
                    TextTable::Num(lat.p50_ms, 3),
                    TextTable::Num(lat.p95_ms, 3),
                    TextTable::Num(lat.p99_ms, 3), "0"});
    }
  }

  for (size_t dispatchers : dispatcher_counts) {
    for (size_t submitters : {1u, 4u, 8u}) {
      // Fresh service per rung so the stats (percentiles, QPS span)
      // describe exactly this concurrency level.
      ServiceConfig sc;
      sc.threads = 0;  // One worker per hardware thread.
      sc.max_pending = 4096;
      sc.dispatchers = dispatchers;
      SearchService service(sc);
      if (!service.AddCollection("bond", s.dataset.data, s.index, bond).ok() ||
          !service.AddCollection("ads", s.dataset.data, s.index, ads).ok()) {
        std::fprintf(stderr, "serve_throughput: AddCollection failed\n");
        return;
      }
      ServiceLoadOptions load;
      load.submitters = submitters;
      load.queries_per_submitter = 200;
      const ServiceLoadResult result = RunServiceLoad(
          service, {"bond", "ads"}, s.dataset.queries, load);
      // Percentiles from the service's own per-collection recorders, merged
      // across the two collections by taking the worse (serving headline
      // numbers are per-collection; the table wants one line).
      const ServiceStats stats = service.Stats();
      LatencySummary worst;
      for (const auto& [name, cs] : stats.collections) {
        if (cs.latency.p99_ms >= worst.p99_ms) worst = cs.latency;
      }
      table.AddRow({spec.name, "service", std::to_string(dispatchers),
                    std::to_string(submitters),
                    TextTable::Num(result.qps(), 0),
                    TextTable::Num(worst.p50_ms, 3),
                    TextTable::Num(worst.p95_ms, 3),
                    TextTable::Num(worst.p99_ms, 3),
                    std::to_string(result.rejected)});
    }
  }
  table.Print();
}

// One hot collection sharded N ways: the scatter-gather scaling axis.
// `dispatchers` replicates the dispatcher so several batches for the one
// hot name can be in flight at once.
void RunShardScaling(const SyntheticSpec& spec,
                     const std::vector<size_t>& shard_counts,
                     size_t dispatchers) {
  Dataset dataset = GenerateDataset(spec);

  SearcherConfig bond = {};
  bond.layout = SearcherLayout::kIvf;
  bond.pruner = PrunerKind::kBond;
  bond.nprobe = 16;

  TextTable table({"dataset", "shards", "QPS", "p50(ms)", "p95(ms)",
                   "p99(ms)", "shard dispatches"});
  for (size_t shards : shard_counts) {
    ServiceConfig sc;
    sc.threads = 0;  // One worker per hardware thread.
    sc.max_pending = 4096;
    sc.dispatchers = dispatchers;
    SearchService service(sc);
    ShardingOptions sharding;
    sharding.num_shards = shards;
    if (!service.AddCollection("hot", dataset.data, bond, sharding).ok()) {
      std::fprintf(stderr, "serve_throughput: sharded AddCollection failed\n");
      return;
    }
    ServiceLoadOptions load;
    load.submitters = 4;
    load.queries_per_submitter = 200;
    const ServiceLoadResult result =
        RunServiceLoad(service, {"hot"}, dataset.queries, load);
    const CollectionStats cs = service.Stats().collections.at("hot");
    // An unsharded searcher keeps no per-shard counters; "-" beats a
    // misleading 0 next to the sharded rows.
    const std::string fanouts =
        cs.shard_dispatches.empty()
            ? "-"
            : std::to_string(std::accumulate(cs.shard_dispatches.begin(),
                                             cs.shard_dispatches.end(),
                                             uint64_t{0}));
    table.AddRow({spec.name, std::to_string(shards),
                  TextTable::Num(result.qps(), 0),
                  TextTable::Num(cs.latency.p50_ms, 3),
                  TextTable::Num(cs.latency.p95_ms, 3),
                  TextTable::Num(cs.latency.p99_ms, 3), fanouts});
  }
  table.Print();
}

/// The --trace rung: the same service load twice — tracing off, then
/// tracing on for EVERY query — so the delta is the whole cost of the
/// observability path (stage stamping, counters, the per-query QueryTrace
/// allocation). The acceptance bar is tracing OFF costing nothing: the
/// off rows here should match RunDataset's service rows, and the on rows
/// bound the worst case (real deployments trace a sample, not 100%).
void RunTraceOverhead(const SyntheticSpec& spec, size_t dispatchers) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);

  SearcherConfig bond = {};
  bond.layout = SearcherLayout::kIvf;
  bond.pruner = PrunerKind::kBond;
  bond.nprobe = 16;
  SearcherConfig ads = bond;
  ads.pruner = PrunerKind::kAdsampling;

  TextTable table({"dataset", "tracing", "submitters", "QPS", "p50(ms)",
                   "p99(ms)", "traced"});
  for (const bool tracing : {false, true}) {
    for (size_t submitters : {1u, 4u}) {
      ServiceConfig sc;
      sc.threads = 0;
      sc.max_pending = 4096;
      sc.dispatchers = dispatchers;
      SearchService service(sc);
      if (!service.AddCollection("bond", s.dataset.data, s.index, bond).ok() ||
          !service.AddCollection("ads", s.dataset.data, s.index, ads).ok()) {
        std::fprintf(stderr, "serve_throughput: AddCollection failed\n");
        return;
      }
      ServiceLoadOptions load;
      load.submitters = submitters;
      load.queries_per_submitter = 200;
      load.query.trace = tracing;
      if (tracing) load.query.request_id = "bench";
      const ServiceLoadResult result = RunServiceLoad(
          service, {"bond", "ads"}, s.dataset.queries, load);
      const ServiceStats stats = service.Stats();
      LatencySummary worst;
      for (const auto& [name, cs] : stats.collections) {
        if (cs.latency.p99_ms >= worst.p99_ms) worst = cs.latency;
      }
      table.AddRow({spec.name, tracing ? "on" : "off",
                    std::to_string(submitters),
                    TextTable::Num(result.qps(), 0),
                    TextTable::Num(worst.p50_ms, 3),
                    TextTable::Num(worst.p99_ms, 3),
                    tracing ? "100%" : "0%"});
    }
  }
  table.Print();
}

/// The --http rung: the same two-collection load as RunDataset's service
/// rows, but arriving over loopback HTTP through pipelined wire clients.
void RunHttpRung(const SyntheticSpec& spec, size_t dispatchers) {
  bench::IvfScenario s = bench::BuildIvfScenario(spec);

  SearcherConfig bond = {};
  bond.layout = SearcherLayout::kIvf;
  bond.pruner = PrunerKind::kBond;
  bond.nprobe = 16;
  SearcherConfig ads = bond;
  ads.pruner = PrunerKind::kAdsampling;

  TextTable table({"dataset", "mode", "submitters", "QPS", "p50(ms)",
                   "p95(ms)", "p99(ms)", "failed"});
  for (size_t submitters : {1u, 4u, 8u}) {
    ServiceConfig sc;
    sc.threads = 0;
    sc.max_pending = 4096;
    sc.dispatchers = dispatchers;
    SearchService service(sc);
    if (!service.AddCollection("bond", s.dataset.data, s.index, bond).ok() ||
        !service.AddCollection("ads", s.dataset.data, s.index, ads).ok()) {
      std::fprintf(stderr, "serve_throughput: AddCollection failed\n");
      return;
    }
    SearchHandler handler(service);
    HttpServer server;
    if (!server.Start(handler.AsHttpHandler()).ok()) {
      std::fprintf(stderr, "serve_throughput: HttpServer::Start failed\n");
      return;
    }
    const HttpLoadResult result =
        RunHttpLoad(server.port(), {"bond", "ads"}, s.dataset.queries,
                    submitters, 200);
    const LatencySummary lat = result.latency.Summary();
    table.AddRow({spec.name, "http", std::to_string(submitters),
                  TextTable::Num(result.qps(), 0),
                  TextTable::Num(lat.p50_ms, 3), TextTable::Num(lat.p95_ms, 3),
                  TextTable::Num(lat.p99_ms, 3),
                  std::to_string(result.failed)});
    server.Stop();
  }
  table.Print();
}

/// One base-size rung of the --ingest benchmark: what it measured and what
/// came out, for both the text table and the JSON emission.
struct IngestRungResult {
  size_t base_rows = 0;
  size_t rows_added = 0;
  /// Per AddVectors batch (kIngestBatch rows) with no searches running —
  /// the pure append path; this is the column the base-size-independence
  /// claim is judged on.
  LatencySummary idle_latency;
  LatencySummary add_latency;   ///< Same, while searchers run (adds
                                ///< writer-lock wait behind live scans).
  double add_qps = 0.0;         ///< Rows ingested per second (live phase).
  double search_qps = 0.0;      ///< Concurrent search throughput.
  LatencySummary search_latency;
};

constexpr size_t kIngestBatch = 32;  ///< Rows per AddVectors call.

/// Streams AddVectors batches into `collection` from `mutators` threads
/// while the caller drives searches, until `stop` flips. Returns per-batch
/// latency and the number of rows that landed.
IngestRungResult RunIngestLoad(SearchService& service,
                               const std::string& collection,
                               const VectorSet& rows, size_t mutators,
                               size_t max_rows_per_mutator,
                               std::atomic<bool>& stop) {
  std::vector<LatencyRecorder> per_thread(mutators);
  std::vector<size_t> added(mutators, 0);
  Timer wall;
  std::vector<std::thread> threads;
  for (size_t m = 0; m < mutators; ++m) {
    threads.emplace_back([&, m] {
      size_t cursor = m * kIngestBatch;  // Disjoint starting offsets.
      while (!stop.load(std::memory_order_relaxed) &&
             added[m] < max_rows_per_mutator) {
        if (cursor + kIngestBatch > rows.count()) cursor = 0;
        Timer batch;
        const auto result = service.AddVectors(
            collection, rows.Vector(cursor), kIngestBatch, rows.dim(),
            nullptr);
        if (!result.ok()) return;  // Surfaces as a short "added" column.
        per_thread[m].Record(batch.ElapsedMillis());
        added[m] += kIngestBatch;
        cursor += kIngestBatch;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  IngestRungResult out;
  const double wall_ms = wall.ElapsedMillis();
  LatencyRecorder merged;
  for (size_t m = 0; m < mutators; ++m) {
    merged.Merge(per_thread[m]);
    out.rows_added += added[m];
  }
  out.add_latency = merged.Summary();
  out.add_qps = wall_ms > 0.0
                    ? 1000.0 * static_cast<double>(out.rows_added) / wall_ms
                    : 0.0;
  return out;
}

/// The --ingest rung: concurrent AddVectors + search against one mutable
/// flat collection at base sizes {N/4, N/2, N}. Compaction is off
/// (compact_threshold=0) so the add column is the pure append path; the
/// p50 ratio across sizes is the "ingest latency is independent of base
/// size" evidence.
void RunIngestRung(const SyntheticSpec& spec, size_t dispatchers,
                   JsonValue* json_datasets) {
  Dataset dataset = GenerateDataset(spec);
  const size_t dim = dataset.data.dim();

  SearcherConfig config = {};
  config.layout = SearcherLayout::kFlat;
  config.pruner = PrunerKind::kLinear;

  TextTable table({"dataset", "base", "added", "idle p50(ms)", "add p50(ms)",
                   "add p95(ms)", "add rows/s", "search QPS",
                   "search p50(ms)"});
  std::vector<IngestRungResult> rungs;
  for (const size_t divisor : {4u, 2u, 1u}) {
    const size_t base_rows = std::max<size_t>(1, spec.count / divisor);
    ServiceConfig sc;
    sc.threads = 0;
    sc.max_pending = 4096;
    sc.dispatchers = dispatchers;
    sc.mutation.compact_threshold = 0;  // Isolate the append path.
    SearchService service(sc);
    const VectorSet base =
        VectorSet::FromRowMajor(dataset.data.Vector(0), base_rows, dim);
    if (!service.AddCollection("live", base, config).ok()) {
      std::fprintf(stderr, "serve_throughput: AddCollection failed\n");
      return;
    }

    // Quiesced phase first: a bounded burst with no searches in flight, so
    // the recorded latency is the append path alone (tail-block repack +
    // id-map insert), not writer-lock wait behind live scans.
    std::atomic<bool> stop{false};
    const IngestRungResult idle =
        RunIngestLoad(service, "live", dataset.data, /*mutators=*/2,
                      /*max_rows_per_mutator=*/50 * kIngestBatch, stop);

    // Live phase: mutators run for as long as the search load does (closed
    // loop on the searcher side); the per-mutator cap bounds delta growth
    // if searches finish slowly.
    IngestRungResult rung;
    std::thread ingest([&] {
      rung = RunIngestLoad(service, "live", dataset.data, /*mutators=*/2,
                           /*max_rows_per_mutator=*/base_rows, stop);
    });
    ServiceLoadOptions load;
    load.submitters = 4;
    load.queries_per_submitter = 200;
    const ServiceLoadResult searches =
        RunServiceLoad(service, {"live"}, dataset.queries, load);
    stop.store(true, std::memory_order_relaxed);
    ingest.join();

    rung.base_rows = base_rows;
    rung.idle_latency = idle.add_latency;
    rung.rows_added += idle.rows_added;
    rung.search_qps = searches.qps();
    rung.search_latency = service.Stats().collections.at("live").latency;
    rungs.push_back(rung);
    table.AddRow({spec.name, std::to_string(base_rows),
                  std::to_string(rung.rows_added),
                  TextTable::Num(rung.idle_latency.p50_ms, 3),
                  TextTable::Num(rung.add_latency.p50_ms, 3),
                  TextTable::Num(rung.add_latency.p95_ms, 3),
                  TextTable::Num(rung.add_qps, 0),
                  TextTable::Num(rung.search_qps, 0),
                  TextTable::Num(rung.search_latency.p50_ms, 3)});
  }
  table.Print();

  // The claim under test: append cost must not grow with the base. Judged
  // on the quiesced column — the live column additionally carries
  // writer-lock wait behind in-flight scans, which DOES scale with scan
  // time and is reported separately.
  double min_p50 = 0.0, max_p50 = 0.0;
  for (const IngestRungResult& rung : rungs) {
    if (min_p50 == 0.0 || rung.idle_latency.p50_ms < min_p50) {
      min_p50 = rung.idle_latency.p50_ms;
    }
    max_p50 = std::max(max_p50, rung.idle_latency.p50_ms);
  }
  if (min_p50 > 0.0) {
    std::printf(
        "%s: quiesced add p50 largest/smallest across base sizes = %.2fx "
        "(flat ~1x means ingest latency is independent of base size)\n",
        spec.name.c_str(), max_p50 / min_p50);
  }

  if (json_datasets == nullptr) return;
  JsonValue results = JsonValue::Array();
  for (const IngestRungResult& rung : rungs) {
    JsonValue entry = JsonValue::Object();
    entry.Set("base_rows", rung.base_rows);
    entry.Set("rows_added", rung.rows_added);
    entry.Set("add_batch_rows", kIngestBatch);
    entry.Set("idle_add_p50_ms", rung.idle_latency.p50_ms);
    entry.Set("add_p50_ms", rung.add_latency.p50_ms);
    entry.Set("add_p95_ms", rung.add_latency.p95_ms);
    entry.Set("add_rows_per_s", rung.add_qps);
    entry.Set("search_qps", rung.search_qps);
    entry.Set("search_p50_ms", rung.search_latency.p50_ms);
    results.Append(std::move(entry));
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("dataset", spec.name);
  doc.Set("dim", dim);
  doc.Set("dispatchers", dispatchers);
  if (min_p50 > 0.0) {
    doc.Set("idle_add_p50_max_over_min", max_p50 / min_p50);
  }
  doc.Set("results", std::move(results));
  json_datasets->Append(std::move(doc));
}

/// The --persist rung: build-from-vectors vs restore-from-file, plus
/// cold-start-to-first-query, at base sizes {N/4, N/2, N}. The restored
/// path must do ZERO k-means and ZERO store packing — the pack/kmeans
/// columns pin that with the same process-wide counters the regression
/// test uses.
void RunPersistRung(const SyntheticSpec& spec, JsonValue* json_datasets) {
  Dataset dataset = GenerateDataset(spec);
  const size_t dim = dataset.data.dim();

  SearcherConfig config = {};
  config.layout = SearcherLayout::kIvf;
  config.pruner = PrunerKind::kBond;
  config.nprobe = 16;

  TextTable table({"dataset", "rows", "build(ms)", "save(ms)", "file(MB)",
                   "load(ms)", "1st query(ms)", "cold start(ms)",
                   "build/load", "packs", "kmeans"});
  JsonValue results = JsonValue::Array();
  for (const size_t divisor : {4u, 2u, 1u}) {
    const size_t base_rows = std::max<size_t>(1, spec.count / divisor);
    const VectorSet base =
        VectorSet::FromRowMajor(dataset.data.Vector(0), base_rows, dim);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("bench_persist_" + std::to_string(base_rows) + ".pdxc"))
            .string();

    double build_ms = 0.0;
    double save_ms = 0.0;
    {
      SearchService service(ServiceConfig{});
      Timer build;
      if (!service.AddCollection("cold", base, config).ok()) {
        std::fprintf(stderr, "serve_throughput: AddCollection failed\n");
        return;
      }
      // Build-to-first-query: the whole cost a fresh process pays before
      // it can answer when it has no saved file.
      (void)service.Submit("cold", dataset.queries.Vector(0)).result.get();
      build_ms = build.ElapsedMillis();
      Timer save;
      if (!service.SaveCollection("cold", path).ok()) {
        std::fprintf(stderr, "serve_throughput: SaveCollection failed\n");
        return;
      }
      save_ms = save.ElapsedMillis();
    }
    const auto file_bytes =
        static_cast<double>(std::filesystem::file_size(path));

    // The cold-start side: a fresh service, nothing warm but the page
    // cache, restore + first answered query.
    const size_t packs_before = PdxStorePackCount();
    const size_t kmeans_before = KMeansRunCount();
    double load_ms = 0.0;
    double first_query_ms = 0.0;
    {
      SearchService service(ServiceConfig{});
      Timer load;
      if (!service.LoadCollection("cold", path).ok()) {
        std::fprintf(stderr, "serve_throughput: LoadCollection failed\n");
        return;
      }
      load_ms = load.ElapsedMillis();
      Timer first;
      (void)service.Submit("cold", dataset.queries.Vector(0)).result.get();
      first_query_ms = first.ElapsedMillis();
    }
    const size_t load_packs = PdxStorePackCount() - packs_before;
    const size_t load_kmeans = KMeansRunCount() - kmeans_before;
    const double cold_start_ms = load_ms + first_query_ms;
    std::filesystem::remove(path);

    table.AddRow({spec.name, std::to_string(base_rows),
                  TextTable::Num(build_ms, 1), TextTable::Num(save_ms, 1),
                  TextTable::Num(file_bytes / (1024.0 * 1024.0), 2),
                  TextTable::Num(load_ms, 1),
                  TextTable::Num(first_query_ms, 3),
                  TextTable::Num(cold_start_ms, 1),
                  TextTable::Num(load_ms > 0.0 ? build_ms / load_ms : 0.0, 1),
                  std::to_string(load_packs), std::to_string(load_kmeans)});

    JsonValue entry = JsonValue::Object();
    entry.Set("base_rows", base_rows);
    entry.Set("build_to_first_query_ms", build_ms);
    entry.Set("save_ms", save_ms);
    entry.Set("file_bytes", file_bytes);
    entry.Set("load_ms", load_ms);
    entry.Set("first_query_ms", first_query_ms);
    entry.Set("cold_start_to_first_query_ms", cold_start_ms);
    entry.Set("build_over_load", load_ms > 0.0 ? build_ms / load_ms : 0.0);
    entry.Set("load_store_packs", load_packs);
    entry.Set("load_kmeans_runs", load_kmeans);
    results.Append(std::move(entry));
  }
  table.Print();

  if (json_datasets == nullptr) return;
  JsonValue doc = JsonValue::Object();
  doc.Set("dataset", spec.name);
  doc.Set("dim", dim);
  doc.Set("layout", "ivf");
  doc.Set("pruner", "bond");
  doc.Set("results", std::move(results));
  json_datasets->Append(std::move(doc));
}

/// The --quantized rung: the same vectors hosted twice in one service —
/// the exact float tier ("f32", flat + linear) and the u8 quantized tier
/// ("u8", rerank_factor 4) — under the same submitter load. Reports
/// QPS/p50/p99 per tier, the resident bytes of what each tier scans
/// (float arena vs u8 codes: ~4x), and the served recall of the u8 tier
/// against exact ground truth (the fig8-style recall-delta view; the
/// acceptance bar is >= 0.95 at rerank_factor 4).
void RunQuantizedRung(const SyntheticSpec& spec, size_t dispatchers,
                      JsonValue* json_datasets) {
  Dataset dataset = GenerateDataset(spec);
  const size_t dim = dataset.data.dim();
  const size_t k = 10;
  const auto truth = ComputeGroundTruth(dataset.data, dataset.queries, k);

  SearcherConfig f32 = {};
  f32.layout = SearcherLayout::kFlat;
  f32.pruner = PrunerKind::kLinear;
  f32.k = k;
  SearcherConfig u8 = f32;
  u8.quantization = QuantizationKind::kU8;
  u8.rerank_factor = 4;

  ServiceConfig sc;
  sc.threads = 0;  // One worker per hardware thread.
  sc.max_pending = 4096;
  sc.dispatchers = dispatchers;
  SearchService service(sc);
  if (!service.AddCollection("f32", dataset.data, f32).ok() ||
      !service.AddCollection("u8", dataset.data, u8).ok()) {
    std::fprintf(stderr, "serve_throughput: quantized AddCollection failed\n");
    return;
  }

  TextTable table({"dataset", "tier", "QPS", "p50(ms)", "p95(ms)", "p99(ms)",
                   "scan bytes", "recall@10"});
  JsonValue tiers = JsonValue::Array();
  for (const std::string name : {std::string("f32"), std::string("u8")}) {
    // Served recall first (sequential, unmeasured): every query through
    // the service, scored against exact ground truth.
    double recall_sum = 0.0;
    for (size_t q = 0; q < dataset.queries.count(); ++q) {
      QueryResult result =
          service.Submit(name, dataset.queries.Vector(q)).result.get();
      if (result.status.ok()) {
        recall_sum += RecallAtK(result.neighbors, truth[q], k);
      }
    }
    const double recall = recall_sum / dataset.queries.count();

    ServiceLoadOptions load;
    load.submitters = 4;
    load.queries_per_submitter = 200;
    const ServiceLoadResult result =
        RunServiceLoad(service, {name}, dataset.queries, load);
    const CollectionStats cs = service.Stats().collections.at(name);
    // What the scan touches per full pass: the float arena vs the u8
    // codes — the tier's ~4x memory story.
    const uint64_t scan_bytes =
        name == "u8" ? cs.quantized_bytes
                     : static_cast<uint64_t>(dataset.data.count()) * dim *
                           sizeof(float);
    table.AddRow({spec.name, name, TextTable::Num(result.qps(), 0),
                  TextTable::Num(cs.latency.p50_ms, 3),
                  TextTable::Num(cs.latency.p95_ms, 3),
                  TextTable::Num(cs.latency.p99_ms, 3),
                  std::to_string(scan_bytes), TextTable::Num(recall, 3)});

    JsonValue entry = JsonValue::Object();
    entry.Set("tier", name);
    entry.Set("qps", result.qps());
    entry.Set("p50_ms", cs.latency.p50_ms);
    entry.Set("p95_ms", cs.latency.p95_ms);
    entry.Set("p99_ms", cs.latency.p99_ms);
    entry.Set("scan_bytes", static_cast<size_t>(scan_bytes));
    entry.Set("recall_at_10", recall);
    if (name == "u8") {
      entry.Set("rerank_factor", static_cast<size_t>(4));
      entry.Set("rerank_candidates", static_cast<size_t>(cs.rerank_candidates));
    }
    tiers.Append(std::move(entry));
  }
  table.Print();

  if (json_datasets == nullptr) return;
  JsonValue doc = JsonValue::Object();
  doc.Set("dataset", spec.name);
  doc.Set("dim", dim);
  doc.Set("rows", dataset.data.count());
  doc.Set("dispatchers", dispatchers);
  doc.Set("tiers", std::move(tiers));
  json_datasets->Append(std::move(doc));
}

/// Parses `--<name>=N[,M,...]` from argv into a size list; `fallback` when
/// the flag is absent or empty.
std::vector<size_t> ParseSizeListFlag(int argc, char** argv,
                                      const char* prefix,
                                      std::vector<size_t> fallback) {
  std::vector<size_t> counts = std::move(fallback);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) != 0) continue;
    counts.clear();
    for (const char* p = argv[i] + std::strlen(prefix); *p != '\0';) {
      char* end = nullptr;
      const unsigned long value = std::strtoul(p, &end, 10);
      if (end == p) break;  // Not a number: stop parsing the list.
      if (value > 0) counts.push_back(static_cast<size_t>(value));
      p = *end == ',' ? end + 1 : end;
    }
    if (counts.empty()) counts = {1};
  }
  return counts;
}

}  // namespace
}  // namespace pdx

int main(int argc, char** argv) {
  using namespace pdx;
  PrintBanner(
      "Serving: SearchService throughput under concurrency (2 collections, "
      "one shared pool, --dispatchers axis)");
  const double scale = BenchScaleFromEnv();
  const std::vector<size_t> shard_counts =
      ParseSizeListFlag(argc, argv, "--shards=", {1, 2, 4});
  const std::vector<size_t> dispatcher_counts =
      ParseSizeListFlag(argc, argv, "--dispatchers=", {1, 2, 4});
  bool http = false;
  bool trace = false;
  bool ingest = false;
  bool persist = false;
  bool quantized = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--http") == 0) http = true;
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strcmp(argv[i], "--ingest") == 0) ingest = true;
    if (std::strcmp(argv[i], "--persist") == 0) persist = true;
    if (std::strcmp(argv[i], "--quantized") == 0) quantized = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
    spec.num_queries = 100;
    RunDataset(spec, dispatcher_counts);
  }
  if (trace) {
    const size_t trace_dispatchers = *std::max_element(
        dispatcher_counts.begin(), dispatcher_counts.end());
    PrintBanner(
        "Serving: per-query tracing overhead (off vs 100% traced, "
        "dispatchers=" +
        std::to_string(trace_dispatchers) + ")");
    for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
      spec.num_queries = 100;
      RunTraceOverhead(spec, trace_dispatchers);
    }
  }
  if (http) {
    const size_t wire_dispatchers = *std::max_element(
        dispatcher_counts.begin(), dispatcher_counts.end());
    PrintBanner(
        "Serving: the same load over the HTTP front end (loopback sockets, "
        "pipelined wire clients, dispatchers=" +
        std::to_string(wire_dispatchers) + ")");
    for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
      spec.num_queries = 100;
      RunHttpRung(spec, wire_dispatchers);
    }
  }
  if (ingest) {
    const size_t ingest_dispatchers = *std::max_element(
        dispatcher_counts.begin(), dispatcher_counts.end());
    PrintBanner(
        "Serving: streaming ingest while serving (AddVectors vs base size, "
        "compaction off, dispatchers=" +
        std::to_string(ingest_dispatchers) + ")");
    JsonValue datasets = JsonValue::Array();
    for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
      spec.num_queries = 100;
      RunIngestRung(spec, ingest_dispatchers,
                    json_path.empty() ? nullptr : &datasets);
    }
    if (!json_path.empty()) {
      JsonValue doc = JsonValue::Object();
      doc.Set("bench", "serve_ingest");
      doc.Set("datasets", std::move(datasets));
      std::ofstream out(json_path);
      if (out) {
        out << WriteJson(doc) << "\n";
        std::printf("wrote %s\n", json_path.c_str());
      } else {
        std::fprintf(stderr, "serve_throughput: cannot write %s\n",
                     json_path.c_str());
      }
    }
  }
  if (persist) {
    PrintBanner(
        "Serving: persistence cold start (build-from-vectors vs "
        "mmap-restore, save -> fresh service -> load -> first query)");
    JsonValue datasets = JsonValue::Array();
    for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
      spec.num_queries = 100;
      RunPersistRung(spec, &datasets);
    }
    JsonValue doc = JsonValue::Object();
    doc.Set("bench", "serve_persist");
    doc.Set("datasets", std::move(datasets));
    const std::string persist_json =
        json_path.empty() ? "BENCH_persist.json" : json_path;
    std::ofstream out(persist_json);
    if (out) {
      out << WriteJson(doc) << "\n";
      std::printf("wrote %s\n", persist_json.c_str());
    } else {
      std::fprintf(stderr, "serve_throughput: cannot write %s\n",
                   persist_json.c_str());
    }
  }
  if (quantized) {
    const size_t quant_dispatchers = *std::max_element(
        dispatcher_counts.begin(), dispatcher_counts.end());
    PrintBanner(
        "Serving: quantized tier vs float (u8 codes + exact rerank x4, "
        "dispatchers=" +
        std::to_string(quant_dispatchers) + ")");
    JsonValue datasets = JsonValue::Array();
    for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
      spec.num_queries = 100;
      RunQuantizedRung(spec, quant_dispatchers, &datasets);
    }
    JsonValue doc = JsonValue::Object();
    doc.Set("bench", "serve_quantized");
    doc.Set("datasets", std::move(datasets));
    const std::string quant_json =
        json_path.empty() ? "BENCH_quantized.json" : json_path;
    std::ofstream out(quant_json);
    if (out) {
      out << WriteJson(doc) << "\n";
      std::printf("wrote %s\n", quant_json.c_str());
    } else {
      std::fprintf(stderr, "serve_throughput: cannot write %s\n",
                   quant_json.c_str());
    }
  }
  // The shard sweep runs at the deepest requested replication so the one
  // hot collection actually has several batches in flight.
  const size_t max_dispatchers = *std::max_element(dispatcher_counts.begin(),
                                                   dispatcher_counts.end());
  PrintBanner(
      "Serving: one hot collection sharded across searchers "
      "(scatter-gather top-k, --shards axis, dispatchers=" +
      std::to_string(max_dispatchers) + ")");
  for (SyntheticSpec spec : CoreWorkloads(scale * 0.5)) {
    spec.num_queries = 100;
    RunShardScaling(spec, shard_counts, max_dispatchers);
  }
  return 0;
}
