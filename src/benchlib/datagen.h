#ifndef PDX_BENCHLIB_DATAGEN_H_
#define PDX_BENCHLIB_DATAGEN_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "storage/vector_set.h"

namespace pdx {

/// Shape of the per-dimension value distribution (Table 1's last column):
/// the paper classifies its ten datasets into "normal" (DEEP, NYTimes,
/// GloVe, Contriever, arXiv) and "skewed" (SIFT, GIST, MSong, OpenAI) —
/// skew is what gives magnitude-based pruning its power.
enum class ValueDistribution : uint8_t {
  kNormal = 0,
  kSkewed = 1,
};

const char* ValueDistributionName(ValueDistribution distribution);

/// Recipe for one synthetic dataset.
///
/// Data is drawn from a Gaussian mixture (so IVF's k-means partitioning is
/// meaningful, as in real embedding collections) with per-dimension offsets
/// and scales (so query-aware dimension ranking has signal). For kSkewed
/// the mixture samples are pushed through exp(x/2), yielding the
/// non-negative long-tailed marginals of SIFT/GIST-like features.
struct SyntheticSpec {
  std::string name;
  size_t dim = 0;
  size_t count = 0;
  size_t num_queries = 100;
  ValueDistribution distribution = ValueDistribution::kNormal;
  size_t num_clusters = 32;
  uint64_t seed = 42;
};

/// A generated dataset: collection + held-out queries from the same
/// mixture.
struct Dataset {
  std::string name;
  VectorSet data;
  VectorSet queries;
  ValueDistribution distribution = ValueDistribution::kNormal;

  size_t dim() const { return data.dim(); }
};

/// Materializes the spec (deterministic in the seed).
Dataset GenerateDataset(const SyntheticSpec& spec);

}  // namespace pdx

#endif  // PDX_BENCHLIB_DATAGEN_H_
