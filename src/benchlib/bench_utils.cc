#include "benchlib/bench_utils.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/timer.h"
#include "kernels/kernel_dispatch.h"

namespace pdx {

double MedianRunNanos(const std::function<void()>& fn, int repeats) {
  assert(repeats >= 1);
  fn();  // Warm-up.
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    fn();
    samples.push_back(static_cast<double>(timer.ElapsedNanos()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void TextTable::Print() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::printf("|");
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(const std::string& title) {
  // Every bench header names the dispatched SIMD tier so saved outputs are
  // attributable to the hardware tier that produced them.
  std::printf("\n== %s (isa: %s) ==\n", title.c_str(),
              IsaName(DispatchedIsa()));
}

}  // namespace pdx
