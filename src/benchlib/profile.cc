#include "benchlib/profile.h"

#include <unistd.h>

#include <cstdio>

namespace pdx {

namespace {

size_t SysconfCache(int name, size_t fallback) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long value = sysconf(name);
  if (value > 0) return static_cast<size_t>(value);
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

CacheInfo DetectCaches() {
  CacheInfo info;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  info.l1d_bytes = SysconfCache(_SC_LEVEL1_DCACHE_SIZE, info.l1d_bytes);
  info.l2_bytes = SysconfCache(_SC_LEVEL2_CACHE_SIZE, info.l2_bytes);
  info.l3_bytes = SysconfCache(_SC_LEVEL3_CACHE_SIZE, info.l3_bytes);
#endif
  return info;
}

std::string CacheLevelName(size_t working_set_bytes, const CacheInfo& info) {
  if (working_set_bytes <= info.l1d_bytes) return "L1";
  if (working_set_bytes <= info.l2_bytes) return "L2";
  if (working_set_bytes <= info.l3_bytes) return "L3";
  return "DRAM";
}

std::string FormatBytes(size_t bytes) {
  char buffer[64];
  if (bytes < 1024) {
    std::snprintf(buffer, sizeof(buffer), "%zuB", bytes);
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.1fKiB",
                  static_cast<double>(bytes) / 1024.0);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.1fMiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fGiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buffer;
}

}  // namespace pdx
