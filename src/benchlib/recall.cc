#include "benchlib/recall.h"

#include <algorithm>

#include "benchlib/bench_utils.h"
#include "index/flat.h"

namespace pdx {

std::vector<std::vector<VectorId>> ComputeGroundTruth(const VectorSet& data,
                                                      const VectorSet& queries,
                                                      size_t k,
                                                      Metric metric) {
  std::vector<std::vector<VectorId>> truth(queries.count());
  ParallelFor(queries.count(), [&](size_t q) {
    const std::vector<Neighbor> nn = FlatSearchNary(
        data, queries.Vector(static_cast<VectorId>(q)), k, metric);
    std::vector<VectorId>& ids = truth[q];
    ids.reserve(nn.size());
    for (const Neighbor& neighbor : nn) ids.push_back(neighbor.id);
  });
  return truth;
}

double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<VectorId>& truth, size_t k) {
  if (k == 0) return 1.0;
  const size_t limit = std::min(k, truth.size());
  size_t hits = 0;
  for (size_t i = 0; i < std::min(k, result.size()); ++i) {
    for (size_t j = 0; j < limit; ++j) {
      if (result[i].id == truth[j]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<VectorId>>& truth,
                     size_t k) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (size_t q = 0; q < results.size(); ++q) {
    sum += RecallAtK(results[q], truth[q], k);
  }
  return sum / static_cast<double>(results.size());
}

}  // namespace pdx
