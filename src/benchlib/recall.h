#ifndef PDX_BENCHLIB_RECALL_H_
#define PDX_BENCHLIB_RECALL_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "index/topk.h"
#include "storage/vector_set.h"

namespace pdx {

/// Exact k-NN ids for every query (brute force). Parallelized across
/// queries — this is benchmark *setup*, not a measured code path.
std::vector<std::vector<VectorId>> ComputeGroundTruth(
    const VectorSet& data, const VectorSet& queries, size_t k,
    Metric metric = Metric::kL2);

/// recall@k of one result list against the exact ids.
double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<VectorId>& truth, size_t k);

/// Mean recall@k across queries; `results[i]` answers query i.
double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<VectorId>>& truth,
                     size_t k);

}  // namespace pdx

#endif  // PDX_BENCHLIB_RECALL_H_
