#include "benchlib/datagen.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace pdx {

const char* ValueDistributionName(ValueDistribution distribution) {
  switch (distribution) {
    case ValueDistribution::kNormal:
      return "normal";
    case ValueDistribution::kSkewed:
      return "skewed";
  }
  return "unknown";
}

namespace {

struct MixtureModel {
  size_t dim;
  size_t num_clusters;
  std::vector<float> dim_offset;       // Per-dimension base offset.
  std::vector<float> dim_scale;        // Per-dimension noise scale.
  std::vector<float> centers;          // num_clusters x dim.
  std::vector<double> cluster_weight;  // Cumulative sampling weights.
};

MixtureModel BuildMixture(const SyntheticSpec& spec, Rng& rng) {
  MixtureModel model;
  model.dim = spec.dim;
  model.num_clusters = std::max<size_t>(1, spec.num_clusters);

  // Heterogeneous dimensions: different offsets and scales per dimension
  // make "distance to means" ranking meaningful, as in real features.
  model.dim_offset.resize(spec.dim);
  model.dim_scale.resize(spec.dim);
  for (size_t d = 0; d < spec.dim; ++d) {
    model.dim_offset[d] = rng.UniformFloat(-1.0f, 1.0f);
    model.dim_scale[d] = rng.UniformFloat(0.4f, 1.6f);
  }

  model.centers.resize(model.num_clusters * spec.dim);
  for (size_t c = 0; c < model.num_clusters; ++c) {
    for (size_t d = 0; d < spec.dim; ++d) {
      model.centers[c * spec.dim + d] = static_cast<float>(
          model.dim_offset[d] + 1.5 * model.dim_scale[d] * rng.Gaussian());
    }
  }

  // Zipf-ish cluster popularity so bucket sizes vary like real data.
  model.cluster_weight.resize(model.num_clusters);
  double total = 0.0;
  for (size_t c = 0; c < model.num_clusters; ++c) {
    total += 1.0 / std::sqrt(static_cast<double>(c + 1));
    model.cluster_weight[c] = total;
  }
  for (double& w : model.cluster_weight) w /= total;
  return model;
}

void SampleVector(const MixtureModel& model, ValueDistribution distribution,
                  Rng& rng, float* out) {
  // Pick a cluster by cumulative weight.
  const double u = rng.UniformDouble();
  size_t cluster = 0;
  while (cluster + 1 < model.num_clusters &&
         model.cluster_weight[cluster] < u) {
    ++cluster;
  }
  const float* center = model.centers.data() + cluster * model.dim;
  for (size_t d = 0; d < model.dim; ++d) {
    const double raw =
        center[d] + model.dim_scale[d] * rng.Gaussian();
    if (distribution == ValueDistribution::kSkewed) {
      // Long-tailed, non-negative marginals (SIFT/GIST-like features).
      out[d] = static_cast<float>(std::exp(raw * 0.5));
    } else {
      out[d] = static_cast<float>(raw);
    }
  }
}

}  // namespace

Dataset GenerateDataset(const SyntheticSpec& spec) {
  assert(spec.dim > 0 && spec.count > 0);
  Rng rng(spec.seed);
  MixtureModel model = BuildMixture(spec, rng);

  Dataset dataset;
  dataset.name = spec.name;
  dataset.distribution = spec.distribution;
  dataset.data = VectorSet(spec.dim, spec.count);
  dataset.queries = VectorSet(spec.dim, spec.num_queries);

  std::vector<float> row(spec.dim);
  for (size_t i = 0; i < spec.count; ++i) {
    SampleVector(model, spec.distribution, rng, row.data());
    dataset.data.Append(row.data());
  }
  for (size_t i = 0; i < spec.num_queries; ++i) {
    SampleVector(model, spec.distribution, rng, row.data());
    dataset.queries.Append(row.data());
  }
  return dataset;
}

}  // namespace pdx
