#ifndef PDX_BENCHLIB_LATENCY_H_
#define PDX_BENCHLIB_LATENCY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pdx {

/// Snapshot of a latency distribution in milliseconds. count/min/max/mean
/// cover every recorded sample; the percentiles are computed over the
/// recorder's sliding window (nearest-rank on the sorted window), which for
/// a long-running server is the operationally interesting "recent" view.
struct LatencySummary {
  size_t count = 0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  /// "n=120 p50=0.41ms p95=0.98ms p99=1.73ms" — for bench tables and logs.
  std::string ToString() const;
};

/// Fixed-memory latency tracker shared by BatchProfile (per-batch
/// percentiles) and ServiceStats (per-collection percentiles): a ring
/// buffer of the last `window` samples plus running count/sum/min/max over
/// everything ever recorded. Deterministic — no sampling randomness — so
/// two runs over the same queries report the same percentiles.
///
/// Not internally synchronized: callers either own it exclusively (one per
/// pool worker, merged after the loop) or guard it with their own mutex
/// (the serving layer).
class LatencyRecorder {
 public:
  static constexpr size_t kDefaultWindow = 4096;

  LatencyRecorder() : LatencyRecorder(kDefaultWindow) {}
  explicit LatencyRecorder(size_t window);

  /// Records one sample; once the window is full the oldest sample falls
  /// out of the percentile view (count/min/max/mean still remember it).
  void Record(double ms);

  /// Folds `other` into this recorder: counts and extrema accumulate, and
  /// other's window samples are replayed oldest-first into this window.
  /// Used to merge per-worker recorders after a parallel batch.
  void Merge(const LatencyRecorder& other);

  void Reset();

  /// Samples ever recorded (not capped by the window).
  size_t count() const { return total_; }

  LatencySummary Summary() const;

 private:
  void RecordSample(double ms);
  /// Window samples oldest-first (the ring unrolled).
  std::vector<double> OrderedSamples() const;

  size_t window_;
  size_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
  size_t next_ = 0;  ///< Overwrite position once the ring is full.
};

}  // namespace pdx

#endif  // PDX_BENCHLIB_LATENCY_H_
