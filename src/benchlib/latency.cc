#include "benchlib/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pdx {

namespace {

/// Nearest-rank percentile of an already-sorted sample vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<size_t>(1, rank)) - 1];
}

}  // namespace

std::string LatencySummary::ToString() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "n=%zu p50=%.2fms p95=%.2fms p99=%.2fms", count, p50_ms,
                p95_ms, p99_ms);
  return buffer;
}

LatencyRecorder::LatencyRecorder(size_t window)
    : window_(std::max<size_t>(1, window)) {}

void LatencyRecorder::RecordSample(double ms) {
  if (samples_.size() < window_) {
    samples_.push_back(ms);
  } else {
    samples_[next_] = ms;
    next_ = (next_ + 1) % window_;
  }
}

void LatencyRecorder::Record(double ms) {
  if (total_ == 0 || ms < min_) min_ = ms;
  if (total_ == 0 || ms > max_) max_ = ms;
  ++total_;
  sum_ += ms;
  RecordSample(ms);
}

std::vector<double> LatencyRecorder::OrderedSamples() const {
  std::vector<double> ordered;
  ordered.reserve(samples_.size());
  if (samples_.size() < window_) {
    ordered = samples_;  // Ring never wrapped: insertion order is age order.
  } else {
    ordered.insert(ordered.end(), samples_.begin() + next_, samples_.end());
    ordered.insert(ordered.end(), samples_.begin(), samples_.begin() + next_);
  }
  return ordered;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.total_ == 0) return;
  if (total_ == 0 || other.min_ < min_) min_ = other.min_;
  if (total_ == 0 || other.max_ > max_) max_ = other.max_;
  total_ += other.total_;
  sum_ += other.sum_;
  for (double ms : other.OrderedSamples()) RecordSample(ms);
}

void LatencyRecorder::Reset() {
  total_ = 0;
  sum_ = min_ = max_ = 0.0;
  samples_.clear();
  next_ = 0;
}

LatencySummary LatencyRecorder::Summary() const {
  LatencySummary summary;
  summary.count = total_;
  if (total_ == 0) return summary;
  summary.min_ms = min_;
  summary.max_ms = max_;
  summary.mean_ms = sum_ / static_cast<double>(total_);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  summary.p50_ms = Percentile(sorted, 0.50);
  summary.p95_ms = Percentile(sorted, 0.95);
  summary.p99_ms = Percentile(sorted, 0.99);
  return summary;
}

}  // namespace pdx
