#include "benchlib/workloads.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>

#include "common/timer.h"

namespace pdx {

namespace {

SyntheticSpec Spec(const char* name, size_t dim, size_t count,
                   ValueDistribution distribution, double scale) {
  SyntheticSpec spec;
  spec.name = name;
  spec.dim = dim;
  spec.count = std::max<size_t>(1000, static_cast<size_t>(count * scale));
  spec.num_queries = 100;
  spec.distribution = distribution;
  // ~sqrt(N) clusters would match IVF defaults, but cluster count also
  // shapes the data itself; keep it moderate and size-linked.
  spec.num_clusters = std::clamp<size_t>(spec.count / 2000, 16, 64);
  spec.seed = 42 + dim;  // Distinct but deterministic per dataset.
  return spec;
}

}  // namespace

std::vector<SyntheticSpec> PaperWorkloads(double scale) {
  // Mirrors Table 1: name/dim/distribution; counts scaled to laptop size.
  return {
      Spec("nytimes-16", 16, 60000, ValueDistribution::kNormal, scale),
      Spec("glove-50", 50, 60000, ValueDistribution::kNormal, scale),
      Spec("deep-96", 96, 60000, ValueDistribution::kNormal, scale),
      Spec("sift-128", 128, 60000, ValueDistribution::kSkewed, scale),
      Spec("glove-200", 200, 40000, ValueDistribution::kNormal, scale),
      Spec("msong-420", 420, 25000, ValueDistribution::kSkewed, scale),
      Spec("contriever-768", 768, 15000, ValueDistribution::kNormal, scale),
      Spec("arxiv-768", 768, 15000, ValueDistribution::kNormal, scale),
      Spec("gist-960", 960, 12000, ValueDistribution::kSkewed, scale),
      Spec("openai-1536", 1536, 10000, ValueDistribution::kSkewed, scale),
  };
}

std::vector<SyntheticSpec> CoreWorkloads(double scale) {
  return {
      Spec("glove-50", 50, 60000, ValueDistribution::kNormal, scale),
      Spec("sift-128", 128, 60000, ValueDistribution::kSkewed, scale),
      Spec("contriever-768", 768, 15000, ValueDistribution::kNormal, scale),
      Spec("openai-1536", 1536, 10000, ValueDistribution::kSkewed, scale),
  };
}

double BenchScaleFromEnv() {
  const char* value = std::getenv("PDX_BENCH_SCALE");
  if (value == nullptr) return 1.0;
  const double scale = std::atof(value);
  return scale > 0.0 ? scale : 1.0;
}

std::vector<std::pair<std::string, SearcherConfig>> PrunerRoster(
    SearcherLayout layout, size_t k, size_t nprobe, size_t threads) {
  // Paper-style display names (Figure 8 / Figure 9 legends).
  const std::pair<PrunerKind, const char*> entries[] = {
      {PrunerKind::kAdsampling, "PDX-ADS"},
      {PrunerKind::kBsa, "PDX-BSA"},
      {PrunerKind::kBond, "PDX-BOND"},
      {PrunerKind::kLinear, "PDX-LINEAR"},
  };
  std::vector<std::pair<std::string, SearcherConfig>> roster;
  for (const auto& [pruner, name] : entries) {
    SearcherConfig config;
    config.layout = layout;
    config.pruner = pruner;
    config.k = k;
    config.nprobe = nprobe;
    config.threads = threads;
    roster.emplace_back(name, config);
  }
  return roster;
}

std::vector<NamedSearcher> BuildPrunerRoster(
    const VectorSet& vectors, const IvfIndex* index, SearcherLayout layout,
    size_t k, size_t nprobe, size_t threads,
    const std::function<bool(const std::string&, SearcherConfig&)>&
        customize) {
  std::vector<NamedSearcher> searchers;
  if (layout == SearcherLayout::kIvf && index == nullptr) {
    // Building a private index per entry would break the shared-bucket
    // methodology this helper exists to uphold; refuse loudly.
    std::fprintf(stderr,
                 "BuildPrunerRoster: kIvf requires a shared IvfIndex\n");
    return searchers;
  }
  for (auto& [name, config] : PrunerRoster(layout, k, nprobe, threads)) {
    if (customize && !customize(name, config)) continue;
    Result<std::unique_ptr<Searcher>> made =
        layout == SearcherLayout::kIvf
            ? MakeSearcher(vectors, *index, config)
            : MakeSearcher(vectors, config);
    if (!made.ok()) {
      std::fprintf(stderr, "BuildPrunerRoster: skipping %s: %s\n",
                   name.c_str(), made.status().ToString().c_str());
      continue;
    }
    searchers.push_back({name, std::move(made).value()});
  }
  return searchers;
}

ServiceLoadResult RunServiceLoad(SearchService& service,
                                 const std::vector<std::string>& collections,
                                 const VectorSet& queries,
                                 const ServiceLoadOptions& options) {
  ServiceLoadResult result;
  if (collections.empty() || queries.count() == 0 ||
      options.submitters == 0) {
    return result;
  }
  const size_t window = std::max<size_t>(1, options.window);
  std::atomic<size_t> completed{0};
  std::atomic<size_t> rejected{0};
  std::atomic<size_t> failed{0};

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(options.submitters);
  for (size_t t = 0; t < options.submitters; ++t) {
    clients.emplace_back([&, t] {
      auto tally = [&](QueryResult r) {
        if (r.status.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status.IsResourceExhausted()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      };
      std::deque<std::future<QueryResult>> outstanding;
      for (size_t i = 0; i < options.queries_per_submitter; ++i) {
        const size_t q = (t * options.queries_per_submitter + i) %
                         queries.count();
        const std::string& name =
            collections[(t + i) % collections.size()];
        outstanding.push_back(
            service.Submit(name, queries.Vector(q), options.query).result);
        if (outstanding.size() >= window) {
          tally(outstanding.front().get());
          outstanding.pop_front();
        }
      }
      while (!outstanding.empty()) {
        tally(outstanding.front().get());
        outstanding.pop_front();
      }
    });
  }
  for (std::thread& client : clients) client.join();
  result.wall_ms = wall.ElapsedMillis();
  result.completed = completed.load();
  result.rejected = rejected.load();
  result.failed = failed.load();
  return result;
}

}  // namespace pdx
