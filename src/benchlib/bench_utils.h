#ifndef PDX_BENCHLIB_BENCH_UTILS_H_
#define PDX_BENCHLIB_BENCH_UTILS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.h"  // IWYU pragma: export (re-export ParallelFor)

namespace pdx {

/// Median wall-clock nanoseconds of `fn` over `repeats` runs (after one
/// warm-up run).
double MedianRunNanos(const std::function<void()>& fn, int repeats = 3);

/// Simple fixed-width text table, printed in Markdown-ish style so bench
/// output can be pasted into EXPERIMENTS.md directly.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; it must have header-many cells.
  void AddRow(std::vector<std::string> row);

  /// Formats a float with `precision` digits.
  static std::string Num(double value, int precision = 2);

  /// Renders the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner: "== <title> ==".
void PrintBanner(const std::string& title);

}  // namespace pdx

#endif  // PDX_BENCHLIB_BENCH_UTILS_H_
