#ifndef PDX_BENCHLIB_PROFILE_H_
#define PDX_BENCHLIB_PROFILE_H_

#include <cstddef>
#include <string>

namespace pdx {

/// Data-cache sizes of the host, for classifying benchmark working sets
/// against cache levels (Figure 12's L1/L2/L3/DRAM bands).
struct CacheInfo {
  size_t l1d_bytes = 32 * 1024;
  size_t l2_bytes = 1024 * 1024;
  size_t l3_bytes = 32 * 1024 * 1024;
};

/// Queries sysconf for the host's cache hierarchy; falls back to common
/// sizes when unavailable (e.g., in containers).
CacheInfo DetectCaches();

/// "L1" / "L2" / "L3" / "DRAM" classification of a working-set size.
std::string CacheLevelName(size_t working_set_bytes, const CacheInfo& info);

/// Human-readable byte size ("64KiB", "3.1MiB").
std::string FormatBytes(size_t bytes);

}  // namespace pdx

#endif  // PDX_BENCHLIB_PROFILE_H_
