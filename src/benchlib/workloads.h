#ifndef PDX_BENCHLIB_WORKLOADS_H_
#define PDX_BENCHLIB_WORKLOADS_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/datagen.h"
#include "core/any_searcher.h"
#include "serve/search_service.h"

namespace pdx {

/// The paper's ten-dataset roster (Table 1), as synthetic stand-ins with
/// the same dimensionalities and distribution shapes. Collection sizes are
/// scaled down (the paper uses 0.3-10M vectors; these default to 10-80K so
/// the whole benchmark suite runs in minutes on one machine) — `scale`
/// multiplies the default counts.
///
/// Rationale: every experiment in the paper measures effects of
/// *dimensionality*, *value distribution*, and *clusterability*; collection
/// size only scales constants (documented as a substitution in DESIGN.md).
std::vector<SyntheticSpec> PaperWorkloads(double scale = 1.0);

/// Subset used by the heavier QPS-vs-recall sweeps: one low-D normal, one
/// mid-D skewed, one high-D normal, one very-high-D skewed.
std::vector<SyntheticSpec> CoreWorkloads(double scale = 1.0);

/// Scale factor taken from the PDX_BENCH_SCALE environment variable
/// (default 1.0). Benchmarks multiply their dataset sizes by this.
double BenchScaleFromEnv();

/// A facade searcher with the display name benchmarks print for it.
struct NamedSearcher {
  std::string name;
  std::unique_ptr<Searcher> searcher;
};

/// The paper's pruner roster (Figure 8's competitors) as facade configs
/// over one layout: PDX-ADS, PDX-BSA, PDX-BOND, and the PDX linear scan.
/// `threads` = 1 keeps the paper's single-threaded query methodology.
std::vector<std::pair<std::string, SearcherConfig>> PrunerRoster(
    SearcherLayout layout, size_t k = 10, size_t nprobe = 16,
    size_t threads = 1);

/// Builds one searcher per roster entry through MakeSearcher. On kIvf an
/// index is required and all entries share `*index` (must outlive the
/// searchers — the paper's "all competitors share the same IVF index"
/// methodology; a null index returns an empty roster with a note on
/// stderr); on kFlat pass nullptr.
/// `customize`, when set, runs per entry before construction and
/// may tweak the config (per-dataset tuning) or return false to drop the
/// entry. Configs that fail to build are skipped with a note on stderr so
/// a benchmark table never silently loses a competitor.
std::vector<NamedSearcher> BuildPrunerRoster(
    const VectorSet& vectors, const IvfIndex* index, SearcherLayout layout,
    size_t k = 10, size_t nprobe = 16, size_t threads = 1,
    const std::function<bool(const std::string& name, SearcherConfig&)>&
        customize = nullptr);

/// Shape of one throughput-under-concurrency run against a SearchService.
struct ServiceLoadOptions {
  size_t submitters = 4;             ///< Concurrent client threads.
  size_t queries_per_submitter = 64; ///< Submissions per client.
  /// Outstanding futures each client keeps before waiting on the oldest —
  /// a closed loop that bounds queue depth at submitters * window.
  size_t window = 16;
  QueryOptions query;                ///< Per-query options (k, timeout, ...).
};

/// Outcome of RunServiceLoad, tallied across every submitter.
struct ServiceLoadResult {
  size_t completed = 0;  ///< status OK.
  size_t rejected = 0;   ///< kResourceExhausted backpressure.
  size_t failed = 0;     ///< Everything else (expired, cancelled, ...).
  double wall_ms = 0.0;  ///< First submit to last result, all clients.
  double qps() const {
    return wall_ms > 0.0
               ? 1000.0 * static_cast<double>(completed) / wall_ms
               : 0.0;
  }
};

/// Drives `service` from `options.submitters` client threads, each
/// submitting `queries_per_submitter` queries round-robin across
/// `collections` and over the `queries` set. The serving-layer benchmark
/// workload: all clients multiplex onto the service's one shared pool.
/// Collections must already be hosted; `collections` must be non-empty.
ServiceLoadResult RunServiceLoad(SearchService& service,
                                 const std::vector<std::string>& collections,
                                 const VectorSet& queries,
                                 const ServiceLoadOptions& options = {});

}  // namespace pdx

#endif  // PDX_BENCHLIB_WORKLOADS_H_
