#ifndef PDX_BENCHLIB_WORKLOADS_H_
#define PDX_BENCHLIB_WORKLOADS_H_

#include <cstddef>
#include <vector>

#include "benchlib/datagen.h"

namespace pdx {

/// The paper's ten-dataset roster (Table 1), as synthetic stand-ins with
/// the same dimensionalities and distribution shapes. Collection sizes are
/// scaled down (the paper uses 0.3-10M vectors; these default to 10-80K so
/// the whole benchmark suite runs in minutes on one machine) — `scale`
/// multiplies the default counts.
///
/// Rationale: every experiment in the paper measures effects of
/// *dimensionality*, *value distribution*, and *clusterability*; collection
/// size only scales constants (documented as a substitution in DESIGN.md).
std::vector<SyntheticSpec> PaperWorkloads(double scale = 1.0);

/// Subset used by the heavier QPS-vs-recall sweeps: one low-D normal, one
/// mid-D skewed, one high-D normal, one very-high-D skewed.
std::vector<SyntheticSpec> CoreWorkloads(double scale = 1.0);

/// Scale factor taken from the PDX_BENCH_SCALE environment variable
/// (default 1.0). Benchmarks multiply their dataset sizes by this.
double BenchScaleFromEnv();

}  // namespace pdx

#endif  // PDX_BENCHLIB_WORKLOADS_H_
