#ifndef PDX_BENCHLIB_WORKLOADS_H_
#define PDX_BENCHLIB_WORKLOADS_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/datagen.h"
#include "core/any_searcher.h"

namespace pdx {

/// The paper's ten-dataset roster (Table 1), as synthetic stand-ins with
/// the same dimensionalities and distribution shapes. Collection sizes are
/// scaled down (the paper uses 0.3-10M vectors; these default to 10-80K so
/// the whole benchmark suite runs in minutes on one machine) — `scale`
/// multiplies the default counts.
///
/// Rationale: every experiment in the paper measures effects of
/// *dimensionality*, *value distribution*, and *clusterability*; collection
/// size only scales constants (documented as a substitution in DESIGN.md).
std::vector<SyntheticSpec> PaperWorkloads(double scale = 1.0);

/// Subset used by the heavier QPS-vs-recall sweeps: one low-D normal, one
/// mid-D skewed, one high-D normal, one very-high-D skewed.
std::vector<SyntheticSpec> CoreWorkloads(double scale = 1.0);

/// Scale factor taken from the PDX_BENCH_SCALE environment variable
/// (default 1.0). Benchmarks multiply their dataset sizes by this.
double BenchScaleFromEnv();

/// A facade searcher with the display name benchmarks print for it.
struct NamedSearcher {
  std::string name;
  std::unique_ptr<Searcher> searcher;
};

/// The paper's pruner roster (Figure 8's competitors) as facade configs
/// over one layout: PDX-ADS, PDX-BSA, PDX-BOND, and the PDX linear scan.
/// `threads` = 1 keeps the paper's single-threaded query methodology.
std::vector<std::pair<std::string, SearcherConfig>> PrunerRoster(
    SearcherLayout layout, size_t k = 10, size_t nprobe = 16,
    size_t threads = 1);

/// Builds one searcher per roster entry through MakeSearcher. On kIvf an
/// index is required and all entries share `*index` (must outlive the
/// searchers — the paper's "all competitors share the same IVF index"
/// methodology; a null index returns an empty roster with a note on
/// stderr); on kFlat pass nullptr.
/// `customize`, when set, runs per entry before construction and
/// may tweak the config (per-dataset tuning) or return false to drop the
/// entry. Configs that fail to build are skipped with a note on stderr so
/// a benchmark table never silently loses a competitor.
std::vector<NamedSearcher> BuildPrunerRoster(
    const VectorSet& vectors, const IvfIndex* index, SearcherLayout layout,
    size_t k = 10, size_t nprobe = 16, size_t threads = 1,
    const std::function<bool(const std::string& name, SearcherConfig&)>&
        customize = nullptr);

}  // namespace pdx

#endif  // PDX_BENCHLIB_WORKLOADS_H_
