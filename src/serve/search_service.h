#ifndef PDX_SERVE_SEARCH_SERVICE_H_
#define PDX_SERVE_SEARCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/any_searcher.h"
#include "core/mutable_searcher.h"
#include "core/sharded_searcher.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "serve/query.h"
#include "serve/service_stats.h"
#include "storage/vector_set.h"

namespace pdx {

/// Construction-time knobs for SearchService.
struct ServiceConfig {
  /// Size of the one shared ThreadPool every hosted collection's batches
  /// run on; 0 = one per hardware thread (ResolveThreadCount semantics).
  size_t threads = 0;
  /// Admission bound: queries waiting for dispatch beyond this are turned
  /// away with kResourceExhausted instead of growing the queue (or
  /// blocking the submitter). Must be > 0.
  size_t max_pending = 1024;
  /// Micro-batching cap: a dispatcher coalesces up to this many queued
  /// queries for the same (collection, k, nprobe) into one SearchBatchWith
  /// call. 1 disables batching. Must be > 0.
  size_t max_batch = 8;
  /// Dispatcher threads draining the admission queue concurrently. Each
  /// pops a batch independently and runs it through the knob-explicit
  /// Searcher::SearchBatchWith on its own slot band, so batches for
  /// different collections — and consecutive batches against one hot
  /// collection — execute in parallel over the shared pool. 1 restores
  /// the strictly serial dispatch order. Clamped to [1, kMaxPoolThreads].
  size_t dispatchers = 2;
  /// Sliding-window size of the per-collection latency recorders (also the
  /// capacity of the completion-timestamp ring behind the QPS gauge).
  size_t latency_window = LatencyRecorder::kDefaultWindow;
  /// Horizon of the per-collection QPS gauge: Stats() computes QPS over
  /// the completions inside this window, so an idle gap drops the gauge to
  /// zero instead of diluting a lifetime average. Also the horizon of
  /// DispatcherStats::busy_fraction. Must be > 0.
  std::chrono::milliseconds qps_window{10'000};
  /// Registry the service reports its serving metrics into (counters,
  /// stage histograms, queue-depth gauge — scraped by GET /metrics).
  /// nullptr = the process-global MetricsRegistry::Default(); tests inject
  /// a local registry so their counts never bleed across cases. Must
  /// outlive the service.
  MetricsRegistry* metrics = nullptr;
  /// Worst traces retained per collection (GET .../slowlog). Clamped >= 1.
  size_t slowlog_capacity = 8;
  /// Live-collection knobs applied to every collection the service builds
  /// from vectors: the delta block size appends repack, and the delta /
  /// tombstone count that triggers a background compaction.
  MutationConfig mutation;
  /// Fraction of admitted queries traced even without QueryOptions::trace,
  /// so operators can sample production traffic instead of opting in per
  /// request. Clamped to [0, 1]; 0 (default) keeps tracing strictly
  /// opt-in. Selection is a deterministic error accumulator (every
  /// 1/rate-th admitted query), and a query NOT selected allocates nothing
  /// for observability — the zero-cost-off contract holds per query.
  double trace_sample_rate = 0.0;
};

/// Shape of one hosted collection, as captured at AddCollection time plus
/// the live count: what a wire front end needs to validate and describe
/// requests without touching the searcher itself.
struct CollectionInfo {
  std::string name;
  size_t dim = 0;
  size_t count = 0;
  size_t default_k = 0;
  size_t default_nprobe = 0;
  size_t max_nprobe = 0;
  size_t shards = 1;
  SearcherLayout layout = SearcherLayout::kFlat;
  PrunerKind pruner = PrunerKind::kBond;
  /// Quantization tier the collection serves on (kNone = exact float).
  QuantizationKind quantization = QuantizationKind::kNone;
  /// The u8 tier's exact-rerank over-fetch multiplier (0 = raw quantized
  /// distances); always 0 when quantization == kNone.
  size_t rerank_factor = 0;
  /// Resident bytes of u8 codes (~count x dim on the u8 tier, summed
  /// across shards); 0 on float collections.
  uint64_t quantized_bytes = 0;
  /// How the collection got here: "built" (constructed from vectors),
  /// "mmap" (restored from a collection file served from a live mapping),
  /// or "loaded" (restored via the heap-copy fallback).
  std::string source = "built";
};

/// An async serving shell over the Searcher facade: hosts multiple named
/// collections, multiplexes every client over ONE shared ThreadPool, and
/// answers Submit with a future (or callback) instead of blocking the
/// caller on the search.
///
/// Architecture — ServiceConfig::dispatchers replicated dispatcher
/// threads drain a bounded FIFO admission queue; per pop a dispatcher
/// opportunistically coalesces queued queries for the same collection
/// (and same k/nprobe) into one knob-explicit
/// Searcher::SearchBatchWith(slot, QueryKnobs, ...) call, which fans out
/// over the shared pool (the searchers are built with
/// SearcherConfig::pool injected, so the query path never constructs a
/// pool). Dispatcher d owns slot band
/// [d * pool_threads, (d+1) * pool_threads) of every hosted searcher's
/// per-slot scratch — reserved at adoption time — so two batches against
/// the SAME collection proceed concurrently on disjoint engines, with no
/// set_k/set_nprobe (no shared-config mutation) anywhere on the dispatch
/// path. Dispatchers also timed-wait on the earliest queued deadline and
/// shed expired queries even while paused, so a deadline never strands a
/// future behind other batch keys or a Pause().
///
/// Results are exactly what a direct sequential Searcher::Search over the
/// same collection returns — SearchBatchWith's parity guarantee, end to
/// end, regardless of which dispatcher ran the batch.
///
/// Thread safety: every public member is safe to call from any thread.
/// Destruction shuts the service down: in-flight searches finish, queries
/// still queued complete with kCancelled, and every future ever handed out
/// is resolved.
class SearchService {
 public:
  explicit SearchService(ServiceConfig config = {});
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Hosts `vectors` under `name` as a LIVE collection: the service builds
  /// a MutableSearcher (the shared pool injected into `config`), so the
  /// collection accepts AddVectors/DeleteVectors/Upsert while serving.
  /// `vectors` is copied — it need not outlive the collection. Fails with
  /// InvalidArgument on a duplicate name or whatever MakeSearcher rejects.
  ///
  /// With config.quantization != kNone the collection is built on the
  /// quantized serving tier instead (MakeSearcher routes to the u8
  /// searcher) and is IMMUTABLE: AddVectors/DeleteVectors/Upsert fail
  /// with kUnsupported — the u8 tier has no streaming-ingest path yet.
  Status AddCollection(const std::string& name, const VectorSet& vectors,
                       SearcherConfig config);

  /// Same, over a caller-owned IVF index (`index` must outlive the
  /// collection; layout must be kIvf). Index-backed collections are
  /// IMMUTABLE (the service does not own the index it would have to
  /// rebuild): AddVectors/DeleteVectors fail with kUnsupported.
  Status AddCollection(const std::string& name, const VectorSet& vectors,
                       const IvfIndex& index, SearcherConfig config);

  /// Hosts `vectors` sharded across `sharding.num_shards` searchers behind
  /// one collection name (MakeShardedSearcher): every query fans out to
  /// all shards on the service's shared pool and merges into one exact
  /// global top-k. Submit/admission/micro-batching are unchanged;
  /// ServiceStats reports the per-shard dispatch counts.
  Status AddCollection(const std::string& name, const VectorSet& vectors,
                       SearcherConfig config, ShardingOptions sharding);

  /// Adopts an already-built searcher. On success the pointer is moved
  /// from, the service injects its shared pool (set_pool) and takes over
  /// the threads knob, and the searcher must not be queried by the caller
  /// again. On failure (duplicate name, shut down) the caller keeps the
  /// searcher untouched — an expensively built index is never silently
  /// destroyed. Adopted collections are immutable through the service
  /// (AddVectors/DeleteVectors fail with kUnsupported).
  Status AddCollection(const std::string& name,
                       std::unique_ptr<Searcher>& searcher);

  /// Serializes the hosted collection `name` into the versioned collection
  /// file at `path` (storage/collection_format.h). Runs off the dispatch
  /// path: a mutable collection snapshots under its own reader lock, so
  /// queries keep flowing during the write. On success the path is
  /// remembered as the collection's persist path — after every background
  /// compaction the compactor re-saves there, keeping the on-disk snapshot
  /// current. kNotFound for an unknown name; kUnsupported for adopted
  /// custom searchers with no serializable form.
  Status SaveCollection(const std::string& name, const std::string& path);

  /// Hosts the collection file at `path` under `name` — the instant-
  /// restart path: the file is validated and mapped (`allow_mmap`; pass
  /// false to force the heap-copy fallback), the searcher reconstructs as
  /// zero-copy views over the mapping with no k-means and no packing, and
  /// a mutable snapshot resumes exactly where Save left it (delta,
  /// tombstones, id allocation). Loading runs OFF the dispatch path;
  /// already-hosted collections keep serving while the file validates.
  /// Fails with kInvalidArgument on a duplicate name, or whatever the
  /// format loader rejects (truncation, checksum mismatch, future
  /// version).
  Status LoadCollection(const std::string& name, const std::string& path,
                        bool allow_mmap = true);

  /// Appends `count` row-major `dim`-float rows to the live collection
  /// `name` while it keeps serving — no rebuild: rows land in the
  /// collection's append delta region (one tail-block repack each, cost
  /// independent of collection size). With `ids` == nullptr rows get
  /// consecutive auto ids; with `ids`, an id already present is an UPSERT
  /// (the old vector is tombstoned, the row inherits the id). Returns the
  /// assigned ids in row order. When the delta (or tombstone count)
  /// outgrows ServiceConfig::mutation.compact_threshold, a background
  /// compaction folds it into a fresh base — dispatchers are never
  /// blocked. Fails with kNotFound (unknown name), kUnsupported (immutable
  /// collection), or kInvalidArgument (dim mismatch, oversized ids).
  Result<std::vector<uint64_t>> AddVectors(const std::string& name,
                                           const float* rows, size_t count,
                                           size_t dim,
                                           const uint64_t* ids = nullptr);

  /// Tombstones `count` vectors of live collection `name` by external id;
  /// they disappear from results immediately and are reclaimed at the next
  /// compaction. Ids not present are reported through `missing` (when
  /// non-null) rather than failing the batch. Returns the number deleted.
  Result<size_t> DeleteVectors(const std::string& name, const uint64_t* ids,
                               size_t count,
                               std::vector<uint64_t>* missing = nullptr);

  /// Insert-or-replace sugar over AddVectors: `ids` is mandatory (that is
  /// what makes it an upsert).
  Result<std::vector<uint64_t>> Upsert(const std::string& name,
                                       const float* rows, size_t count,
                                       size_t dim, const uint64_t* ids);

  /// Unhosts `name`. Queries still queued for it complete with kCancelled;
  /// an in-flight batch finishes first (the dispatcher keeps the
  /// collection alive until it is done with it).
  Status RemoveCollection(const std::string& name);

  /// Names of the hosted collections, sorted.
  std::vector<std::string> CollectionNames() const;

  /// Shape of the hosted collection `name` (dimension, size, knob defaults
  /// and ceilings) — what the HTTP front end validates query payloads
  /// against. The dim it reports is a SNAPSHOT: a caller sizing a query
  /// buffer from it must also pass that size as QueryOptions::query_len so
  /// Submit re-checks it atomically with admission (the collection may be
  /// replaced, with a different dim, in between). NotFound when the name
  /// is not hosted.
  Result<CollectionInfo> GetCollectionInfo(const std::string& name) const;

  /// Submits `query` (collection-dim floats, copied — the pointer need not
  /// outlive the call) against `collection`. Set
  /// QueryOptions::query_len when the buffer was sized from a
  /// CollectionInfo snapshot rather than the live searcher: a length that
  /// no longer matches the hosted dim fails with kInvalidArgument instead
  /// of being read out of bounds. Never blocks on the search:
  /// returns a ticket whose future resolves when the query completes, is
  /// rejected (kNotFound / kResourceExhausted — the future is then already
  /// ready), expires, or is cancelled.
  QueryTicket Submit(const std::string& collection, const float* query,
                     QueryOptions options = {});

  /// Callback flavor: instead of a future, `callback` fires exactly once
  /// with the QueryResult (see QueryCallback for the threading contract).
  /// Returns the query id usable with Cancel.
  uint64_t Submit(const std::string& collection, const float* query,
                  QueryOptions options, QueryCallback callback);

  /// Cancels a still-queued query: its future/callback resolves with
  /// kCancelled and it is never dispatched. Returns false when the query
  /// is unknown, already dispatched, or already complete — best effort,
  /// never blocks.
  bool Cancel(uint64_t id);

  /// Pauses dispatch (in-flight batches finish; queued queries hold, and
  /// admission control keeps applying). Deadline shedding keeps running:
  /// a queued query whose deadline passes completes with
  /// kDeadlineExceeded even while paused — Pause() must never strand a
  /// future. For drain-style maintenance and deterministic tests.
  void Pause();
  /// Resumes dispatch after Pause().
  void Resume();

  /// Queries waiting for dispatch right now.
  size_t queue_depth() const;

  /// Point-in-time counters: queue depth, pool size, per-collection
  /// QPS/latency percentiles.
  ServiceStats Stats() const;

  /// The N worst queries (by total_ms) collection `name` has served,
  /// worst first — populated for every served query, traced or not.
  /// NotFound when the name is not hosted.
  Result<std::vector<SlowQueryEntry>> SlowLog(const std::string& name) const;

  /// The registry this service reports into (the injected one, or the
  /// process default) — what a wire front end scrapes for GET /metrics.
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Stops the dispatcher: in-flight work finishes, everything still
  /// queued completes with kCancelled, later Submits are rejected with
  /// kCancelled. Idempotent; the destructor calls it. Must not be called
  /// from a query callback (it joins the thread callbacks run on).
  void Shutdown();

  const ServiceConfig& options() const { return config_; }
  size_t pool_threads() const { return pool_.num_threads(); }

 private:
  struct Collection;
  struct Pending;

  /// Validates + registers a built searcher under `name`; moves from
  /// `searcher` only on success. `live` is the searcher downcast when the
  /// service built it as a MutableSearcher (the mutation surface routes
  /// through it); nullptr marks the collection immutable.
  Status Adopt(const std::string& name, std::unique_ptr<Searcher>& searcher,
               MutableSearcher* live = nullptr,
               const std::string& source = "built",
               uint64_t mapped_bytes = 0);
  /// Queues `host` for background compaction when its delta/tombstones
  /// crossed the threshold and it is not already queued. Caller holds
  /// mutex_.
  void MaybeScheduleCompactionLocked(const std::shared_ptr<Collection>& host);
  /// Re-stamps the live/delta/tombstone gauges from the collection's
  /// current MutationStats. Lock-free instruments; called OUTSIDE mutex_.
  void RefreshMutationObs(const std::shared_ptr<Collection>& host);
  /// The dedicated compaction thread: drains compact_queue_, runs
  /// MutableSearcher::Compact() (expensive build off every lock, brief
  /// swap), then refreshes the collection's ceilings and re-checks the
  /// threshold — appends that landed during a rebuild can queue the next
  /// one immediately.
  void CompactorMain();
  /// Admission: queues `pending` (moving it out) or returns why not (queue
  /// full, unknown collection, shut down), leaving `pending` to the caller
  /// to fail. On success fills the query payload and per-collection
  /// defaults in first.
  Status Enqueue(const std::string& collection, const float* query,
                 const QueryOptions& options,
                 std::unique_ptr<Pending>& pending);
  uint64_t SubmitInternal(const std::string& collection, const float* query,
                          const QueryOptions& options, QueryCallback callback,
                          std::future<QueryResult>* future_out);
  /// Resolves one query (promise or callback) and records its stats. The
  /// queue_ms attribution is derived from the Pending itself: dispatched
  /// timestamp set -> waited submitted->dispatched; queued but never
  /// dispatched -> its whole life was queue wait; never queued -> 0.
  void Complete(std::unique_ptr<Pending> pending, Status status,
                std::vector<Neighbor> neighbors);
  void DispatcherMain(size_t dispatcher);
  /// Single queue scan under mutex_: moves every expired query into
  /// `*expired` and returns the earliest deadline still pending (or
  /// "none"). Runs regardless of paused_ — load shedding must not wait
  /// for Resume().
  std::chrono::steady_clock::time_point SweepDeadlinesLocked(
      std::vector<std::unique_ptr<Pending>>* expired);
  /// Pops the front query plus every coalescable follower (same
  /// collection/k/nprobe, up to max_batch). Caller holds mutex_.
  std::vector<std::unique_ptr<Pending>> CollectBatchLocked();
  /// Bookkeeping for every removal from queue_: keeps deadline_queued_
  /// exact so the deadline sweep can early-out. Caller holds mutex_.
  void NoteDequeuedLocked(const Pending& pending);
  /// Re-stamps the queue-depth gauge from queue_.size(); called at the end
  /// of every critical section that mutates queue_. Caller holds mutex_.
  void SetQueueDepthLocked();
  /// Resolves collection `name`'s metric instruments (get-or-create, so a
  /// re-added name keeps its cumulative series). Called from Adopt.
  void ResolveCollectionMetrics(Collection& collection);
  void DispatchBatch(size_t dispatcher,
                     std::vector<std::unique_ptr<Pending>> batch);
  /// Fails every not-yet-completed query in `live` with kInternal — the
  /// dispatcher's exception barrier.
  void FailBatch(std::vector<std::unique_ptr<Pending>>& live,
                 const std::string& reason);

  /// One replicated dispatcher: its thread, its private batch staging
  /// buffer, and its share of the dispatch accounting. Dispatcher d runs
  /// every batch through slot band
  /// [d * pool_threads, (d+1) * pool_threads) of the hosted searchers'
  /// per-slot scratch (reserved at Adopt time), so two dispatchers never
  /// share engine state even on the same collection.
  struct Dispatcher {
    std::thread thread;
    std::vector<float> scratch;  ///< This dispatcher's query staging buffer.
    /// Per-query search-work counters for the batch in flight, sized
    /// max_batch at construction so the dispatch path never allocates for
    /// observability — the "tracing off costs nothing" contract.
    std::vector<SearchCounters> counters_scratch;
    uint64_t dispatches = 0;     ///< Batches dispatched; guarded by mutex_.
    /// Ring of completed batches' (end time, busy duration) — the windowed
    /// busy_fraction gauge. Guarded by mutex_.
    struct BusySample {
      std::chrono::steady_clock::time_point end{};
      std::chrono::steady_clock::duration busy{};
    };
    std::vector<BusySample> busy_ring;
    size_t busy_ring_capacity = 1;
    size_t busy_next = 0;
    MetricCounter* batches_metric = nullptr;  ///< Resolved at construction.
  };

  const ServiceConfig config_;
  MetricsRegistry* const metrics_;  ///< Never null after construction.
  ThreadPool pool_;  ///< The one pool every collection's batches share.
  const std::chrono::steady_clock::time_point started_;

  // Process-level gauges, resolved once. queue_depth_gauge_ is re-stamped
  // at the end of every critical section that changes queue_ (see
  // SetQueueDepthLocked), the others at construction / collection churn.
  MetricGauge* queue_depth_gauge_ = nullptr;
  MetricGauge* collections_gauge_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_cv_;
  std::map<std::string, std::shared_ptr<Collection>> collections_;
  std::deque<std::unique_ptr<Pending>> queue_;
  /// Queued queries carrying a deadline — the per-iteration deadline sweep
  /// skips its O(queue) scan while this is zero (the common case). Every
  /// removal from queue_ goes through NoteDequeuedLocked to keep it exact.
  size_t deadline_queued_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  /// Error accumulator behind ServiceConfig::trace_sample_rate. Guarded by
  /// mutex_ (bumped in Enqueue, which already holds it).
  double trace_accum_ = 0.0;

  /// Collections awaiting background compaction (each at most once —
  /// Collection::compacting guards re-queueing). Guarded by mutex_; the
  /// compactor thread waits on compact_cv_.
  std::deque<std::shared_ptr<Collection>> compact_queue_;
  std::condition_variable compact_cv_;

  std::atomic<uint64_t> next_id_{1};
  std::mutex shutdown_mutex_;  ///< Serializes concurrent Shutdown callers.
  std::vector<Dispatcher> dispatchers_;  ///< Sized once; never reallocated.
  std::thread compactor_;  ///< Background delta-into-base compactions.
};

}  // namespace pdx

#endif  // PDX_SERVE_SEARCH_SERVICE_H_
