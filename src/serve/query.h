#ifndef PDX_SERVE_QUERY_H_
#define PDX_SERVE_QUERY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/query_trace.h"

namespace pdx {

/// Per-query knobs for SearchService::Submit. Zero means "use the hosted
/// collection's configured default"; overrides are clamped with the same
/// discipline as Searcher::set_k / set_nprobe.
struct QueryOptions {
  size_t k = 0;       ///< Neighbors to return; 0 = collection default.
  size_t nprobe = 0;  ///< IVF buckets to probe; 0 = default, ignored on flat.
  /// Deadline relative to admission; <= 0 = none. A query whose deadline
  /// passes while it waits in the queue completes with kDeadlineExceeded
  /// and is never dispatched (load shedding: late answers are wasted work).
  std::chrono::milliseconds timeout{0};
  /// Number of floats in the caller's query buffer; 0 = "trusted to hold
  /// collection-dim floats" (an in-process caller that sized it off the
  /// same searcher). Callers that validated against a dim SNAPSHOT — the
  /// wire front end — must set it: the collection can be replaced with a
  /// different dimension between that validation and admission, and the
  /// service re-checks the length under its own mutex (where dim is
  /// stable), failing a mismatch with kInvalidArgument instead of reading
  /// past the buffer.
  size_t query_len = 0;
  /// Attach a per-query stage trace: the QueryResult carries a QueryTrace
  /// (stage breakdown + search-work counters). Off by default — and
  /// genuinely zero-cost off: the serving layer allocates nothing for
  /// tracing unless this is set.
  bool trace = false;
  /// Correlation id stamped into the trace (the wire layer passes the
  /// request's X-Request-Id here when trace is on). Ignored untraced.
  std::string request_id;
};

/// What a submitted query resolves to — through the future or the
/// callback. `status` is OK exactly when `neighbors` is meaningful:
///   kNotFound          — no collection under that name
///   kResourceExhausted — admission queue full (backpressure; retry later)
///   kDeadlineExceeded  — QueryOptions::timeout passed before dispatch
///   kCancelled         — Cancel()/RemoveCollection/Shutdown got there first
struct QueryResult {
  Status status;
  std::vector<Neighbor> neighbors;
  uint64_t id = 0;          ///< The ticket id this result answers.
  std::string collection;   ///< Collection the query was addressed to.
  /// Time spent in the admission queue, ms:
  ///   - dispatched (status OK, or kInternal from a failed batch):
  ///     submission -> dispatch — time after dispatch is search, not queue;
  ///   - shed or cancelled while queued (kDeadlineExceeded, kCancelled):
  ///     submission -> resolution — the query's whole life WAS queue wait;
  ///   - never queued (kNotFound, kInvalidArgument, and admission-rejected
  ///     kResourceExhausted): 0 — a rejection that waited nowhere must not
  ///     masquerade as queueing delay.
  double queue_ms = 0.0;
  double total_ms = 0.0;    ///< Submission -> completion.
  /// Stage breakdown + search-work counters; non-null exactly when the
  /// query was submitted with QueryOptions::trace. Shared (not owned) so
  /// QueryResult stays cheaply copyable.
  std::shared_ptr<const QueryTrace> trace;
};

/// Handle for one submitted query: a future for the result plus the id
/// Cancel() takes. Rejected submissions (unknown collection, full queue,
/// shut-down service) still return a ticket — with the future already
/// resolved to the failure, so callers have exactly one error path.
struct QueryTicket {
  uint64_t id = 0;
  std::future<QueryResult> result;
};

/// Completion callback for the callback overload of Submit. Invoked exactly
/// once, on the service's dispatcher thread (or inline on the submitting
/// thread when admission itself fails) — return quickly, do not throw, and
/// do not call SearchService::Shutdown or the destructor from inside it.
using QueryCallback = std::function<void(QueryResult)>;

}  // namespace pdx

#endif  // PDX_SERVE_QUERY_H_
