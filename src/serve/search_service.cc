#include "serve/search_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "kernels/kernel_dispatch.h"

namespace pdx {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

ServiceConfig Sanitize(ServiceConfig config) {
  config.max_pending = std::max<size_t>(1, config.max_pending);
  config.max_batch = std::max<size_t>(1, config.max_batch);
  config.dispatchers =
      std::min(std::max<size_t>(1, config.dispatchers), kMaxPoolThreads);
  config.latency_window = std::max<size_t>(1, config.latency_window);
  if (config.qps_window.count() <= 0) {
    config.qps_window = ServiceConfig{}.qps_window;
  }
  return config;
}

}  // namespace

/// One hosted collection. The searcher is only ever touched by dispatcher
/// threads through the knob-explicit per-slot-band SearchBatchWith entry
/// point (each dispatcher owns a disjoint band, so concurrent batches are
/// race-free); the counters are guarded by the service mutex.
struct SearchService::Collection {
  std::string name;
  std::unique_ptr<Searcher> searcher;
  // Defaults and ceilings captured at AddCollection time — the live
  // searcher config mutates as per-query overrides are applied, so it is
  // not the source of truth. The ceilings clamp untrusted per-query
  // overrides at admission: more neighbors than vectors or more probes
  // than buckets is never meaningful, and an absurd k must not reach the
  // top-k heap's reserve().
  size_t default_k = 10;
  size_t default_nprobe = 1;
  size_t max_k = 1;
  size_t max_nprobe = 1;
  size_t dim = 0;    ///< Query vector length; the wire layer validates this.
  size_t count = 0;  ///< Vectors hosted (collections are static once built).
  PrunerKind pruner = PrunerKind::kBond;
  /// Captured at AddCollection time: the batch key ignores nprobe on kFlat
  /// (the search ignores it there, so keying on it would only fragment
  /// coalescable batches).
  SearcherLayout layout = SearcherLayout::kFlat;

  size_t admitted = 0;
  size_t completed = 0;
  size_t rejected = 0;
  size_t expired = 0;
  size_t cancelled = 0;
  size_t dispatches = 0;
  LatencyRecorder queue_wait;
  LatencyRecorder latency;
  /// Ring of the most recent completion timestamps — the windowed QPS
  /// gauge. A lifetime first-done/last-done span would decay across idle
  /// gaps and never recover.
  std::vector<Clock::time_point> done_ring;
  size_t done_ring_capacity = 1;
  size_t done_next = 0;

  void RecordDone(Clock::time_point now) {
    if (done_ring.size() < done_ring_capacity) {
      done_ring.push_back(now);
    } else {
      done_ring[done_next] = now;
    }
    done_next = (done_next + 1) % done_ring_capacity;
  }
};

/// One admitted (or about-to-be-rejected) query. Owns a copy of the query
/// vector so the caller's buffer may die the moment Submit returns.
struct SearchService::Pending {
  uint64_t id = 0;
  std::shared_ptr<Collection> collection;  ///< Null when the name was unknown.
  std::string collection_name;
  std::vector<float> query;
  size_t k = 0;
  size_t nprobe = 0;
  Clock::time_point submitted{};
  Clock::time_point deadline = kNoDeadline;
  Clock::time_point dispatched{};
  /// True once the query entered queue_. Distinguishes "waited and was
  /// shed" (queue_ms = its whole life) from "turned away at admission"
  /// (queue_ms = 0 — it never waited anywhere).
  bool queued = false;
  std::promise<QueryResult> promise;
  QueryCallback callback;
};

SearchService::SearchService(ServiceConfig config)
    : config_(Sanitize(config)),
      pool_(config_.threads),
      started_(Clock::now()),
      dispatchers_(config_.dispatchers) {
  for (size_t d = 0; d < dispatchers_.size(); ++d) {
    dispatchers_[d].thread = std::thread([this, d] { DispatcherMain(d); });
  }
}

SearchService::~SearchService() { Shutdown(); }

void SearchService::Shutdown() {
  // Serialized so two concurrent callers never race on join().
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  for (Dispatcher& dispatcher : dispatchers_) {
    if (dispatcher.thread.joinable()) dispatcher.thread.join();
  }
}

Status SearchService::Adopt(const std::string& name,
                            std::unique_ptr<Searcher>& searcher) {
  if (searcher == nullptr) {
    return Status::InvalidArgument("AddCollection: null searcher");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // All failure checks precede the move: on error the caller keeps the
  // (possibly expensive) searcher untouched and can retry.
  if (stopping_) return Status::Cancelled("service shut down");
  if (collections_.count(name) != 0) {
    return Status::InvalidArgument("AddCollection: name already hosted: " +
                                   name);
  }
  // The whole point of the service: every collection's batches run on the
  // one shared pool, never on a private per-searcher pool.
  searcher->set_pool(&pool_);
  searcher->set_threads(0);
  // Reserve every dispatcher's slot band up front: per-slot scratch growth
  // reallocates (not thread-safe), so the dispatch path must never grow
  // it. Dispatcher d then runs its batches on the disjoint band
  // [d * pool_threads, (d+1) * pool_threads). A no-op for custom adopted
  // searchers without per-slot scratch — those serve through the base
  // class's serialized SearchBatchWith fallback.
  searcher->ReserveScratch(config_.dispatchers * pool_.num_threads());

  auto collection = std::make_shared<Collection>();
  collection->name = name;
  collection->default_k = std::max<size_t>(1, searcher->options().k);
  collection->default_nprobe = std::max<size_t>(1, searcher->options().nprobe);
  // count()/max_nprobe() see through sharding: the logical collection
  // size, and the largest shard's bucket count (nprobe applies per shard).
  collection->max_k = std::max<size_t>(1, searcher->count());
  collection->max_nprobe = std::max<size_t>(1, searcher->max_nprobe());
  collection->layout = searcher->options().layout;
  collection->dim = searcher->dim();
  collection->count = searcher->count();
  collection->pruner = searcher->options().pruner;
  collection->queue_wait = LatencyRecorder(config_.latency_window);
  collection->latency = LatencyRecorder(config_.latency_window);
  collection->done_ring_capacity = config_.latency_window;
  collection->done_ring.reserve(
      std::min<size_t>(config_.latency_window, 4096));
  collection->searcher = std::move(searcher);
  collections_.emplace(name, std::move(collection));
  return Status::OK();
}

Status SearchService::AddCollection(const std::string& name,
                                    const VectorSet& vectors,
                                    SearcherConfig config) {
  config.pool = &pool_;
  config.threads = 0;
  auto made = MakeSearcher(vectors, std::move(config));
  if (!made.ok()) return made.status();
  std::unique_ptr<Searcher> searcher = std::move(made).value();
  return Adopt(name, searcher);
}

Status SearchService::AddCollection(const std::string& name,
                                    const VectorSet& vectors,
                                    const IvfIndex& index,
                                    SearcherConfig config) {
  config.pool = &pool_;
  config.threads = 0;
  auto made = MakeSearcher(vectors, index, std::move(config));
  if (!made.ok()) return made.status();
  std::unique_ptr<Searcher> searcher = std::move(made).value();
  return Adopt(name, searcher);
}

Status SearchService::AddCollection(const std::string& name,
                                    const VectorSet& vectors,
                                    SearcherConfig config,
                                    ShardingOptions sharding) {
  config.pool = &pool_;
  config.threads = 0;
  auto made = MakeShardedSearcher(vectors, std::move(config), sharding);
  if (!made.ok()) return made.status();
  std::unique_ptr<Searcher> searcher = std::move(made).value();
  return Adopt(name, searcher);
}

Status SearchService::AddCollection(const std::string& name,
                                    std::unique_ptr<Searcher>& searcher) {
  return Adopt(name, searcher);
}

Status SearchService::RemoveCollection(const std::string& name) {
  std::vector<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no collection named " + name);
    }
    const std::shared_ptr<Collection> removed = it->second;
    collections_.erase(it);
    for (auto q = queue_.begin(); q != queue_.end();) {
      if ((*q)->collection == removed) {
        NoteDequeuedLocked(**q);
        orphans.push_back(std::move(*q));
        q = queue_.erase(q);
      } else {
        ++q;
      }
    }
  }
  // An in-flight batch keeps the collection alive through its own
  // shared_ptr; only the queued queries are failed here.
  for (auto& pending : orphans) {
    Complete(std::move(pending), Status::Cancelled("collection removed: " + name), {});
  }
  return Status::OK();
}

std::vector<std::string> SearchService::CollectionNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(collections_.size());
  for (const auto& [name, collection] : collections_) names.push_back(name);
  return names;
}

Result<CollectionInfo> SearchService::GetCollectionInfo(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named " + name);
  }
  const Collection& host = *it->second;
  CollectionInfo info;
  info.name = name;
  info.dim = host.dim;
  info.count = host.count;
  info.default_k = host.default_k;
  info.default_nprobe = host.default_nprobe;
  info.max_nprobe = host.max_nprobe;
  // num_shards() reads a constant, safe against concurrent dispatch.
  info.shards = host.searcher->num_shards();
  info.layout = host.layout;
  info.pruner = host.pruner;
  return info;
}

QueryTicket SearchService::Submit(const std::string& collection,
                                  const float* query, QueryOptions options) {
  QueryTicket ticket;
  ticket.id =
      SubmitInternal(collection, query, options, nullptr, &ticket.result);
  return ticket;
}

uint64_t SearchService::Submit(const std::string& collection,
                               const float* query, QueryOptions options,
                               QueryCallback callback) {
  return SubmitInternal(collection, query, options, std::move(callback),
                        nullptr);
}

uint64_t SearchService::SubmitInternal(const std::string& collection,
                                       const float* query,
                                       const QueryOptions& options,
                                       QueryCallback callback,
                                       std::future<QueryResult>* future_out) {
  auto pending = std::make_unique<Pending>();
  pending->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending->collection_name = collection;
  pending->callback = std::move(callback);
  pending->submitted = Clock::now();
  if (future_out != nullptr) *future_out = pending->promise.get_future();
  const uint64_t id = pending->id;

  Status admitted = Enqueue(collection, query, options, pending);
  if (!admitted.ok()) {
    // Rejection resolves through the same future/callback as success, so
    // backpressure (kResourceExhausted) is explicit, immediate, and never
    // silently dropped.
    Complete(std::move(pending), std::move(admitted), {});
  }
  return id;
}

Status SearchService::Enqueue(const std::string& collection,
                              const float* query, const QueryOptions& options,
                              std::unique_ptr<Pending>& pending) {
  if (query == nullptr) {
    return Status::InvalidArgument("Submit: null query");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return Status::Cancelled("service shut down");
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named " + collection);
  }
  // Attributed before the admission check so a rejection is counted
  // against the collection it targeted.
  pending->collection = it->second;
  // The length check lives HERE, under mutex_, because dim is only stable
  // under mutex_: a wire handler validates the payload against a
  // CollectionInfo snapshot, and a concurrent PUT can swap the name to a
  // different-dim collection between that snapshot and this Submit. The
  // copy below reads dim() floats, so a stated length that no longer
  // matches must be a kInvalidArgument, never an out-of-bounds read.
  Collection& host = *it->second;
  const size_t d = host.searcher->dim();
  if (options.query_len != 0 && options.query_len != d) {
    return Status::InvalidArgument(
        "query has " + std::to_string(options.query_len) +
        " dimensions, expected " + std::to_string(d));
  }
  if (queue_.size() >= config_.max_pending) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(config_.max_pending) +
        " pending); retry later");
  }
  pending->query.assign(query, query + d);
  pending->k =
      std::min(options.k > 0 ? options.k : host.default_k, host.max_k);
  // The bucket-count clamp only makes sense where nprobe is applied; on
  // kFlat the knob never reaches the searcher.
  pending->nprobe = options.nprobe > 0 ? options.nprobe : host.default_nprobe;
  if (host.layout == SearcherLayout::kIvf) {
    pending->nprobe = std::min(pending->nprobe, host.max_nprobe);
  }
  if (options.timeout.count() > 0) {
    pending->deadline = pending->submitted + options.timeout;
    ++deadline_queued_;
  }
  ++host.admitted;
  pending->queued = true;
  queue_.push_back(std::move(pending));
  dispatch_cv_.notify_one();
  return Status::OK();
}

bool SearchService::Cancel(uint64_t id) {
  std::unique_ptr<Pending> found;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->id == id) {
        NoteDequeuedLocked(**it);
        found = std::move(*it);
        queue_.erase(it);
        break;
      }
    }
  }
  if (found == nullptr) return false;  // Unknown, dispatched, or done.
  Complete(std::move(found), Status::Cancelled("cancelled by caller"), {});
  return true;
}

void SearchService::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void SearchService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

size_t SearchService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ServiceStats SearchService::Stats() const {
  ServiceStats stats;
  stats.pool_threads = pool_.num_threads();
  stats.isa = IsaName(DispatchedIsa());
  const Clock::time_point now = Clock::now();
  const Clock::time_point cutoff = now - config_.qps_window;
  std::lock_guard<std::mutex> lock(mutex_);
  stats.queue_depth = queue_.size();
  // Per-dispatcher accounting: how evenly the replicated dispatchers split
  // the load, and how saturated each is. Busy covers completed
  // DispatchBatch calls only (an in-flight batch lands on the next
  // snapshot), so the fraction trails reality by at most one batch.
  const double uptime_ms = MillisBetween(started_, now);
  stats.dispatchers.reserve(dispatchers_.size());
  for (const Dispatcher& dispatcher : dispatchers_) {
    DispatcherStats ds;
    ds.dispatches = dispatcher.dispatches;
    const double busy_ms =
        std::chrono::duration<double, std::milli>(dispatcher.busy).count();
    ds.busy_fraction =
        uptime_ms > 0.0 ? std::min(1.0, busy_ms / uptime_ms) : 0.0;
    stats.dispatchers.push_back(ds);
  }
  for (const auto& [name, collection] : collections_) {
    CollectionStats cs;
    cs.admitted = collection->admitted;
    cs.completed = collection->completed;
    cs.rejected = collection->rejected;
    cs.expired = collection->expired;
    cs.cancelled = collection->cancelled;
    cs.dispatches = collection->dispatches;
    // num_shards() reads a constant and ShardDispatchCounts() reads
    // atomics, so these are safe against the dispatcher's concurrent use
    // of the searcher (which mutex_ does not serialize).
    cs.shards = collection->searcher->num_shards();
    cs.shard_dispatches = collection->searcher->ShardDispatchCounts();
    cs.queue_wait = collection->queue_wait.Summary();
    cs.latency = collection->latency.Summary();
    // QPS over the completions inside the recent window only: a lifetime
    // first-to-last span would report near-zero forever after one long
    // idle gap. n samples bound n-1 intervals; a single in-window sample
    // is scored against the whole window.
    size_t in_window = 0;
    Clock::time_point oldest = Clock::time_point::max();
    Clock::time_point newest = Clock::time_point::min();
    for (const Clock::time_point done : collection->done_ring) {
      if (done < cutoff) continue;
      ++in_window;
      oldest = std::min(oldest, done);
      newest = std::max(newest, done);
    }
    // oldest/newest are sentinels until the first in-window sample; only
    // subtract them once at least two real timestamps are in hand.
    const double span_s =
        in_window >= 2 ? MillisBetween(oldest, newest) / 1e3 : 0.0;
    if (in_window >= 2 && span_s > 0.0) {
      cs.qps = static_cast<double>(in_window - 1) / span_s;
    } else if (in_window >= 1) {
      const double window_s =
          std::chrono::duration<double>(config_.qps_window).count();
      cs.qps = static_cast<double>(in_window) / window_s;
    }
    stats.collections.emplace(name, cs);
  }
  return stats;
}

void SearchService::DispatcherMain(size_t dispatcher) {
  Dispatcher& self = dispatchers_[dispatcher];
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Deadline shedding first, independent of paused_: a query whose
    // deadline passed while it waited — behind other batch keys, or
    // behind a Pause() — must resolve now, not when a dispatch happens to
    // pop it (or never, while paused).
    std::vector<std::unique_ptr<Pending>> expired;
    const Clock::time_point earliest = SweepDeadlinesLocked(&expired);
    if (!expired.empty()) {
      lock.unlock();
      for (auto& pending : expired) {
        Complete(std::move(pending),
                 Status::DeadlineExceeded("deadline passed in queue"), {});
      }
      lock.lock();
      continue;  // Re-evaluate: the queue changed.
    }
    if (stopping_) break;
    if (!paused_ && !queue_.empty()) {
      std::vector<std::unique_ptr<Pending>> batch = CollectBatchLocked();
      lock.unlock();
      const Clock::time_point begin = Clock::now();
      DispatchBatch(dispatcher, std::move(batch));
      const Clock::duration busy = Clock::now() - begin;
      lock.lock();
      self.busy += busy;
      continue;
    }
    // Nothing dispatchable: sleep until new work arrives — or, when a
    // queued query carries a deadline, only until that deadline, so the
    // shed above runs on time even if no Submit/Resume ever wakes us.
    if (earliest == kNoDeadline) {
      dispatch_cv_.wait(lock);
    } else {
      dispatch_cv_.wait_until(lock, earliest);
    }
  }
  // Shutdown drain: nothing queued may be left unresolved. Every
  // dispatcher passes through here; whichever arrives first takes the
  // remainder.
  std::vector<std::unique_ptr<Pending>> drained;
  drained.reserve(queue_.size());
  for (auto& pending : queue_) drained.push_back(std::move(pending));
  queue_.clear();
  deadline_queued_ = 0;
  lock.unlock();
  for (auto& pending : drained) {
    Complete(std::move(pending), Status::Cancelled("service shut down"), {});
  }
}

Clock::time_point SearchService::SweepDeadlinesLocked(
    std::vector<std::unique_ptr<Pending>>* expired) {
  // Common case first: no queued query carries a deadline, so there is
  // nothing to shed and nothing to timed-wait on — skip the queue scan
  // entirely (it runs on every dispatcher loop iteration).
  if (deadline_queued_ == 0) return kNoDeadline;
  const Clock::time_point now = Clock::now();
  Clock::time_point earliest = kNoDeadline;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const Clock::time_point deadline = (*it)->deadline;
    if (deadline == kNoDeadline) {
      ++it;
    } else if (now >= deadline) {
      NoteDequeuedLocked(**it);
      expired->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      earliest = std::min(earliest, deadline);
      ++it;
    }
  }
  return earliest;
}

void SearchService::NoteDequeuedLocked(const Pending& pending) {
  if (pending.deadline != kNoDeadline) --deadline_queued_;
}

std::vector<std::unique_ptr<SearchService::Pending>>
SearchService::CollectBatchLocked() {
  std::vector<std::unique_ptr<Pending>> batch;
  NoteDequeuedLocked(*queue_.front());
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Opportunistic micro-batching: pull every queued query that can share
  // one SearchBatch call with the head (same collection and same effective
  // k/nprobe — the knobs are per-call on the searcher). The head of the
  // queue always dispatches first, so no query starves, but coalesced
  // queries from deeper in the queue do jump ahead of work under other
  // batch keys — other collections, or the same collection with different
  // k/nprobe.
  const Pending& head = *batch.front();
  // nprobe only keys IVF collections: a flat search ignores it, so two
  // flat queries with different nprobe overrides still share one batch.
  const bool key_nprobe = head.collection != nullptr &&
                          head.collection->layout == SearcherLayout::kIvf;
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < config_.max_batch;) {
    const Pending& candidate = **it;
    if (candidate.collection == head.collection && candidate.k == head.k &&
        (!key_nprobe || candidate.nprobe == head.nprobe)) {
      NoteDequeuedLocked(candidate);
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void SearchService::DispatchBatch(
    size_t dispatcher, std::vector<std::unique_ptr<Pending>> batch) {
  // Deadline shedding: a query whose deadline already passed gets failed
  // here, before any distance computation is spent on it.
  const Clock::time_point now = Clock::now();
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& pending : batch) {
    if (pending->deadline != kNoDeadline && now >= pending->deadline) {
      Complete(std::move(pending),
               Status::DeadlineExceeded("deadline passed before dispatch"), {});
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  Dispatcher& self = dispatchers_[dispatcher];
  const std::shared_ptr<Collection> host = live.front()->collection;
  // Exception barrier: anything escaping here would fly out of the
  // dispatcher's thread entry and terminate the process, leaving every
  // outstanding future unresolved. A failed batch instead fails its own
  // queries with kInternal and the dispatcher lives on. (It also catches
  // the base SearchWith/SearchBatchWith logic_error from a custom
  // searcher with a broken per-slot override — loud, not a race.)
  try {
    Searcher& searcher = *host->searcher;
    // Knob-explicit dispatch: k/nprobe ride on the call, NOT on the shared
    // searcher config — set_k/set_nprobe here would race the moment two
    // dispatchers touch the same collection. Dispatcher d always uses its
    // own slot band, so concurrent batches (even for the same batch key)
    // run on disjoint engines.
    const QueryKnobs knobs{live.front()->k, live.front()->nprobe};
    const size_t slot = dispatcher * pool_.num_threads();

    const size_t d = searcher.dim();
    self.scratch.resize(live.size() * d);
    const Clock::time_point dispatch_start = Clock::now();
    for (size_t i = 0; i < live.size(); ++i) {
      std::copy(live[i]->query.begin(), live[i]->query.end(),
                self.scratch.begin() + i * d);
      live[i]->dispatched = dispatch_start;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++host->dispatches;
      ++self.dispatches;
    }
    std::vector<std::vector<Neighbor>> results =
        searcher.SearchBatchWith(slot, knobs, self.scratch.data(),
                                 live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      Complete(std::move(live[i]), Status::OK(), std::move(results[i]));
    }
  } catch (const std::exception& e) {
    FailBatch(live, std::string("search failed: ") + e.what());
  } catch (...) {
    FailBatch(live, "search failed: unknown exception");
  }
}

void SearchService::FailBatch(std::vector<std::unique_ptr<Pending>>& live,
                              const std::string& reason) {
  for (auto& pending : live) {
    if (pending == nullptr) continue;  // Already completed before the throw.
    Complete(std::move(pending), Status::Internal(reason), {});
  }
}

void SearchService::Complete(std::unique_ptr<Pending> pending, Status status,
                             std::vector<Neighbor> neighbors) {
  const Clock::time_point now = Clock::now();
  QueryResult result;
  result.status = std::move(status);
  result.neighbors = std::move(neighbors);
  result.id = pending->id;
  result.collection = pending->collection_name;
  result.total_ms = MillisBetween(pending->submitted, now);
  // queue_ms semantics (documented on QueryResult): a query that reached
  // dispatch — even one whose batch then failed with kInternal — reports
  // submitted -> dispatched; anything after dispatch was search time, not
  // queueing. A query shed/cancelled while QUEUED spent its whole life in
  // the queue, so submitted -> now IS its queue wait — reporting 0 would
  // survivorship-bias the queue-wait percentiles exactly when the queue
  // is in trouble. A submission that never entered the queue (kNotFound,
  // kInvalidArgument, admission-rejected kResourceExhausted) reports 0:
  // it waited nowhere, and counting its bookkeeping time as "queue" would
  // smear the gauge the other way.
  if (pending->dispatched != Clock::time_point{}) {
    result.queue_ms = MillisBetween(pending->submitted, pending->dispatched);
  } else if (pending->queued) {
    result.queue_ms = result.total_ms;
  } else {
    result.queue_ms = 0.0;
  }

  if (pending->collection != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    Collection& host = *pending->collection;
    switch (result.status.code()) {
      case Status::Code::kOk:
        ++host.completed;
        host.latency.Record(result.total_ms);
        host.queue_wait.Record(result.queue_ms);
        host.RecordDone(now);
        break;
      case Status::Code::kResourceExhausted:
        // Turned away at admission — it never waited in the queue, so it
        // contributes no queue_wait sample.
        ++host.rejected;
        break;
      case Status::Code::kDeadlineExceeded:
        ++host.expired;
        host.queue_wait.Record(result.queue_ms);
        break;
      case Status::Code::kCancelled:
        ++host.cancelled;
        host.queue_wait.Record(result.queue_ms);
        break;
      default:
        break;  // InvalidArgument etc.: attributed to no bucket.
    }
  }

  // Delivery happens outside the lock: a callback may re-enter the service
  // (Submit a follow-up query, read Stats) without deadlocking. A throwing
  // callback is contained here — on the dispatcher thread it would
  // otherwise kill the process (QueryCallback's contract says don't throw;
  // this is the backstop, not the interface).
  if (pending->callback) {
    try {
      pending->callback(std::move(result));
    } catch (...) {
    }
  } else {
    pending->promise.set_value(std::move(result));
  }
}

}  // namespace pdx
