#include "serve/search_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/persist.h"
#include "kernels/kernel_dispatch.h"

namespace pdx {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

ServiceConfig Sanitize(ServiceConfig config) {
  config.max_pending = std::max<size_t>(1, config.max_pending);
  config.max_batch = std::max<size_t>(1, config.max_batch);
  config.dispatchers =
      std::min(std::max<size_t>(1, config.dispatchers), kMaxPoolThreads);
  config.latency_window = std::max<size_t>(1, config.latency_window);
  if (config.qps_window.count() <= 0) {
    config.qps_window = ServiceConfig{}.qps_window;
  }
  config.slowlog_capacity = std::max<size_t>(1, config.slowlog_capacity);
  // NaN compares false both ways and falls through to 0 via the clamp.
  if (!(config.trace_sample_rate > 0.0)) {
    config.trace_sample_rate = 0.0;
  } else {
    config.trace_sample_rate = std::min(1.0, config.trace_sample_rate);
  }
  return config;
}

const char* kStageHelp =
    "Per-stage serving latency in ms (stage: queue=admission->dequeue, "
    "dispatch=dequeue->search, search=batched search wall, "
    "total=admission->delivery)";

}  // namespace

/// One hosted collection. The searcher is only ever touched by dispatcher
/// threads through the knob-explicit per-slot-band SearchBatchWith entry
/// point (each dispatcher owns a disjoint band, so concurrent batches are
/// race-free); the counters are guarded by the service mutex.
struct SearchService::Collection {
  std::string name;
  std::unique_ptr<Searcher> searcher;
  // Defaults and ceilings captured at AddCollection time — the live
  // searcher config mutates as per-query overrides are applied, so it is
  // not the source of truth. The ceilings clamp untrusted per-query
  // overrides at admission: more neighbors than vectors or more probes
  // than buckets is never meaningful, and an absurd k must not reach the
  // top-k heap's reserve().
  size_t default_k = 10;
  size_t default_nprobe = 1;
  size_t max_k = 1;
  size_t max_nprobe = 1;
  size_t dim = 0;    ///< Query vector length; the wire layer validates this.
  size_t count = 0;  ///< Live vectors hosted; refreshed on every mutation.
  PrunerKind pruner = PrunerKind::kBond;
  /// Serving tier, captured at adoption (kNone = exact float tier).
  QuantizationKind quantization = QuantizationKind::kNone;
  /// u8 tier exact-rerank over-fetch; 0 on float collections.
  size_t rerank_factor = 0;
  /// Resident u8 code bytes (summed across shards); 0 on float tiers.
  uint64_t quantized_bytes = 0;
  /// Candidates the u8 tier exact-reranked, lifetime. Atomic because
  /// DispatchBatch bumps it outside mutex_ (same path as the lock-free
  /// metric counters) while Stats() reads it under mutex_.
  std::atomic<uint64_t> rerank_total{0};
  /// The searcher downcast, set iff the service built it mutable (from
  /// vectors): the AddVectors/DeleteVectors surface and the compactor
  /// route through it. Never owning — `searcher` holds the same object.
  MutableSearcher* live = nullptr;
  /// True while queued for (or running) a background compaction, so the
  /// compact queue holds each collection at most once. Guarded by mutex_.
  bool compacting = false;
  /// "built", "mmap", or "loaded" (see CollectionInfo::source). Fixed at
  /// adoption.
  std::string source = "built";
  /// Bytes of collection file currently memory-mapped (mmap source only).
  uint64_t mapped_bytes = 0;
  /// Where SaveCollection last wrote this collection; the compactor
  /// re-saves there after every fold so the on-disk snapshot tracks the
  /// live state. Empty = never saved. Guarded by mutex_.
  std::string persist_path;
  uint64_t added = 0;        ///< Vectors ingested, lifetime; mutex_.
  uint64_t deleted_total = 0;  ///< Vectors tombstoned, lifetime; mutex_.
  uint64_t compactions = 0;  ///< Background compactions done; mutex_.
  /// Captured at AddCollection time: the batch key ignores nprobe on kFlat
  /// (the search ignores it there, so keying on it would only fragment
  /// coalescable batches).
  SearcherLayout layout = SearcherLayout::kFlat;

  size_t admitted = 0;
  size_t completed = 0;
  size_t rejected = 0;
  size_t expired = 0;
  size_t cancelled = 0;
  size_t dispatches = 0;
  LatencyRecorder queue_wait;
  LatencyRecorder latency;
  /// Ring of the most recent completion timestamps — the windowed QPS
  /// gauge. A lifetime first-done/last-done span would decay across idle
  /// gaps and never recover.
  std::vector<Clock::time_point> done_ring;
  size_t done_ring_capacity = 1;
  size_t done_next = 0;

  void RecordDone(Clock::time_point now) {
    if (done_ring.size() < done_ring_capacity) {
      done_ring.push_back(now);
    } else {
      done_ring[done_next] = now;
    }
    done_next = (done_next + 1) % done_ring_capacity;
  }

  /// Metric instruments, resolved ONCE at adoption (get-or-create on the
  /// service's registry, so a name removed and re-added keeps its
  /// cumulative series). The dispatch/completion paths then touch only
  /// these lock-free pointers — never the registry's mutex.
  struct Instruments {
    MetricCounter* completed = nullptr;
    MetricCounter* rejected = nullptr;
    MetricCounter* expired = nullptr;
    MetricCounter* cancelled = nullptr;
    MetricCounter* failed = nullptr;
    MetricCounter* dispatches = nullptr;
    MetricHistogram* queue_ms = nullptr;
    MetricHistogram* dispatch_ms = nullptr;
    MetricHistogram* search_ms = nullptr;
    MetricHistogram* total_ms = nullptr;
    MetricCounter* blocks_visited = nullptr;
    MetricCounter* vectors_pruned = nullptr;
    MetricCounter* values_scanned = nullptr;
    MetricCounter* values_avoided = nullptr;
    MetricCounter* dims_scanned = nullptr;
    MetricCounter* rerank_candidates = nullptr;
    MetricGauge* vectors = nullptr;
    MetricGauge* quantized_bytes = nullptr;
    MetricCounter* ingested = nullptr;
    MetricCounter* removed = nullptr;
    MetricCounter* compactions = nullptr;
    MetricHistogram* compaction_ms = nullptr;
    MetricGauge* delta_vectors = nullptr;
    MetricGauge* tombstones = nullptr;
    MetricHistogram* load_ms = nullptr;
    MetricGauge* mmap_bytes = nullptr;
  } metric;

  /// Worst-N queries this collection has served (GET .../slowlog).
  std::unique_ptr<SlowQueryLog> slowlog;
};

/// One admitted (or about-to-be-rejected) query. Owns a copy of the query
/// vector so the caller's buffer may die the moment Submit returns.
struct SearchService::Pending {
  uint64_t id = 0;
  std::shared_ptr<Collection> collection;  ///< Null when the name was unknown.
  std::string collection_name;
  std::vector<float> query;
  size_t k = 0;
  size_t nprobe = 0;
  Clock::time_point submitted{};
  Clock::time_point deadline = kNoDeadline;
  Clock::time_point dispatched{};
  /// True once the query entered queue_. Distinguishes "waited and was
  /// shed" (queue_ms = its whole life) from "turned away at admission"
  /// (queue_ms = 0 — it never waited anywhere).
  bool queued = false;
  /// True once SearchBatchWith returned for this query: the stage timings
  /// and counters below are meaningful.
  bool searched = false;
  bool trace = false;       ///< Build a QueryTrace at completion.
  std::string request_id;   ///< Stamped into the trace; empty untraced.
  double stage_ms = 0.0;    ///< dispatched -> the batched search began.
  double search_ms = 0.0;   ///< Wall of the SearchBatchWith that ran it.
  Clock::time_point search_end{};  ///< When that call returned.
  /// This query's own search work, copied from the dispatcher's
  /// pre-reserved scratch after the batch — a POD copy, no allocation.
  SearchCounters counters;
  std::promise<QueryResult> promise;
  QueryCallback callback;
};

SearchService::SearchService(ServiceConfig config)
    : config_(Sanitize(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &MetricsRegistry::Default()),
      pool_(config_.threads),
      started_(Clock::now()),
      dispatchers_(config_.dispatchers) {
  // Process gauges: fixed-for-lifetime shape (pool size, dispatcher
  // count, resolved SIMD tier as an info-style gauge) plus the live queue
  // depth the dispatch path re-stamps.
  queue_depth_gauge_ = metrics_->GetGauge(
      "pdx_queue_depth", "Queries waiting for dispatch right now");
  collections_gauge_ =
      metrics_->GetGauge("pdx_collections", "Collections currently hosted");
  metrics_
      ->GetGauge("pdx_pool_threads", "Size of the shared search thread pool")
      ->Set(static_cast<double>(pool_.num_threads()));
  metrics_
      ->GetGauge("pdx_dispatchers", "Replicated dispatcher threads")
      ->Set(static_cast<double>(dispatchers_.size()));
  metrics_
      ->GetGauge("pdx_isa_tier",
                 "Resolved SIMD tier (1 on the active tier's label)",
                 {{"isa", IsaName(DispatchedIsa())}})
      ->Set(1.0);
  for (size_t d = 0; d < dispatchers_.size(); ++d) {
    // Pre-reserved per dispatcher: the dispatch path hands this array to
    // SearchBatchWith instead of allocating per batch.
    dispatchers_[d].counters_scratch.resize(config_.max_batch);
    dispatchers_[d].busy_ring_capacity = config_.latency_window;
    dispatchers_[d].busy_ring.reserve(
        std::min<size_t>(config_.latency_window, 4096));
    dispatchers_[d].batches_metric = metrics_->GetCounter(
        "pdx_dispatcher_batches_total", "Batches run, per dispatcher thread",
        {{"dispatcher", std::to_string(d)}});
    dispatchers_[d].thread = std::thread([this, d] { DispatcherMain(d); });
  }
  // ThreadPool only offers blocking ParallelFor, so compaction gets its own
  // thread: a rebuild may take seconds and must never occupy a dispatcher
  // or a pool worker the dispatchers are fanning searches over.
  compactor_ = std::thread([this] { CompactorMain(); });
}

SearchService::~SearchService() { Shutdown(); }

void SearchService::Shutdown() {
  // Serialized so two concurrent callers never race on join().
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  compact_cv_.notify_all();
  for (Dispatcher& dispatcher : dispatchers_) {
    if (dispatcher.thread.joinable()) dispatcher.thread.join();
  }
  // A compaction in flight finishes (its swap is brief); queued ones are
  // abandoned — compaction is an optimization, not pending user work.
  if (compactor_.joinable()) compactor_.join();
}

void SearchService::ResolveCollectionMetrics(Collection& collection) {
  const MetricLabels by_name = {{"collection", collection.name}};
  auto outcome = [&](const char* value) -> MetricCounter* {
    return metrics_->GetCounter(
        "pdx_queries_total", "Queries resolved, by collection and outcome",
        {{"collection", collection.name}, {"outcome", value}});
  };
  Collection::Instruments& m = collection.metric;
  m.completed = outcome("completed");
  m.rejected = outcome("rejected");
  m.expired = outcome("expired");
  m.cancelled = outcome("cancelled");
  m.failed = outcome("failed");
  m.dispatches = metrics_->GetCounter(
      "pdx_dispatches_total", "Batched search calls, per collection",
      by_name);
  auto stage = [&](const char* value) -> MetricHistogram* {
    return metrics_->GetHistogram(
        "pdx_query_stage_ms", kStageHelp, DefaultLatencyBoundsMs(),
        {{"collection", collection.name}, {"stage", value}});
  };
  m.queue_ms = stage("queue");
  m.dispatch_ms = stage("dispatch");
  m.search_ms = stage("search");
  m.total_ms = stage("total");
  auto work = [&](const char* metric_name, const char* help) {
    return metrics_->GetCounter(metric_name, help, by_name);
  };
  m.blocks_visited = work("pdx_search_blocks_visited_total",
                          "PDX blocks visited by served queries");
  m.vectors_pruned = work("pdx_search_vectors_pruned_total",
                          "Vector lanes pruned before full distance");
  m.values_scanned = work("pdx_search_values_scanned_total",
                          "Dimension values fed to distance kernels");
  m.values_avoided = work("pdx_search_values_avoided_total",
                          "Dimension values skipped by pruning");
  m.dims_scanned = work("pdx_search_dims_scanned_total",
                        "Dimension steps walked across visited blocks");
  m.rerank_candidates =
      work("pdx_search_rerank_candidates_total",
           "Candidates the u8 quantized tier exact-reranked");
  m.vectors = metrics_->GetGauge("pdx_collection_vectors",
                                 "Vectors hosted, per collection", by_name);
  m.quantized_bytes = metrics_->GetGauge(
      "pdx_quantized_bytes",
      "Resident u8 code bytes of the quantized serving tier, per collection",
      by_name);
  // Streaming-ingest instruments. Resolved for every collection (an
  // immutable one just leaves them at zero) so a PUT replace that flips a
  // name between mutable and immutable keeps one cumulative series.
  m.ingested = metrics_->GetCounter(
      "pdx_ingested_vectors_total",
      "Vectors appended via AddVectors, per collection", by_name);
  m.removed = metrics_->GetCounter(
      "pdx_deleted_vectors_total",
      "Vectors tombstoned via DeleteVectors, per collection", by_name);
  m.compactions = metrics_->GetCounter(
      "pdx_compactions_total",
      "Background delta-into-base compactions completed", by_name);
  m.compaction_ms = metrics_->GetHistogram(
      "pdx_compaction_ms", "Wall time of one delta-into-base compaction",
      DefaultLatencyBoundsMs(), by_name);
  m.delta_vectors = metrics_->GetGauge(
      "pdx_delta_vectors", "Rows in the append delta region, per collection",
      by_name);
  m.tombstones = metrics_->GetGauge(
      "pdx_tombstones", "Tombstoned slots awaiting compaction, per collection",
      by_name);
  m.load_ms = metrics_->GetHistogram(
      "pdx_collection_load_ms",
      "Wall time of one LoadCollection (validate + map + reconstruct)",
      DefaultLatencyBoundsMs(), by_name);
  m.mmap_bytes = metrics_->GetGauge(
      "pdx_mmap_bytes",
      "Collection-file bytes served from a live memory mapping", by_name);
}

Status SearchService::Adopt(const std::string& name,
                            std::unique_ptr<Searcher>& searcher,
                            MutableSearcher* live, const std::string& source,
                            uint64_t mapped_bytes) {
  if (searcher == nullptr) {
    return Status::InvalidArgument("AddCollection: null searcher");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // All failure checks precede the move: on error the caller keeps the
  // (possibly expensive) searcher untouched and can retry.
  if (stopping_) return Status::Cancelled("service shut down");
  if (collections_.count(name) != 0) {
    return Status::InvalidArgument("AddCollection: name already hosted: " +
                                   name);
  }
  // The whole point of the service: every collection's batches run on the
  // one shared pool, never on a private per-searcher pool.
  searcher->set_pool(&pool_);
  searcher->set_threads(0);
  // Reserve every dispatcher's slot band up front: per-slot scratch growth
  // reallocates (not thread-safe), so the dispatch path must never grow
  // it. Dispatcher d then runs its batches on the disjoint band
  // [d * pool_threads, (d+1) * pool_threads). A no-op for custom adopted
  // searchers without per-slot scratch — those serve through the base
  // class's serialized SearchBatchWith fallback.
  searcher->ReserveScratch(config_.dispatchers * pool_.num_threads());

  auto collection = std::make_shared<Collection>();
  collection->name = name;
  collection->default_k = std::max<size_t>(1, searcher->options().k);
  collection->default_nprobe = std::max<size_t>(1, searcher->options().nprobe);
  // count()/max_nprobe() see through sharding: the logical collection
  // size, and the largest shard's bucket count (nprobe applies per shard).
  collection->max_k = std::max<size_t>(1, searcher->count());
  collection->max_nprobe = std::max<size_t>(1, searcher->max_nprobe());
  collection->layout = searcher->options().layout;
  collection->dim = searcher->dim();
  collection->count = searcher->count();
  collection->pruner = searcher->options().pruner;
  collection->quantization = searcher->options().quantization;
  collection->rerank_factor = searcher->options().rerank_factor;
  collection->quantized_bytes = searcher->quantized_bytes();
  collection->live = live;
  collection->source = source;
  collection->mapped_bytes = mapped_bytes;
  collection->queue_wait = LatencyRecorder(config_.latency_window);
  collection->latency = LatencyRecorder(config_.latency_window);
  collection->done_ring_capacity = config_.latency_window;
  collection->done_ring.reserve(
      std::min<size_t>(config_.latency_window, 4096));
  collection->slowlog =
      std::make_unique<SlowQueryLog>(config_.slowlog_capacity);
  ResolveCollectionMetrics(*collection);
  collection->metric.vectors->Set(static_cast<double>(collection->count));
  collection->metric.mmap_bytes->Set(static_cast<double>(mapped_bytes));
  collection->metric.quantized_bytes->Set(
      static_cast<double>(collection->quantized_bytes));
  collection->searcher = std::move(searcher);
  collections_.emplace(name, std::move(collection));
  collections_gauge_->Set(static_cast<double>(collections_.size()));
  return Status::OK();
}

Status SearchService::AddCollection(const std::string& name,
                                    const VectorSet& vectors,
                                    SearcherConfig config) {
  config.pool = &pool_;
  config.threads = 0;
  // The u8 tier has no streaming-ingest path: build it through the plain
  // facade (MakeSearcher routes to the quantized searcher) and adopt it
  // with live = nullptr, so AddVectors/DeleteVectors/Upsert answer
  // kUnsupported instead of corrupting the code blocks.
  if (config.quantization != QuantizationKind::kNone) {
    auto made = MakeSearcher(vectors, std::move(config));
    if (!made.ok()) return made.status();
    std::unique_ptr<Searcher> searcher = std::move(made).value();
    return Adopt(name, searcher);
  }
  auto made = MutableSearcher::Make(vectors, std::move(config),
                                    config_.mutation);
  if (!made.ok()) return made.status();
  std::unique_ptr<MutableSearcher> typed = std::move(made).value();
  MutableSearcher* live = typed.get();
  std::unique_ptr<Searcher> searcher = std::move(typed);
  return Adopt(name, searcher, live);
}

Status SearchService::AddCollection(const std::string& name,
                                    const VectorSet& vectors,
                                    const IvfIndex& index,
                                    SearcherConfig config) {
  config.pool = &pool_;
  config.threads = 0;
  auto made = MakeSearcher(vectors, index, std::move(config));
  if (!made.ok()) return made.status();
  std::unique_ptr<Searcher> searcher = std::move(made).value();
  return Adopt(name, searcher);
}

Status SearchService::AddCollection(const std::string& name,
                                    const VectorSet& vectors,
                                    SearcherConfig config,
                                    ShardingOptions sharding) {
  config.pool = &pool_;
  config.threads = 0;
  // Quantized shards compose the same way float shards do, but stay
  // immutable — same reasoning as the unsharded overload above.
  if (config.quantization != QuantizationKind::kNone) {
    auto made = MakeShardedSearcher(vectors, std::move(config), sharding);
    if (!made.ok()) return made.status();
    std::unique_ptr<Searcher> searcher = std::move(made).value();
    return Adopt(name, searcher);
  }
  auto made = MutableSearcher::Make(vectors, std::move(config),
                                    config_.mutation, sharding);
  if (!made.ok()) return made.status();
  std::unique_ptr<MutableSearcher> typed = std::move(made).value();
  MutableSearcher* live = typed.get();
  std::unique_ptr<Searcher> searcher = std::move(typed);
  return Adopt(name, searcher, live);
}

Status SearchService::AddCollection(const std::string& name,
                                    std::unique_ptr<Searcher>& searcher) {
  return Adopt(name, searcher);
}

Status SearchService::SaveCollection(const std::string& name,
                                     const std::string& path) {
  std::shared_ptr<Collection> host;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Status::Cancelled("service shut down");
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no collection named " + name);
    }
    host = it->second;
  }
  // The write runs outside the service mutex: a mutable collection
  // snapshots under its own reader lock (searches flow; mutations wait),
  // an immutable one needs no lock at all — either way dispatchers are
  // never stalled behind the disk.
  PDX_RETURN_IF_ERROR(host->searcher->Save(path));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Re-saved by the compactor after each fold — but only while this
    // exact incarnation is still hosted (a replace-under-same-name must
    // not inherit the path).
    auto it = collections_.find(name);
    if (it != collections_.end() && it->second == host) {
      host->persist_path = path;
    }
  }
  return Status::OK();
}

Status SearchService::LoadCollection(const std::string& name,
                                     const std::string& path,
                                     bool allow_mmap) {
  // The expensive part — reading, checksumming, and reconstructing —
  // runs with no service lock held; hosted collections keep serving.
  const Clock::time_point begin = Clock::now();
  LoadOptions options;
  options.allow_mmap = allow_mmap;
  auto loaded = ::pdx::LoadCollection(path, options);
  if (!loaded.ok()) return loaded.status();
  LoadedCollection restored = std::move(loaded).value();
  const double wall_ms = MillisBetween(begin, Clock::now());
  PDX_RETURN_IF_ERROR(Adopt(name, restored.searcher, restored.live,
                            restored.source, restored.mapped_bytes));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = collections_.find(name);
    if (it != collections_.end()) {
      it->second->persist_path = path;
      it->second->metric.load_ms->Observe(wall_ms);
    }
  }
  return Status::OK();
}

void SearchService::RefreshMutationObs(
    const std::shared_ptr<Collection>& host) {
  if (host->live == nullptr) return;
  const MutationStats stats = host->live->mutation_stats();
  host->metric.vectors->Set(static_cast<double>(stats.live));
  host->metric.delta_vectors->Set(static_cast<double>(stats.delta_rows));
  host->metric.tombstones->Set(static_cast<double>(stats.tombstones));
}

void SearchService::MaybeScheduleCompactionLocked(
    const std::shared_ptr<Collection>& host) {
  if (stopping_ || host->live == nullptr || host->compacting) return;
  // NeedsCompaction takes the searcher's shared lock under mutex_ — the
  // service-then-searcher lock order every path here follows (the inverse
  // never happens: MutableSearcher knows nothing about the service).
  if (!host->live->NeedsCompaction()) return;
  host->compacting = true;
  compact_queue_.push_back(host);
  compact_cv_.notify_one();
}

Result<std::vector<uint64_t>> SearchService::AddVectors(
    const std::string& name, const float* rows, size_t count, size_t dim,
    const uint64_t* ids) {
  std::shared_ptr<Collection> host;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Status::Cancelled("service shut down");
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no collection named " + name);
    }
    host = it->second;
    if (host->live == nullptr) {
      return Status::Unsupported(
          "collection " + name +
          " is immutable (adopted or index-backed); PUT a rebuilt "
          "collection instead");
    }
    if (dim != host->dim) {
      return Status::InvalidArgument(
          "rows have " + std::to_string(dim) + " dimensions, expected " +
          std::to_string(host->dim));
    }
  }
  // The append itself runs OUTSIDE mutex_: MutableSearcher serializes
  // against in-flight SearchBatchWith with its own reader-writer lock, and
  // holding the service mutex across it would stall admission and Stats.
  // (The shared_ptr keeps the collection alive across a concurrent
  // RemoveCollection; mutating a just-removed collection is harmless.)
  auto added = host->live->Add(rows, count, ids);
  if (!added.ok()) return added;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    host->added += count;
    host->count = host->live->count();
    host->max_k = std::max<size_t>(1, host->count);
    MaybeScheduleCompactionLocked(host);
  }
  host->metric.ingested->Inc(count);
  RefreshMutationObs(host);
  return added;
}

Result<size_t> SearchService::DeleteVectors(const std::string& name,
                                            const uint64_t* ids, size_t count,
                                            std::vector<uint64_t>* missing) {
  std::shared_ptr<Collection> host;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Status::Cancelled("service shut down");
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no collection named " + name);
    }
    host = it->second;
    if (host->live == nullptr) {
      return Status::Unsupported(
          "collection " + name +
          " is immutable (adopted or index-backed); PUT a rebuilt "
          "collection instead");
    }
  }
  const size_t deleted = host->live->DeleteBatch(ids, count, missing);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    host->deleted_total += deleted;
    host->count = host->live->count();
    host->max_k = std::max<size_t>(1, host->count);
    MaybeScheduleCompactionLocked(host);
  }
  host->metric.removed->Inc(deleted);
  RefreshMutationObs(host);
  return deleted;
}

Result<std::vector<uint64_t>> SearchService::Upsert(const std::string& name,
                                                    const float* rows,
                                                    size_t count, size_t dim,
                                                    const uint64_t* ids) {
  if (ids == nullptr) {
    return Status::InvalidArgument(
        "Upsert: ids are required (use AddVectors for auto-assigned ids)");
  }
  return AddVectors(name, rows, count, dim, ids);
}

void SearchService::CompactorMain() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    while (!stopping_ && compact_queue_.empty()) compact_cv_.wait(lock);
    if (stopping_) break;
    std::shared_ptr<Collection> host = compact_queue_.front();
    compact_queue_.pop_front();
    // The collection may have been removed or replaced while queued; its
    // delta dies with it, so there is nothing to fold.
    auto it = collections_.find(host->name);
    if (it == collections_.end() || it->second != host) {
      host->compacting = false;
      continue;
    }
    lock.unlock();
    const Clock::time_point begin = Clock::now();
    // Compact() holds no lock during the rebuild and releases all of its
    // own locks before returning — dispatchers and mutators keep flowing;
    // only the brief swap at its end excludes them.
    const Status done = host->live->Compact();
    const double wall_ms = MillisBetween(begin, Clock::now());
    if (done.ok()) {
      host->metric.compactions->Inc();
      host->metric.compaction_ms->Observe(wall_ms);
    }
    RefreshMutationObs(host);
    lock.lock();
    host->compacting = false;
    std::string persist_to;
    if (done.ok()) {
      ++host->compactions;
      host->count = host->live->count();
      host->max_k = std::max<size_t>(1, host->count);
      // An IVF base rebuilt over more vectors may cluster into more
      // buckets; the admission clamp must follow the new ceiling.
      host->max_nprobe = std::max<size_t>(1, host->live->max_nprobe());
      // Appends that landed during the rebuild may already exceed the
      // threshold again (only when still hosted — a removed collection's
      // pop-check above would just skip it anyway).
      if (collections_.count(host->name) != 0) {
        MaybeScheduleCompactionLocked(host);
        // A persisted collection keeps its on-disk snapshot current: the
        // fold just rewrote the base, so the saved file would otherwise
        // replay an ever-longer delta on every restart.
        persist_to = host->persist_path;
      }
    }
    if (!persist_to.empty()) {
      lock.unlock();
      // Best effort: a full disk or yanked directory must not kill the
      // compactor; the snapshot simply goes stale until the next save.
      (void)host->live->Save(persist_to);
      lock.lock();
    }
    // A failed compaction (allocation pressure, searcher build error) is
    // NOT rescheduled from here: NeedsCompaction still holds, so the next
    // mutation retries — without it, an always-failing build would spin.
  }
}

Status SearchService::RemoveCollection(const std::string& name) {
  std::vector<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no collection named " + name);
    }
    const std::shared_ptr<Collection> removed = it->second;
    collections_.erase(it);
    for (auto q = queue_.begin(); q != queue_.end();) {
      if ((*q)->collection == removed) {
        NoteDequeuedLocked(**q);
        orphans.push_back(std::move(*q));
        q = queue_.erase(q);
      } else {
        ++q;
      }
    }
    SetQueueDepthLocked();
    collections_gauge_->Set(static_cast<double>(collections_.size()));
    // The counters keep their cumulative series (Prometheus semantics); a
    // size gauge for an unhosted collection honestly reads 0.
    removed->metric.vectors->Set(0.0);
    removed->metric.delta_vectors->Set(0.0);
    removed->metric.tombstones->Set(0.0);
  }
  // An in-flight batch keeps the collection alive through its own
  // shared_ptr; only the queued queries are failed here.
  for (auto& pending : orphans) {
    Complete(std::move(pending), Status::Cancelled("collection removed: " + name), {});
  }
  return Status::OK();
}

std::vector<std::string> SearchService::CollectionNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(collections_.size());
  for (const auto& [name, collection] : collections_) names.push_back(name);
  return names;
}

Result<CollectionInfo> SearchService::GetCollectionInfo(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named " + name);
  }
  const Collection& host = *it->second;
  CollectionInfo info;
  info.name = name;
  info.dim = host.dim;
  info.count = host.count;
  info.default_k = host.default_k;
  info.default_nprobe = host.default_nprobe;
  info.max_nprobe = host.max_nprobe;
  // num_shards() reads a constant, safe against concurrent dispatch.
  info.shards = host.searcher->num_shards();
  info.layout = host.layout;
  info.pruner = host.pruner;
  info.quantization = host.quantization;
  info.rerank_factor = host.rerank_factor;
  info.quantized_bytes = host.quantized_bytes;
  info.source = host.source;
  return info;
}

QueryTicket SearchService::Submit(const std::string& collection,
                                  const float* query, QueryOptions options) {
  QueryTicket ticket;
  ticket.id =
      SubmitInternal(collection, query, options, nullptr, &ticket.result);
  return ticket;
}

uint64_t SearchService::Submit(const std::string& collection,
                               const float* query, QueryOptions options,
                               QueryCallback callback) {
  return SubmitInternal(collection, query, options, std::move(callback),
                        nullptr);
}

uint64_t SearchService::SubmitInternal(const std::string& collection,
                                       const float* query,
                                       const QueryOptions& options,
                                       QueryCallback callback,
                                       std::future<QueryResult>* future_out) {
  auto pending = std::make_unique<Pending>();
  pending->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending->collection_name = collection;
  pending->callback = std::move(callback);
  pending->submitted = Clock::now();
  if (future_out != nullptr) *future_out = pending->promise.get_future();
  const uint64_t id = pending->id;

  Status admitted = Enqueue(collection, query, options, pending);
  if (!admitted.ok()) {
    // Rejection resolves through the same future/callback as success, so
    // backpressure (kResourceExhausted) is explicit, immediate, and never
    // silently dropped.
    Complete(std::move(pending), std::move(admitted), {});
  }
  return id;
}

Status SearchService::Enqueue(const std::string& collection,
                              const float* query, const QueryOptions& options,
                              std::unique_ptr<Pending>& pending) {
  if (query == nullptr) {
    return Status::InvalidArgument("Submit: null query");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return Status::Cancelled("service shut down");
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named " + collection);
  }
  // Attributed before the admission check so a rejection is counted
  // against the collection it targeted.
  pending->collection = it->second;
  // The length check lives HERE, under mutex_, because dim is only stable
  // under mutex_: a wire handler validates the payload against a
  // CollectionInfo snapshot, and a concurrent PUT can swap the name to a
  // different-dim collection between that snapshot and this Submit. The
  // copy below reads dim() floats, so a stated length that no longer
  // matches must be a kInvalidArgument, never an out-of-bounds read.
  Collection& host = *it->second;
  const size_t d = host.searcher->dim();
  if (options.query_len != 0 && options.query_len != d) {
    return Status::InvalidArgument(
        "query has " + std::to_string(options.query_len) +
        " dimensions, expected " + std::to_string(d));
  }
  if (queue_.size() >= config_.max_pending) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(config_.max_pending) +
        " pending); retry later");
  }
  pending->query.assign(query, query + d);
  pending->k =
      std::min(options.k > 0 ? options.k : host.default_k, host.max_k);
  // The bucket-count clamp only makes sense where nprobe is applied; on
  // kFlat the knob never reaches the searcher.
  pending->nprobe = options.nprobe > 0 ? options.nprobe : host.default_nprobe;
  if (host.layout == SearcherLayout::kIvf) {
    pending->nprobe = std::min(pending->nprobe, host.max_nprobe);
  }
  if (options.timeout.count() > 0) {
    pending->deadline = pending->submitted + options.timeout;
    ++deadline_queued_;
  }
  // Tracing rides on the Pending; with trace off this copies a bool and
  // an (empty) string — nothing is allocated for observability.
  pending->trace = options.trace;
  if (options.trace) pending->request_id = options.request_id;
  // Sampled tracing: a deterministic error accumulator (no RNG, no state
  // per query) promotes every 1/rate-th admitted query. Unselected queries
  // pay one double add — still zero allocations.
  if (!pending->trace && config_.trace_sample_rate > 0.0) {
    trace_accum_ += config_.trace_sample_rate;
    if (trace_accum_ >= 1.0) {
      trace_accum_ -= 1.0;
      pending->trace = true;
      pending->request_id = options.request_id;
    }
  }
  ++host.admitted;
  pending->queued = true;
  queue_.push_back(std::move(pending));
  SetQueueDepthLocked();
  dispatch_cv_.notify_one();
  return Status::OK();
}

bool SearchService::Cancel(uint64_t id) {
  std::unique_ptr<Pending> found;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->id == id) {
        NoteDequeuedLocked(**it);
        found = std::move(*it);
        queue_.erase(it);
        SetQueueDepthLocked();
        break;
      }
    }
  }
  if (found == nullptr) return false;  // Unknown, dispatched, or done.
  Complete(std::move(found), Status::Cancelled("cancelled by caller"), {});
  return true;
}

void SearchService::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void SearchService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

size_t SearchService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void SearchService::SetQueueDepthLocked() {
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
}

Result<std::vector<SlowQueryEntry>> SearchService::SlowLog(
    const std::string& name) const {
  std::shared_ptr<Collection> host;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no collection named " + name);
    }
    host = it->second;
  }
  // Snapshot outside the service mutex: the log has its own (briefly held)
  // lock, and the shared_ptr keeps the collection alive across a
  // concurrent RemoveCollection.
  return host->slowlog->Snapshot();
}

ServiceStats SearchService::Stats() const {
  ServiceStats stats;
  stats.pool_threads = pool_.num_threads();
  stats.isa = IsaName(DispatchedIsa());
  const Clock::time_point now = Clock::now();
  const Clock::time_point cutoff = now - config_.qps_window;
  std::lock_guard<std::mutex> lock(mutex_);
  stats.queue_depth = queue_.size();
  // Per-dispatcher accounting: how evenly the replicated dispatchers split
  // the load, and how saturated each is. Busy covers completed
  // DispatchBatch calls only (an in-flight batch lands on the next
  // snapshot), so the fraction trails reality by at most one batch — and
  // it is WINDOWED over qps_window, like the QPS gauge: summing lifetime
  // busy over lifetime uptime would let one early idle stretch dilute the
  // gauge forever (the same bug class the windowed QPS fix closed).
  const double window_ms = std::min(
      MillisBetween(started_, now),
      std::chrono::duration<double, std::milli>(config_.qps_window).count());
  stats.dispatchers.reserve(dispatchers_.size());
  for (const Dispatcher& dispatcher : dispatchers_) {
    DispatcherStats ds;
    ds.dispatches = dispatcher.dispatches;
    Clock::duration busy{};
    for (const Dispatcher::BusySample& sample : dispatcher.busy_ring) {
      // A batch is scored into the window its END falls in; a long batch
      // straddling the cutoff counts whole (clamped below), which biases
      // toward "busy" exactly when batches outlast the window — the
      // honest direction for a saturation gauge.
      if (sample.end >= cutoff) busy += sample.busy;
    }
    const double busy_ms =
        std::chrono::duration<double, std::milli>(busy).count();
    ds.busy_fraction =
        window_ms > 0.0 ? std::min(1.0, busy_ms / window_ms) : 0.0;
    stats.dispatchers.push_back(ds);
  }
  for (const auto& [name, collection] : collections_) {
    CollectionStats cs;
    cs.count = collection->count;
    cs.admitted = collection->admitted;
    cs.completed = collection->completed;
    cs.rejected = collection->rejected;
    cs.expired = collection->expired;
    cs.cancelled = collection->cancelled;
    cs.dispatches = collection->dispatches;
    // num_shards() reads a constant and ShardDispatchCounts() reads
    // atomics, so these are safe against the dispatcher's concurrent use
    // of the searcher (which mutex_ does not serialize).
    cs.shards = collection->searcher->num_shards();
    cs.source = collection->source;
    cs.mapped_bytes = collection->mapped_bytes;
    cs.shard_dispatches = collection->searcher->ShardDispatchCounts();
    cs.quantization = QuantizationKindName(collection->quantization);
    cs.rerank_factor = collection->rerank_factor;
    cs.quantized_bytes = collection->quantized_bytes;
    cs.rerank_candidates =
        collection->rerank_total.load(std::memory_order_relaxed);
    cs.queue_wait = collection->queue_wait.Summary();
    cs.latency = collection->latency.Summary();
    if (collection->live != nullptr) {
      // mutation_stats() takes the searcher's shared lock under mutex_ —
      // the service-first lock order, same as the mutation paths.
      const MutationStats ms = collection->live->mutation_stats();
      cs.is_mutable = true;
      cs.delta = ms.delta_rows;
      cs.delta_blocks = ms.delta_blocks;
      cs.base_blocks = ms.base_blocks;
      cs.tombstones = ms.tombstones;
    }
    cs.added = collection->added;
    cs.deleted = collection->deleted_total;
    cs.compactions = collection->compactions;
    // QPS over the completions inside the recent window only: a lifetime
    // first-to-last span would report near-zero forever after one long
    // idle gap. n samples bound n-1 intervals; a single in-window sample
    // is scored against the whole window.
    size_t in_window = 0;
    Clock::time_point oldest = Clock::time_point::max();
    Clock::time_point newest = Clock::time_point::min();
    for (const Clock::time_point done : collection->done_ring) {
      if (done < cutoff) continue;
      ++in_window;
      oldest = std::min(oldest, done);
      newest = std::max(newest, done);
    }
    // oldest/newest are sentinels until the first in-window sample; only
    // subtract them once at least two real timestamps are in hand.
    const double span_s =
        in_window >= 2 ? MillisBetween(oldest, newest) / 1e3 : 0.0;
    if (in_window >= 2 && span_s > 0.0) {
      cs.qps = static_cast<double>(in_window - 1) / span_s;
    } else if (in_window >= 1) {
      const double window_s =
          std::chrono::duration<double>(config_.qps_window).count();
      cs.qps = static_cast<double>(in_window) / window_s;
    }
    stats.collections.emplace(name, cs);
  }
  return stats;
}

void SearchService::DispatcherMain(size_t dispatcher) {
  Dispatcher& self = dispatchers_[dispatcher];
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Deadline shedding first, independent of paused_: a query whose
    // deadline passed while it waited — behind other batch keys, or
    // behind a Pause() — must resolve now, not when a dispatch happens to
    // pop it (or never, while paused).
    std::vector<std::unique_ptr<Pending>> expired;
    const Clock::time_point earliest = SweepDeadlinesLocked(&expired);
    if (!expired.empty()) {
      SetQueueDepthLocked();
      lock.unlock();
      for (auto& pending : expired) {
        Complete(std::move(pending),
                 Status::DeadlineExceeded("deadline passed in queue"), {});
      }
      lock.lock();
      continue;  // Re-evaluate: the queue changed.
    }
    if (stopping_) break;
    if (!paused_ && !queue_.empty()) {
      std::vector<std::unique_ptr<Pending>> batch = CollectBatchLocked();
      SetQueueDepthLocked();
      lock.unlock();
      const Clock::time_point begin = Clock::now();
      DispatchBatch(dispatcher, std::move(batch));
      const Clock::time_point end = Clock::now();
      lock.lock();
      // Ring of (end, duration) samples: Stats() sums the ones ending
      // inside qps_window for the windowed busy_fraction.
      Dispatcher::BusySample sample{end, end - begin};
      if (self.busy_ring.size() < self.busy_ring_capacity) {
        self.busy_ring.push_back(sample);
      } else {
        self.busy_ring[self.busy_next] = sample;
      }
      self.busy_next = (self.busy_next + 1) % self.busy_ring_capacity;
      continue;
    }
    // Nothing dispatchable: sleep until new work arrives — or, when a
    // queued query carries a deadline, only until that deadline, so the
    // shed above runs on time even if no Submit/Resume ever wakes us.
    if (earliest == kNoDeadline) {
      dispatch_cv_.wait(lock);
    } else {
      dispatch_cv_.wait_until(lock, earliest);
    }
  }
  // Shutdown drain: nothing queued may be left unresolved. Every
  // dispatcher passes through here; whichever arrives first takes the
  // remainder.
  std::vector<std::unique_ptr<Pending>> drained;
  drained.reserve(queue_.size());
  for (auto& pending : queue_) drained.push_back(std::move(pending));
  queue_.clear();
  deadline_queued_ = 0;
  SetQueueDepthLocked();
  lock.unlock();
  for (auto& pending : drained) {
    Complete(std::move(pending), Status::Cancelled("service shut down"), {});
  }
}

Clock::time_point SearchService::SweepDeadlinesLocked(
    std::vector<std::unique_ptr<Pending>>* expired) {
  // Common case first: no queued query carries a deadline, so there is
  // nothing to shed and nothing to timed-wait on — skip the queue scan
  // entirely (it runs on every dispatcher loop iteration).
  if (deadline_queued_ == 0) return kNoDeadline;
  const Clock::time_point now = Clock::now();
  Clock::time_point earliest = kNoDeadline;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const Clock::time_point deadline = (*it)->deadline;
    if (deadline == kNoDeadline) {
      ++it;
    } else if (now >= deadline) {
      NoteDequeuedLocked(**it);
      expired->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      earliest = std::min(earliest, deadline);
      ++it;
    }
  }
  return earliest;
}

void SearchService::NoteDequeuedLocked(const Pending& pending) {
  if (pending.deadline != kNoDeadline) --deadline_queued_;
}

std::vector<std::unique_ptr<SearchService::Pending>>
SearchService::CollectBatchLocked() {
  std::vector<std::unique_ptr<Pending>> batch;
  NoteDequeuedLocked(*queue_.front());
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Opportunistic micro-batching: pull every queued query that can share
  // one SearchBatch call with the head (same collection and same effective
  // k/nprobe — the knobs are per-call on the searcher). The head of the
  // queue always dispatches first, so no query starves, but coalesced
  // queries from deeper in the queue do jump ahead of work under other
  // batch keys — other collections, or the same collection with different
  // k/nprobe.
  const Pending& head = *batch.front();
  // nprobe only keys IVF collections: a flat search ignores it, so two
  // flat queries with different nprobe overrides still share one batch.
  const bool key_nprobe = head.collection != nullptr &&
                          head.collection->layout == SearcherLayout::kIvf;
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < config_.max_batch;) {
    const Pending& candidate = **it;
    if (candidate.collection == head.collection && candidate.k == head.k &&
        (!key_nprobe || candidate.nprobe == head.nprobe)) {
      NoteDequeuedLocked(candidate);
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void SearchService::DispatchBatch(
    size_t dispatcher, std::vector<std::unique_ptr<Pending>> batch) {
  // Deadline shedding: a query whose deadline already passed gets failed
  // here, before any distance computation is spent on it.
  const Clock::time_point now = Clock::now();
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& pending : batch) {
    if (pending->deadline != kNoDeadline && now >= pending->deadline) {
      Complete(std::move(pending),
               Status::DeadlineExceeded("deadline passed before dispatch"), {});
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  Dispatcher& self = dispatchers_[dispatcher];
  const std::shared_ptr<Collection> host = live.front()->collection;
  // Exception barrier: anything escaping here would fly out of the
  // dispatcher's thread entry and terminate the process, leaving every
  // outstanding future unresolved. A failed batch instead fails its own
  // queries with kInternal and the dispatcher lives on. (It also catches
  // the base SearchWith/SearchBatchWith logic_error from a custom
  // searcher with a broken per-slot override — loud, not a race.)
  try {
    Searcher& searcher = *host->searcher;
    // Knob-explicit dispatch: k/nprobe ride on the call, NOT on the shared
    // searcher config — set_k/set_nprobe here would race the moment two
    // dispatchers touch the same collection. Dispatcher d always uses its
    // own slot band, so concurrent batches (even for the same batch key)
    // run on disjoint engines.
    const QueryKnobs knobs{live.front()->k, live.front()->nprobe};
    const size_t slot = dispatcher * pool_.num_threads();

    const size_t d = searcher.dim();
    self.scratch.resize(live.size() * d);
    const Clock::time_point dispatch_start = Clock::now();
    for (size_t i = 0; i < live.size(); ++i) {
      std::copy(live[i]->query.begin(), live[i]->query.end(),
                self.scratch.begin() + i * d);
      live[i]->dispatched = dispatch_start;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++host->dispatches;
      ++self.dispatches;
    }
    host->metric.dispatches->Inc();
    self.batches_metric->Inc();
    // Per-query search-work counters land in the dispatcher's
    // pre-reserved scratch — observability adds no allocation here (a
    // BatchProfile would drag a LatencyRecorder window along).
    const Clock::time_point search_begin = Clock::now();
    std::vector<std::vector<Neighbor>> results =
        searcher.SearchBatchWith(slot, knobs, self.scratch.data(),
                                 live.size(), nullptr,
                                 self.counters_scratch.data());
    const Clock::time_point search_end = Clock::now();
    const double stage_ms = MillisBetween(dispatch_start, search_begin);
    const double search_ms = MillisBetween(search_begin, search_end);
    SearchCounters batch_work;
    for (size_t i = 0; i < live.size(); ++i) {
      live[i]->searched = true;
      live[i]->stage_ms = stage_ms;
      live[i]->search_ms = search_ms;
      live[i]->search_end = search_end;
      live[i]->counters = self.counters_scratch[i];
      batch_work += self.counters_scratch[i];
    }
    host->metric.blocks_visited->Inc(batch_work.blocks_visited);
    host->metric.vectors_pruned->Inc(batch_work.vectors_pruned);
    host->metric.values_scanned->Inc(batch_work.values_scanned);
    host->metric.values_avoided->Inc(batch_work.values_avoided);
    host->metric.dims_scanned->Inc(batch_work.dims_scanned);
    host->metric.rerank_candidates->Inc(batch_work.rerank_candidates);
    host->rerank_total.fetch_add(batch_work.rerank_candidates,
                                 std::memory_order_relaxed);
    for (size_t i = 0; i < live.size(); ++i) {
      Complete(std::move(live[i]), Status::OK(), std::move(results[i]));
    }
  } catch (const std::exception& e) {
    FailBatch(live, std::string("search failed: ") + e.what());
  } catch (...) {
    FailBatch(live, "search failed: unknown exception");
  }
}

void SearchService::FailBatch(std::vector<std::unique_ptr<Pending>>& live,
                              const std::string& reason) {
  for (auto& pending : live) {
    if (pending == nullptr) continue;  // Already completed before the throw.
    Complete(std::move(pending), Status::Internal(reason), {});
  }
}

void SearchService::Complete(std::unique_ptr<Pending> pending, Status status,
                             std::vector<Neighbor> neighbors) {
  const Clock::time_point now = Clock::now();
  QueryResult result;
  result.status = std::move(status);
  result.neighbors = std::move(neighbors);
  result.id = pending->id;
  result.collection = pending->collection_name;
  result.total_ms = MillisBetween(pending->submitted, now);
  // queue_ms semantics (documented on QueryResult): a query that reached
  // dispatch — even one whose batch then failed with kInternal — reports
  // submitted -> dispatched; anything after dispatch was search time, not
  // queueing. A query shed/cancelled while QUEUED spent its whole life in
  // the queue, so submitted -> now IS its queue wait — reporting 0 would
  // survivorship-bias the queue-wait percentiles exactly when the queue
  // is in trouble. A submission that never entered the queue (kNotFound,
  // kInvalidArgument, admission-rejected kResourceExhausted) reports 0:
  // it waited nowhere, and counting its bookkeeping time as "queue" would
  // smear the gauge the other way.
  if (pending->dispatched != Clock::time_point{}) {
    result.queue_ms = MillisBetween(pending->submitted, pending->dispatched);
  } else if (pending->queued) {
    result.queue_ms = result.total_ms;
  } else {
    result.queue_ms = 0.0;
  }

  if (pending->collection != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    Collection& host = *pending->collection;
    switch (result.status.code()) {
      case Status::Code::kOk:
        ++host.completed;
        host.latency.Record(result.total_ms);
        host.queue_wait.Record(result.queue_ms);
        host.RecordDone(now);
        break;
      case Status::Code::kResourceExhausted:
        // Turned away at admission — it never waited in the queue, so it
        // contributes no queue_wait sample.
        ++host.rejected;
        break;
      case Status::Code::kDeadlineExceeded:
        ++host.expired;
        host.queue_wait.Record(result.queue_ms);
        break;
      case Status::Code::kCancelled:
        ++host.cancelled;
        host.queue_wait.Record(result.queue_ms);
        break;
      default:
        break;  // InvalidArgument etc.: attributed to no bucket.
    }
  }

  // Observability lands OUTSIDE mutex_: the instruments are lock-free
  // atomics (and the slowlog carries its own bounded lock), and the
  // shared_ptr keeps the collection's instruments and slowlog alive even
  // past RemoveCollection.
  if (pending->collection != nullptr) {
    Collection& host = *pending->collection;
    switch (result.status.code()) {
      case Status::Code::kOk:
        host.metric.completed->Inc();
        break;
      case Status::Code::kResourceExhausted:
        host.metric.rejected->Inc();
        break;
      case Status::Code::kDeadlineExceeded:
        host.metric.expired->Inc();
        break;
      case Status::Code::kCancelled:
        host.metric.cancelled->Inc();
        break;
      case Status::Code::kInternal:
        host.metric.failed->Inc();
        break;
      default:
        break;
    }
    // Stage histograms mirror the queue_ms attribution above: queue for
    // anything that actually waited, dispatch/search only once a batch
    // ran it, total only for delivered answers (mixing shed queries into
    // the end-to-end histogram would make it bimodal by failure mode).
    if (pending->queued) host.metric.queue_ms->Observe(result.queue_ms);
    if (pending->searched) {
      host.metric.dispatch_ms->Observe(pending->stage_ms);
      host.metric.search_ms->Observe(pending->search_ms);
    }
    if (result.status.ok()) host.metric.total_ms->Observe(result.total_ms);
    // Slow-query log. Qualifies is a lock-free threshold read, so the
    // common case (fast query, full log of slower ones) never takes the
    // slowlog lock and builds no entry.
    if (pending->queued && host.slowlog->Qualifies(result.total_ms)) {
      SlowQueryEntry entry;
      entry.id = pending->id;
      entry.request_id = pending->request_id;
      entry.outcome = StatusCodeName(result.status.code());
      entry.k = pending->k;
      entry.nprobe = pending->nprobe;
      entry.queue_ms = result.queue_ms;
      entry.stage_ms = pending->stage_ms;
      entry.search_ms = pending->search_ms;
      entry.total_ms = result.total_ms;
      entry.counters = pending->counters;
      host.slowlog->Add(std::move(entry));
    }
  }

  // The trace is the one heap allocation tracing costs — and only on
  // traced queries; untraced ones leave result.trace null.
  if (pending->trace) {
    auto trace = std::make_shared<QueryTrace>();
    trace->request_id = pending->request_id;
    trace->queue_ms = result.queue_ms;
    trace->stage_ms = pending->stage_ms;
    trace->search_ms = pending->search_ms;
    trace->deliver_ms =
        pending->searched ? MillisBetween(pending->search_end, now) : 0.0;
    trace->total_ms = result.total_ms;
    trace->counters = pending->counters;
    result.trace = std::move(trace);
  }

  // Delivery happens outside the lock: a callback may re-enter the service
  // (Submit a follow-up query, read Stats) without deadlocking. A throwing
  // callback is contained here — on the dispatcher thread it would
  // otherwise kill the process (QueryCallback's contract says don't throw;
  // this is the backstop, not the interface).
  if (pending->callback) {
    try {
      pending->callback(std::move(result));
    } catch (...) {
    }
  } else {
    pending->promise.set_value(std::move(result));
  }
}

}  // namespace pdx
