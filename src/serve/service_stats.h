#ifndef PDX_SERVE_SERVICE_STATS_H_
#define PDX_SERVE_SERVICE_STATS_H_

#include <cstddef>
#include <map>
#include <string>

#include "benchlib/latency.h"

namespace pdx {

/// Per-collection serving counters. Every admitted query ends in exactly
/// one of completed/expired/cancelled; rejected queries were never
/// admitted.
struct CollectionStats {
  size_t admitted = 0;    ///< Accepted into the queue.
  size_t completed = 0;   ///< Searched and delivered OK.
  size_t rejected = 0;    ///< Turned away with kResourceExhausted.
  size_t expired = 0;     ///< Deadline passed before dispatch.
  size_t cancelled = 0;   ///< Cancel()/RemoveCollection/Shutdown.
  size_t dispatches = 0;  ///< SearchBatch calls; completed/dispatches is
                          ///< the achieved micro-batch size.
  /// Completions per second over the span between this collection's first
  /// and last completion (0 until there are two).
  double qps = 0.0;
  LatencySummary queue_wait;  ///< Admission -> dispatch, ms.
  LatencySummary latency;     ///< Admission -> completion, ms (p50/p95/p99).
};

/// Snapshot returned by SearchService::Stats(): consistent at the instant
/// it was taken, then a plain value the caller owns.
struct ServiceStats {
  size_t queue_depth = 0;   ///< Queries waiting for dispatch right now.
  size_t pool_threads = 0;  ///< Size of the one shared pool.
  std::map<std::string, CollectionStats> collections;
};

}  // namespace pdx

#endif  // PDX_SERVE_SERVICE_STATS_H_
