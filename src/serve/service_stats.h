#ifndef PDX_SERVE_SERVICE_STATS_H_
#define PDX_SERVE_SERVICE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "benchlib/latency.h"

namespace pdx {

/// Per-collection serving counters. Every admitted query ends in exactly
/// one of completed/expired/cancelled; rejected queries were never
/// admitted.
struct CollectionStats {
  size_t count = 0;       ///< Vectors hosted (the collection's size).
  size_t admitted = 0;    ///< Accepted into the queue.
  size_t completed = 0;   ///< Searched and delivered OK.
  size_t rejected = 0;    ///< Turned away with kResourceExhausted.
  size_t expired = 0;     ///< Deadline passed before dispatch.
  size_t cancelled = 0;   ///< Cancel()/RemoveCollection/Shutdown.
  size_t dispatches = 0;  ///< Batched search calls; completed/dispatches
                          ///< is the achieved micro-batch size.
  /// Shards the hosted searcher fans each query out to (1 = unsharded).
  size_t shards = 1;
  /// How the collection got here: "built" from vectors, "mmap" restored
  /// from a collection file served off a live memory mapping, or "loaded"
  /// restored via the heap-copy fallback.
  std::string source = "built";
  /// Bytes of the collection file currently memory-mapped for this
  /// collection (0 unless source == "mmap").
  uint64_t mapped_bytes = 0;
  /// Per-shard count of shard-level query executions (each dispatched
  /// query bumps every shard it fanned out to); empty when unsharded.
  std::vector<uint64_t> shard_dispatches;
  /// Quantization tier this collection serves on ("none" or "u8").
  std::string quantization = "none";
  /// Over-fetch multiplier of the u8 tier's exact re-rank (0 = serve raw
  /// quantized distances); 0 on float collections.
  size_t rerank_factor = 0;
  /// Bytes of u8 codes resident for this collection (~count x dim on the
  /// u8 tier, summed across shards); 0 on float collections.
  uint64_t quantized_bytes = 0;
  /// Candidates the u8 tier re-ranked with exact float distances,
  /// lifetime; 0 on float collections.
  uint64_t rerank_candidates = 0;
  /// Completions per second over the recent ServiceConfig::qps_window:
  /// (n - 1) / span of the completions inside the window. 0 when the
  /// collection has been idle longer than the window — this is a *current*
  /// throughput gauge, not a lifetime average, so idle gaps do not dilute
  /// it forever.
  double qps = 0.0;
  LatencySummary queue_wait;  ///< Admission -> dispatch, ms.
  LatencySummary latency;     ///< Admission -> completion, ms (p50/p95/p99).

  // -- Mutable-collection (streaming ingest) shape and counters. ----------
  /// True when the collection accepts AddVectors/DeleteVectors (built from
  /// vectors by the service); false for adopted or index-backed searchers.
  bool is_mutable = false;
  size_t delta = 0;         ///< Rows in the append delta region right now.
  size_t delta_blocks = 0;  ///< PDX blocks in the delta region.
  size_t base_blocks = 0;   ///< PDX blocks in the immutable base store.
  size_t tombstones = 0;    ///< Dead slots awaiting compaction.
  uint64_t added = 0;       ///< Vectors ingested via AddVectors, lifetime.
  uint64_t deleted = 0;     ///< Vectors removed via DeleteVectors, lifetime.
  uint64_t compactions = 0; ///< Background compactions completed, lifetime.
};

/// One replicated dispatcher's share of the serving work.
struct DispatcherStats {
  /// Batches this dispatcher popped and ran (sums to the total of the
  /// per-collection CollectionStats::dispatches across the service).
  uint64_t dispatches = 0;
  /// Fraction of the recent ServiceConfig::qps_window this dispatcher
  /// spent inside dispatch (staging + search + result delivery), in
  /// [0, 1]. Windowed like CollectionStats::qps — a lifetime fraction
  /// would let one early idle period dilute the gauge forever — and
  /// covering completed DispatchBatch calls only, so it trails reality by
  /// at most one in-flight batch. Near-equal busy fractions mean the
  /// replicas split the load evenly; all near 1.0 means dispatch itself
  /// is the bottleneck — add dispatchers.
  double busy_fraction = 0.0;
};

/// Snapshot returned by SearchService::Stats(): consistent at the instant
/// it was taken, then a plain value the caller owns.
struct ServiceStats {
  size_t queue_depth = 0;   ///< Queries waiting for dispatch right now.
  size_t pool_threads = 0;  ///< Size of the one shared pool.
  /// SIMD tier the runtime dispatcher resolved for this process
  /// ("scalar", "avx2", "avx512"); fixed for the process lifetime.
  std::string isa;
  /// One entry per dispatcher thread (ServiceConfig::dispatchers).
  std::vector<DispatcherStats> dispatchers;
  std::map<std::string, CollectionStats> collections;
};

}  // namespace pdx

#endif  // PDX_SERVE_SERVICE_STATS_H_
