#ifndef PDX_LINALG_QR_H_
#define PDX_LINALG_QR_H_

#include "linalg/matrix.h"

namespace pdx {

/// Result of a QR decomposition A = Q * R with Q orthogonal and R upper
/// triangular.
struct QrDecomposition {
  Matrix q;
  Matrix r;
};

/// Householder QR decomposition of a square (or tall) matrix.
///
/// Used to orthogonalize a matrix of i.i.d. Gaussian entries into the random
/// orthogonal projection required by ADSampling. The R factor's diagonal
/// signs are normalized to be positive so that Q is drawn from the Haar
/// distribution rather than a biased one.
QrDecomposition HouseholderQr(const Matrix& a);

}  // namespace pdx

#endif  // PDX_LINALG_QR_H_
