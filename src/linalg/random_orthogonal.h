#ifndef PDX_LINALG_RANDOM_ORTHOGONAL_H_
#define PDX_LINALG_RANDOM_ORTHOGONAL_H_

#include "common/random.h"
#include "linalg/matrix.h"

namespace pdx {

/// Draws a D x D random orthogonal matrix from the Haar distribution.
///
/// This is the preprocessing transform of ADSampling: rotating the
/// collection (and queries) with a random orthogonal matrix makes every
/// dimension prefix of a vector an unbiased random sample of its direction,
/// which is what licenses the hypothesis-test distance approximation after
/// scanning only `d` of `D` dimensions.
///
/// Implementation: fill a matrix with i.i.d. N(0,1) entries and
/// orthogonalize it with Householder QR, normalizing diag(R) > 0 so the
/// result is Haar-distributed (Mezzadri 2007).
Matrix RandomOrthogonalMatrix(size_t dim, Rng& rng);

}  // namespace pdx

#endif  // PDX_LINALG_RANDOM_ORTHOGONAL_H_
