#include "linalg/qr.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace pdx {

QrDecomposition HouseholderQr(const Matrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  assert(m >= n);

  // Work in double precision internally; the factors are converted back to
  // float at the end. For D up to a few thousand this is fast enough and
  // avoids accumulating rounding error over the reflector sweep.
  std::vector<double> r(m * n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) r[i * n + j] = a.At(i, j);
  }
  std::vector<double> q(m * m, 0.0);
  for (size_t i = 0; i < m; ++i) q[i * m + i] = 1.0;

  std::vector<double> v(m);
  for (size_t k = 0; k < n; ++k) {
    // Build the Householder reflector that zeroes column k below the
    // diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r[i * n + k] * r[i * n + k];
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;

    const double alpha = (r[k * n + k] >= 0.0) ? -norm : norm;
    double vnorm2 = 0.0;
    for (size_t i = k; i < m; ++i) {
      v[i] = r[i * n + k];
      if (i == k) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;

    // R <- (I - 2 v v^T / v^T v) R, applied to columns k..n-1.
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i] * r[i * n + j];
      const double scale = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) r[i * n + j] -= scale * v[i];
    }
    // Q <- Q (I - 2 v v^T / v^T v); accumulate the product of reflectors.
    for (size_t i = 0; i < m; ++i) {
      double dot = 0.0;
      for (size_t l = k; l < m; ++l) dot += q[i * m + l] * v[l];
      const double scale = 2.0 * dot / vnorm2;
      for (size_t l = k; l < m; ++l) q[i * m + l] -= scale * v[l];
    }
  }

  // Normalize signs: make diag(R) positive so Q is Haar-distributed when A
  // has i.i.d. Gaussian entries (Mezzadri 2007).
  for (size_t k = 0; k < n; ++k) {
    if (r[k * n + k] < 0.0) {
      for (size_t j = k; j < n; ++j) r[k * n + j] = -r[k * n + j];
      for (size_t i = 0; i < m; ++i) q[i * m + k] = -q[i * m + k];
    }
  }

  QrDecomposition out;
  out.q = Matrix(m, m);
  out.r = Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      out.q.At(i, j) = static_cast<float>(q[i * m + j]);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      // Zero out the numerically tiny sub-diagonal residue.
      out.r.At(i, j) = (i > j) ? 0.0f : static_cast<float>(r[i * n + j]);
    }
  }
  return out;
}

}  // namespace pdx
