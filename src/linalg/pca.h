#ifndef PDX_LINALG_PCA_H_
#define PDX_LINALG_PCA_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace pdx {

/// Principal component analysis fitted on a sample of vectors.
///
/// This is the preprocessing transform of BSA: projecting onto the PCA
/// basis concentrates the collection's energy in the leading dimensions, so
/// the residual ("not yet scanned") tail of a distance computation is small
/// and tightly bounded early — which is exactly what BSA's Cauchy-Schwarz
/// pruning bound exploits.
class Pca {
 public:
  Pca() = default;

  /// Fits the PCA basis on `count` row-major `dim`-dimensional vectors.
  /// The basis always keeps all `dim` components (BSA projects to the full
  /// dimensionality; it reorders energy rather than truncating).
  ///
  /// When `max_samples` > 0 and `count` exceeds it, the covariance is
  /// estimated on an evenly strided deterministic subsample — the covariance
  /// estimate converges long before 10^5 vectors, while full-collection
  /// fitting is O(count * dim^2).
  void Fit(const float* data, size_t count, size_t dim,
           size_t max_samples = 0);

  /// Reassembles a fitted PCA from persisted parts — no covariance or
  /// eigen work. `components` rows are the principal components; the
  /// cached transpose is recomputed (deterministic).
  static Pca FromParts(std::vector<float> mean,
                       std::vector<float> explained_variance,
                       Matrix components);

  /// True once Fit has been called.
  bool fitted() const { return dim_ > 0; }

  size_t dim() const { return dim_; }

  /// Per-component variances (descending).
  const std::vector<float>& explained_variance() const {
    return explained_variance_;
  }

  /// Mean vector subtracted before projection.
  const std::vector<float>& mean() const { return mean_; }

  /// Projection matrix: rows are principal components (descending variance).
  const Matrix& components() const { return components_; }

  /// Projects one vector: out = components * (x - mean). `out` has dim()
  /// entries and may not alias `x`.
  void Transform(const float* x, float* out) const;

  /// Projects `count` vectors in-place semantics: `out` is count x dim.
  void TransformBatch(const float* data, size_t count, float* out) const;

  /// Reconstructs from the leading `k` components:
  /// out = mean + sum_{i<k} proj_i * component_i. Used by tests to verify
  /// that reconstruction error shrinks as k grows.
  void InverseTransform(const float* projected, size_t k, float* out) const;

 private:
  size_t dim_ = 0;
  std::vector<float> mean_;
  std::vector<float> explained_variance_;
  Matrix components_;    // dim x dim, rows = components.
  Matrix components_t_;  // Cached transpose for the fast query transform.
};

}  // namespace pdx

#endif  // PDX_LINALG_PCA_H_
