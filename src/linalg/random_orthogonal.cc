#include "linalg/random_orthogonal.h"

#include "linalg/qr.h"

namespace pdx {

Matrix RandomOrthogonalMatrix(size_t dim, Rng& rng) {
  Matrix gaussian(dim, dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      gaussian.At(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  return HouseholderQr(gaussian).q;
}

}  // namespace pdx
