#ifndef PDX_LINALG_MATRIX_H_
#define PDX_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

namespace pdx {

class Matrix;

/// Projects `count` row-major `in_dim`-vectors through `proj`
/// (out_dim x in_dim): out_row_i = proj * data_row_i.
///
/// Uses an i-k-j loop over a pre-transposed copy of `proj` so the inner
/// loop is a unit-stride FMA stream that auto-vectorizes; this is the hot
/// path when ADSampling/BSA preprocess a whole collection.
void ProjectBatch(const Matrix& proj, const float* data, size_t count,
                  float* out);

/// y = proj * x given the *pre-transposed* projection (in_dim x out_dim).
///
/// The k-j loop runs unit-stride over the output, so it auto-vectorizes —
/// unlike the row-wise dot products of Matrix::Apply, whose float
/// reductions the compiler must keep serial. This is the per-query
/// transform of ADSampling/BSA (Table 7's "query preprocessing" phase);
/// callers cache the transpose once per collection.
void ApplyPretransposed(const Matrix& proj_t, const float* x, float* y);

/// Dense row-major matrix of floats.
///
/// A deliberately small linear-algebra core: just what the ADSampling and
/// BSA preprocessing steps need (projection matrices, covariance,
/// mat-vec/mat-mat products). Heavy numerical work (QR, eigen) lives in
/// qr.h and eigen.h and runs once per collection, not per query.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix filled with zeros.
  Matrix(size_t rows, size_t cols);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Identity matrix of size n x n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r.
  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Matrix-matrix product (this * other). Dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product y = this * x; `x` has cols() entries.
  std::vector<float> Apply(const std::vector<float>& x) const;

  /// y = this * x with raw pointers; `x` has cols() entries, `y` rows().
  void Apply(const float* x, float* y) const;

  /// Frobenius distance to another matrix of identical shape.
  double FrobeniusDistance(const Matrix& other) const;

  /// Maximum absolute deviation of (this^T * this) from identity; a measure
  /// of column orthonormality.
  double OrthogonalityError() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace pdx

#endif  // PDX_LINALG_MATRIX_H_
