#include "linalg/pca.h"

#include <cassert>
#include <vector>

#include "linalg/eigen.h"

namespace pdx {

void Pca::Fit(const float* data, size_t count, size_t dim,
              size_t max_samples) {
  assert(count > 0 && dim > 0);
  dim_ = dim;

  // Deterministic strided subsample for covariance estimation.
  const size_t stride =
      (max_samples > 0 && count > max_samples) ? count / max_samples : 1;
  size_t sampled = 0;

  mean_.assign(dim, 0.0f);
  {
    std::vector<double> acc(dim, 0.0);
    for (size_t i = 0; i < count; i += stride) {
      const float* row = data + i * dim;
      for (size_t d = 0; d < dim; ++d) acc[d] += row[d];
      ++sampled;
    }
    for (size_t d = 0; d < dim; ++d) {
      mean_[d] = static_cast<float>(acc[d] / static_cast<double>(sampled));
    }
  }

  // Covariance in double precision, upper triangle then mirrored.
  std::vector<double> cov(dim * dim, 0.0);
  std::vector<double> centered(dim);
  for (size_t i = 0; i < count; i += stride) {
    const float* row = data + i * dim;
    for (size_t d = 0; d < dim; ++d) centered[d] = row[d] - mean_[d];
    for (size_t r = 0; r < dim; ++r) {
      const double cr = centered[r];
      double* cov_row = cov.data() + r * dim;
      for (size_t c = r; c < dim; ++c) cov_row[c] += cr * centered[c];
    }
  }
  const double scale = 1.0 / static_cast<double>(sampled);
  Matrix cov_matrix(dim, dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = r; c < dim; ++c) {
      const float value = static_cast<float>(cov[r * dim + c] * scale);
      cov_matrix.At(r, c) = value;
      cov_matrix.At(c, r) = value;
    }
  }

  EigenDecomposition eig = SymmetricEigen(cov_matrix);
  explained_variance_ = std::move(eig.eigenvalues);
  // Eigenvectors arrive as columns; store components as rows for cheap
  // row-major mat-vec in Transform, plus the transpose for the fast
  // per-query path.
  components_ = eig.eigenvectors.Transposed();
  components_t_ = eig.eigenvectors;
}

Pca Pca::FromParts(std::vector<float> mean,
                   std::vector<float> explained_variance,
                   Matrix components) {
  assert(components.rows() > 0 && components.cols() == mean.size());
  Pca pca;
  pca.dim_ = components.cols();
  pca.mean_ = std::move(mean);
  pca.explained_variance_ = std::move(explained_variance);
  pca.components_ = std::move(components);
  pca.components_t_ = pca.components_.Transposed();
  return pca;
}

void Pca::Transform(const float* x, float* out) const {
  assert(fitted());
  std::vector<float> centered(dim_);
  for (size_t d = 0; d < dim_; ++d) centered[d] = x[d] - mean_[d];
  ApplyPretransposed(components_t_, centered.data(), out);
}

void Pca::TransformBatch(const float* data, size_t count, float* out) const {
  assert(fitted());
  // proj(x - mean) == proj*x - proj*mean: run the fast batched GEMM and
  // subtract the precomputed mean offset afterwards.
  ProjectBatch(components_, data, count, out);
  std::vector<float> offset(dim_);
  components_.Apply(mean_.data(), offset.data());
  for (size_t i = 0; i < count; ++i) {
    float* row = out + i * dim_;
    for (size_t d = 0; d < dim_; ++d) row[d] -= offset[d];
  }
}

void Pca::InverseTransform(const float* projected, size_t k,
                           float* out) const {
  assert(fitted());
  assert(k <= dim_);
  std::vector<double> acc(mean_.begin(), mean_.end());
  for (size_t i = 0; i < k; ++i) {
    const float* component = components_.Row(i);
    const double weight = projected[i];
    for (size_t d = 0; d < dim_; ++d) acc[d] += weight * component[d];
  }
  for (size_t d = 0; d < dim_; ++d) out[d] = static_cast<float>(acc[d]);
}

}  // namespace pdx
