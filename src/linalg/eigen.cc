#include "linalg/eigen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace pdx {

EigenDecomposition JacobiEigenSymmetric(const Matrix& a, int max_sweeps,
                                        double tolerance) {
  const size_t n = a.rows();
  assert(a.cols() == n);

  // Double-precision working copies: rotations compound, floats drift.
  std::vector<double> m(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m[i * n + j] = a.At(i, j);
  }
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diagonal_mass = [&]() {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sum += m[i * n + j] * m[i * n + j];
    }
    return sum;
  };
  double diag_mass = 0.0;
  for (size_t i = 0; i < n; ++i) diag_mass += m[i * n + i] * m[i * n + i];
  const double stop = tolerance * std::max(diag_mass, 1.0);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_mass() <= stop) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        // Classic stable rotation computation (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double mkp = m[k * n + p];
          const double mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m[p * n + k];
          const double mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return m[x * n + x] > m[y * n + y];
  });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t src = order[rank];
    out.eigenvalues[rank] = static_cast<float>(m[src * n + src]);
    for (size_t row = 0; row < n; ++row) {
      out.eigenvectors.At(row, rank) = static_cast<float>(v[row * n + src]);
    }
  }
  return out;
}

namespace {

// Householder reduction of a real symmetric matrix to tridiagonal form
// (Numerical Recipes "tred2"). On exit `z` holds the accumulated orthogonal
// transform, `d` the diagonal and `e` the sub-diagonal.
void Tred2(std::vector<double>& z, size_t n, std::vector<double>& d,
           std::vector<double>& e) {
  for (size_t i = n - 1; i >= 1; --i) {
    const size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (size_t k = 0; k <= l; ++k) scale += std::fabs(z[i * n + k]);
      if (scale == 0.0) {
        e[i] = z[i * n + l];
      } else {
        for (size_t k = 0; k <= l; ++k) {
          z[i * n + k] /= scale;
          h += z[i * n + k] * z[i * n + k];
        }
        double f = z[i * n + l];
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z[i * n + l] = f - g;
        f = 0.0;
        for (size_t j = 0; j <= l; ++j) {
          z[j * n + i] = z[i * n + j] / h;
          g = 0.0;
          for (size_t k = 0; k <= j; ++k) g += z[j * n + k] * z[i * n + k];
          for (size_t k = j + 1; k <= l; ++k) {
            g += z[k * n + j] * z[i * n + k];
          }
          e[j] = g / h;
          f += e[j] * z[i * n + j];
        }
        const double hh = f / (h + h);
        for (size_t j = 0; j <= l; ++j) {
          f = z[i * n + j];
          e[j] = g = e[j] - hh * f;
          for (size_t k = 0; k <= j; ++k) {
            z[j * n + k] -= f * e[k] + g * z[i * n + k];
          }
        }
      }
    } else {
      e[i] = z[i * n + l];
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (size_t k = 0; k < i; ++k) g += z[i * n + k] * z[k * n + j];
        for (size_t k = 0; k < i; ++k) z[k * n + j] -= g * z[k * n + i];
      }
    }
    d[i] = z[i * n + i];
    z[i * n + i] = 1.0;
    for (size_t j = 0; j < i; ++j) {
      z[j * n + i] = 0.0;
      z[i * n + j] = 0.0;
    }
  }
}

inline double Pythag(double a, double b) {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

// Implicit-shift QL iteration on a tridiagonal matrix, accumulating the
// eigenvectors into z (Numerical Recipes "tqli").
void Tqli(std::vector<double>& d, std::vector<double>& e, size_t n,
          std::vector<double>& z) {
  for (size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (size_t l = 0; l < n; ++l) {
    int iterations = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        // 50 iterations is far beyond the worst case for well-formed input;
        // bail rather than loop forever on pathological NaN data.
        if (++iterations == 50) return;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Pythag(g, 1.0);
        const double sign_r = (g >= 0.0) ? std::fabs(r) : -std::fabs(r);
        g = d[m] - d[l] + e[l] / (g + sign_r);
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = Pythag(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (size_t k = 0; k < n; ++k) {
            f = z[k * n + i + 1];
            z[k * n + i + 1] = s * z[k * n + i] + c * f;
            z[k * n + i] = c * z[k * n + i] - s * f;
          }
        }
        if (r == 0.0 && m > l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

EigenDecomposition TridiagonalEigenSymmetric(const Matrix& a) {
  const size_t n = a.rows();
  assert(a.cols() == n);
  assert(n >= 1);

  std::vector<double> z(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) z[i * n + j] = a.At(i, j);
  }
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);
  if (n == 1) {
    d[0] = z[0];
    z[0] = 1.0;
  } else {
    Tred2(z, n, d, e);
    Tqli(d, e, n, z);
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return d[x] > d[y]; });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t src = order[rank];
    out.eigenvalues[rank] = static_cast<float>(d[src]);
    for (size_t row = 0; row < n; ++row) {
      out.eigenvectors.At(row, rank) = static_cast<float>(z[row * n + src]);
    }
  }
  return out;
}

EigenDecomposition SymmetricEigen(const Matrix& a) {
  // Jacobi is more accurate on tiny systems and trivially correct; the
  // tridiagonal path wins decisively beyond ~32x32.
  if (a.rows() <= 32) return JacobiEigenSymmetric(a);
  return TridiagonalEigenSymmetric(a);
}

}  // namespace pdx
