#include "linalg/matrix.h"

#include <cassert>
#include <cmath>

#include "common/parallel.h"

namespace pdx {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams through `other` row-wise, auto-vectorizes.
  for (size_t i = 0; i < rows_; ++i) {
    const float* a_row = Row(i);
    float* out_row = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const float a = a_row[k];
      const float* b_row = other.Row(k);
      for (size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

std::vector<float> Matrix::Apply(const std::vector<float>& x) const {
  assert(x.size() == cols_);
  std::vector<float> y(rows_, 0.0f);
  Apply(x.data(), y.data());
  return y;
}

void Matrix::Apply(const float* x, float* y) const {
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = Row(r);
    // Accumulate in double: projection quality feeds pruning-bound
    // correctness, so keep the per-row dot product well conditioned.
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += double(row[c]) * double(x[c]);
    y[r] = static_cast<float>(sum);
  }
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double sum = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double d = double(data_[i]) - double(other.data_[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

void ProjectBatch(const Matrix& proj, const float* data, size_t count,
                  float* out) {
  const size_t out_dim = proj.rows();
  const size_t in_dim = proj.cols();
  const Matrix proj_t = proj.Transposed();  // in_dim x out_dim.
  // Rows are independent: spread them over threads (preprocessing path).
  ParallelFor(count, [&](size_t i) {
    const float* x = data + i * in_dim;
    float* y = out + i * out_dim;
    for (size_t j = 0; j < out_dim; ++j) y[j] = 0.0f;
    for (size_t k = 0; k < in_dim; ++k) {
      const float xk = x[k];
      const float* pt_row = proj_t.Row(k);
      for (size_t j = 0; j < out_dim; ++j) y[j] += xk * pt_row[j];
    }
  });
}

void ApplyPretransposed(const Matrix& proj_t, const float* x, float* y) {
  const size_t in_dim = proj_t.rows();
  const size_t out_dim = proj_t.cols();
  for (size_t j = 0; j < out_dim; ++j) y[j] = 0.0f;
  for (size_t k = 0; k < in_dim; ++k) {
    const float xk = x[k];
    const float* row = proj_t.Row(k);
    for (size_t j = 0; j < out_dim; ++j) y[j] += xk * row[j];
  }
}

double Matrix::OrthogonalityError() const {
  double worst = 0.0;
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = i; j < cols_; ++j) {
      double dot = 0.0;
      for (size_t r = 0; r < rows_; ++r) {
        dot += double(At(r, i)) * double(At(r, j));
      }
      const double expected = (i == j) ? 1.0 : 0.0;
      worst = std::max(worst, std::fabs(dot - expected));
    }
  }
  return worst;
}

}  // namespace pdx
