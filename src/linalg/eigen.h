#ifndef PDX_LINALG_EIGEN_H_
#define PDX_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace pdx {

/// Eigendecomposition of a symmetric matrix: A = V diag(w) V^T.
///
/// `eigenvalues` are sorted in descending order; column i of `eigenvectors`
/// is the unit eigenvector for eigenvalues[i].
struct EigenDecomposition {
  std::vector<float> eigenvalues;
  Matrix eigenvectors;
};

/// Cyclic Jacobi eigensolver for symmetric matrices.
///
/// Runs sweeps of Jacobi rotations until the off-diagonal Frobenius mass
/// falls below `tolerance` (relative to the diagonal mass) or `max_sweeps`
/// is reached. O(D^3) *per sweep*, so only suitable for small matrices;
/// kept as a slow-but-simple oracle that the production solver is
/// cross-checked against in tests.
EigenDecomposition JacobiEigenSymmetric(const Matrix& a, int max_sweeps = 64,
                                        double tolerance = 1e-12);

/// Householder tridiagonalization + implicit-shift QL eigensolver.
///
/// The production path: a single O(D^3) reduction followed by O(D^2)
/// iterations, fast enough to fit PCA on D=1536 covariance matrices in
/// seconds (preprocessing time; the BSA paper flags this cost itself).
EigenDecomposition TridiagonalEigenSymmetric(const Matrix& a);

/// Dispatches to Jacobi for tiny matrices and tridiagonal QL otherwise.
EigenDecomposition SymmetricEigen(const Matrix& a);

}  // namespace pdx

#endif  // PDX_LINALG_EIGEN_H_
