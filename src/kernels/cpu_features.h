#ifndef PDX_KERNELS_CPU_FEATURES_H_
#define PDX_KERNELS_CPU_FEATURES_H_

#include <cstdint>
#include <string_view>

namespace pdx {

/// ISA tiers carried by the binary (Figure 11's cross-architecture sweep:
/// one binary, per-tier kernel columns, widest usable tier picked at load
/// time by the runtime dispatcher in kernel_dispatch.h).
enum class Isa : uint8_t {
  kScalar = 0,  ///< Portable scalar code (the paper's "Scalar ISA" column).
  kAvx2 = 1,    ///< 256-bit kernels (the paper's Zen3 tier).
  kAvx512 = 2,  ///< 512-bit kernels (the paper's Intel SPR / Zen4 tier).
  kBest = 3,    ///< Widest tier usable on this machine (resolved at load).
};

/// Human-readable tier name ("scalar", "avx2", "avx512", "best").
const char* IsaName(Isa isa);

/// Parses a tier name as accepted by the PDX_ISA environment override
/// ("scalar", "avx2", "avx512", "best"; ASCII case-insensitive). Returns
/// false (and leaves `out` untouched) on an unknown name.
bool ParseIsaName(std::string_view name, Isa* out);

/// What the *hardware and OS* support, probed once per process.
///
/// On x86-64 this is real cpuid plus xgetbv: a feature counts as usable
/// only when the CPU reports it AND the OS has enabled the matching XSAVE
/// state components (YMM for AVX2, ZMM/opmask/hi16 for AVX-512) — a kernel
/// that does not context-switch ZMM state must not receive AVX-512 code.
/// On AArch64 the probe reads getauxval(AT_HWCAP) for ASIMD. On anything
/// else every vector flag is false and the scalar tier serves.
struct CpuFeatures {
  bool avx2 = false;    ///< AVX2 + FMA + OSXSAVE + OS YMM state.
  bool avx512 = false;  ///< AVX-512 F/DQ/BW + OSXSAVE + OS ZMM state.
  bool neon = false;    ///< AArch64 ASIMD (advisory; no NEON tier yet).
};

/// The host's probe result (cached after the first call; thread-safe).
const CpuFeatures& HostCpuFeatures();

/// True when the *CPU/OS* can execute kernels of `isa` (kScalar and kBest
/// are always true). Says nothing about whether this binary carries the
/// tier — see IsaCarried()/IsaAvailable() in kernel_dispatch.h.
bool CpuSupportsIsa(Isa isa);

}  // namespace pdx

#endif  // PDX_KERNELS_CPU_FEATURES_H_
