#include "kernels/gather_kernels.h"

#include "kernels/kernel_dispatch.h"

// The gather bodies live in gather_kernels_inl.h, compiled per ISA tier
// inside src/kernels/isa/tier_*.cc; this TU forwards into the
// runtime-dispatched kernel table.

namespace pdx {

bool HasHardwareGather() { return IsaAvailable(Isa::kAvx2); }

void NaryGatherDistanceBatch(Metric metric, const float* query,
                             const float* data, size_t count, size_t dim,
                             float* out) {
  ActiveKernels().gather_batch(metric, query, data, count, dim, out);
}

}  // namespace pdx
