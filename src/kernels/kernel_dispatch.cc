#include "kernels/kernel_dispatch.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "kernels/isa/tier_tables.h"
#include "kernels/scalar_kernels.h"

namespace pdx {

namespace {

// The tier tables this binary carries, widest first. A getter returns
// nullptr when its translation unit could not be compiled with the tier's
// ISA flags (e.g. a non-x86 toolchain); the scalar tier is always carried.
const KernelTable* CarriedTable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return TierTableScalar();
    case Isa::kAvx2:
      return TierTableAvx2();
    case Isa::kAvx512:
      return TierTableAvx512();
    case Isa::kBest:
      return nullptr;  // kBest is a request, not a tier; resolved below.
  }
  return nullptr;
}

// Widest available tier at or below `isa` (kBest = widest of all).
// The scalar table is always carried and needs no CPU support, so this
// never fails.
const KernelTable& ClampToAvailable(Isa isa) {
  if (isa == Isa::kBest) isa = Isa::kAvx512;
  for (;;) {
    if (IsaAvailable(isa)) {
      const KernelTable* table = CarriedTable(isa);
      if (table != nullptr) return *table;
    }
    if (isa == Isa::kScalar) break;
    isa = static_cast<Isa>(static_cast<uint8_t>(isa) - 1);
  }
  const KernelTable* scalar = TierTableScalar();
  assert(scalar != nullptr && "scalar tier must always be carried");
  return *scalar;
}

// Resolve the process-wide dispatch tier once: widest available, clamped by
// the PDX_ISA override. Unknown or unavailable overrides warn on stderr and
// degrade rather than abort — a portable binary should never refuse to run.
const KernelTable& ResolveActiveTable() {
  Isa want = Isa::kBest;
  const char* env = std::getenv("PDX_ISA");
  if (env != nullptr && env[0] != '\0') {
    if (!ParseIsaName(env, &want)) {
      std::fprintf(stderr,
                   "pdx: unknown PDX_ISA=\"%s\" (expected scalar|avx2|avx512|"
                   "best); using best available tier\n",
                   env);
      want = Isa::kBest;
    } else if (want != Isa::kBest && !IsaAvailable(want)) {
      std::fprintf(stderr,
                   "pdx: PDX_ISA=%s not available on this host (carried by "
                   "binary: %s, supported by cpu: %s); degrading to the "
                   "widest available tier below it\n",
                   IsaName(want), IsaCarried(want) ? "yes" : "no",
                   CpuSupportsIsa(want) ? "yes" : "no");
    }
  }
  return ClampToAvailable(want);
}

}  // namespace

bool IsaCarried(Isa isa) {
  if (isa == Isa::kBest) return true;
  return CarriedTable(isa) != nullptr;
}

bool IsaAvailable(Isa isa) {
  if (isa == Isa::kBest) return true;
  return IsaCarried(isa) && CpuSupportsIsa(isa);
}

const KernelTable& GetKernelTable(Isa isa) { return ClampToAvailable(isa); }

const KernelTable& ActiveKernels() {
  static const KernelTable& table = ResolveActiveTable();
  return table;
}

Isa DispatchedIsa() { return ActiveKernels().isa; }

PairKernelFn GetNaryKernel(Metric metric, Isa isa) {
  const PairKernelFn fn = ClampToAvailable(isa).nary_pair(metric);
  if (fn != nullptr) return fn;
  // Unresolvable (metric, isa) pair: fall back to the scalar kernel of the
  // *requested metric* — degrading the ISA is safe, switching metrics is not.
  assert(false && "tier table is missing a metric kernel");
  switch (metric) {
    case Metric::kL2:
      return &ScalarL2;
    case Metric::kIp:
      return &ScalarIp;
    case Metric::kL1:
      return &ScalarL1;
  }
  return &ScalarL2;
}

void NaryDistanceBatchIsa(Metric metric, Isa isa, const float* query,
                          const float* data, size_t count, size_t dim,
                          float* out) {
  ClampToAvailable(isa).nary_batch(metric, query, data, count, dim, out);
}

}  // namespace pdx
