#include "kernels/kernel_dispatch.h"

#include "kernels/nary_kernels.h"
#include "kernels/scalar_kernels.h"

namespace pdx {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kBest:
      return "best";
  }
  return "unknown";
}

bool IsaAvailable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
    case Isa::kBest:
      return true;
    case Isa::kAvx2:
      return HasAvx2();
    case Isa::kAvx512:
      return HasAvx512();
  }
  return false;
}

PairKernelFn GetNaryKernel(Metric metric, Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      switch (metric) {
        case Metric::kL2:
          return &ScalarL2;
        case Metric::kIp:
          return &ScalarIp;
        case Metric::kL1:
          return &ScalarL1;
      }
      break;
    case Isa::kAvx2:
      switch (metric) {
        case Metric::kL2:
          return &NaryL2Avx2;
        case Metric::kIp:
          return &NaryIpAvx2;
        case Metric::kL1:
          return &NaryL1Avx2;
      }
      break;
    case Isa::kAvx512:
      switch (metric) {
        case Metric::kL2:
          return &NaryL2Avx512;
        case Metric::kIp:
          return &NaryIpAvx512;
        case Metric::kL1:
          return &NaryL1Avx512;
      }
      break;
    case Isa::kBest:
      switch (metric) {
        case Metric::kL2:
          return &NaryL2;
        case Metric::kIp:
          return &NaryIp;
        case Metric::kL1:
          return &NaryL1;
      }
      break;
  }
  return &ScalarL2;
}

void NaryDistanceBatchIsa(Metric metric, Isa isa, const float* query,
                          const float* data, size_t count, size_t dim,
                          float* out) {
  const PairKernelFn kernel = GetNaryKernel(metric, isa);
  for (size_t i = 0; i < count; ++i) {
    out[i] = kernel(query, data + i * dim, dim);
  }
}

}  // namespace pdx
