#include "kernels/nary_kernels.h"

#include "kernels/kernel_dispatch.h"

// The intrinsics bodies live in nary_kernels_inl.h, compiled per ISA tier
// inside src/kernels/isa/tier_*.cc. This TU only forwards the historical
// public entry points into the runtime-dispatched kernel tables.

namespace pdx {

float NaryL2(const float* a, const float* b, size_t dim) {
  return ActiveKernels().nary_pair(Metric::kL2)(a, b, dim);
}

float NaryIp(const float* a, const float* b, size_t dim) {
  return ActiveKernels().nary_pair(Metric::kIp)(a, b, dim);
}

float NaryL1(const float* a, const float* b, size_t dim) {
  return ActiveKernels().nary_pair(Metric::kL1)(a, b, dim);
}

float NaryDistance(Metric metric, const float* a, const float* b,
                   size_t dim) {
  return ActiveKernels().nary_pair(metric)(a, b, dim);
}

void NaryDistanceBatch(Metric metric, const float* query, const float* data,
                       size_t count, size_t dim, float* out) {
  ActiveKernels().nary_batch(metric, query, data, count, dim, out);
}

// Per-tier entry points: resolve the (metric, tier) kernel once, then call
// straight through the cached pointer.

float NaryL2Avx512(const float* a, const float* b, size_t dim) {
  static const PairKernelFn fn = GetNaryKernel(Metric::kL2, Isa::kAvx512);
  return fn(a, b, dim);
}

float NaryIpAvx512(const float* a, const float* b, size_t dim) {
  static const PairKernelFn fn = GetNaryKernel(Metric::kIp, Isa::kAvx512);
  return fn(a, b, dim);
}

float NaryL1Avx512(const float* a, const float* b, size_t dim) {
  static const PairKernelFn fn = GetNaryKernel(Metric::kL1, Isa::kAvx512);
  return fn(a, b, dim);
}

float NaryL2Avx2(const float* a, const float* b, size_t dim) {
  static const PairKernelFn fn = GetNaryKernel(Metric::kL2, Isa::kAvx2);
  return fn(a, b, dim);
}

float NaryIpAvx2(const float* a, const float* b, size_t dim) {
  static const PairKernelFn fn = GetNaryKernel(Metric::kIp, Isa::kAvx2);
  return fn(a, b, dim);
}

float NaryL1Avx2(const float* a, const float* b, size_t dim) {
  static const PairKernelFn fn = GetNaryKernel(Metric::kL1, Isa::kAvx2);
  return fn(a, b, dim);
}

bool HasAvx512() { return IsaAvailable(Isa::kAvx512); }

bool HasAvx2() { return IsaAvailable(Isa::kAvx2); }

}  // namespace pdx
