#include "kernels/nary_kernels.h"

#include <cmath>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

// GCC's own _mm512_reduce_add_ps expands through _mm256_undefined_pd, which
// trips -Wuninitialized inside the compiler's intrinsics headers.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

#include "kernels/scalar_kernels.h"

namespace pdx {

// ---------------------------------------------------------------------------
// AVX-512 kernels (SimSIMD style: two accumulators, FMA, final reduce).
// ---------------------------------------------------------------------------

#if defined(__AVX512F__)

bool HasAvx512() { return true; }

float NaryL2Avx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 32 <= dim; d += 32) {
    const __m512 va0 = _mm512_loadu_ps(a + d);
    const __m512 vb0 = _mm512_loadu_ps(b + d);
    const __m512 va1 = _mm512_loadu_ps(a + d + 16);
    const __m512 vb1 = _mm512_loadu_ps(b + d + 16);
    const __m512 diff0 = _mm512_sub_ps(va0, vb0);
    const __m512 diff1 = _mm512_sub_ps(va1, vb1);
    acc0 = _mm512_fmadd_ps(diff0, diff0, acc0);
    acc1 = _mm512_fmadd_ps(diff1, diff1, acc1);
  }
  if (d + 16 <= dim) {
    const __m512 va = _mm512_loadu_ps(a + d);
    const __m512 vb = _mm512_loadu_ps(b + d);
    const __m512 diff = _mm512_sub_ps(va, vb);
    acc0 = _mm512_fmadd_ps(diff, diff, acc0);
    d += 16;
  }
  if (d < dim) {
    // Masked tail load, as SimSIMD does on AVX-512.
    const __mmask16 mask = static_cast<__mmask16>((1u << (dim - d)) - 1);
    const __m512 va = _mm512_maskz_loadu_ps(mask, a + d);
    const __m512 vb = _mm512_maskz_loadu_ps(mask, b + d);
    const __m512 diff = _mm512_sub_ps(va, vb);
    acc1 = _mm512_fmadd_ps(diff, diff, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float NaryIpAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 32 <= dim; d += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + d + 16),
                           _mm512_loadu_ps(b + d + 16), acc1);
  }
  if (d + 16 <= dim) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d),
                           acc0);
    d += 16;
  }
  if (d < dim) {
    const __mmask16 mask = static_cast<__mmask16>((1u << (dim - d)) - 1);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, a + d),
                           _mm512_maskz_loadu_ps(mask, b + d), acc1);
  }
  return -_mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float NaryL1Avx512(const float* a, const float* b, size_t dim) {
  const __m512 sign_mask = _mm512_set1_ps(-0.0f);
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    const __m512 diff =
        _mm512_sub_ps(_mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d));
    acc = _mm512_add_ps(acc, _mm512_andnot_ps(sign_mask, diff));
  }
  if (d < dim) {
    const __mmask16 mask = static_cast<__mmask16>((1u << (dim - d)) - 1);
    const __m512 diff = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + d),
                                      _mm512_maskz_loadu_ps(mask, b + d));
    acc = _mm512_add_ps(acc, _mm512_andnot_ps(sign_mask, diff));
  }
  return _mm512_reduce_add_ps(acc);
}

#else  // !__AVX512F__

bool HasAvx512() { return false; }
float NaryL2Avx512(const float* a, const float* b, size_t dim) {
  return NaryL2Avx2(a, b, dim);
}
float NaryIpAvx512(const float* a, const float* b, size_t dim) {
  return NaryIpAvx2(a, b, dim);
}
float NaryL1Avx512(const float* a, const float* b, size_t dim) {
  return NaryL1Avx2(a, b, dim);
}

#endif  // __AVX512F__

// ---------------------------------------------------------------------------
// AVX2 kernels.
// ---------------------------------------------------------------------------

#if defined(__AVX2__)

namespace {

inline float ReduceAdd256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_movehdup_ps(sum));
  return _mm_cvtss_f32(sum);
}

}  // namespace

bool HasAvx2() { return true; }

float NaryL2Avx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    const __m256 diff0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    const __m256 diff1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + d + 8), _mm256_loadu_ps(b + d + 8));
    acc0 = _mm256_fmadd_ps(diff0, diff0, acc0);
    acc1 = _mm256_fmadd_ps(diff1, diff1, acc1);
  }
  if (d + 8 <= dim) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    acc0 = _mm256_fmadd_ps(diff, diff, acc0);
    d += 8;
  }
  float sum = ReduceAdd256(_mm256_add_ps(acc0, acc1));
  for (; d < dim; ++d) {
    const float diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

float NaryIpAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + d + 8),
                           _mm256_loadu_ps(b + d + 8), acc1);
  }
  if (d + 8 <= dim) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d),
                           acc0);
    d += 8;
  }
  float sum = ReduceAdd256(_mm256_add_ps(acc0, acc1));
  for (; d < dim; ++d) sum += a[d] * b[d];
  return -sum;
}

float NaryL1Avx2(const float* a, const float* b, size_t dim) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, diff));
  }
  float sum = ReduceAdd256(acc);
  for (; d < dim; ++d) sum += std::fabs(a[d] - b[d]);
  return sum;
}

#else  // !__AVX2__

bool HasAvx2() { return false; }
float NaryL2Avx2(const float* a, const float* b, size_t dim) {
  return ScalarL2(a, b, dim);
}
float NaryIpAvx2(const float* a, const float* b, size_t dim) {
  return ScalarIp(a, b, dim);
}
float NaryL1Avx2(const float* a, const float* b, size_t dim) {
  return ScalarL1(a, b, dim);
}

#endif  // __AVX2__

// ---------------------------------------------------------------------------
// Best-available dispatch.
// ---------------------------------------------------------------------------

float NaryL2(const float* a, const float* b, size_t dim) {
#if defined(__AVX512F__)
  return NaryL2Avx512(a, b, dim);
#elif defined(__AVX2__)
  return NaryL2Avx2(a, b, dim);
#else
  return ScalarL2(a, b, dim);
#endif
}

float NaryIp(const float* a, const float* b, size_t dim) {
#if defined(__AVX512F__)
  return NaryIpAvx512(a, b, dim);
#elif defined(__AVX2__)
  return NaryIpAvx2(a, b, dim);
#else
  return ScalarIp(a, b, dim);
#endif
}

float NaryL1(const float* a, const float* b, size_t dim) {
#if defined(__AVX512F__)
  return NaryL1Avx512(a, b, dim);
#elif defined(__AVX2__)
  return NaryL1Avx2(a, b, dim);
#else
  return ScalarL1(a, b, dim);
#endif
}

float NaryDistance(Metric metric, const float* a, const float* b,
                   size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return NaryL2(a, b, dim);
    case Metric::kIp:
      return NaryIp(a, b, dim);
    case Metric::kL1:
      return NaryL1(a, b, dim);
  }
  return 0.0f;
}

void NaryDistanceBatch(Metric metric, const float* query, const float* data,
                       size_t count, size_t dim, float* out) {
  switch (metric) {
    case Metric::kL2:
      for (size_t i = 0; i < count; ++i) {
        out[i] = NaryL2(query, data + i * dim, dim);
      }
      break;
    case Metric::kIp:
      for (size_t i = 0; i < count; ++i) {
        out[i] = NaryIp(query, data + i * dim, dim);
      }
      break;
    case Metric::kL1:
      for (size_t i = 0; i < count; ++i) {
        out[i] = NaryL1(query, data + i * dim, dim);
      }
      break;
  }
}

}  // namespace pdx
