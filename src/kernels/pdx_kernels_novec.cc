// Vectorization-disabled build of the PDX kernels (see src/CMakeLists.txt:
// this TU is compiled with -fno-tree-vectorize -fno-tree-slp-vectorize).
//
// Supports the Section 6.3 ablation: even with auto-vectorization off, the
// PDX dimension-by-dimension search keeps ~1.8x over the horizontal layout
// from better access patterns and branchless structure alone.

#include <cstring>

#include "kernels/pdx_kernels.h"
#include "kernels/pdx_kernels_inl.h"

namespace pdx {

void PdxAccumulateNovec(Metric metric, const float* query, const float* block,
                        size_t n, size_t d_start, size_t d_end,
                        float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::Accumulate<Metric::kL2>(query, block, n, d_start, d_end,
                                        distances);
      break;
    case Metric::kIp:
      internal::Accumulate<Metric::kIp>(query, block, n, d_start, d_end,
                                        distances);
      break;
    case Metric::kL1:
      internal::Accumulate<Metric::kL1>(query, block, n, d_start, d_end,
                                        distances);
      break;
  }
}

void PdxLinearScanNovec(Metric metric, const float* query, const float* block,
                        size_t n, size_t dim, float* distances) {
  std::memset(distances, 0, n * sizeof(float));
  PdxAccumulateNovec(metric, query, block, n, 0, dim, distances);
}

}  // namespace pdx
