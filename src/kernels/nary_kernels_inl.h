#ifndef PDX_KERNELS_NARY_KERNELS_INL_H_
#define PDX_KERNELS_NARY_KERNELS_INL_H_

// Implementation of the horizontal ("N-ary") SIMD kernels, included by the
// per-ISA tier translation units (src/kernels/isa/tier_*.cc). Each tier TU
// is compiled with its own -m flags, so the preprocessor guards below
// select exactly the intrinsics that TU may use; everything is
// `static inline` so each TU gets an internal-linkage copy compiled under
// its own flags (no COMDAT merging of, say, an AVX2 body compiled inside
// the AVX-512 TU into the AVX2 tier).
//
// The kernels mirror the state of the art the paper benchmarks against:
// L2/IP follow SimSIMD (used by USearch), L1 follows FAISS. Each processes
// one vector pair with multiple accumulator registers and finishes with a
// horizontal register reduction — the step the PDX layout eliminates.
// Return values are ordering keys (squared L2 / negated IP / L1).

#include <cmath>
#include <cstddef>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

// GCC's own _mm512_reduce_add_ps expands through _mm256_undefined_pd, which
// trips -Wuninitialized inside the compiler's intrinsics headers.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace pdx {
namespace naryimpl {

// ---------------------------------------------------------------------------
// AVX-512 kernels (SimSIMD style: two accumulators, FMA, final reduce).
// ---------------------------------------------------------------------------

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512BW__)
#define PDX_NARY_HAVE_AVX512 1

static inline float L2Avx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 32 <= dim; d += 32) {
    const __m512 va0 = _mm512_loadu_ps(a + d);
    const __m512 vb0 = _mm512_loadu_ps(b + d);
    const __m512 va1 = _mm512_loadu_ps(a + d + 16);
    const __m512 vb1 = _mm512_loadu_ps(b + d + 16);
    const __m512 diff0 = _mm512_sub_ps(va0, vb0);
    const __m512 diff1 = _mm512_sub_ps(va1, vb1);
    acc0 = _mm512_fmadd_ps(diff0, diff0, acc0);
    acc1 = _mm512_fmadd_ps(diff1, diff1, acc1);
  }
  if (d + 16 <= dim) {
    const __m512 va = _mm512_loadu_ps(a + d);
    const __m512 vb = _mm512_loadu_ps(b + d);
    const __m512 diff = _mm512_sub_ps(va, vb);
    acc0 = _mm512_fmadd_ps(diff, diff, acc0);
    d += 16;
  }
  if (d < dim) {
    // Masked tail load, as SimSIMD does on AVX-512.
    const __mmask16 mask = static_cast<__mmask16>((1u << (dim - d)) - 1);
    const __m512 va = _mm512_maskz_loadu_ps(mask, a + d);
    const __m512 vb = _mm512_maskz_loadu_ps(mask, b + d);
    const __m512 diff = _mm512_sub_ps(va, vb);
    acc1 = _mm512_fmadd_ps(diff, diff, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

static inline float IpAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 32 <= dim; d += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + d + 16),
                           _mm512_loadu_ps(b + d + 16), acc1);
  }
  if (d + 16 <= dim) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d),
                           acc0);
    d += 16;
  }
  if (d < dim) {
    const __mmask16 mask = static_cast<__mmask16>((1u << (dim - d)) - 1);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, a + d),
                           _mm512_maskz_loadu_ps(mask, b + d), acc1);
  }
  return -_mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

static inline float L1Avx512(const float* a, const float* b, size_t dim) {
  const __m512 sign_mask = _mm512_set1_ps(-0.0f);
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    const __m512 diff =
        _mm512_sub_ps(_mm512_loadu_ps(a + d), _mm512_loadu_ps(b + d));
    acc = _mm512_add_ps(acc, _mm512_andnot_ps(sign_mask, diff));
  }
  if (d < dim) {
    const __mmask16 mask = static_cast<__mmask16>((1u << (dim - d)) - 1);
    const __m512 diff = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + d),
                                      _mm512_maskz_loadu_ps(mask, b + d));
    acc = _mm512_add_ps(acc, _mm512_andnot_ps(sign_mask, diff));
  }
  return _mm512_reduce_add_ps(acc);
}

#endif  // AVX-512

// ---------------------------------------------------------------------------
// AVX2 kernels.
// ---------------------------------------------------------------------------

#if defined(__AVX2__) && defined(__FMA__)
#define PDX_NARY_HAVE_AVX2 1

static inline float ReduceAdd256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_movehdup_ps(sum));
  return _mm_cvtss_f32(sum);
}

static inline float L2Avx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    const __m256 diff0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    const __m256 diff1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + d + 8), _mm256_loadu_ps(b + d + 8));
    acc0 = _mm256_fmadd_ps(diff0, diff0, acc0);
    acc1 = _mm256_fmadd_ps(diff1, diff1, acc1);
  }
  if (d + 8 <= dim) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    acc0 = _mm256_fmadd_ps(diff, diff, acc0);
    d += 8;
  }
  float sum = ReduceAdd256(_mm256_add_ps(acc0, acc1));
  for (; d < dim; ++d) {
    const float diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

static inline float IpAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + d + 8),
                           _mm256_loadu_ps(b + d + 8), acc1);
  }
  if (d + 8 <= dim) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d),
                           acc0);
    d += 8;
  }
  float sum = ReduceAdd256(_mm256_add_ps(acc0, acc1));
  for (; d < dim; ++d) sum += a[d] * b[d];
  return -sum;
}

static inline float L1Avx2(const float* a, const float* b, size_t dim) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + d), _mm256_loadu_ps(b + d));
    acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, diff));
  }
  float sum = ReduceAdd256(acc);
  for (; d < dim; ++d) sum += std::fabs(a[d] - b[d]);
  return sum;
}

#endif  // AVX2

}  // namespace naryimpl
}  // namespace pdx

#endif  // PDX_KERNELS_NARY_KERNELS_INL_H_
