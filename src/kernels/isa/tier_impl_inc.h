// One ISA tier's column of every hot kernel family, included by exactly one
// tier translation unit (tier_scalar.cc / tier_avx2.cc / tier_avx512.cc)
// after defining:
//
//   PDX_TIER_ISA          — the Isa enumerator this TU implements
//   PDX_TIER_MAX          — 0 scalar, 1 avx2, 2 avx512: the widest impl
//                           this tier may select even if the TU's flags
//                           would allow more
//   PDX_TIER_TABLE_GETTER — name of the pdx::TierTable*() getter to define
//
// The TU is compiled by CMake with the tier's -m flags and with
// -ffp-contract=off, so:
//   * the PDX vertical templates (pdx_kernels_inl.h) auto-vectorize at
//     exactly this tier's width, and with FMA contraction pinned off their
//     per-lane results are bit-exact across every tier (the per-lane
//     accumulation order is identical by construction — SIMD runs across
//     lanes, never within one lane's sum);
//   * the n-ary/gather intrinsics (nary_kernels_inl.h, gather_kernels_inl.h)
//     compile only where the flags allow, and everything is internal
//     linkage so no other tier can end up linking this TU's codegen.
//
// If the toolchain could not provide the tier's flags, the getter returns
// nullptr and the dispatcher treats the tier as not carried.

#include <cstring>

#include "kernels/isa/tier_tables.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/pdx_kernels_inl.h"
#include "kernels/quant_kernels_inl.h"
#include "kernels/nary_kernels_inl.h"
#include "kernels/gather_kernels_inl.h"
#include "kernels/scalar_kernels.h"

#if PDX_TIER_MAX == 0
#define PDX_TIER_GENUINE 1
#elif PDX_TIER_MAX == 1 && PDX_NARY_HAVE_AVX2
#define PDX_TIER_GENUINE 1
#elif PDX_TIER_MAX == 2 && PDX_NARY_HAVE_AVX512
#define PDX_TIER_GENUINE 1
#else
#define PDX_TIER_GENUINE 0
#endif

namespace pdx {
namespace {

// --- PDX verticals: metric switch into this TU's template instantiations --

void TierAccumulate(Metric metric, const float* query, const float* block,
                    size_t n, size_t d_start, size_t d_end,
                    float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::Accumulate<Metric::kL2>(query, block, n, d_start, d_end,
                                        distances);
      break;
    case Metric::kIp:
      internal::Accumulate<Metric::kIp>(query, block, n, d_start, d_end,
                                        distances);
      break;
    case Metric::kL1:
      internal::Accumulate<Metric::kL1>(query, block, n, d_start, d_end,
                                        distances);
      break;
  }
}

void TierAccumulateDims(Metric metric, const float* query, const float* block,
                        size_t n, const uint32_t* dims, size_t dims_count,
                        float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::AccumulateDims<Metric::kL2>(query, block, n, dims, dims_count,
                                            distances);
      break;
    case Metric::kIp:
      internal::AccumulateDims<Metric::kIp>(query, block, n, dims, dims_count,
                                            distances);
      break;
    case Metric::kL1:
      internal::AccumulateDims<Metric::kL1>(query, block, n, dims, dims_count,
                                            distances);
      break;
  }
}

void TierAccumulatePositions(Metric metric, const float* query,
                             const float* block, size_t n, size_t d_start,
                             size_t d_end, const uint32_t* positions,
                             size_t position_count, float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::AccumulatePositions<Metric::kL2>(query, block, n, d_start,
                                                 d_end, positions,
                                                 position_count, distances);
      break;
    case Metric::kIp:
      internal::AccumulatePositions<Metric::kIp>(query, block, n, d_start,
                                                 d_end, positions,
                                                 position_count, distances);
      break;
    case Metric::kL1:
      internal::AccumulatePositions<Metric::kL1>(query, block, n, d_start,
                                                 d_end, positions,
                                                 position_count, distances);
      break;
  }
}

void TierAccumulateDimsPositions(Metric metric, const float* query,
                                 const float* block, size_t n,
                                 const uint32_t* dims, size_t dims_count,
                                 const uint32_t* positions,
                                 size_t position_count, float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::AccumulateDimsPositions<Metric::kL2>(
          query, block, n, dims, dims_count, positions, position_count,
          distances);
      break;
    case Metric::kIp:
      internal::AccumulateDimsPositions<Metric::kIp>(
          query, block, n, dims, dims_count, positions, position_count,
          distances);
      break;
    case Metric::kL1:
      internal::AccumulateDimsPositions<Metric::kL1>(
          query, block, n, dims, dims_count, positions, position_count,
          distances);
      break;
  }
}

void TierLinearScan(Metric metric, const float* query, const float* block,
                    size_t n, size_t dim, float* distances) {
  std::memset(distances, 0, n * sizeof(float));
  TierAccumulate(metric, query, block, n, 0, dim, distances);
}

// --- N-ary pair kernels: the widest implementation this tier may use ------

#if PDX_TIER_MAX >= 2 && PDX_NARY_HAVE_AVX512
constexpr PairKernelFn kTierNaryL2 = &naryimpl::L2Avx512;
constexpr PairKernelFn kTierNaryIp = &naryimpl::IpAvx512;
constexpr PairKernelFn kTierNaryL1 = &naryimpl::L1Avx512;
#elif PDX_TIER_MAX >= 1 && PDX_NARY_HAVE_AVX2
constexpr PairKernelFn kTierNaryL2 = &naryimpl::L2Avx2;
constexpr PairKernelFn kTierNaryIp = &naryimpl::IpAvx2;
constexpr PairKernelFn kTierNaryL1 = &naryimpl::L1Avx2;
#else
constexpr PairKernelFn kTierNaryL2 = &ScalarL2;
constexpr PairKernelFn kTierNaryIp = &ScalarIp;
constexpr PairKernelFn kTierNaryL1 = &ScalarL1;
#endif

void TierNaryBatch(Metric metric, const float* query, const float* data,
                   size_t count, size_t dim, float* out) {
  // Per-metric loops over a constexpr kernel pointer: the calls resolve at
  // compile time inside this TU (no per-vector indirect call).
  switch (metric) {
    case Metric::kL2:
      for (size_t i = 0; i < count; ++i) {
        out[i] = kTierNaryL2(query, data + i * dim, dim);
      }
      break;
    case Metric::kIp:
      for (size_t i = 0; i < count; ++i) {
        out[i] = kTierNaryIp(query, data + i * dim, dim);
      }
      break;
    case Metric::kL1:
      for (size_t i = 0; i < count; ++i) {
        out[i] = kTierNaryL1(query, data + i * dim, dim);
      }
      break;
  }
}

void TierGatherBatch(Metric metric, const float* query, const float* data,
                     size_t count, size_t dim, float* out) {
  gatherimpl::GatherBatch(metric, query, data, count, dim, out);
}

void TierQuantAccumulate(const float* query_prime, const float* weights,
                         const uint8_t* block, size_t n, size_t d_start,
                         size_t d_end, float* distances) {
  internal::QuantAccumulate(query_prime, weights, block, n, d_start, d_end,
                            distances);
}

const KernelTable kTierTable = {
    /*isa=*/PDX_TIER_ISA,
    /*nary=*/{kTierNaryL2, kTierNaryIp, kTierNaryL1},
    /*nary_batch=*/&TierNaryBatch,
    /*pdx_accumulate=*/&TierAccumulate,
    /*pdx_accumulate_dims=*/&TierAccumulateDims,
    /*pdx_accumulate_positions=*/&TierAccumulatePositions,
    /*pdx_accumulate_dims_positions=*/&TierAccumulateDimsPositions,
    /*pdx_linear_scan=*/&TierLinearScan,
    /*gather_batch=*/&TierGatherBatch,
    /*quant_accumulate=*/&TierQuantAccumulate,
};

}  // namespace

const KernelTable* PDX_TIER_TABLE_GETTER() {
#if PDX_TIER_GENUINE
  return &kTierTable;
#else
  return nullptr;
#endif
}

}  // namespace pdx
