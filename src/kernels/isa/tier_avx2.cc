// AVX2 tier: built with -mavx2 -mfma (the paper's Zen3 tier). If the
// toolchain cannot provide the flags, TierTableAvx2() returns nullptr and
// the tier is not carried.

#include "kernels/cpu_features.h"

#define PDX_TIER_ISA Isa::kAvx2
#define PDX_TIER_MAX 1
#define PDX_TIER_TABLE_GETTER TierTableAvx2

#include "kernels/isa/tier_impl_inc.h"
