// AVX-512 tier: built with -mavx512f -mavx512dq -mavx512bw (plus AVX2/FMA,
// which those imply) — the paper's Intel SPR / Zen4 tier. If the toolchain
// cannot provide the flags, TierTableAvx512() returns nullptr and the tier
// is not carried.

#include "kernels/cpu_features.h"

#define PDX_TIER_ISA Isa::kAvx512
#define PDX_TIER_MAX 2
#define PDX_TIER_TABLE_GETTER TierTableAvx512

#include "kernels/isa/tier_impl_inc.h"
