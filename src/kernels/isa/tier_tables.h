#ifndef PDX_KERNELS_ISA_TIER_TABLES_H_
#define PDX_KERNELS_ISA_TIER_TABLES_H_

// Private seam between kernel_dispatch.cc and the per-ISA tier translation
// units (tier_scalar.cc / tier_avx2.cc / tier_avx512.cc, each compiled as
// its own CMake object library with explicit -m flags). A getter returns
// nullptr when its TU was NOT compiled with the tier's ISA flags (e.g. a
// non-x86 toolchain): the tier is then simply not carried by this binary.

namespace pdx {

struct KernelTable;

const KernelTable* TierTableScalar();
const KernelTable* TierTableAvx2();
const KernelTable* TierTableAvx512();

}  // namespace pdx

#endif  // PDX_KERNELS_ISA_TIER_TABLES_H_
