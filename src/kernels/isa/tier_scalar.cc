// Scalar tier: portable baseline codegen. Built with NO -m flags (and
// -ffp-contract=off like every tier), so the vertical kernels are what any
// x86-64/AArch64 baseline compiler produces — the cross-tier bit-exactness
// oracle and the PDX_ISA=scalar CI fallback.

#include "kernels/cpu_features.h"

#define PDX_TIER_ISA Isa::kScalar
#define PDX_TIER_MAX 0
#define PDX_TIER_TABLE_GETTER TierTableScalar

#include "kernels/isa/tier_impl_inc.h"
