#ifndef PDX_KERNELS_GATHER_KERNELS_H_
#define PDX_KERNELS_GATHER_KERNELS_H_

#include <cstddef>

#include "common/types.h"

namespace pdx {

/// N-ary + Gather kernel (Section 7, Figure 12): runs the PDX
/// dimension-at-a-time computation directly on *horizontal* storage by
/// transposing 64-vector groups on the fly with SIMD gather instructions
/// (strided loads where gathers are unavailable).
///
/// This answers "why store PDX at all, instead of gathering at query
/// time?": the gather's micro-op cost and cache-unfriendly access make this
/// kernel slower than both plain N-ary SIMD and true PDX — hence the paper's
/// conclusion that the layout must be materialized.
///
/// `data` is row-major (count x dim); `out[i]` receives the ordering key of
/// vector i.
void NaryGatherDistanceBatch(Metric metric, const float* query,
                             const float* data, size_t count, size_t dim,
                             float* out);

/// True when the hardware-gather (AVX2) path is runnable on this host —
/// carried by the binary AND supported by the running CPU/OS.
bool HasHardwareGather();

}  // namespace pdx

#endif  // PDX_KERNELS_GATHER_KERNELS_H_
