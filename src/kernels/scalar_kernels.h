#ifndef PDX_KERNELS_SCALAR_KERNELS_H_
#define PDX_KERNELS_SCALAR_KERNELS_H_

#include <cstddef>

#include "common/types.h"

namespace pdx {

/// Plain scalar distance kernels over the horizontal layout.
///
/// These serve three roles: (1) the correctness oracle every other kernel
/// family is tested against, (2) the "Scikit-learn"-style portable baseline
/// of Figure 9/11, and (3) the scalar tier of the ISA sweep. All kernels
/// return the *ordering key*: squared L2, negated inner product, or L1 —
/// smaller always means more similar.

/// Squared Euclidean distance between a and b.
float ScalarL2(const float* a, const float* b, size_t dim);

/// Negated inner product of a and b.
float ScalarIp(const float* a, const float* b, size_t dim);

/// Manhattan distance between a and b.
float ScalarL1(const float* a, const float* b, size_t dim);

/// Metric-dispatching scalar kernel.
float ScalarDistance(Metric metric, const float* a, const float* b,
                     size_t dim);

/// Distances from `query` to `count` horizontal vectors; out[i] is the
/// ordering key for vector i.
void ScalarDistanceBatch(Metric metric, const float* query, const float* data,
                         size_t count, size_t dim, float* out);

}  // namespace pdx

#endif  // PDX_KERNELS_SCALAR_KERNELS_H_
