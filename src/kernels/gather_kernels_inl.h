#ifndef PDX_KERNELS_GATHER_KERNELS_INL_H_
#define PDX_KERNELS_GATHER_KERNELS_INL_H_

// Implementation of the N-ary + Gather kernel (Section 7, Figure 12),
// included by the per-ISA tier translation units. The AVX2 hardware-gather
// path compiles only in TUs built with -mavx2 -mfma; the strided-loads
// fallback (the paper's NEON case) compiles everywhere. `static inline`
// keeps each TU's copy internal so codegen never leaks across tiers.

#include <algorithm>
#include <cmath>
#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/types.h"

namespace pdx {
namespace gatherimpl {

// Scalar on-the-fly transposition: strided loads standing in for the
// gather instruction on ISAs that lack one.
static inline void GatherGroupScalar(Metric metric, const float* query,
                                     const float* rows, size_t group_n,
                                     size_t dim, float* out) {
  for (size_t i = 0; i < group_n; ++i) out[i] = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    const float query_value = query[d];
    switch (metric) {
      case Metric::kL2:
        for (size_t i = 0; i < group_n; ++i) {
          const float diff = query_value - rows[i * dim + d];
          out[i] += diff * diff;
        }
        break;
      case Metric::kIp:
        for (size_t i = 0; i < group_n; ++i) {
          out[i] -= query_value * rows[i * dim + d];
        }
        break;
      case Metric::kL1:
        for (size_t i = 0; i < group_n; ++i) {
          out[i] += std::fabs(query_value - rows[i * dim + d]);
        }
        break;
    }
  }
}

#if defined(__AVX2__) && defined(__FMA__)
#define PDX_GATHER_HAVE_AVX2 1

// AVX2 gather path: 8 lanes per gather, 8 gathers per dimension for a full
// 64-vector group. Index vector = {0, dim, 2*dim, ...} so lane l reads
// rows[l*dim + d].
static inline void GatherGroupAvx2(Metric metric, const float* query,
                                   const float* rows, size_t dim,
                                   float* out) {
  constexpr size_t kLanes = 8;
  constexpr size_t kGroups = kPdxBlockSize / kLanes;  // 8 gathers per dim.
  const __m256i stride = _mm256_setr_epi32(
      0, static_cast<int>(dim), static_cast<int>(2 * dim),
      static_cast<int>(3 * dim), static_cast<int>(4 * dim),
      static_cast<int>(5 * dim), static_cast<int>(6 * dim),
      static_cast<int>(7 * dim));
  __m256 acc[kGroups];
  for (size_t g = 0; g < kGroups; ++g) acc[g] = _mm256_setzero_ps();
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);

  for (size_t d = 0; d < dim; ++d) {
    const __m256 qv = _mm256_set1_ps(query[d]);
    for (size_t g = 0; g < kGroups; ++g) {
      const float* base = rows + g * kLanes * dim + d;
      const __m256 values = _mm256_i32gather_ps(base, stride, 4);
      switch (metric) {
        case Metric::kL2: {
          const __m256 diff = _mm256_sub_ps(qv, values);
          acc[g] = _mm256_fmadd_ps(diff, diff, acc[g]);
          break;
        }
        case Metric::kIp:
          acc[g] = _mm256_fnmadd_ps(qv, values, acc[g]);
          break;
        case Metric::kL1: {
          const __m256 diff = _mm256_sub_ps(qv, values);
          acc[g] = _mm256_add_ps(acc[g], _mm256_andnot_ps(sign_mask, diff));
          break;
        }
      }
    }
  }
  for (size_t g = 0; g < kGroups; ++g) {
    _mm256_storeu_ps(out + g * kLanes, acc[g]);
  }
}

#endif  // AVX2

/// Full batch: 64-vector groups through the widest gather this TU carries,
/// strided loads for the tail (and for everything on the scalar tier).
static inline void GatherBatch(Metric metric, const float* query,
                               const float* data, size_t count, size_t dim,
                               float* out) {
  size_t i = 0;
#if PDX_GATHER_HAVE_AVX2
  for (; i + kPdxBlockSize <= count; i += kPdxBlockSize) {
    GatherGroupAvx2(metric, query, data + i * dim, dim, out + i);
  }
#endif
  for (; i < count;) {
    const size_t group_n = std::min(kPdxBlockSize, count - i);
    GatherGroupScalar(metric, query, data + i * dim, group_n, dim, out + i);
    i += group_n;
  }
}

}  // namespace gatherimpl
}  // namespace pdx

#endif  // PDX_KERNELS_GATHER_KERNELS_INL_H_
