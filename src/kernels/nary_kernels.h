#ifndef PDX_KERNELS_NARY_KERNELS_H_
#define PDX_KERNELS_NARY_KERNELS_H_

#include <cstddef>

#include "common/types.h"

namespace pdx {

/// Horizontal ("N-ary") distance kernels with explicit SIMD intrinsics.
///
/// These mirror the state-of-the-art kernels the paper benchmarks against:
/// the L2/IP kernels follow SimSIMD (used by USearch), the L1 kernel
/// follows FAISS. Each metric has AVX-512, AVX2, and scalar variants,
/// compiled per ISA tier (src/kernels/isa/); the unsuffixed entry points
/// run the widest tier the *running CPU* supports, resolved once at load
/// time by the runtime dispatcher (kernel_dispatch.h; overridable with
/// PDX_ISA). Like SimSIMD, each kernel processes one vector with multiple
/// accumulator registers and finishes with a horizontal register reduction
/// — the step the PDX layout eliminates.
///
/// Return values are ordering keys (squared L2 / negated IP / L1).

float NaryL2(const float* a, const float* b, size_t dim);
float NaryIp(const float* a, const float* b, size_t dim);
float NaryL1(const float* a, const float* b, size_t dim);

/// Metric dispatching variant of the best-ISA kernels.
float NaryDistance(Metric metric, const float* a, const float* b, size_t dim);

/// Distance from `query` to `count` horizontal vectors using the best ISA.
void NaryDistanceBatch(Metric metric, const float* query, const float* data,
                       size_t count, size_t dim, float* out);

// Per-ISA entry points (for the cross-"architecture" sweep of Figure 11;
// degrades to the widest *available* tier at or below the requested one
// when the binary does not carry it or the CPU cannot run it).

float NaryL2Avx512(const float* a, const float* b, size_t dim);
float NaryIpAvx512(const float* a, const float* b, size_t dim);
float NaryL1Avx512(const float* a, const float* b, size_t dim);

float NaryL2Avx2(const float* a, const float* b, size_t dim);
float NaryIpAvx2(const float* a, const float* b, size_t dim);
float NaryL1Avx2(const float* a, const float* b, size_t dim);

/// True when the AVX-512 (resp. AVX2) tier is *runnable here*: carried by
/// the binary AND supported by the running CPU/OS. Shorthand for
/// IsaAvailable(Isa::kAvx512) / IsaAvailable(Isa::kAvx2).
bool HasAvx512();
bool HasAvx2();

}  // namespace pdx

#endif  // PDX_KERNELS_NARY_KERNELS_H_
