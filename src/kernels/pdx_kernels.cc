#include "kernels/pdx_kernels.h"

#include "kernels/kernel_dispatch.h"

// The vertical kernel templates live in pdx_kernels_inl.h, compiled once
// per ISA tier inside src/kernels/isa/tier_*.cc (each tier TU carries its
// own auto-vectorized instantiations). This TU forwards the public entry
// points into the table the runtime dispatcher resolved for this host.
// The *Novec ablation variants stay in pdx_kernels_novec.cc.

namespace pdx {

void PdxAccumulate(Metric metric, const float* query, const float* block,
                   size_t n, size_t d_start, size_t d_end, float* distances) {
  ActiveKernels().pdx_accumulate(metric, query, block, n, d_start, d_end,
                                 distances);
}

void PdxAccumulateDims(Metric metric, const float* query, const float* block,
                       size_t n, const uint32_t* dims, size_t dims_count,
                       float* distances) {
  ActiveKernels().pdx_accumulate_dims(metric, query, block, n, dims,
                                      dims_count, distances);
}

void PdxAccumulatePositions(Metric metric, const float* query,
                            const float* block, size_t n, size_t d_start,
                            size_t d_end, const uint32_t* positions,
                            size_t position_count, float* distances) {
  ActiveKernels().pdx_accumulate_positions(metric, query, block, n, d_start,
                                           d_end, positions, position_count,
                                           distances);
}

void PdxAccumulateDimsPositions(Metric metric, const float* query,
                                const float* block, size_t n,
                                const uint32_t* dims, size_t dims_count,
                                const uint32_t* positions,
                                size_t position_count, float* distances) {
  ActiveKernels().pdx_accumulate_dims_positions(metric, query, block, n, dims,
                                                dims_count, positions,
                                                position_count, distances);
}

void PdxLinearScan(Metric metric, const float* query, const float* block,
                   size_t n, size_t dim, float* distances) {
  ActiveKernels().pdx_linear_scan(metric, query, block, n, dim, distances);
}

}  // namespace pdx
