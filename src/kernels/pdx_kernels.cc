#include "kernels/pdx_kernels.h"

#include <cstring>

#include "kernels/pdx_kernels_inl.h"

namespace pdx {

void PdxAccumulate(Metric metric, const float* query, const float* block,
                   size_t n, size_t d_start, size_t d_end, float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::Accumulate<Metric::kL2>(query, block, n, d_start, d_end,
                                        distances);
      break;
    case Metric::kIp:
      internal::Accumulate<Metric::kIp>(query, block, n, d_start, d_end,
                                        distances);
      break;
    case Metric::kL1:
      internal::Accumulate<Metric::kL1>(query, block, n, d_start, d_end,
                                        distances);
      break;
  }
}

void PdxAccumulateDims(Metric metric, const float* query, const float* block,
                       size_t n, const uint32_t* dims, size_t dims_count,
                       float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::AccumulateDims<Metric::kL2>(query, block, n, dims, dims_count,
                                            distances);
      break;
    case Metric::kIp:
      internal::AccumulateDims<Metric::kIp>(query, block, n, dims, dims_count,
                                            distances);
      break;
    case Metric::kL1:
      internal::AccumulateDims<Metric::kL1>(query, block, n, dims, dims_count,
                                            distances);
      break;
  }
}

void PdxAccumulatePositions(Metric metric, const float* query,
                            const float* block, size_t n, size_t d_start,
                            size_t d_end, const uint32_t* positions,
                            size_t position_count, float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::AccumulatePositions<Metric::kL2>(query, block, n, d_start,
                                                 d_end, positions,
                                                 position_count, distances);
      break;
    case Metric::kIp:
      internal::AccumulatePositions<Metric::kIp>(query, block, n, d_start,
                                                 d_end, positions,
                                                 position_count, distances);
      break;
    case Metric::kL1:
      internal::AccumulatePositions<Metric::kL1>(query, block, n, d_start,
                                                 d_end, positions,
                                                 position_count, distances);
      break;
  }
}

void PdxAccumulateDimsPositions(Metric metric, const float* query,
                                const float* block, size_t n,
                                const uint32_t* dims, size_t dims_count,
                                const uint32_t* positions,
                                size_t position_count, float* distances) {
  switch (metric) {
    case Metric::kL2:
      internal::AccumulateDimsPositions<Metric::kL2>(
          query, block, n, dims, dims_count, positions, position_count,
          distances);
      break;
    case Metric::kIp:
      internal::AccumulateDimsPositions<Metric::kIp>(
          query, block, n, dims, dims_count, positions, position_count,
          distances);
      break;
    case Metric::kL1:
      internal::AccumulateDimsPositions<Metric::kL1>(
          query, block, n, dims, dims_count, positions, position_count,
          distances);
      break;
  }
}

void PdxLinearScan(Metric metric, const float* query, const float* block,
                   size_t n, size_t dim, float* distances) {
  std::memset(distances, 0, n * sizeof(float));
  PdxAccumulate(metric, query, block, n, 0, dim, distances);
}

}  // namespace pdx
