#ifndef PDX_KERNELS_PDX_KERNELS_INL_H_
#define PDX_KERNELS_PDX_KERNELS_INL_H_

// Implementation of the PDX vertical kernels, shared between the
// auto-vectorized translation unit (pdx_kernels.cc) and the
// vectorization-disabled one (pdx_kernels_novec.cc). Each TU instantiates
// these templates under its own compile flags, so the binary carries both
// a SIMD and a genuinely scalar version of identical source code.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace pdx {
namespace internal {

#define PDX_RESTRICT __restrict__

/// One lane-update per metric; kIp accumulates the negated product so all
/// metrics share min-heap semantics.
template <Metric M>
static inline float LaneUpdate(float query_value, float data_value) {
  if constexpr (M == Metric::kL2) {
    const float diff = query_value - data_value;
    return diff * diff;
  } else if constexpr (M == Metric::kIp) {
    return -(query_value * data_value);
  } else {
    return std::fabs(query_value - data_value);
  }
}

/// Fixed-lane kernel: when a block holds exactly kPdxBlockSize vectors the
/// accumulators are staged in a local array that the compiler keeps in SIMD
/// registers across the whole dimension loop — the "tight loop" effect the
/// paper attributes the block-size-64 sweet spot to (Table 5).
template <Metric M>
static inline void AccumulateFixed(const float* PDX_RESTRICT query,
                            const float* PDX_RESTRICT block, size_t d_start,
                            size_t d_end, float* PDX_RESTRICT distances) {
  float acc[kPdxBlockSize];
  for (size_t i = 0; i < kPdxBlockSize; ++i) acc[i] = distances[i];
  for (size_t d = d_start; d < d_end; ++d) {
    const float query_value = query[d];
    const float* PDX_RESTRICT values = block + d * kPdxBlockSize;
    for (size_t i = 0; i < kPdxBlockSize; ++i) {
      acc[i] += LaneUpdate<M>(query_value, values[i]);
    }
  }
  for (size_t i = 0; i < kPdxBlockSize; ++i) distances[i] = acc[i];
}

/// Variable-lane kernel (block tails, large exact-search blocks, DSM).
template <Metric M>
static inline void AccumulateAny(const float* PDX_RESTRICT query,
                          const float* PDX_RESTRICT block, size_t n,
                          size_t d_start, size_t d_end,
                          float* PDX_RESTRICT distances) {
  for (size_t d = d_start; d < d_end; ++d) {
    const float query_value = query[d];
    const float* PDX_RESTRICT values = block + d * n;
    for (size_t i = 0; i < n; ++i) {
      distances[i] += LaneUpdate<M>(query_value, values[i]);
    }
  }
}

template <Metric M>
static inline void Accumulate(const float* query, const float* block, size_t n,
                       size_t d_start, size_t d_end, float* distances) {
  if (n == kPdxBlockSize) {
    AccumulateFixed<M>(query, block, d_start, d_end, distances);
  } else {
    AccumulateAny<M>(query, block, n, d_start, d_end, distances);
  }
}

/// Explicit-dimension-order kernel (PDX-BOND). The query is indexed in the
/// original dimension space: dims[j] names both the block column and the
/// query entry.
template <Metric M>
static inline void AccumulateDims(const float* PDX_RESTRICT query,
                           const float* PDX_RESTRICT block, size_t n,
                           const uint32_t* PDX_RESTRICT dims,
                           size_t dims_count, float* PDX_RESTRICT distances) {
  for (size_t j = 0; j < dims_count; ++j) {
    const size_t d = dims[j];
    const float query_value = query[d];
    const float* PDX_RESTRICT values = block + d * n;
    for (size_t i = 0; i < n; ++i) {
      distances[i] += LaneUpdate<M>(query_value, values[i]);
    }
  }
}

/// PRUNE-phase kernel: indexed access through the survivors list. The
/// gather-style indexing is the random-access cost the WARMUP phase defers
/// until few vectors remain.
template <Metric M>
static inline void AccumulatePositions(const float* PDX_RESTRICT query,
                                const float* PDX_RESTRICT block, size_t n,
                                size_t d_start, size_t d_end,
                                const uint32_t* PDX_RESTRICT positions,
                                size_t position_count,
                                float* PDX_RESTRICT distances) {
  for (size_t d = d_start; d < d_end; ++d) {
    const float query_value = query[d];
    const float* PDX_RESTRICT values = block + d * n;
    for (size_t p = 0; p < position_count; ++p) {
      const uint32_t lane = positions[p];
      distances[lane] += LaneUpdate<M>(query_value, values[lane]);
    }
  }
}

template <Metric M>
static inline void AccumulateDimsPositions(const float* PDX_RESTRICT query,
                                    const float* PDX_RESTRICT block, size_t n,
                                    const uint32_t* PDX_RESTRICT dims,
                                    size_t dims_count,
                                    const uint32_t* PDX_RESTRICT positions,
                                    size_t position_count,
                                    float* PDX_RESTRICT distances) {
  for (size_t j = 0; j < dims_count; ++j) {
    const size_t d = dims[j];
    const float query_value = query[d];
    const float* PDX_RESTRICT values = block + d * n;
    for (size_t p = 0; p < position_count; ++p) {
      const uint32_t lane = positions[p];
      distances[lane] += LaneUpdate<M>(query_value, values[lane]);
    }
  }
}

#undef PDX_RESTRICT

}  // namespace internal
}  // namespace pdx

#endif  // PDX_KERNELS_PDX_KERNELS_INL_H_
