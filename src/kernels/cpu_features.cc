#include "kernels/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#define PDX_CPU_X86 1
#include <cpuid.h>
#endif

#if defined(__aarch64__) && defined(__linux__)
#define PDX_CPU_AARCH64_LINUX 1
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace pdx {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kBest:
      return "best";
  }
  return "unknown";
}

bool ParseIsaName(std::string_view name, Isa* out) {
  auto equals = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      const char ca = (a[i] >= 'A' && a[i] <= 'Z') ? char(a[i] + 32) : a[i];
      if (ca != b[i]) return false;
    }
    return true;
  };
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kBest}) {
    if (equals(name, IsaName(isa))) {
      *out = isa;
      return true;
    }
  }
  return false;
}

namespace {

#if PDX_CPU_X86

// xgetbv without requiring -mxsave at compile time: only executed after
// cpuid confirms OSXSAVE, so the instruction is guaranteed to exist.
uint64_t ReadXcr0() {
  uint32_t lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (uint64_t(hi) << 32) | lo;
}

CpuFeatures ProbeX86() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  const bool avx = (ecx & bit_AVX) != 0;
  const bool fma = (ecx & bit_FMA) != 0;
  if (!osxsave) return f;  // OS saves no extended state: scalar only.

  const uint64_t xcr0 = ReadXcr0();
  // XCR0 bits: 1 = SSE (XMM), 2 = AVX (YMM), 5..7 = opmask/ZMM_Hi256/Hi16_ZMM.
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;
  const bool zmm_enabled = (xcr0 & 0xE6) == 0xE6;

  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (!__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) return f;
  const bool avx2 = (ebx7 & bit_AVX2) != 0;
  const bool avx512f = (ebx7 & bit_AVX512F) != 0;
  const bool avx512dq = (ebx7 & bit_AVX512DQ) != 0;
  const bool avx512bw = (ebx7 & bit_AVX512BW) != 0;

  // The AVX2 nary kernels use FMA, so the tier requires both.
  f.avx2 = avx && avx2 && fma && ymm_enabled;
  // The AVX-512 TU is compiled with -mavx512f -mavx512dq -mavx512bw; all
  // three must be present (Skylake-X and later server parts have them).
  f.avx512 = avx512f && avx512dq && avx512bw && zmm_enabled;
  return f;
}

#endif  // PDX_CPU_X86

CpuFeatures Probe() {
#if PDX_CPU_X86
  return ProbeX86();
#elif PDX_CPU_AARCH64_LINUX
  CpuFeatures f;
  f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
  return f;
#else
  return CpuFeatures{};
#endif
}

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

bool CpuSupportsIsa(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
    case Isa::kBest:
      return true;
    case Isa::kAvx2:
      return HostCpuFeatures().avx2;
    case Isa::kAvx512:
      return HostCpuFeatures().avx512;
  }
  return false;
}

}  // namespace pdx
