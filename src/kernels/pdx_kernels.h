#ifndef PDX_KERNELS_PDX_KERNELS_H_
#define PDX_KERNELS_PDX_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace pdx {

/// Vertical distance kernels over the PDX layout (Algorithm 1).
///
/// All kernels *accumulate* into a per-lane distances array: the outer loop
/// walks dimensions, the inner loop walks vectors, and each vector's partial
/// distance lives in its own lane — no cross-lane dependency, no register
/// reduction, dimensionality-independent SIMD utilization. The code is
/// plain scalar C++ that auto-vectorizes; no intrinsics, by design (the
/// paper's portability claim).
///
/// `block` points to dimension-major data where dimension d's values occupy
/// block[d*n .. d*n+n). `distances` has n entries indexed by lane.
///
/// The kernels are compiled once per ISA tier (scalar / AVX2 / AVX-512, see
/// src/kernels/isa/) and these entry points forward to the tier the runtime
/// dispatcher picked for this host (kernel_dispatch.h; PDX_ISA overrides).
/// All tiers are built with -ffp-contract=off, so results are bit-exact
/// across tiers. Hot loops should grab ActiveKernels() once instead of
/// paying the forwarding call per block.
///
/// The *Novec variants are the same source compiled with auto-vectorization
/// disabled (Section 6.3's ablation: PDX remains ~1.8x faster than
/// horizontal search even without SIMD, thanks to access pattern and
/// branchless structure).

/// Accumulates dims [d_start, d_end) for all n lanes.
void PdxAccumulate(Metric metric, const float* query, const float* block,
                   size_t n, size_t d_start, size_t d_end, float* distances);

/// Accumulates an explicit dimension list (query-aware order, PDX-BOND):
/// for j in [0, dims_count): accumulate dimension dims[j].
void PdxAccumulateDims(Metric metric, const float* query, const float* block,
                       size_t n, const uint32_t* dims, size_t dims_count,
                       float* distances);

/// PRUNE-phase kernel: accumulates dims [d_start, d_end) only for the lanes
/// listed in `positions` (the not-yet-pruned vectors).
void PdxAccumulatePositions(Metric metric, const float* query,
                            const float* block, size_t n, size_t d_start,
                            size_t d_end, const uint32_t* positions,
                            size_t position_count, float* distances);

/// PRUNE-phase kernel with an explicit dimension list.
void PdxAccumulateDimsPositions(Metric metric, const float* query,
                                const float* block, size_t n,
                                const uint32_t* dims, size_t dims_count,
                                const uint32_t* positions,
                                size_t position_count, float* distances);

/// Full linear scan of a block: zeroes `distances` then accumulates all
/// dims. Convenience used by the START phase and the PDX linear-scan
/// baseline.
void PdxLinearScan(Metric metric, const float* query, const float* block,
                   size_t n, size_t dim, float* distances);

// Auto-vectorization-disabled builds of the two hot kernels (ablation).
void PdxAccumulateNovec(Metric metric, const float* query, const float* block,
                        size_t n, size_t d_start, size_t d_end,
                        float* distances);
void PdxLinearScanNovec(Metric metric, const float* query, const float* block,
                        size_t n, size_t dim, float* distances);

}  // namespace pdx

#endif  // PDX_KERNELS_PDX_KERNELS_H_
