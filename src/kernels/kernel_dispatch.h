#ifndef PDX_KERNELS_KERNEL_DISPATCH_H_
#define PDX_KERNELS_KERNEL_DISPATCH_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "kernels/cpu_features.h"  // IWYU pragma: export (Isa, IsaName)

namespace pdx {

/// Runtime SIMD dispatch.
///
/// One binary carries scalar, AVX2, and AVX-512 columns of every hot
/// kernel family — the PDX verticals (PdxAccumulate*), the horizontal
/// n-ary kernels, and the gather kernel — each compiled in its own
/// translation unit with explicit -m flags (no -march=native required).
/// The widest tier the CPU *and* OS support is resolved once at load time
/// (overridable with PDX_ISA=scalar|avx2|avx512|best) and consulted through
/// a per-tier kernel table, so a release binary built anywhere runs the
/// fastest path everywhere instead of crashing on SIGILL or silently
/// falling back to portable code.

/// Pairwise horizontal kernel: ordering key of (a, b) over `dim` floats.
using PairKernelFn = float (*)(const float*, const float*, size_t);

/// Batch kernel over row-major data: out[i] = key(query, data + i*dim).
using NaryBatchFn = void (*)(Metric, const float* query, const float* data,
                             size_t count, size_t dim, float* out);

// Vertical (PDX-layout) kernels; see pdx_kernels.h for the contracts.
using PdxAccumulateFn = void (*)(Metric, const float* query,
                                 const float* block, size_t n, size_t d_start,
                                 size_t d_end, float* distances);
using PdxAccumulateDimsFn = void (*)(Metric, const float* query,
                                     const float* block, size_t n,
                                     const uint32_t* dims, size_t dims_count,
                                     float* distances);
using PdxAccumulatePositionsFn = void (*)(Metric, const float* query,
                                          const float* block, size_t n,
                                          size_t d_start, size_t d_end,
                                          const uint32_t* positions,
                                          size_t position_count,
                                          float* distances);
using PdxAccumulateDimsPositionsFn = void (*)(
    Metric, const float* query, const float* block, size_t n,
    const uint32_t* dims, size_t dims_count, const uint32_t* positions,
    size_t position_count, float* distances);
using PdxLinearScanFn = void (*)(Metric, const float* query,
                                 const float* block, size_t n, size_t dim,
                                 float* distances);

/// Vertical kernel over quantized (u8) PDX blocks: accumulates
/// weights[d] * (query_prime[d] - code)^2 into per-lane distances — the
/// code-space L2 of quant/quantized_store.h. L2-only (the quantized tier
/// validates its metric), so no Metric parameter.
using QuantAccumulateFn = void (*)(const float* query_prime,
                                   const float* weights, const uint8_t* block,
                                   size_t n, size_t d_start, size_t d_end,
                                   float* distances);

/// One ISA tier's column of every hot kernel family. Tables are immutable
/// and live for the whole process; holding a pointer to one is always safe.
///
/// The vertical kernels of every tier are compiled with -ffp-contract=off:
/// per-lane accumulation order is identical across tiers by construction
/// (SIMD runs *across* lanes), so with FMA contraction pinned off the
/// PdxAccumulate* results are bit-exact between scalar, AVX2, and AVX-512 —
/// a searcher gives byte-identical answers whatever tier dispatch picks.
/// The n-ary kernels use explicit FMA intrinsics and multiple accumulators,
/// so across tiers they agree only to a reassociation tolerance
/// (~2e-5 * |result| * sqrt(dim); see tests/kernels/kernels_test.cc).
struct KernelTable {
  Isa isa = Isa::kScalar;  ///< The concrete tier this table implements.

  /// Horizontal pair kernels indexed by Metric (kL2, kIp, kL1).
  PairKernelFn nary[3] = {nullptr, nullptr, nullptr};
  NaryBatchFn nary_batch = nullptr;

  // The five PDX verticals.
  PdxAccumulateFn pdx_accumulate = nullptr;
  PdxAccumulateDimsFn pdx_accumulate_dims = nullptr;
  PdxAccumulatePositionsFn pdx_accumulate_positions = nullptr;
  PdxAccumulateDimsPositionsFn pdx_accumulate_dims_positions = nullptr;
  PdxLinearScanFn pdx_linear_scan = nullptr;

  /// On-the-fly transposition kernel (Section 7); hardware gather on the
  /// AVX2/AVX-512 tiers, strided loads on the scalar tier.
  NaryBatchFn gather_batch = nullptr;

  /// The quantized (u8) vertical — same bit-exact-across-tiers contract as
  /// the float PdxAccumulate* family (auto-vectorized template,
  /// -ffp-contract=off in every tier TU).
  QuantAccumulateFn quant_accumulate = nullptr;

  PairKernelFn nary_pair(Metric metric) const {
    return nary[static_cast<uint8_t>(metric)];
  }
};

/// True when this binary carries genuine kernels for the tier, i.e. the
/// tier's translation unit was compiled with its ISA flags (kScalar and
/// kBest always; kAvx2/kAvx512 on x86-64 toolchains that accept the flags).
/// Says nothing about the host CPU.
bool IsaCarried(Isa isa);

/// True when the tier is *runnable here*: carried by the binary AND
/// supported by the CPU/OS (kScalar and kBest are always available).
bool IsaAvailable(Isa isa);

/// The kernel table for the widest available tier at or below `isa`
/// (kAvx512 on a no-AVX-512 host degrades to kAvx2, then kScalar; kBest is
/// the widest available tier). Ignores the PDX_ISA override — benches and
/// tests use this to address a specific tier directly.
const KernelTable& GetKernelTable(Isa isa);

/// The table every search path uses, resolved once at first use:
/// the widest available tier, clamped by the PDX_ISA environment override
/// (an unknown or unavailable override warns on stderr and degrades).
const KernelTable& ActiveKernels();

/// ActiveKernels().isa — the tier this process dispatches to.
Isa DispatchedIsa();

/// Pairwise horizontal kernel for (metric, isa), degraded to the widest
/// available tier at or below `isa`. An unresolvable pair falls back to
/// the *scalar kernel of the requested metric* — never a different metric.
PairKernelFn GetNaryKernel(Metric metric, Isa isa);

/// Batch kernel: distances from one query to `count` horizontal vectors,
/// on the widest available tier at or below `isa`.
void NaryDistanceBatchIsa(Metric metric, Isa isa, const float* query,
                          const float* data, size_t count, size_t dim,
                          float* out);

}  // namespace pdx

#endif  // PDX_KERNELS_KERNEL_DISPATCH_H_
