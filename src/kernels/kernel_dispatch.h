#ifndef PDX_KERNELS_KERNEL_DISPATCH_H_
#define PDX_KERNELS_KERNEL_DISPATCH_H_

#include <cstddef>

#include "common/types.h"

namespace pdx {

/// ISA tiers for the cross-"architecture" sweep (Figure 11 substitution:
/// one host, three kernel tiers).
enum class Isa : uint8_t {
  kScalar = 0,  ///< Portable scalar code (the paper's "Scalar ISA" column).
  kAvx2 = 1,    ///< 256-bit kernels (the paper's Zen3 tier).
  kAvx512 = 2,  ///< 512-bit kernels (the paper's Intel SPR / Zen4 tier).
  kBest = 3,    ///< Widest ISA this binary carries.
};

/// Human-readable tier name ("scalar", "avx2", "avx512", "best").
const char* IsaName(Isa isa);

/// True when the binary carries genuine kernels for the tier (kScalar and
/// kBest are always available).
bool IsaAvailable(Isa isa);

/// Pairwise horizontal kernel for (metric, isa).
using PairKernelFn = float (*)(const float*, const float*, size_t);
PairKernelFn GetNaryKernel(Metric metric, Isa isa);

/// Batch kernel: distances from one query to `count` horizontal vectors.
void NaryDistanceBatchIsa(Metric metric, Isa isa, const float* query,
                          const float* data, size_t count, size_t dim,
                          float* out);

}  // namespace pdx

#endif  // PDX_KERNELS_KERNEL_DISPATCH_H_
