#ifndef PDX_KERNELS_QUANT_KERNELS_INL_H_
#define PDX_KERNELS_QUANT_KERNELS_INL_H_

// Implementation of the quantized (u8) PDX vertical kernel, instantiated
// once per ISA tier TU (src/kernels/isa/tier_*.cc) under that tier's
// compile flags. Same dimension-outer / lane-inner structure as the float
// verticals in pdx_kernels_inl.h, with one u8->f32 convert per value and a
// quarter of the memory traffic. Like the float verticals, the per-lane
// accumulation order is identical across tiers and every tier TU compiles
// with -ffp-contract=off, so the results are bit-exact between scalar,
// AVX2, and AVX-512.

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace pdx {
namespace internal {

#define PDX_RESTRICT __restrict__

/// Fixed-lane u8 kernel: full blocks stage their accumulators in a local
/// array the compiler keeps in SIMD registers across the dimension loop
/// (the same "tight loop" effect as the float AccumulateFixed).
static inline void QuantAccumulateFixed(const float* PDX_RESTRICT query_prime,
                                        const float* PDX_RESTRICT weights,
                                        const uint8_t* PDX_RESTRICT block,
                                        size_t d_start, size_t d_end,
                                        float* PDX_RESTRICT distances) {
  float acc[kPdxBlockSize];
  for (size_t i = 0; i < kPdxBlockSize; ++i) acc[i] = distances[i];
  for (size_t d = d_start; d < d_end; ++d) {
    const float qd = query_prime[d];
    const float wd = weights[d];
    const uint8_t* PDX_RESTRICT codes = block + d * kPdxBlockSize;
    for (size_t i = 0; i < kPdxBlockSize; ++i) {
      const float diff = qd - float(codes[i]);
      acc[i] += wd * (diff * diff);
    }
  }
  for (size_t i = 0; i < kPdxBlockSize; ++i) distances[i] = acc[i];
}

/// Variable-lane u8 kernel (block tails, large exact-search blocks).
static inline void QuantAccumulateAny(const float* PDX_RESTRICT query_prime,
                                      const float* PDX_RESTRICT weights,
                                      const uint8_t* PDX_RESTRICT block,
                                      size_t n, size_t d_start, size_t d_end,
                                      float* PDX_RESTRICT distances) {
  for (size_t d = d_start; d < d_end; ++d) {
    const float qd = query_prime[d];
    const float wd = weights[d];
    const uint8_t* PDX_RESTRICT codes = block + d * n;
    for (size_t i = 0; i < n; ++i) {
      const float diff = qd - float(codes[i]);
      distances[i] += wd * (diff * diff);
    }
  }
}

static inline void QuantAccumulate(const float* query_prime,
                                   const float* weights, const uint8_t* block,
                                   size_t n, size_t d_start, size_t d_end,
                                   float* distances) {
  if (n == kPdxBlockSize) {
    QuantAccumulateFixed(query_prime, weights, block, d_start, d_end,
                         distances);
  } else {
    QuantAccumulateAny(query_prime, weights, block, n, d_start, d_end,
                       distances);
  }
}

#undef PDX_RESTRICT

}  // namespace internal
}  // namespace pdx

#endif  // PDX_KERNELS_QUANT_KERNELS_INL_H_
