#include "kernels/scalar_kernels.h"

#include <cmath>

namespace pdx {

float ScalarL2(const float* a, const float* b, size_t dim) {
  float sum = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

float ScalarIp(const float* a, const float* b, size_t dim) {
  float sum = 0.0f;
  for (size_t d = 0; d < dim; ++d) sum += a[d] * b[d];
  return -sum;
}

float ScalarL1(const float* a, const float* b, size_t dim) {
  float sum = 0.0f;
  for (size_t d = 0; d < dim; ++d) sum += std::fabs(a[d] - b[d]);
  return sum;
}

float ScalarDistance(Metric metric, const float* a, const float* b,
                     size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return ScalarL2(a, b, dim);
    case Metric::kIp:
      return ScalarIp(a, b, dim);
    case Metric::kL1:
      return ScalarL1(a, b, dim);
  }
  return 0.0f;
}

void ScalarDistanceBatch(Metric metric, const float* query, const float* data,
                         size_t count, size_t dim, float* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = ScalarDistance(metric, query, data + i * dim, dim);
  }
}

}  // namespace pdx
