#ifndef PDX_OBS_SEARCH_COUNTERS_H_
#define PDX_OBS_SEARCH_COUNTERS_H_

#include <cstdint>

namespace pdx {

/// Cheap per-query search-work counters, surfaced from the PDXearch block
/// loop (core/pdxearch.h increments them on PdxearchProfile; the facade
/// copies them out per query through SearchBatchWith's counters array).
///
/// Deliberately a plain trivially-copyable aggregate with no methods that
/// allocate: the serving layer keeps one pre-reserved array of these per
/// dispatcher, so collecting them on the dispatch path costs no heap
/// traffic whatsoever — the satellite "tracing off adds zero allocations"
/// contract rests on this type staying POD.
struct SearchCounters {
  uint64_t blocks_visited = 0;   ///< PDX blocks whose lanes were touched.
  uint64_t vectors_pruned = 0;   ///< Lanes discarded before full distance.
  uint64_t values_scanned = 0;   ///< Dimension values fed to kernels.
  uint64_t values_avoided = 0;   ///< D x block vectors minus scanned.
  uint64_t dims_scanned = 0;     ///< Dimension steps walked across blocks.
  uint64_t predicate_evaluations = 0;  ///< Pruning-bound tests run.
  /// Candidates the u8 quantized tier re-ranked with exact distances
  /// (0 on the float tiers and with rerank_factor = 0).
  uint64_t rerank_candidates = 0;

  SearchCounters& operator+=(const SearchCounters& other) {
    blocks_visited += other.blocks_visited;
    vectors_pruned += other.vectors_pruned;
    values_scanned += other.values_scanned;
    values_avoided += other.values_avoided;
    dims_scanned += other.dims_scanned;
    predicate_evaluations += other.predicate_evaluations;
    rerank_candidates += other.rerank_candidates;
    return *this;
  }

  /// Fraction of dimension values never touched (the paper's pruning
  /// power), 0 when nothing was visited.
  double pruning_power() const {
    const uint64_t total = values_scanned + values_avoided;
    return total == 0
               ? 0.0
               : static_cast<double>(values_avoided) /
                     static_cast<double>(total);
  }
};

}  // namespace pdx

#endif  // PDX_OBS_SEARCH_COUNTERS_H_
