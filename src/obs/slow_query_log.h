#ifndef PDX_OBS_SLOW_QUERY_LOG_H_
#define PDX_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/search_counters.h"

namespace pdx {

/// One retained worst-case query: enough context to answer "where did this
/// slow query spend its time" from GET /collections/<name>/slowlog without
/// having traced it explicitly — queue/stage/search timings are stamped on
/// every served query, trace or not.
struct SlowQueryEntry {
  uint64_t id = 0;
  std::string request_id;   ///< Empty unless the query carried one.
  std::string outcome;      ///< StatusCodeName of the final status.
  size_t k = 0;
  size_t nprobe = 0;
  double queue_ms = 0.0;
  double stage_ms = 0.0;    ///< 0 for queries shed before dispatch.
  double search_ms = 0.0;   ///< 0 for queries shed before dispatch.
  double total_ms = 0.0;
  SearchCounters counters;  ///< All-zero for queries shed before dispatch.
};

/// Lock-bounded ring of the N worst queries (by total_ms) one collection
/// has served. The lock is held only for the O(N) insert/snapshot on a
/// tiny N (ServiceConfig::slowlog_capacity, default 8) — and the common
/// path never takes it at all: Qualifies() is a lock-free atomic read of
/// the current admission threshold, so a fast query (the overwhelming
/// majority) costs one relaxed load and no string materialization.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity);

  /// True when a query with this total would enter the log — the cheap
  /// pre-check the serving layer gates entry construction on. Racy by
  /// design: a borderline query may be re-checked under the lock in Add.
  bool Qualifies(double total_ms) const;

  /// Inserts `entry` if it still qualifies under the lock (the threshold
  /// may have moved since Qualifies), evicting the mildest entry when
  /// full.
  void Add(SlowQueryEntry entry);

  /// The current worst-first contents.
  std::vector<SlowQueryEntry> Snapshot() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  /// Sorted worst-first; size <= capacity_.
  std::vector<SlowQueryEntry> entries_;
  /// Admission threshold: the mildest retained total once full, else 0
  /// (everything qualifies until the log fills). Read lock-free by
  /// Qualifies; only Add (under the lock) stores it.
  std::atomic<double> threshold_{0.0};
};

}  // namespace pdx

#endif  // PDX_OBS_SLOW_QUERY_LOG_H_
