#include "obs/slow_query_log.h"

#include <algorithm>
#include <utility>

namespace pdx {

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

bool SlowQueryLog::Qualifies(double total_ms) const {
  return total_ms > threshold_.load(std::memory_order_relaxed);
}

void SlowQueryLog::Add(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check under the lock: the lock-free pre-check may have raced a
  // concurrent Add that raised the threshold past this entry.
  if (entries_.size() >= capacity_ &&
      entry.total_ms <= entries_.back().total_ms) {
    return;
  }
  const auto at = std::upper_bound(
      entries_.begin(), entries_.end(), entry.total_ms,
      [](double total, const SlowQueryEntry& e) { return total > e.total_ms; });
  entries_.insert(at, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();
  if (entries_.size() >= capacity_) {
    threshold_.store(entries_.back().total_ms, std::memory_order_relaxed);
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

}  // namespace pdx
