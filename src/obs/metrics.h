#ifndef PDX_OBS_METRICS_H_
#define PDX_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pdx {

/// Label set of one metric child, in declaration order ({{"collection",
/// "docs"}, {"stage", "queue"}}). Order is preserved in the exposition.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Inc is a relaxed atomic add — no locks, safe from
/// any number of threads, cheap enough for the dispatch hot path.
class MetricCounter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time gauge (queue depth, pool size). Set/Add are lock-free.
class MetricGauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    // CAS loop instead of C++20 fetch_add(double): identical semantics,
    // and it stays lock-free on toolchains where the member is not yet
    // wired to the native instruction.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram in the Prometheus style: per-bucket atomic
/// counts (cumulative only at exposition time), an atomic count, and an
/// atomic sum. Observe is lock-free: one linear scan over the (small,
/// immutable) bound array plus three relaxed atomic adds — no allocation,
/// no mutex, so dispatcher threads can stamp stage latencies while a
/// scrape walks the same buckets.
///
/// Scrapes read every cell relaxed, so one exposition line can be torn
/// relative to another (count ahead of sum by an in-flight Observe).
/// Prometheus tolerates this by design — rates are computed across
/// scrapes, not within one.
class MetricHistogram {
 public:
  /// `bounds` are the ascending inclusive upper bounds; an implicit +Inf
  /// bucket is appended. Empty bounds => only the +Inf bucket.
  explicit MetricHistogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  const std::vector<double> bounds_;
  /// bounds_.size() + 1 cells; the last is the +Inf overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` log-scale bucket bounds: start, start*factor, start*factor^2...
/// The default serving histogram doubles from 10us to ~20s in 22 buckets.
std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count);
std::vector<double> DefaultLatencyBoundsMs();

/// Process-wide metric registry with Prometheus text exposition.
///
/// Families are keyed by metric name; children by label set. GetCounter /
/// GetGauge / GetHistogram return a get-or-create pointer that stays valid
/// for the registry's lifetime — callers resolve their instruments ONCE
/// (at collection-adopt time, at construction) and then touch only the
/// lock-free instrument on the hot path; the registry mutex guards only
/// registration and scraping. Re-registering an existing (name, labels)
/// pair returns the same instrument, so a collection removed and re-added
/// under one name keeps its cumulative series (the Prometheus contract:
/// counters only reset when the process does). Registering one name with
/// two different types or histogram bounds is a programming error and
/// throws std::logic_error.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter* GetCounter(const std::string& name, const std::string& help,
                            const MetricLabels& labels = {});
  MetricGauge* GetGauge(const std::string& name, const std::string& help,
                        const MetricLabels& labels = {});
  MetricHistogram* GetHistogram(const std::string& name,
                                const std::string& help,
                                std::vector<double> bounds,
                                const MetricLabels& labels = {});

  /// The full registry in Prometheus text exposition format 0.0.4:
  /// # HELP / # TYPE per family, one sample line per child (histograms
  /// expand to cumulative _bucket{le=...} lines plus _sum and _count).
  /// Values are read relaxed — safe to call while writers are live.
  std::string WritePrometheus() const;

  /// The process-global registry the serving layer defaults to when
  /// ServiceConfig::metrics is left null. Tests inject their own local
  /// registries instead, so their counts never bleed across cases.
  static MetricsRegistry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Child {
    MetricLabels labels;
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;            ///< Histogram families only.
    std::map<std::string, Child> children;  ///< Keyed by serialized labels.
  };

  Family& ResolveFamily(const std::string& name, const std::string& help,
                        Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace pdx

#endif  // PDX_OBS_METRICS_H_
