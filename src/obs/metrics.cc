#include "obs/metrics.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace pdx {

namespace {

/// Prometheus sample values and `le` bounds: shortest representation that
/// round-trips (the same std::to_chars discipline as the JSON writer),
/// plus the format's spellings for the non-finite values JSON lacks.
void AppendNumber(double value, std::string* out) {
  if (std::isnan(value)) {
    out->append("NaN");
    return;
  }
  if (std::isinf(value)) {
    out->append(value > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, r.ptr);
}

/// Label VALUES escape backslash, double quote, and newline (the format's
/// three escapes); label names and metric names are caller-controlled
/// identifiers and are emitted as-is.
void AppendLabelValue(const std::string& value, std::string* out) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

/// `{k1="v1",k2="v2"}` — with `extra` (the histogram `le`) appended last.
/// Empty labels and no extra => nothing at all.
void AppendLabels(const MetricLabels& labels, const char* extra_name,
                  const std::string& extra_value, std::string* out) {
  const bool has_extra = extra_name != nullptr;
  if (labels.empty() && !has_extra) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(name);
    out->append("=\"");
    AppendLabelValue(value, out);
    out->push_back('"');
  }
  if (has_extra) {
    if (!first) out->push_back(',');
    out->append(extra_name);
    out->append("=\"");
    out->append(extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

/// The child key inside a family: labels serialized with the same escaping
/// as the exposition, so distinct label sets can never collide.
std::string LabelKey(const MetricLabels& labels) {
  std::string key;
  AppendLabels(labels, nullptr, std::string(), &key);
  return key;
}

}  // namespace

MetricHistogram::MetricHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i - 1] < bounds_[i] && "histogram bounds must ascend");
  }
}

void MetricHistogram::Observe(double value) {
  // Linear scan, not binary search: serving histograms have ~22 buckets
  // and latencies cluster in the low ones, so the scan usually ends after
  // a handful of compares — and it is branch-predictable, allocation-free,
  // and lock-free, which is what the dispatch path needs.
  size_t bucket = bounds_.size();  // +Inf unless a bound catches it.
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count) {
  assert(start > 0.0 && factor > 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> DefaultLatencyBoundsMs() {
  // Doubling from 10us to ~21s: sub-batch stage times land in the low
  // buckets, stuck-queue pathologies still resolve instead of saturating
  // +Inf. 22 buckets keep Observe's scan and the exposition small.
  return ExponentialBounds(0.01, 2.0, 22);
}

MetricsRegistry::Family& MetricsRegistry::ResolveFamily(
    const std::string& name, const std::string& help, Kind kind) {
  Family& family = families_[name];
  if (family.children.empty()) {
    family.kind = kind;
    family.help = help;
  } else if (family.kind != kind) {
    throw std::logic_error("MetricsRegistry: metric '" + name +
                           "' re-registered with a different type");
  }
  return family;
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name,
                                           const std::string& help,
                                           const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = ResolveFamily(name, help, Kind::kCounter);
  Child& child = family.children[LabelKey(labels)];
  if (child.counter == nullptr) {
    child.labels = labels;
    child.counter = std::make_unique<MetricCounter>();
  }
  return child.counter.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name,
                                       const std::string& help,
                                       const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = ResolveFamily(name, help, Kind::kGauge);
  Child& child = family.children[LabelKey(labels)];
  if (child.gauge == nullptr) {
    child.labels = labels;
    child.gauge = std::make_unique<MetricGauge>();
  }
  return child.gauge.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& help,
                                               std::vector<double> bounds,
                                               const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = ResolveFamily(name, help, Kind::kHistogram);
  if (family.children.empty()) {
    family.bounds = bounds;
  } else if (family.bounds != bounds) {
    // Two children of one family with different bucket layouts would make
    // the family's exposition unaggregatable; fail at registration, where
    // the bug is, not at scrape time.
    throw std::logic_error("MetricsRegistry: histogram '" + name +
                           "' re-registered with different bounds");
  }
  Child& child = family.children[LabelKey(labels)];
  if (child.histogram == nullptr) {
    child.labels = labels;
    child.histogram = std::make_unique<MetricHistogram>(family.bounds);
  }
  return child.histogram.get();
}

std::string MetricsRegistry::WritePrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out.append("# HELP ");
    out.append(name);
    out.push_back(' ');
    out.append(family.help);
    out.push_back('\n');
    out.append("# TYPE ");
    out.append(name);
    out.push_back(' ');
    switch (family.kind) {
      case Kind::kCounter:
        out.append("counter");
        break;
      case Kind::kGauge:
        out.append("gauge");
        break;
      case Kind::kHistogram:
        out.append("histogram");
        break;
    }
    out.push_back('\n');
    for (const auto& [key, child] : family.children) {
      switch (family.kind) {
        case Kind::kCounter: {
          out.append(name);
          AppendLabels(child.labels, nullptr, std::string(), &out);
          out.push_back(' ');
          AppendNumber(static_cast<double>(child.counter->value()), &out);
          out.push_back('\n');
          break;
        }
        case Kind::kGauge: {
          out.append(name);
          AppendLabels(child.labels, nullptr, std::string(), &out);
          out.push_back(' ');
          AppendNumber(child.gauge->value(), &out);
          out.push_back('\n');
          break;
        }
        case Kind::kHistogram: {
          const MetricHistogram& h = *child.histogram;
          uint64_t cumulative = 0;
          for (size_t b = 0; b <= h.bounds().size(); ++b) {
            cumulative += h.bucket(b);
            std::string le;
            if (b == h.bounds().size()) {
              le = "+Inf";
            } else {
              AppendNumber(h.bounds()[b], &le);
            }
            out.append(name);
            out.append("_bucket");
            AppendLabels(child.labels, "le", le, &out);
            out.push_back(' ');
            AppendNumber(static_cast<double>(cumulative), &out);
            out.push_back('\n');
          }
          out.append(name);
          out.append("_sum");
          AppendLabels(child.labels, nullptr, std::string(), &out);
          out.push_back(' ');
          AppendNumber(h.sum(), &out);
          out.push_back('\n');
          out.append(name);
          out.append("_count");
          AppendLabels(child.labels, nullptr, std::string(), &out);
          out.push_back(' ');
          AppendNumber(static_cast<double>(h.count()), &out);
          out.push_back('\n');
          break;
        }
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instruments handed out must stay valid through
  // static destruction (a dispatcher completing during exit must not write
  // into a destroyed registry).
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace pdx
