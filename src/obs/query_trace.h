#ifndef PDX_OBS_QUERY_TRACE_H_
#define PDX_OBS_QUERY_TRACE_H_

#include <string>

#include "obs/search_counters.h"

namespace pdx {

/// Per-query stage breakdown, attached to a QueryResult when the query was
/// submitted with QueryOptions::trace. The stage model (documented in the
/// README's Observability section) partitions a served query's life:
///
///   queue_ms    admission -> a dispatcher dequeued it
///   stage_ms    dequeue -> the batched search call began (deadline
///               re-check, staging the query into the dispatcher's
///               scratch, dispatch accounting)
///   search_ms   wall time of the SearchBatchWith call that carried the
///               query. Shared by every query coalesced into the same
///               micro-batch: the batch fans out (including shard
///               scatter-gather and the top-k merge) as one unit, so one
///               query's own share is not separable.
///   deliver_ms  search end -> its result was handed to the future or
///               callback (per-query: earlier completions in the batch
///               deliver sooner).
///   total_ms    admission -> delivery (= the QueryResult's total_ms).
///
/// `counters` is the query's OWN search work (blocks visited, lanes
/// pruned, values avoided) — per query, not per batch: the engine profiles
/// are collected per query slot even inside a coalesced batch.
///
/// The trace is heap-allocated only for traced queries; with trace off the
/// serving layer allocates nothing for it (QueryResult::trace stays null).
struct QueryTrace {
  std::string request_id;  ///< Echoed/generated X-Request-Id, may be empty.
  double queue_ms = 0.0;
  double stage_ms = 0.0;
  double search_ms = 0.0;
  double deliver_ms = 0.0;
  double total_ms = 0.0;
  SearchCounters counters;
};

}  // namespace pdx

#endif  // PDX_OBS_QUERY_TRACE_H_
