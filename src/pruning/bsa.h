#ifndef PDX_PRUNING_BSA_H_
#define PDX_PRUNING_BSA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/types.h"
#include "index/ivf.h"
#include "index/topk.h"
#include "linalg/pca.h"
#include "pruning/adsampling.h"
#include "storage/dual_block.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {

/// BSA (Yang et al., 2024) — the BSA_res variant — reimplemented from
/// scratch.
///
/// Preprocessing projects the collection onto its PCA basis (an orthogonal
/// transform, so L2 distances are preserved) which concentrates energy in
/// the leading dimensions. After scanning d of D dims, the exact distance
/// decomposes as
///
///     dist = partial_d + res_v(d) + res_q(d) - 2 <v_rest, q_rest>
///
/// and Cauchy-Schwarz bounds the cross term by sqrt(res_v * res_q), giving
/// the lower bound  partial + (sqrt(res_v) - sqrt(res_q))^2. BSA sharpens
/// this probabilistically with a multiplier m <= 1 on the cross term:
///
///     estimate(m) = partial + res_v + res_q - 2 m sqrt(res_v res_q)
///
/// m = 1 keeps the bound exact (no recall loss, weakest pruning); smaller m
/// prunes more aggressively at some recall cost — the knob the paper tunes
/// to match ADSampling's recall. Per-vector suffix energies res_v(d) are
/// precomputed at preprocessing time (their square roots are stored, so the
/// test is 3 FMAs per lane). L2 only.
class BsaPruner {
 public:
  /// Fits PCA on (a sample of) `vectors` and precomputes the projection.
  /// `multiplier` is m above; `max_fit_samples` caps the covariance sample
  /// (covariance estimation is O(samples * D^2); 4096 samples estimate the
  /// energy compaction well even at D=1536).
  explicit BsaPruner(const VectorSet& vectors, float multiplier = 1.0f,
                     size_t max_fit_samples = 4096);

  /// Restores a pruner from a persisted PCA basis — no covariance or eigen
  /// work. BuildAux must still run against the (loaded) store; the suffix
  /// tables it derives are deterministic in the packed data, so a restored
  /// pruner filters byte-identically to the one it was saved from.
  BsaPruner(Pca pca, float multiplier);

  size_t dim() const { return dim_; }
  float multiplier() const { return multiplier_; }
  const Pca& pca() const { return pca_; }

  /// Projects a whole collection into the PCA basis.
  VectorSet TransformCollection(const VectorSet& vectors) const;

  /// Projects one query into `out[0..dim)`.
  void TransformQuery(const float* query, float* out) const;

  /// sqrt of suffix energy of a projected vector: sqrt(sum_{j>=d} v_j^2)
  /// for every d in [0, dim]; `out` has dim+1 entries.
  static void SuffixNorms(const float* projected, size_t dim, float* out);

  // --- PDXearch pruner policy -------------------------------------------

  struct QueryState {
    std::vector<float> query;         ///< PCA-projected query.
    std::vector<float> suffix_norms;  ///< sqrt(res_q(d)), d in [0, dim].
  };

  QueryState PrepareQuery(const float* raw_query) const;
  const float* KernelQuery(const QueryState& qs) const {
    return qs.query.data();
  }

  bool has_visit_order() const { return false; }
  const std::vector<uint32_t>* VisitOrder(const QueryState&) const {
    return nullptr;
  }

  /// Precomputes per-block, dimension-major sqrt-suffix-energy tables
  /// aligned with `store`'s blocks. Must be called (once) with the PDX
  /// store that FilterSurvivors will be used against.
  void BuildAux(const PdxStore& store);

  /// Branchless survivor filter using the m-scaled Cauchy-Schwarz estimate.
  size_t FilterSurvivors(const QueryState& qs, size_t block_index,
                         const float* distances, size_t dims_scanned,
                         float threshold, uint32_t* positions,
                         size_t count) const;

 private:
  size_t dim_ = 0;
  float multiplier_ = 1.0f;
  Pca pca_;
  /// Per block: (dim+1) x n lane-major sqrt suffix energies; row d holds
  /// sqrt(res_v(d)) for every lane.
  std::vector<AlignedBuffer> aux_;
  std::vector<size_t> aux_lanes_;
};

/// IVF search with BSA on the horizontal dual-block layout (the paper's
/// N-ary BSA baseline, Table 7). `store` holds the PCA-projected collection
/// in bucket order; `suffix_norms` holds, per position, the (dim+1) sqrt
/// suffix energies of that vector.
std::vector<Neighbor> IvfHorizontalBsaSearch(
    const BsaPruner& pruner, const IvfIndex& index,
    const DualBlockStore& store, const std::vector<VectorId>& ids,
    const std::vector<size_t>& offsets,
    const std::vector<float>& suffix_norms, const float* raw_query, size_t k,
    size_t nprobe, bool use_simd, size_t delta_d = 32,
    HorizontalSearchCounters* counters = nullptr);

}  // namespace pdx

#endif  // PDX_PRUNING_BSA_H_
