#ifndef PDX_PRUNING_PDX_BOND_H_
#define PDX_PRUNING_PDX_BOND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "pruning/bond.h"
#include "storage/pdx_store.h"

namespace pdx {

/// PDX-BOND (Section 5): the paper's own DCO optimizer.
///
/// An *exact* pruner: the only bound is the partially computed distance
/// itself, which for L2/L1 grows monotonically with every dimension — if
/// the partial already exceeds the k-th best distance the vector can never
/// enter the top-k. No data transformation, no parameters to tune, no
/// recall trade-off; what makes it competitive is (a) PDXearch's START
/// phase seeding a tight threshold from the first block and (b) a
/// query-aware dimension visit order that grows the partial distance as
/// fast as possible (distance-to-means / dimension zones).
class PdxBondPruner {
 public:
  /// `means` are collection-level per-dimension means (PdxStore::stats()).
  /// `zone_size` applies to kDimensionZones.
  PdxBondPruner(std::vector<float> means,
                DimensionOrder order = DimensionOrder::kDimensionZones,
                size_t zone_size = 16);

  size_t dim() const { return means_.size(); }
  DimensionOrder order() const { return order_; }

  // --- PDXearch pruner policy -------------------------------------------

  struct QueryState {
    const float* query = nullptr;     ///< Raw query (no transformation!).
    std::vector<uint32_t> visit_order;
  };

  /// Query preprocessing = computing the visit order; the paper measures
  /// this at ~microseconds (Table 7's "almost free" row).
  QueryState PrepareQuery(const float* raw_query) const;

  const float* KernelQuery(const QueryState& qs) const { return qs.query; }

  bool has_visit_order() const {
    return order_ != DimensionOrder::kSequential;
  }
  const std::vector<uint32_t>* VisitOrder(const QueryState& qs) const {
    return has_visit_order() ? &qs.visit_order : nullptr;
  }

  void BuildAux(const PdxStore&) {}

  /// Exact filter: survive while partial < threshold.
  size_t FilterSurvivors(const QueryState& qs, size_t block_index,
                         const float* distances, size_t dims_scanned,
                         float threshold, uint32_t* positions,
                         size_t count) const;

 private:
  std::vector<float> means_;
  DimensionOrder order_;
  size_t zone_size_;
};

}  // namespace pdx

#endif  // PDX_PRUNING_PDX_BOND_H_
