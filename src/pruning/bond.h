#ifndef PDX_PRUNING_BOND_H_
#define PDX_PRUNING_BOND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "index/topk.h"
#include "storage/block_stats.h"
#include "storage/dsm_store.h"

namespace pdx {

/// Query-aware criteria for the order in which dimensions are visited
/// (Figure 5). All three make the partial distance grow as fast as
/// possible so that the exact partial-distance lower bound crosses the
/// pruning threshold early.
enum class DimensionOrder : uint8_t {
  /// Physical order; no reordering (what ADSampling/BSA effectively use —
  /// the projection already sorted dimensions by usefulness).
  kSequential = 0,
  /// BOND's original criterion: highest query value first. Only effective
  /// when query values are outliers relative to the collection.
  kDecreasingQuery = 1,
  /// PDX-BOND's criterion: dimensions whose collection mean is farthest
  /// from the query value first.
  kDistanceToMeans = 2,
  /// PDX-BOND for small blocks: rank fixed-size zones of *consecutive*
  /// dimensions by their summed distance-to-means, visiting whole zones —
  /// trades a little pruning power for long sequential memory stretches.
  kDimensionZones = 3,
};

/// Human-readable criterion name.
const char* DimensionOrderName(DimensionOrder order);

/// Computes the dimension visit order for `query` under `order`.
///
/// `means` are the collection (or block) per-dimension means; `zone_size`
/// applies to kDimensionZones only. The result is a permutation of
/// [0, dim).
std::vector<uint32_t> ComputeVisitOrder(const float* query,
                                        const std::vector<float>& means,
                                        DimensionOrder order,
                                        size_t zone_size = 16);

/// Classic BOND upper bound for the squared Euclidean distance: the
/// worst-case contribution of every *unseen* dimension is
/// max((q_d - min_d)^2, (q_d - max_d)^2). Added to a partial distance it
/// upper-bounds the true distance, which lets a search establish pruning
/// thresholds without fully scanning any vector (de Vries et al., 2002).
///
/// Returns suffix worst-case mass: out[j] = sum over visit positions >= j
/// of the per-dimension worst case, following `visit_order`; out has
/// dim+1 entries, out[dim] == 0.
std::vector<float> BondUpperBoundSuffix(const float* query,
                                        const DimensionStats& stats,
                                        const std::vector<uint32_t>&
                                            visit_order);

/// The *original* BOND algorithm (de Vries et al., SIGMOD 2002) as an
/// exact baseline: a column-at-a-time scan over fully decomposed storage.
///
/// Unlike PDX-BOND it never fully scans any vector up front — the pruning
/// threshold is the k-th smallest *upper bound* (partial + worst-case
/// remainder from per-dimension min/max statistics), re-derived after each
/// visited dimension; vectors whose partial (lower bound) exceeds it are
/// dropped. Exact for L2; this is the baseline whose bound-maintenance
/// latency limited BOND to ~1.6x, motivating PDX-BOND's design.
std::vector<Neighbor> ClassicBondSearch(
    const DsmStore& store, const DimensionStats& stats, const float* query,
    size_t k, DimensionOrder order = DimensionOrder::kDecreasingQuery);

}  // namespace pdx

#endif  // PDX_PRUNING_BOND_H_
