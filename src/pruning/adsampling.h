#ifndef PDX_PRUNING_ADSAMPLING_H_
#define PDX_PRUNING_ADSAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "index/ivf.h"
#include "index/topk.h"
#include "linalg/matrix.h"
#include "storage/dual_block.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {

/// ADSampling (Gao & Long, 2023) reimplemented from scratch.
///
/// Preprocessing rotates the collection with a Haar-random orthogonal
/// matrix; afterwards the first d dimensions of any vector are an unbiased
/// random projection, so the partial squared distance after d of D
/// dimensions estimates the full distance with a known error bound. The
/// hypothesis test "can this vector still enter the top-k?" reduces to
///
///     partial_d  >  tau^2 * ratio(d),
///     ratio(d) = (d/D) * (1 + epsilon0/sqrt(d))^2
///
/// where tau^2 is the current k-th best squared distance. `epsilon0`
/// controls the recall/speed trade-off (paper default 2.1). L2 only.
class AdSamplingPruner {
 public:
  /// Builds the rotation for `dim` dimensions. `epsilon0` as in the paper;
  /// `seed` makes the rotation reproducible.
  AdSamplingPruner(size_t dim, float epsilon0 = 2.1f, uint64_t seed = 42);

  /// Restores a pruner from a persisted rotation matrix — no RNG work; the
  /// cached transpose and test ratios are recomputed (both are
  /// deterministic functions of the rotation and epsilon0, so a restored
  /// pruner is byte-identical to the one it was saved from).
  AdSamplingPruner(Matrix rotation, float epsilon0);

  size_t dim() const { return dim_; }
  float epsilon0() const { return epsilon0_; }
  const Matrix& rotation() const { return rotation_; }

  /// Precomputed test multiplier for a partial distance over d dims.
  float Ratio(size_t d) const { return ratios_[d]; }

  /// Rotates a whole collection (rows are treated as points).
  VectorSet TransformCollection(const VectorSet& vectors) const;

  /// Rotates one query into `out[0..dim)`.
  void TransformQuery(const float* query, float* out) const;

  // --- PDXearch pruner policy -------------------------------------------

  /// Per-query state: the rotated query.
  struct QueryState {
    std::vector<float> query;
  };

  QueryState PrepareQuery(const float* raw_query) const;

  /// The query the distance kernels consume (rotated space).
  const float* KernelQuery(const QueryState& qs) const {
    return qs.query.data();
  }

  /// ADSampling scans dimensions sequentially (the projection already
  /// randomized them), so there is no per-query visit order.
  bool has_visit_order() const { return false; }
  const std::vector<uint32_t>* VisitOrder(const QueryState&) const {
    return nullptr;
  }

  /// Hook for per-block auxiliary data; ADSampling needs none.
  void BuildAux(const PdxStore&) {}

  /// Branchless survivor filter: keeps lanes whose partial distance over
  /// `dims_scanned` dims passes the hypothesis test against `threshold`
  /// (the current k-th best squared distance). Returns the new survivor
  /// count; `positions` is compacted in place.
  size_t FilterSurvivors(const QueryState& qs, size_t block_index,
                         const float* distances, size_t dims_scanned,
                         float threshold, uint32_t* positions,
                         size_t count) const;

 private:
  size_t dim_;
  float epsilon0_;
  Matrix rotation_;
  Matrix rotation_t_;  ///< Cached transpose for the fast query transform.
  std::vector<float> ratios_;  // index 0..dim, ratios_[dim] == 1.
};

/// Kernel flavor for the horizontal (vector-by-vector) ADSampling baseline.
enum class HorizontalKernel : uint8_t {
  kScalar = 0,  ///< The paper's SCALAR-ADS (original implementation style).
  kSimd = 1,    ///< The paper's SIMD-ADS (SIMDized chunk kernels).
};

/// Work counters for the horizontal pruned searches. Wall-clock timing of
/// the interleaved bounds test (a couple of FLOPs) is impossible without
/// distorting it, so the Table 7 harness instead counts tests/values here
/// and converts counts to time with a separately micro-benchmarked
/// per-operation cost.
struct HorizontalSearchCounters {
  uint64_t bound_tests = 0;      ///< Hypothesis/bound evaluations.
  uint64_t distance_values = 0;  ///< Dimension values consumed by kernels.
};

/// IVF search with ADSampling on the horizontal dual-block layout — the
/// baseline PDXearch is measured against in Figure 6.
///
/// `store` must hold the *rotated* collection in bucket-concatenated order
/// (ReorderByBuckets + DualBlockStore::FromVectorSet at split `delta_d`);
/// `ids`/`offsets` come from the same BucketOrderedSet. Distances are
/// evaluated Δd dims at a time, interleaving the hypothesis test between
/// chunks exactly like the original implementation.
std::vector<Neighbor> IvfHorizontalAdsSearch(
    const AdSamplingPruner& pruner, const IvfIndex& index,
    const DualBlockStore& store, const std::vector<VectorId>& ids,
    const std::vector<size_t>& offsets, const float* raw_query, size_t k,
    size_t nprobe, HorizontalKernel kernel, size_t delta_d = 32,
    HorizontalSearchCounters* counters = nullptr);

}  // namespace pdx

#endif  // PDX_PRUNING_ADSAMPLING_H_
