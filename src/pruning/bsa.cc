#include "pruning/bsa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "kernels/kernel_dispatch.h"
#include "kernels/nary_kernels.h"
#include "kernels/scalar_kernels.h"

namespace pdx {

BsaPruner::BsaPruner(const VectorSet& vectors, float multiplier,
                     size_t max_fit_samples)
    : dim_(vectors.dim()), multiplier_(multiplier) {
  assert(vectors.count() > 0);
  pca_.Fit(vectors.data(), vectors.count(), dim_, max_fit_samples);
}

BsaPruner::BsaPruner(Pca pca, float multiplier)
    : dim_(pca.dim()), multiplier_(multiplier), pca_(std::move(pca)) {
  assert(dim_ > 0);
}

VectorSet BsaPruner::TransformCollection(const VectorSet& vectors) const {
  assert(vectors.dim() == dim_);
  std::vector<float> projected(vectors.count() * dim_);
  pca_.TransformBatch(vectors.data(), vectors.count(), projected.data());
  return VectorSet::FromRowMajor(projected.data(), vectors.count(), dim_);
}

void BsaPruner::TransformQuery(const float* query, float* out) const {
  pca_.Transform(query, out);
}

void BsaPruner::SuffixNorms(const float* projected, size_t dim, float* out) {
  double acc = 0.0;
  out[dim] = 0.0f;
  for (size_t d = dim; d-- > 0;) {
    acc += double(projected[d]) * double(projected[d]);
    out[d] = static_cast<float>(std::sqrt(acc));
  }
}

BsaPruner::QueryState BsaPruner::PrepareQuery(const float* raw_query) const {
  QueryState qs;
  qs.query.resize(dim_);
  TransformQuery(raw_query, qs.query.data());
  qs.suffix_norms.resize(dim_ + 1);
  SuffixNorms(qs.query.data(), dim_, qs.suffix_norms.data());
  return qs;
}

void BsaPruner::BuildAux(const PdxStore& store) {
  assert(store.dim() == dim_);
  aux_.clear();
  aux_lanes_.clear();
  aux_.reserve(store.num_blocks());
  std::vector<float> lane(dim_);
  std::vector<float> norms(dim_ + 1);
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    const PdxBlock& block = store.block(b);
    const size_t n = block.count();
    AlignedBuffer table((dim_ + 1) * n);
    for (size_t i = 0; i < n; ++i) {
      block.ExtractLane(i, lane.data());
      SuffixNorms(lane.data(), dim_, norms.data());
      for (size_t d = 0; d <= dim_; ++d) table[d * n + i] = norms[d];
    }
    aux_.push_back(std::move(table));
    aux_lanes_.push_back(n);
  }
}

size_t BsaPruner::FilterSurvivors(const QueryState& qs, size_t block_index,
                                  const float* distances, size_t dims_scanned,
                                  float threshold, uint32_t* positions,
                                  size_t count) const {
  assert(block_index < aux_.size() && "BuildAux must run against the store");
  const size_t n = aux_lanes_[block_index];
  const float* suffix = aux_[block_index].data() + dims_scanned * n;
  const float sq = qs.suffix_norms[dims_scanned];
  const float sq2 = sq * sq;
  const float two_m_sq = 2.0f * multiplier_ * sq;
  size_t out = 0;
  for (size_t p = 0; p < count; ++p) {
    const uint32_t lane = positions[p];
    const float sv = suffix[lane];
    const float estimate = distances[lane] + sv * sv + sq2 - two_m_sq * sv;
    positions[out] = lane;
    out += static_cast<size_t>(estimate < threshold);
  }
  return out;
}

std::vector<Neighbor> IvfHorizontalBsaSearch(
    const BsaPruner& pruner, const IvfIndex& index,
    const DualBlockStore& store, const std::vector<VectorId>& ids,
    const std::vector<size_t>& offsets,
    const std::vector<float>& suffix_norms, const float* raw_query, size_t k,
    size_t nprobe, bool use_simd, size_t delta_d,
    HorizontalSearchCounters* counters) {
  assert(store.dim() == pruner.dim());
  const size_t dim = store.dim();
  const size_t checkpoints = dim + 1;
  BsaPruner::QueryState qs = pruner.PrepareQuery(raw_query);
  const float* query = qs.query.data();

  const std::vector<uint32_t> ranked = index.RankBucketsNary(raw_query);
  const size_t probes = std::min(nprobe, ranked.size());
  const PairKernelFn pair_kernel =
      use_simd ? ActiveKernels().nary_pair(Metric::kL2) : &ScalarL2;
  const float m = pruner.multiplier();

  TopK heap(k);
  for (size_t r = 0; r < probes; ++r) {
    const uint32_t b = ranked[r];
    for (size_t pos = offsets[b]; pos < offsets[b + 1]; ++pos) {
      const float* vector_suffix = suffix_norms.data() + pos * checkpoints;
      if (!heap.full()) {
        float distance =
            pair_kernel(query, store.Head(pos), store.split_dim());
        if (dim > store.split_dim()) {
          distance += pair_kernel(query + store.split_dim(), store.Tail(pos),
                                  dim - store.split_dim());
        }
        if (counters != nullptr) counters->distance_values += dim;
        heap.Push(ids[pos], distance);
        continue;
      }
      // Chunked scan with the m-scaled Cauchy-Schwarz test between chunks.
      float distance = pair_kernel(query, store.Head(pos), store.split_dim());
      size_t dims = store.split_dim();
      bool pruned = false;
      while (dims < dim) {
        if (counters != nullptr) ++counters->bound_tests;
        const float sv = vector_suffix[dims];
        const float sq = qs.suffix_norms[dims];
        const float estimate = distance + sv * sv + sq * sq - 2.0f * m * sv * sq;
        if (estimate >= heap.threshold()) {
          pruned = true;
          break;
        }
        const size_t chunk = std::min(delta_d, dim - dims);
        distance += pair_kernel(query + dims,
                                store.Tail(pos) + (dims - store.split_dim()),
                                chunk);
        dims += chunk;
      }
      if (counters != nullptr) counters->distance_values += dims;
      if (!pruned && distance < heap.threshold()) {
        heap.Push(ids[pos], distance);
      }
    }
  }
  return heap.SortedResults();
}

}  // namespace pdx
