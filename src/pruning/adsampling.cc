#include "pruning/adsampling.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/random.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/nary_kernels.h"
#include "kernels/scalar_kernels.h"
#include "linalg/random_orthogonal.h"

namespace pdx {

namespace {

std::vector<float> ComputeRatios(size_t dim, float epsilon0) {
  std::vector<float> ratios(dim + 1);
  ratios[0] = 0.0f;  // Never evaluated; PDXearch tests only at d >= 1.
  for (size_t d = 1; d <= dim; ++d) {
    if (d == dim) {
      ratios[d] = 1.0f;  // Full distance: the test becomes exact.
    } else {
      const double amplifier =
          1.0 + double(epsilon0) / std::sqrt(static_cast<double>(d));
      ratios[d] = static_cast<float>(double(d) / double(dim) * amplifier *
                                     amplifier);
    }
  }
  return ratios;
}

}  // namespace

AdSamplingPruner::AdSamplingPruner(size_t dim, float epsilon0, uint64_t seed)
    : dim_(dim), epsilon0_(epsilon0) {
  Rng rng(seed);
  rotation_ = RandomOrthogonalMatrix(dim, rng);
  rotation_t_ = rotation_.Transposed();
  ratios_ = ComputeRatios(dim, epsilon0);
}

AdSamplingPruner::AdSamplingPruner(Matrix rotation, float epsilon0)
    : dim_(rotation.rows()),
      epsilon0_(epsilon0),
      rotation_(std::move(rotation)) {
  assert(rotation_.rows() == rotation_.cols());
  rotation_t_ = rotation_.Transposed();
  ratios_ = ComputeRatios(dim_, epsilon0);
}

VectorSet AdSamplingPruner::TransformCollection(
    const VectorSet& vectors) const {
  assert(vectors.dim() == dim_);
  std::vector<float> rotated(vectors.count() * dim_);
  ProjectBatch(rotation_, vectors.data(), vectors.count(), rotated.data());
  return VectorSet::FromRowMajor(rotated.data(), vectors.count(), dim_);
}

void AdSamplingPruner::TransformQuery(const float* query, float* out) const {
  ApplyPretransposed(rotation_t_, query, out);
}

AdSamplingPruner::QueryState AdSamplingPruner::PrepareQuery(
    const float* raw_query) const {
  QueryState qs;
  qs.query.resize(dim_);
  TransformQuery(raw_query, qs.query.data());
  return qs;
}

size_t AdSamplingPruner::FilterSurvivors(const QueryState&, size_t,
                                         const float* distances,
                                         size_t dims_scanned, float threshold,
                                         uint32_t* positions,
                                         size_t count) const {
  const float bound = threshold * ratios_[dims_scanned];
  size_t out = 0;
  for (size_t p = 0; p < count; ++p) {
    const uint32_t lane = positions[p];
    positions[out] = lane;
    out += static_cast<size_t>(distances[lane] < bound);
  }
  return out;
}

namespace {

// One candidate vector, dual-block layout: chunked distance + hypothesis
// test between chunks. Returns the full distance if the vector survived all
// tests, or +inf if it was pruned.
template <typename KernelFn>
float HorizontalAdsCandidate(const AdSamplingPruner& pruner,
                             const DualBlockStore& store, size_t pos,
                             const float* query, float threshold,
                             size_t delta_d, KernelFn kernel,
                             HorizontalSearchCounters* counters) {
  const size_t dim = store.dim();
  const size_t head_dim = store.split_dim();
  float distance = kernel(query, store.Head(pos), head_dim);
  size_t dims = head_dim;
  while (dims < dim) {
    if (counters != nullptr) ++counters->bound_tests;
    if (distance >= threshold * pruner.Ratio(dims)) {
      if (counters != nullptr) counters->distance_values += dims;
      return std::numeric_limits<float>::infinity();
    }
    const size_t chunk = std::min(delta_d, dim - dims);
    distance +=
        kernel(query + dims, store.Tail(pos) + (dims - head_dim), chunk);
    dims += chunk;
  }
  if (counters != nullptr) counters->distance_values += dim;
  return distance;
}

}  // namespace

std::vector<Neighbor> IvfHorizontalAdsSearch(
    const AdSamplingPruner& pruner, const IvfIndex& index,
    const DualBlockStore& store, const std::vector<VectorId>& ids,
    const std::vector<size_t>& offsets, const float* raw_query, size_t k,
    size_t nprobe, HorizontalKernel kernel, size_t delta_d,
    HorizontalSearchCounters* counters) {
  assert(store.dim() == pruner.dim());
  AdSamplingPruner::QueryState qs = pruner.PrepareQuery(raw_query);
  const float* query = qs.query.data();
  const size_t dim = store.dim();

  const std::vector<uint32_t> ranked = index.RankBucketsNary(raw_query);
  const size_t probes = std::min(nprobe, ranked.size());

  const PairKernelFn pair_kernel =
      (kernel == HorizontalKernel::kScalar)
          ? &ScalarL2
          : ActiveKernels().nary_pair(Metric::kL2);

  TopK heap(k);
  for (size_t r = 0; r < probes; ++r) {
    const uint32_t b = ranked[r];
    for (size_t pos = offsets[b]; pos < offsets[b + 1]; ++pos) {
      if (!heap.full()) {
        // No threshold yet: full distance, no pruning possible.
        float distance = pair_kernel(query, store.Head(pos),
                                     store.split_dim());
        if (dim > store.split_dim()) {
          distance += pair_kernel(query + store.split_dim(),
                                  store.Tail(pos), dim - store.split_dim());
        }
        if (counters != nullptr) counters->distance_values += dim;
        heap.Push(ids[pos], distance);
        continue;
      }
      const float distance = HorizontalAdsCandidate(
          pruner, store, pos, query, heap.threshold(), delta_d, pair_kernel,
          counters);
      if (distance < heap.threshold()) heap.Push(ids[pos], distance);
    }
  }
  return heap.SortedResults();
}

}  // namespace pdx
