#include "pruning/pdx_bond.h"

#include <utility>

namespace pdx {

PdxBondPruner::PdxBondPruner(std::vector<float> means, DimensionOrder order,
                             size_t zone_size)
    : means_(std::move(means)), order_(order), zone_size_(zone_size) {}

PdxBondPruner::QueryState PdxBondPruner::PrepareQuery(
    const float* raw_query) const {
  QueryState qs;
  qs.query = raw_query;
  if (has_visit_order()) {
    qs.visit_order = ComputeVisitOrder(raw_query, means_, order_, zone_size_);
  }
  return qs;
}

size_t PdxBondPruner::FilterSurvivors(const QueryState&, size_t,
                                      const float* distances,
                                      size_t /*dims_scanned*/,
                                      float threshold, uint32_t* positions,
                                      size_t count) const {
  size_t out = 0;
  for (size_t p = 0; p < count; ++p) {
    const uint32_t lane = positions[p];
    positions[out] = lane;
    out += static_cast<size_t>(distances[lane] < threshold);
  }
  return out;
}

}  // namespace pdx
