#include "pruning/bond.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pdx {

const char* DimensionOrderName(DimensionOrder order) {
  switch (order) {
    case DimensionOrder::kSequential:
      return "sequential";
    case DimensionOrder::kDecreasingQuery:
      return "decreasing";
    case DimensionOrder::kDistanceToMeans:
      return "distance-to-means";
    case DimensionOrder::kDimensionZones:
      return "dimension-zones";
  }
  return "unknown";
}

std::vector<uint32_t> ComputeVisitOrder(const float* query,
                                        const std::vector<float>& means,
                                        DimensionOrder order,
                                        size_t zone_size) {
  const size_t dim = means.size();
  std::vector<uint32_t> visit(dim);
  std::iota(visit.begin(), visit.end(), 0);

  switch (order) {
    case DimensionOrder::kSequential:
      return visit;

    case DimensionOrder::kDecreasingQuery: {
      std::stable_sort(visit.begin(), visit.end(),
                       [&](uint32_t a, uint32_t b) {
                         return std::fabs(query[a]) > std::fabs(query[b]);
                       });
      return visit;
    }

    case DimensionOrder::kDistanceToMeans: {
      std::stable_sort(visit.begin(), visit.end(),
                       [&](uint32_t a, uint32_t b) {
                         return std::fabs(query[a] - means[a]) >
                                std::fabs(query[b] - means[b]);
                       });
      return visit;
    }

    case DimensionOrder::kDimensionZones: {
      assert(zone_size > 0);
      const size_t num_zones = (dim + zone_size - 1) / zone_size;
      // Rank zones by mean distance-to-means of their dimensions.
      std::vector<double> zone_score(num_zones, 0.0);
      for (size_t z = 0; z < num_zones; ++z) {
        const size_t lo = z * zone_size;
        const size_t hi = std::min(lo + zone_size, dim);
        for (size_t d = lo; d < hi; ++d) {
          zone_score[z] += std::fabs(query[d] - means[d]);
        }
        zone_score[z] /= static_cast<double>(hi - lo);
      }
      std::vector<uint32_t> zone_order(num_zones);
      std::iota(zone_order.begin(), zone_order.end(), 0);
      std::stable_sort(zone_order.begin(), zone_order.end(),
                       [&](uint32_t a, uint32_t b) {
                         return zone_score[a] > zone_score[b];
                       });
      // Emit zones in rank order, dimensions inside a zone in physical
      // order (the sequential stretch the criterion exists for).
      size_t out = 0;
      for (uint32_t z : zone_order) {
        const size_t lo = size_t(z) * zone_size;
        const size_t hi = std::min(lo + zone_size, dim);
        for (size_t d = lo; d < hi; ++d) {
          visit[out++] = static_cast<uint32_t>(d);
        }
      }
      return visit;
    }
  }
  return visit;
}

std::vector<Neighbor> ClassicBondSearch(const DsmStore& store,
                                        const DimensionStats& stats,
                                        const float* query, size_t k,
                                        DimensionOrder order) {
  const size_t dim = store.dim();
  const size_t count = store.count();
  if (count == 0) return {};
  const size_t result_k = std::min(k, count);

  const std::vector<uint32_t> visit =
      ComputeVisitOrder(query, stats.means, order);
  const std::vector<float> ub_suffix =
      BondUpperBoundSuffix(query, stats, visit);

  std::vector<float> partial(count, 0.0f);
  std::vector<uint32_t> alive(count);
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<float> upper;

  for (size_t j = 0; j < dim && alive.size() > result_k; ++j) {
    const uint32_t d = visit[j];
    const float qd = query[d];
    const float* column = store.Dimension(d);
    for (uint32_t id : alive) {
      const float diff = qd - column[id];
      partial[id] += diff * diff;
    }
    // Threshold = k-th smallest upper bound among alive candidates.
    const float remaining = ub_suffix[j + 1];
    upper.resize(alive.size());
    for (size_t i = 0; i < alive.size(); ++i) {
      upper[i] = partial[alive[i]] + remaining;
    }
    std::nth_element(upper.begin(), upper.begin() + (result_k - 1),
                     upper.end());
    const float threshold = upper[result_k - 1];
    // Drop candidates whose lower bound (the partial itself) exceeds it.
    size_t out = 0;
    for (uint32_t id : alive) {
      alive[out] = id;
      out += static_cast<size_t>(partial[id] <= threshold);
    }
    alive.resize(out);
  }

  // Finish the survivors exactly. The survivor set is small, so a full
  // strided recomputation is simpler than tracking which visited prefix
  // each partial covers.
  TopK heap(result_k);
  for (uint32_t id : alive) {
    float distance = 0.0f;
    for (size_t d = 0; d < dim; ++d) {
      const float diff = query[d] - store.Dimension(d)[id];
      distance += diff * diff;
    }
    heap.Push(id, distance);
  }
  return heap.SortedResults();
}

std::vector<float> BondUpperBoundSuffix(
    const float* query, const DimensionStats& stats,
    const std::vector<uint32_t>& visit_order) {
  const size_t dim = visit_order.size();
  assert(stats.dim() == dim);
  std::vector<float> suffix(dim + 1, 0.0f);
  double acc = 0.0;
  for (size_t j = dim; j-- > 0;) {
    const uint32_t d = visit_order[j];
    const double lo = double(query[d]) - double(stats.minimums[d]);
    const double hi = double(query[d]) - double(stats.maximums[d]);
    acc += std::max(lo * lo, hi * hi);
    suffix[j] = static_cast<float>(acc);
  }
  return suffix;
}

}  // namespace pdx
