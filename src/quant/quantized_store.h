#ifndef PDX_QUANT_QUANTIZED_STORE_H_
#define PDX_QUANT_QUANTIZED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/vector_set.h"

namespace pdx {

/// Scalar (u8) quantization of a PDX store — the paper's Section 7
/// follow-up: "efficient compressed representations of dimensions within
/// blocks", which quarters memory/bandwidth for the memory-bound PDX
/// kernels.
///
/// Quantization is per-dimension affine: dimension d maps value x to
/// round((x - offset_d) / scale_d) clamped to [0, 255], with offset/scale
/// derived from the collection's per-dimension min/max. Per-dimension
/// parameters matter: embedding dimensions have heterogeneous ranges, and
/// a global scale would waste most of the 8-bit budget on a few wide
/// dimensions.
///
/// Distances are computed asymmetrically (float query against u8 codes)
/// in *code space*: with q'_d = (q_d - offset_d)/scale_d and w_d =
/// scale_d^2, the L2 contribution of dimension d is w_d * (q'_d - code)^2
/// — one u8->f32 convert and one FMA per lane, still branchless and
/// auto-vectorizable.
class QuantizedPdxStore {
 public:
  QuantizedPdxStore() = default;

  QuantizedPdxStore(QuantizedPdxStore&&) = default;
  QuantizedPdxStore& operator=(QuantizedPdxStore&&) = default;
  QuantizedPdxStore(const QuantizedPdxStore&) = delete;
  QuantizedPdxStore& operator=(const QuantizedPdxStore&) = delete;

  /// Quantizes `vectors` into dimension-major u8 blocks of at most
  /// `block_capacity` lanes (horizontal partitioning, row order).
  static QuantizedPdxStore FromVectorSet(
      const VectorSet& vectors, size_t block_capacity = kPdxBlockSize);

  size_t dim() const { return dim_; }
  size_t count() const { return count_; }
  size_t num_blocks() const { return block_offsets_.size(); }

  /// Lanes in block b.
  size_t BlockCount(size_t b) const { return block_counts_[b]; }
  /// Dimension-major codes of block b: value(d, i) at [d*BlockCount(b)+i].
  const uint8_t* BlockData(size_t b) const {
    return codes_.data() + block_offsets_[b];
  }
  /// Global id of lane i in block b (row order here).
  VectorId BlockId(size_t b, size_t i) const {
    return static_cast<VectorId>(block_first_row_[b] + i);
  }

  const std::vector<float>& offsets() const { return offsets_; }
  const std::vector<float>& scales() const { return scales_; }

  /// Dequantizes one vector (for tests / reranking fallbacks).
  void Dequantize(VectorId id, float* out) const;

  /// Transforms a raw query into code space: out_prime[d] =
  /// (q_d - offset_d)/scale_d and out_weight[d] = scale_d^2.
  void TransformQuery(const float* query, float* out_prime,
                      float* out_weight) const;

  /// Worst-case squared-L2 error of the quantized distance vs the exact
  /// one, per vector pair: sum_d (scale_d/2)^2 rounding radius, amplified
  /// by the triangle inequality. Used by tests to bound the approximation.
  double MaxDistanceError(const float* query) const;

 private:
  size_t dim_ = 0;
  size_t count_ = 0;
  std::vector<float> offsets_;  // Per-dimension min.
  std::vector<float> scales_;   // Per-dimension (max-min)/255, >= epsilon.
  std::vector<uint8_t> codes_;  // All blocks, contiguous.
  std::vector<size_t> block_offsets_;
  std::vector<size_t> block_counts_;
  std::vector<size_t> block_first_row_;
};

}  // namespace pdx

#endif  // PDX_QUANT_QUANTIZED_STORE_H_
