#ifndef PDX_QUANT_QUANTIZED_STORE_H_
#define PDX_QUANT_QUANTIZED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/vector_set.h"

namespace pdx {

/// Scalar (u8) quantization of a PDX store — the paper's Section 7
/// follow-up: "efficient compressed representations of dimensions within
/// blocks", which quarters memory/bandwidth for the memory-bound PDX
/// kernels.
///
/// Quantization is per-dimension affine: dimension d maps value x to
/// round((x - offset_d) / scale_d) clamped to [0, 255], with offset/scale
/// derived from the collection's per-dimension min/max. Per-dimension
/// parameters matter: embedding dimensions have heterogeneous ranges, and
/// a global scale would waste most of the 8-bit budget on a few wide
/// dimensions.
///
/// Distances are computed asymmetrically (float query against u8 codes)
/// in *code space*: with q'_d = (q_d - offset_d)/scale_d and w_d =
/// scale_d^2, the L2 contribution of dimension d is w_d * (q'_d - code)^2
/// — one u8->f32 convert and one FMA per lane, still branchless and
/// auto-vectorizable.
class QuantizedPdxStore {
 public:
  QuantizedPdxStore() = default;

  QuantizedPdxStore(QuantizedPdxStore&&) = default;
  QuantizedPdxStore& operator=(QuantizedPdxStore&&) = default;
  QuantizedPdxStore(const QuantizedPdxStore&) = delete;
  QuantizedPdxStore& operator=(const QuantizedPdxStore&) = delete;

  /// Quantizes `vectors` into dimension-major u8 blocks of at most
  /// `block_capacity` lanes (horizontal partitioning, row order).
  static QuantizedPdxStore FromVectorSet(
      const VectorSet& vectors, size_t block_capacity = kPdxBlockSize);

  /// Quantizes `vectors` with blocks following an explicit grouping
  /// (IVF buckets): group g becomes ceil(|g| / block_capacity) consecutive
  /// blocks, and lane ids map back to the listed global rows. Offsets and
  /// scales stay collection-wide — the grouping changes layout, not the
  /// code space. GroupBlockRange recovers which blocks belong to which
  /// group.
  static QuantizedPdxStore FromGroups(
      const VectorSet& vectors,
      const std::vector<std::vector<VectorId>>& groups,
      size_t block_capacity = kPdxBlockSize);

  /// Reconstructs a store as a zero-copy view over externally owned codes
  /// (a loaded collection image): no requantization runs, `codes` must
  /// hold exactly the count x dim bytes FromVectorSet/FromGroups would
  /// have produced for the same `group_sizes` (flat stores pass one group
  /// of size count) and `block_capacity`. Empty `ids` means identity
  /// (row-order flat store). The caller keeps `codes` alive and unchanged
  /// for the store's lifetime.
  static QuantizedPdxStore FromView(size_t dim, std::vector<float> offsets,
                                    std::vector<float> scales,
                                    const std::vector<size_t>& group_sizes,
                                    std::vector<VectorId> ids,
                                    size_t block_capacity,
                                    const uint8_t* codes);

  size_t dim() const { return dim_; }
  size_t count() const { return count_; }
  size_t num_blocks() const { return block_offsets_.size(); }

  /// Lanes in block b.
  size_t BlockCount(size_t b) const { return block_counts_[b]; }
  /// Dimension-major codes of block b: value(d, i) at [d*BlockCount(b)+i].
  const uint8_t* BlockData(size_t b) const {
    return codes_data_ + block_offsets_[b];
  }
  /// Global id of lane i in block b (identity for row-order stores; the
  /// listed group member for FromGroups stores).
  VectorId BlockId(size_t b, size_t i) const {
    const size_t position = block_first_row_[b] + i;
    return ids_.empty() ? static_cast<VectorId>(position) : ids_[position];
  }

  /// Number of lane groups (1 for FromVectorSet; #buckets for FromGroups).
  size_t num_groups() const { return group_block_start_.size() - 1; }
  /// Half-open block range [first, last) of group g.
  std::pair<size_t, size_t> GroupBlockRange(size_t g) const {
    return {group_block_start_[g], group_block_start_[g + 1]};
  }

  const std::vector<float>& offsets() const { return offsets_; }
  const std::vector<float>& scales() const { return scales_; }
  /// Position -> global id map (empty = identity, row-order store).
  const std::vector<VectorId>& ids() const { return ids_; }

  /// Start of the contiguous code arena (count x dim bytes, block order).
  const uint8_t* codes_data() const { return codes_data_; }
  /// Total bytes of codes — the tier's compressed footprint.
  size_t codes_bytes() const { return count_ * dim_; }

  /// Dequantizes the vector at lane `position` in store order (for tests /
  /// reranking fallbacks). Note: position, not global id — for FromGroups
  /// stores the two differ; BlockId maps positions back to ids.
  void Dequantize(VectorId position, float* out) const;

  /// Transforms a raw query into code space: out_prime[d] =
  /// (q_d - offset_d)/scale_d and out_weight[d] = scale_d^2.
  void TransformQuery(const float* query, float* out_prime,
                      float* out_weight) const;

  /// Worst-case squared-L2 error of the quantized distance vs the exact
  /// one, per vector pair: sum_d (scale_d/2)^2 rounding radius, amplified
  /// by the triangle inequality. Used by tests to bound the approximation.
  double MaxDistanceError(const float* query) const;

 private:
  /// Lays out blocks for groups of the given sizes: fills block_offsets_,
  /// block_counts_, block_first_row_, group_block_start_.
  void BuildLayout(const std::vector<size_t>& group_sizes,
                   size_t block_capacity);
  /// Derives offsets_/scales_ from per-dimension min/max of `vectors`.
  void FitParameters(const VectorSet& vectors);
  /// Encodes the rows listed in positions order into codes_.
  void EncodeRows(const VectorSet& vectors);

  size_t dim_ = 0;
  size_t count_ = 0;
  std::vector<float> offsets_;  // Per-dimension min.
  std::vector<float> scales_;   // Per-dimension (max-min)/255, >= epsilon.
  std::vector<uint8_t> codes_;  // All blocks, contiguous (owned stores).
  /// codes_.data() for owned stores; the borrowed image pointer for
  /// FromView stores.
  const uint8_t* codes_data_ = nullptr;
  std::vector<VectorId> ids_;  // Position -> global id; empty = identity.
  std::vector<size_t> block_offsets_;
  std::vector<size_t> block_counts_;
  std::vector<size_t> block_first_row_;
  std::vector<size_t> group_block_start_;  // num_groups + 1 boundaries.
};

/// Process-wide count of quantization runs (FromVectorSet/FromGroups
/// encodes). The persistence tests pin "loading a quantized collection
/// does zero requantization work" by snapshotting this counter around
/// CollectionImage loads — the quantized analog of PdxStorePackCount.
uint64_t QuantizedPackCount();

}  // namespace pdx

#endif  // PDX_QUANT_QUANTIZED_STORE_H_
