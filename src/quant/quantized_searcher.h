#ifndef PDX_QUANT_QUANTIZED_SEARCHER_H_
#define PDX_QUANT_QUANTIZED_SEARCHER_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/any_searcher.h"
#include "storage/collection_format.h"
#include "storage/vector_set.h"

namespace pdx {

/// Factories for the u8 quantized serving tier (SearcherConfig::quantization
/// = kU8): a dimension-major u8 code scan (quant/quantized_store.h) selects
/// k * rerank_factor candidates, whose exact distances are recomputed on the
/// retained full-precision rows. Products implement the full Searcher
/// facade — per-slot SearchWith/SearchBatchWith bands, ExportSaved to the
/// PDXC quant sections, quantized_bytes() — so they compose with
/// MakeShardedSearcher and the serving layer unchanged. store() is the one
/// unsupported surface (there is no float PDX store to expose) and fails
/// loudly.
///
/// MakeSearcher routes here when config.quantization != kNone; call these
/// directly only from code that already knows it wants the quantized tier.

/// Quantizes and serves `vectors` under `config` (flat layout scans every
/// block; kIvf builds an owned IVF index with config.ivf and scans the
/// nprobe nearest buckets' blocks).
Result<std::unique_ptr<Searcher>> MakeQuantizedSearcher(
    const VectorSet& vectors, SearcherConfig config);

/// Same, over a caller-owned IVF index (must outlive the searcher and have
/// been built over `vectors`; layout must be kIvf).
Result<std::unique_ptr<Searcher>> MakeQuantizedSearcher(
    const VectorSet& vectors, const IvfIndex& index, SearcherConfig config);

/// Restores a quantized searcher from shard `shard`'s kQuantParams /
/// kQuantCodes / kQuantRows sections of `image`: codes and rerank rows
/// become zero-copy views into the image (which the searcher pins) and no
/// requantization runs — the persistence tests pin QuantizedPackCount at
/// zero across this call. `config` must be the resolved config decoded
/// from the image's meta.
Result<std::unique_ptr<Searcher>> MakeQuantizedSearcherFromImage(
    std::shared_ptr<const CollectionImage> image, uint32_t shard,
    SearcherConfig config);

}  // namespace pdx

#endif  // PDX_QUANT_QUANTIZED_SEARCHER_H_
