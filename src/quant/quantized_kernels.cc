#include "quant/quantized_kernels.h"

#include <cstring>

#include "kernels/kernel_dispatch.h"
#include "kernels/nary_kernels.h"

namespace pdx {

void QuantizedPdxAccumulate(const float* query_prime, const float* weights,
                            const uint8_t* block, size_t n, size_t d_start,
                            size_t d_end, float* distances) {
  ActiveKernels().quant_accumulate(query_prime, weights, block, n, d_start,
                                   d_end, distances);
}

void QuantizedPdxLinearScan(const QuantizedPdxStore& store,
                            const float* query_prime, const float* weights,
                            float* out) {
  std::memset(out, 0, store.count() * sizeof(float));
  const QuantAccumulateFn accumulate = ActiveKernels().quant_accumulate;
  size_t row = 0;
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    const size_t n = store.BlockCount(b);
    accumulate(query_prime, weights, store.BlockData(b), n, 0, store.dim(),
               out + row);
    row += n;
  }
}

Result<std::vector<Neighbor>> QuantizedFlatSearch(
    const QuantizedPdxStore& store, const VectorSet& originals,
    const float* query, size_t k, size_t rerank_factor) {
  // Explicit validation, not assert: a count/dim mismatch in a Release
  // build would silently read out of bounds of `originals` on the rerank
  // path below.
  if (originals.count() != store.count()) {
    return Status::InvalidArgument(
        "QuantizedFlatSearch: originals.count() != store.count()");
  }
  if (originals.dim() != store.dim()) {
    return Status::InvalidArgument(
        "QuantizedFlatSearch: originals.dim() != store.dim()");
  }
  if (k == 0) {
    return Status::InvalidArgument("QuantizedFlatSearch: k must be > 0");
  }
  const size_t dim = store.dim();
  std::vector<float> query_prime(dim);
  std::vector<float> weights(dim);
  store.TransformQuery(query, query_prime.data(), weights.data());

  std::vector<float> distances(store.count());
  QuantizedPdxLinearScan(store, query_prime.data(), weights.data(),
                         distances.data());

  // distances[] is indexed by store position; map back to global row ids
  // (identity for row-order stores, the group member for grouped stores).
  const std::vector<VectorId>& ids = store.ids();

  if (rerank_factor == 0) {
    TopK collector(k);
    for (size_t i = 0; i < store.count(); ++i) {
      const VectorId id = ids.empty() ? static_cast<VectorId>(i) : ids[i];
      collector.Push(id, distances[i]);
    }
    return collector.SortedResults();
  }

  // Over-fetch candidates on codes, then re-rank with exact distances.
  TopK candidates(std::max<size_t>(k * rerank_factor, k));
  for (size_t i = 0; i < store.count(); ++i) {
    const VectorId id = ids.empty() ? static_cast<VectorId>(i) : ids[i];
    candidates.Push(id, distances[i]);
  }
  TopK reranked(k);
  for (const Neighbor& candidate : candidates.SortedResults()) {
    reranked.Push(candidate.id,
                  NaryL2(query, originals.Vector(candidate.id), dim));
  }
  return reranked.SortedResults();
}

}  // namespace pdx
