#include "quant/quantized_kernels.h"

#include <cassert>
#include <cstring>

#include "kernels/nary_kernels.h"

namespace pdx {

void QuantizedPdxAccumulate(const float* query_prime, const float* weights,
                            const uint8_t* block, size_t n, size_t d_start,
                            size_t d_end, float* distances) {
  for (size_t d = d_start; d < d_end; ++d) {
    const float qd = query_prime[d];
    const float wd = weights[d];
    const uint8_t* codes = block + d * n;
    for (size_t i = 0; i < n; ++i) {
      const float diff = qd - float(codes[i]);
      distances[i] += wd * diff * diff;
    }
  }
}

void QuantizedPdxLinearScan(const QuantizedPdxStore& store,
                            const float* query_prime, const float* weights,
                            float* out) {
  std::memset(out, 0, store.count() * sizeof(float));
  size_t row = 0;
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    const size_t n = store.BlockCount(b);
    QuantizedPdxAccumulate(query_prime, weights, store.BlockData(b), n, 0,
                           store.dim(), out + row);
    row += n;
  }
}

std::vector<Neighbor> QuantizedFlatSearch(const QuantizedPdxStore& store,
                                          const VectorSet& originals,
                                          const float* query, size_t k,
                                          size_t rerank_factor) {
  assert(originals.count() == store.count());
  assert(originals.dim() == store.dim());
  const size_t dim = store.dim();
  std::vector<float> query_prime(dim);
  std::vector<float> weights(dim);
  store.TransformQuery(query, query_prime.data(), weights.data());

  std::vector<float> distances(store.count());
  QuantizedPdxLinearScan(store, query_prime.data(), weights.data(),
                         distances.data());

  if (rerank_factor == 0) {
    TopK collector(k);
    for (size_t i = 0; i < store.count(); ++i) {
      collector.Push(static_cast<VectorId>(i), distances[i]);
    }
    return collector.SortedResults();
  }

  // Over-fetch candidates on codes, then re-rank with exact distances.
  TopK candidates(std::max<size_t>(k * rerank_factor, k));
  for (size_t i = 0; i < store.count(); ++i) {
    candidates.Push(static_cast<VectorId>(i), distances[i]);
  }
  TopK reranked(k);
  for (const Neighbor& candidate : candidates.SortedResults()) {
    reranked.Push(candidate.id,
                  NaryL2(query, originals.Vector(candidate.id), dim));
  }
  return reranked.SortedResults();
}

}  // namespace pdx
