#include "quant/quantized_searcher.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/persist.h"
#include "index/topk.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/nary_kernels.h"
#include "quant/quantized_store.h"

namespace pdx {
namespace {

/// The quantized tier's facade implementation. Mirrors AnySearcherImpl's
/// concurrency contract: per-slot scratch bands (ReserveScratch up front
/// for concurrent callers), knob resolution per call, no shared-state
/// mutation on the SearchWith/SearchBatchWith path.
class QuantizedSearcher final : public Searcher {
 public:
  QuantizedSearcher(SearcherConfig config, QuantizedPdxStore qstore,
                    VectorSet owned_rows, const float* rows,
                    std::unique_ptr<IvfIndex> owned_index,
                    const IvfIndex* index)
      : Searcher(std::move(config)),
        owned_index_(std::move(owned_index)),
        index_(index),
        qstore_(std::move(qstore)),
        owned_rows_(std::move(owned_rows)),
        rows_(rows) {
    max_block_lanes_ = 0;
    for (size_t b = 0; b < qstore_.num_blocks(); ++b) {
      max_block_lanes_ = std::max(max_block_lanes_, qstore_.BlockCount(b));
    }
  }

  std::vector<Neighbor> Search(const float* query) override {
    return SearchWith(0, QueryKnobs{}, query, &last_profile_);
  }

  std::vector<std::vector<Neighbor>> SearchBatch(const float* queries,
                                                 size_t num_queries) override {
    BatchProfile profile;
    std::vector<std::vector<Neighbor>> results =
        SearchBatchWith(0, QueryKnobs{}, queries, num_queries, &profile,
                        nullptr);
    batch_profile_ = std::move(profile);
    return results;
  }

  const PdxearchProfile& last_profile() const override {
    return last_profile_;
  }

  const PdxStore& store() const override {
    throw std::logic_error(
        "QuantizedSearcher::store: the u8 tier serves from a quantized "
        "store; there is no float PDX store to expose");
  }

  const IvfIndex* index() const override { return index_; }

  size_t dim() const override { return qstore_.dim(); }
  size_t count() const override { return qstore_.count(); }

  uint64_t quantized_bytes() const override { return qstore_.codes_bytes(); }

  void ReserveScratch(size_t slots) override { GrowSlots(slots); }

  using Searcher::SearchWith;

  std::vector<Neighbor> SearchWith(size_t slot, QueryKnobs knobs,
                                   const float* query,
                                   PdxearchProfile* profile) override {
    // Lazy growth for single-threaded convenience; concurrent callers
    // reserve their bands first (growth reallocates slots_).
    if (slot >= slots_.size()) GrowSlots(slot + 1);
    Slot& s = *slots_[slot];
    const size_t k = knobs.k > 0 ? knobs.k : config_.k;
    const size_t nprobe = knobs.nprobe > 0 ? knobs.nprobe : config_.nprobe;
    const size_t dim = qstore_.dim();
    const bool timed = config_.search.collect_phase_times;

    PdxearchProfile result_profile;
    Timer phase;
    qstore_.TransformQuery(query, s.query_prime.data(), s.weights.data());
    if (timed) result_profile.preprocess_ms = phase.ElapsedMillis();

    // Code-space scan: select k * rerank_factor candidates (or the final
    // k when reranking is off).
    const size_t rerank = config_.rerank_factor;
    const size_t fetch = rerank == 0 ? k : std::max(k * rerank, k);
    TopK candidates(fetch);
    const QuantAccumulateFn accumulate = ActiveKernels().quant_accumulate;
    float* distances = s.distances.data();

    auto scan_block = [&](size_t b) {
      const size_t n = qstore_.BlockCount(b);
      std::memset(distances, 0, n * sizeof(float));
      accumulate(s.query_prime.data(), s.weights.data(), qstore_.BlockData(b),
                 n, 0, dim, distances);
      for (size_t i = 0; i < n; ++i) {
        candidates.Push(qstore_.BlockId(b, i), distances[i]);
      }
      result_profile.blocks_visited += 1;
      result_profile.values_scanned += n * dim;
      result_profile.values_total += n * dim;
      result_profile.dims_scanned += dim;
    };

    if (index_ == nullptr) {
      if (timed) phase.Reset();
      for (size_t b = 0; b < qstore_.num_blocks(); ++b) scan_block(b);
      if (timed) result_profile.distance_ms = phase.ElapsedMillis();
    } else {
      if (timed) phase.Reset();
      const std::vector<uint32_t> ranked = index_->RankBuckets(query);
      if (timed) result_profile.find_buckets_ms = phase.ElapsedMillis();
      if (timed) phase.Reset();
      const size_t probes = std::min(nprobe, ranked.size());
      for (size_t p = 0; p < probes; ++p) {
        const auto range = qstore_.GroupBlockRange(ranked[p]);
        for (size_t b = range.first; b < range.second; ++b) scan_block(b);
      }
      if (timed) result_profile.distance_ms = phase.ElapsedMillis();
    }

    std::vector<Neighbor> results;
    if (rerank == 0) {
      results = candidates.SortedResults();
    } else {
      // Exact rerank on the retained float rows (global-id indexed).
      if (timed) phase.Reset();
      TopK reranked(k);
      for (const Neighbor& candidate : candidates.SortedResults()) {
        reranked.Push(candidate.id,
                      NaryL2(query, rows_ + size_t{candidate.id} * dim, dim));
        result_profile.rerank_candidates += 1;
      }
      results = reranked.SortedResults();
      if (timed) result_profile.distance_ms += phase.ElapsedMillis();
    }
    if (profile != nullptr) *profile = result_profile;
    return results;
  }

  std::vector<std::vector<Neighbor>> SearchBatchWith(
      size_t slot, QueryKnobs knobs, const float* queries, size_t num_queries,
      BatchProfile* profile, SearchCounters* counters) override {
    BatchProfile local;
    local.queries = num_queries;
    std::vector<std::vector<Neighbor>> results(num_queries);
    if (num_queries == 0) {
      if (profile != nullptr) *profile = std::move(local);
      return results;
    }
    const size_t d = qstore_.dim();
    ThreadPool* pool = num_queries == 1 ? nullptr : BatchPool();
    if (pool == nullptr) {
      Timer wall;
      for (size_t q = 0; q < num_queries; ++q) {
        Timer per_query;
        PdxearchProfile query_profile;
        results[q] = SearchWith(slot, knobs, queries + q * d, &query_profile);
        local.latency.Record(per_query.ElapsedMillis());
        local.Accumulate(query_profile);
        if (counters != nullptr) counters[q] = query_profile.counters();
      }
      local.wall_ms = wall.ElapsedMillis();
    } else {
      // Fan out over the band [slot, slot + workers): worker w owns
      // slot + w, so concurrent batches on disjoint bands never share
      // scratch (same contract as AnySearcherImpl).
      const size_t workers = pool->num_threads();
      if (slot + workers > slots_.size()) GrowSlots(slot + workers);
      std::vector<BatchProfile> worker_profiles(workers);
      Timer wall;
      pool->ParallelFor(num_queries, [&](size_t q, size_t w) {
        Timer per_query;
        PdxearchProfile query_profile;
        results[q] =
            SearchWith(slot + w, knobs, queries + q * d, &query_profile);
        worker_profiles[w].latency.Record(per_query.ElapsedMillis());
        worker_profiles[w].Accumulate(query_profile);
        if (counters != nullptr) counters[q] = query_profile.counters();
      });
      local.wall_ms = wall.ElapsedMillis();
      for (const BatchProfile& wp : worker_profiles) {
        local.Accumulate(wp.sum);
        local.latency.Merge(wp.latency);
      }
    }
    if (profile != nullptr) *profile = std::move(local);
    return results;
  }

  Status ExportSaved(SavedCollection& out) const override {
    out = SavedCollection{};
    out.meta = MetaFromConfig(config_);
    out.meta.dim = dim();
    out.meta.count = count();
    SavedShard shard;
    shard.has_quant = true;
    shard.quant_offsets = qstore_.offsets();
    shard.quant_scales = qstore_.scales();
    shard.quant_codes = qstore_.codes_data();
    shard.quant_codes_bytes = qstore_.codes_bytes();
    shard.quant_rows = rows_;
    if (index_ != nullptr) {
      shard.has_ivf = true;
      // Same rationale as the float exporter: persist the centroid PDX
      // packing so a future packing change can't silently alter the saved
      // index's bucket ranking.
      shard.centroids = ExportStore(index_->centroids_pdx());
      const VectorSet& rows = index_->centroids();
      shard.centroid_rows.assign(rows.data(),
                                 rows.data() + rows.count() * rows.dim());
      shard.bucket_offsets.reserve(index_->num_buckets() + 1);
      shard.bucket_offsets.push_back(0);
      for (const std::vector<VectorId>& bucket : index_->buckets()) {
        shard.bucket_ids.insert(shard.bucket_ids.end(), bucket.begin(),
                                bucket.end());
        shard.bucket_offsets.push_back(shard.bucket_ids.size());
      }
    }
    out.shards.push_back(std::move(shard));
    return Status::OK();
  }

 private:
  /// Per-slot scratch: the code-space query transform and one block's worth
  /// of lane distances. Sized at construction so the dispatch path never
  /// allocates scratch.
  struct Slot {
    explicit Slot(size_t dim, size_t max_lanes)
        : query_prime(dim), weights(dim), distances(max_lanes) {}
    std::vector<float> query_prime;
    std::vector<float> weights;
    std::vector<float> distances;
  };

  void GrowSlots(size_t n) {
    while (slots_.size() < n) {
      slots_.push_back(
          std::make_unique<Slot>(qstore_.dim(), max_block_lanes_));
    }
  }

  std::unique_ptr<IvfIndex> owned_index_;
  const IvfIndex* index_ = nullptr;
  QuantizedPdxStore qstore_;
  /// Full-precision rows retained for the exact rerank pass; rows_ indexes
  /// by global id (owned_rows_.data() for built searchers, the image's
  /// kQuantRows view for loaded ones).
  VectorSet owned_rows_;
  const float* rows_ = nullptr;
  size_t max_block_lanes_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
  PdxearchProfile last_profile_;
};

Result<std::unique_ptr<Searcher>> BuildQuantized(
    const VectorSet& vectors, std::unique_ptr<IvfIndex> owned,
    const IvfIndex* index, SearcherConfig config) {
  QuantizedPdxStore qstore =
      index == nullptr
          ? QuantizedPdxStore::FromVectorSet(vectors, config.block_capacity)
          : QuantizedPdxStore::FromGroups(vectors, index->buckets(),
                                          config.block_capacity);
  VectorSet rows = vectors.Clone();
  const float* rows_data = rows.data();
  return std::unique_ptr<Searcher>(new QuantizedSearcher(
      std::move(config), std::move(qstore), std::move(rows), rows_data,
      std::move(owned), index));
}

}  // namespace

Result<std::unique_ptr<Searcher>> MakeQuantizedSearcher(
    const VectorSet& vectors, SearcherConfig config) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  if (vectors.empty()) {
    return Status::InvalidArgument("MakeQuantizedSearcher: empty collection");
  }
  config = ResolveConfig(std::move(config));
  if (config.layout == SearcherLayout::kFlat) {
    return BuildQuantized(vectors, nullptr, nullptr, std::move(config));
  }
  auto owned =
      std::make_unique<IvfIndex>(IvfIndex::Build(vectors, config.ivf));
  const IvfIndex* index = owned.get();
  return BuildQuantized(vectors, std::move(owned), index, std::move(config));
}

Result<std::unique_ptr<Searcher>> MakeQuantizedSearcher(
    const VectorSet& vectors, const IvfIndex& index, SearcherConfig config) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  if (vectors.empty()) {
    return Status::InvalidArgument("MakeQuantizedSearcher: empty collection");
  }
  if (config.layout != SearcherLayout::kIvf) {
    return Status::InvalidArgument(
        "MakeQuantizedSearcher: an external IVF index requires layout = "
        "kIvf");
  }
  if (index.dim() != vectors.dim() || index.count() != vectors.count()) {
    return Status::InvalidArgument(
        "MakeQuantizedSearcher: index was not built over this collection "
        "(dim/count mismatch)");
  }
  config = ResolveConfig(std::move(config));
  return BuildQuantized(vectors, nullptr, &index, std::move(config));
}

Result<std::unique_ptr<Searcher>> MakeQuantizedSearcherFromImage(
    std::shared_ptr<const CollectionImage> image, uint32_t shard,
    SearcherConfig config) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  config = ResolveConfig(std::move(config));

  Result<QuantImage> quant = DecodeQuant(*image, shard);
  if (!quant.ok()) return quant.status();
  QuantImage& qi = quant.value();
  if (qi.codes_bytes != uint64_t{qi.count} * qi.dim) {
    return Status::Corruption("collection file " + image->path() +
                              ": quant codes size disagrees with count x "
                              "dim");
  }

  std::unique_ptr<IvfIndex> owned;
  std::vector<size_t> group_sizes;
  std::vector<VectorId> ids;
  if (config.layout == SearcherLayout::kIvf) {
    Result<IvfImage> ivf = DecodeIvf(*image, shard);
    if (!ivf.ok()) return ivf.status();
    Result<StoreImage> cent = DecodeStore(*image, 2 * shard + 1);
    if (!cent.ok()) return cent.status();
    if (cent.value().count != ivf.value().num_buckets ||
        cent.value().dim != qi.dim) {
      return Status::Corruption(
          "collection file " + image->path() +
          ": centroid store disagrees with bucket count");
    }
    group_sizes.reserve(ivf.value().buckets.size());
    ids.reserve(qi.count);
    for (const std::vector<VectorId>& bucket : ivf.value().buckets) {
      group_sizes.push_back(bucket.size());
      ids.insert(ids.end(), bucket.begin(), bucket.end());
    }
    VectorSet centroids = VectorSet::FromRowMajor(
        ivf.value().centroid_rows, ivf.value().num_buckets, qi.dim);
    StoreImage& ci = cent.value();
    PdxStore centroids_pdx = PdxStore::FromView(
        ci.dim, ci.count, ci.block_counts, std::move(ci.group_block_start),
        ci.ids, std::move(ci.stats), std::move(ci.block_stats), ci.arena);
    owned = std::make_unique<IvfIndex>(
        IvfIndex::FromParts(qi.count, std::move(centroids),
                            std::move(centroids_pdx),
                            std::move(ivf.value().buckets)));
  } else {
    group_sizes.push_back(qi.count);
  }
  if (ids.size() != (config.layout == SearcherLayout::kIvf ? qi.count : 0)) {
    return Status::Corruption("collection file " + image->path() +
                              ": bucket lists disagree with quant count");
  }

  QuantizedPdxStore qstore = QuantizedPdxStore::FromView(
      qi.dim, std::move(qi.offsets), std::move(qi.scales), group_sizes,
      std::move(ids), config.block_capacity, qi.codes);
  const IvfIndex* index = owned.get();
  std::unique_ptr<Searcher> searcher(new QuantizedSearcher(
      std::move(config), std::move(qstore), VectorSet{}, qi.rows,
      std::move(owned), index));
  searcher->PinImage(std::move(image));
  return searcher;
}

}  // namespace pdx
