#include "quant/quantized_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "storage/block_stats.h"

namespace pdx {

QuantizedPdxStore QuantizedPdxStore::FromVectorSet(const VectorSet& vectors,
                                                   size_t block_capacity) {
  assert(block_capacity > 0);
  QuantizedPdxStore store;
  store.dim_ = vectors.dim();
  store.count_ = vectors.count();

  const DimensionStats stats =
      ComputeStats(vectors.data(), vectors.count(), vectors.dim());
  store.offsets_.resize(store.dim_);
  store.scales_.resize(store.dim_);
  for (size_t d = 0; d < store.dim_; ++d) {
    store.offsets_[d] = stats.minimums[d];
    const float range = stats.maximums[d] - stats.minimums[d];
    // Guard degenerate (constant) dimensions against divide-by-zero.
    store.scales_[d] = std::max(range / 255.0f, 1e-30f);
  }

  store.codes_.resize(store.count_ * store.dim_);
  size_t offset = 0;
  size_t row = 0;
  while (row < store.count_) {
    const size_t n = std::min(block_capacity, store.count_ - row);
    store.block_offsets_.push_back(offset);
    store.block_counts_.push_back(n);
    store.block_first_row_.push_back(row);
    uint8_t* block = store.codes_.data() + offset;
    for (size_t i = 0; i < n; ++i) {
      const float* v = vectors.Vector(static_cast<VectorId>(row + i));
      for (size_t d = 0; d < store.dim_; ++d) {
        const float code =
            std::round((v[d] - store.offsets_[d]) / store.scales_[d]);
        block[d * n + i] =
            static_cast<uint8_t>(std::clamp(code, 0.0f, 255.0f));
      }
    }
    offset += n * store.dim_;
    row += n;
  }
  return store;
}

void QuantizedPdxStore::Dequantize(VectorId id, float* out) const {
  assert(id < count_);
  // Locate the block (blocks are equally sized except the tail).
  size_t b = 0;
  while (b + 1 < block_first_row_.size() && block_first_row_[b + 1] <= id) {
    ++b;
  }
  const size_t lane = id - block_first_row_[b];
  const uint8_t* block = BlockData(b);
  const size_t n = block_counts_[b];
  for (size_t d = 0; d < dim_; ++d) {
    out[d] = offsets_[d] + scales_[d] * float(block[d * n + lane]);
  }
}

void QuantizedPdxStore::TransformQuery(const float* query, float* out_prime,
                                       float* out_weight) const {
  for (size_t d = 0; d < dim_; ++d) {
    out_prime[d] = (query[d] - offsets_[d]) / scales_[d];
    out_weight[d] = scales_[d] * scales_[d];
  }
}

double QuantizedPdxStore::MaxDistanceError(const float* query) const {
  // |d2(q,v) - d2(q,v~)| <= sum_d (2|q_d - v_d| + e_d) e_d with per-dim
  // rounding radius e_d = scale_d/2; bound |q_d - v_d| by the dimension
  // range (codes span [min,max]).
  double bound = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    const double radius = scales_[d] * 0.5;
    const double range = scales_[d] * 255.0;
    const double reach =
        std::max(std::fabs(double(query[d]) - offsets_[d]),
                 std::fabs(double(query[d]) - (offsets_[d] + range)));
    bound += (2.0 * reach + radius) * radius;
  }
  return bound;
}

}  // namespace pdx
