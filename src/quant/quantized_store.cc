#include "quant/quantized_store.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <numeric>

#include "storage/block_stats.h"

namespace pdx {

namespace {

/// Floor for per-dimension scales. Degenerate (constant) dimensions would
/// otherwise divide by zero; the floor must also keep the derived values
/// finite: TransformQuery computes weight = scale^2, and a floor of 1e-30f
/// squares to 1e-60 — below the smallest normal float, so the weight
/// underflows to 0.0f while q' = (q - offset)/scale blows up, and the
/// kernel's 0 * huge^2 poisons every distance in the block with NaN.
/// 1e-10f squares to 1e-20 (comfortably normal), and a dimension only hits
/// the floor when its whole range is below 255 * 1e-10 — constant at float
/// precision anyway, so the rounding radius it implies is negligible.
constexpr float kMinScale = 1e-10f;

std::atomic<uint64_t> g_quantized_packs{0};

}  // namespace

uint64_t QuantizedPackCount() {
  return g_quantized_packs.load(std::memory_order_relaxed);
}

void QuantizedPdxStore::BuildLayout(const std::vector<size_t>& group_sizes,
                                    size_t block_capacity) {
  assert(block_capacity > 0);
  group_block_start_.clear();
  group_block_start_.push_back(0);
  size_t offset = 0;
  size_t position = 0;
  for (const size_t size : group_sizes) {
    size_t remaining = size;
    while (remaining > 0) {
      const size_t n = std::min(block_capacity, remaining);
      block_offsets_.push_back(offset);
      block_counts_.push_back(n);
      block_first_row_.push_back(position);
      offset += n * dim_;
      position += n;
      remaining -= n;
    }
    group_block_start_.push_back(block_offsets_.size());
  }
  assert(position == count_);
}

void QuantizedPdxStore::FitParameters(const VectorSet& vectors) {
  const DimensionStats stats =
      ComputeStats(vectors.data(), vectors.count(), vectors.dim());
  offsets_.resize(dim_);
  scales_.resize(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    offsets_[d] = stats.minimums[d];
    const float range = stats.maximums[d] - stats.minimums[d];
    // Guard degenerate (constant) dimensions against divide-by-zero — see
    // kMinScale for why the floor must be this large.
    scales_[d] = std::max(range / 255.0f, kMinScale);
  }
}

void QuantizedPdxStore::EncodeRows(const VectorSet& vectors) {
  codes_.resize(count_ * dim_);
  codes_data_ = codes_.data();
  for (size_t b = 0; b < block_offsets_.size(); ++b) {
    const size_t n = block_counts_[b];
    uint8_t* block = codes_.data() + block_offsets_[b];
    for (size_t i = 0; i < n; ++i) {
      const size_t position = block_first_row_[b] + i;
      const VectorId row =
          ids_.empty() ? static_cast<VectorId>(position) : ids_[position];
      const float* v = vectors.Vector(row);
      for (size_t d = 0; d < dim_; ++d) {
        const float code = std::round((v[d] - offsets_[d]) / scales_[d]);
        block[d * n + i] =
            static_cast<uint8_t>(std::clamp(code, 0.0f, 255.0f));
      }
    }
  }
  g_quantized_packs.fetch_add(1, std::memory_order_relaxed);
}

QuantizedPdxStore QuantizedPdxStore::FromVectorSet(const VectorSet& vectors,
                                                   size_t block_capacity) {
  QuantizedPdxStore store;
  store.dim_ = vectors.dim();
  store.count_ = vectors.count();
  store.FitParameters(vectors);
  store.BuildLayout({vectors.count()}, block_capacity);
  store.EncodeRows(vectors);
  return store;
}

QuantizedPdxStore QuantizedPdxStore::FromGroups(
    const VectorSet& vectors, const std::vector<std::vector<VectorId>>& groups,
    size_t block_capacity) {
  QuantizedPdxStore store;
  store.dim_ = vectors.dim();
  store.count_ = vectors.count();
  store.FitParameters(vectors);
  std::vector<size_t> sizes;
  sizes.reserve(groups.size());
  store.ids_.reserve(vectors.count());
  for (const std::vector<VectorId>& group : groups) {
    sizes.push_back(group.size());
    store.ids_.insert(store.ids_.end(), group.begin(), group.end());
  }
  assert(store.ids_.size() == store.count_);
  store.BuildLayout(sizes, block_capacity);
  store.EncodeRows(vectors);
  return store;
}

QuantizedPdxStore QuantizedPdxStore::FromView(
    size_t dim, std::vector<float> offsets, std::vector<float> scales,
    const std::vector<size_t>& group_sizes, std::vector<VectorId> ids,
    size_t block_capacity, const uint8_t* codes) {
  QuantizedPdxStore store;
  store.dim_ = dim;
  store.count_ =
      std::accumulate(group_sizes.begin(), group_sizes.end(), size_t{0});
  store.offsets_ = std::move(offsets);
  store.scales_ = std::move(scales);
  store.ids_ = std::move(ids);
  store.BuildLayout(group_sizes, block_capacity);
  store.codes_data_ = codes;
  return store;
}

void QuantizedPdxStore::Dequantize(VectorId position, float* out) const {
  assert(position < count_);
  // Locate the block: block_first_row_ is sorted, so the containing block
  // is the last entry <= position (upper_bound - 1) — O(log blocks), where
  // the old linear walk made the rerank/fallback path O(blocks) per row.
  const auto it = std::upper_bound(block_first_row_.begin(),
                                   block_first_row_.end(), size_t{position});
  const size_t b = static_cast<size_t>(it - block_first_row_.begin()) - 1;
  const size_t lane = position - block_first_row_[b];
  const uint8_t* block = BlockData(b);
  const size_t n = block_counts_[b];
  for (size_t d = 0; d < dim_; ++d) {
    out[d] = offsets_[d] + scales_[d] * float(block[d * n + lane]);
  }
}

void QuantizedPdxStore::TransformQuery(const float* query, float* out_prime,
                                       float* out_weight) const {
  for (size_t d = 0; d < dim_; ++d) {
    out_prime[d] = (query[d] - offsets_[d]) / scales_[d];
    out_weight[d] = scales_[d] * scales_[d];
  }
}

double QuantizedPdxStore::MaxDistanceError(const float* query) const {
  // |d2(q,v) - d2(q,v~)| <= sum_d (2|q_d - v_d| + e_d) e_d with per-dim
  // rounding radius e_d = scale_d/2; bound |q_d - v_d| by the dimension
  // range (codes span [min,max]).
  double bound = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    const double radius = scales_[d] * 0.5;
    const double range = scales_[d] * 255.0;
    const double reach =
        std::max(std::fabs(double(query[d]) - offsets_[d]),
                 std::fabs(double(query[d]) - (offsets_[d] + range)));
    bound += (2.0 * reach + radius) * radius;
  }
  return bound;
}

}  // namespace pdx
