#ifndef PDX_QUANT_QUANTIZED_KERNELS_H_
#define PDX_QUANT_QUANTIZED_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/topk.h"
#include "quant/quantized_store.h"
#include "storage/vector_set.h"

namespace pdx {

/// Vertical L2 kernel over quantized PDX blocks: accumulates
/// weight[d] * (query_prime[d] - code)^2 into per-lane distances.
/// Same loop structure as the float PDX kernels — dimension-outer,
/// lane-inner, branchless, auto-vectorizing — with one u8->f32 convert per
/// value and a quarter of the memory traffic. Dispatches to the widest
/// available ISA tier (src/kernels/isa/); results are bit-exact across
/// tiers.
void QuantizedPdxAccumulate(const float* query_prime, const float* weights,
                            const uint8_t* block, size_t n, size_t d_start,
                            size_t d_end, float* distances);

/// Exact-on-codes linear scan of the whole quantized store: out[i] is the
/// quantized squared L2 of the vector at position i (store order).
void QuantizedPdxLinearScan(const QuantizedPdxStore& store,
                            const float* query_prime, const float* weights,
                            float* out);

/// Approximate k-NN over the quantized store, optionally re-ranked:
/// the quantized scan selects `k * rerank_factor` candidates, whose exact
/// distances are then recomputed on the full-precision `originals`
/// (rerank_factor = 0 skips re-ranking and returns quantized distances).
/// Fails with InvalidArgument when `originals` does not match the store's
/// shape (count/dim) or k == 0 — a mismatch would read out of bounds.
Result<std::vector<Neighbor>> QuantizedFlatSearch(
    const QuantizedPdxStore& store, const VectorSet& originals,
    const float* query, size_t k, size_t rerank_factor = 4);

}  // namespace pdx

#endif  // PDX_QUANT_QUANTIZED_KERNELS_H_
