#include "index/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/parallel.h"
#include "common/random.h"
#include "kernels/nary_kernels.h"

namespace pdx {

namespace {

std::atomic<uint64_t> g_kmeans_runs{0};

}  // namespace

uint64_t KMeansRunCount() {
  return g_kmeans_runs.load(std::memory_order_relaxed);
}

namespace {

// k-means++ seeding: each next seed is drawn with probability proportional
// to its squared distance from the nearest already-chosen seed.
std::vector<uint32_t> KMeansPlusPlusSeeds(const VectorSet& train, size_t k,
                                          Rng& rng) {
  const size_t n = train.count();
  const size_t dim = train.dim();
  std::vector<uint32_t> seeds;
  seeds.reserve(k);
  seeds.push_back(static_cast<uint32_t>(rng.UniformInt(n)));

  std::vector<float> best_d2(n, std::numeric_limits<float>::infinity());
  for (size_t chosen = 1; chosen < k; ++chosen) {
    const float* last_seed = train.Vector(seeds.back());
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float d2 = NaryL2(train.Vector(static_cast<VectorId>(i)),
                              last_seed, dim);
      best_d2[i] = std::min(best_d2[i], d2);
      total += best_d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a seed; fall back to random.
      seeds.push_back(static_cast<uint32_t>(rng.UniformInt(n)));
      continue;
    }
    double pick = rng.UniformDouble() * total;
    uint32_t chosen_index = static_cast<uint32_t>(n - 1);
    for (size_t i = 0; i < n; ++i) {
      pick -= best_d2[i];
      if (pick <= 0.0) {
        chosen_index = static_cast<uint32_t>(i);
        break;
      }
    }
    seeds.push_back(chosen_index);
  }
  return seeds;
}

}  // namespace

uint32_t NearestCentroid(const VectorSet& centroids, const float* query) {
  uint32_t best = 0;
  float best_d2 = std::numeric_limits<float>::infinity();
  for (size_t c = 0; c < centroids.count(); ++c) {
    const float d2 = NaryL2(query, centroids.Vector(static_cast<VectorId>(c)),
                            centroids.dim());
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<uint32_t>(c);
    }
  }
  return best;
}

KMeansResult RunKMeans(const VectorSet& vectors,
                       const KMeansOptions& options) {
  g_kmeans_runs.fetch_add(1, std::memory_order_relaxed);
  const size_t n = vectors.count();
  const size_t dim = vectors.dim();
  const size_t k = options.num_clusters;
  assert(k >= 1 && k <= n);

  Rng rng(options.seed);

  // Training subsample (deterministic): cap at max_points_per_centroid * k.
  const size_t train_cap =
      options.max_points_per_centroid > 0
          ? options.max_points_per_centroid * k
          : n;
  VectorSet sampled_storage;
  const VectorSet* train = &vectors;
  if (n > train_cap) {
    std::vector<VectorId> pick(n);
    std::iota(pick.begin(), pick.end(), 0);
    rng.Shuffle(pick);
    pick.resize(train_cap);
    sampled_storage = vectors.Select(pick);
    train = &sampled_storage;
  }
  const size_t tn = train->count();

  // Seeding.
  std::vector<uint32_t> seeds;
  if (options.use_kmeans_pp) {
    seeds = KMeansPlusPlusSeeds(*train, k, rng);
  } else {
    seeds = rng.SampleWithoutReplacement(static_cast<uint32_t>(tn),
                                         static_cast<uint32_t>(k));
  }
  VectorSet centroids(dim, k);
  for (uint32_t s : seeds) centroids.Append(train->Vector(s));

  // Lloyd iterations on the training sample. Assignment (the O(n*k*D)
  // part) is read-only per point and parallelized; centroid updates stay
  // serial.
  std::vector<uint32_t> train_assign(tn, 0);
  std::vector<float> train_best_d2(tn, 0.0f);
  std::vector<double> sums(k * dim);
  std::vector<uint32_t> counts(k);
  double objective = 0.0;
  int iterations = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++iterations;
    ParallelFor(tn, [&](size_t i) {
      const float* row = train->Vector(static_cast<VectorId>(i));
      uint32_t best = 0;
      float best_d2 = std::numeric_limits<float>::infinity();
      for (size_t c = 0; c < k; ++c) {
        const float d2 =
            NaryL2(row, centroids.Vector(static_cast<VectorId>(c)), dim);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = static_cast<uint32_t>(c);
        }
      }
      train_assign[i] = best;
      train_best_d2[i] = best_d2;
    });
    double new_objective = 0.0;
    for (size_t i = 0; i < tn; ++i) new_objective += train_best_d2[i];

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < tn; ++i) {
      const float* row = train->Vector(static_cast<VectorId>(i));
      double* sum = sums.data() + size_t(train_assign[i]) * dim;
      for (size_t d = 0; d < dim; ++d) sum[d] += row[d];
      ++counts[train_assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at a random training point, jittered off
        // the largest cluster's centroid region.
        const uint32_t donor = static_cast<uint32_t>(rng.UniformInt(tn));
        centroids.Update(static_cast<VectorId>(c), train->Vector(donor));
        continue;
      }
      float* centroid = centroids.MutableVector(static_cast<VectorId>(c));
      const double inv = 1.0 / double(counts[c]);
      const double* sum = sums.data() + c * dim;
      for (size_t d = 0; d < dim; ++d) {
        centroid[d] = static_cast<float>(sum[d] * inv);
      }
    }

    // Converged when the objective stops improving meaningfully.
    if (iter > 0 && std::fabs(objective - new_objective) <=
                        1e-6 * std::max(1.0, objective)) {
      objective = new_objective;
      break;
    }
    objective = new_objective;
  }

  // Final assignment of the *full* collection.
  KMeansResult result;
  result.assignment.resize(n);
  std::vector<float> final_d2(n, 0.0f);
  ParallelFor(n, [&](size_t i) {
    const float* row = vectors.Vector(static_cast<VectorId>(i));
    uint32_t best = 0;
    float best_d2 = std::numeric_limits<float>::infinity();
    for (size_t c = 0; c < k; ++c) {
      const float d2 =
          NaryL2(row, centroids.Vector(static_cast<VectorId>(c)), dim);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<uint32_t>(c);
      }
    }
    result.assignment[i] = best;
    final_d2[i] = best_d2;
  });
  result.objective = 0.0;
  for (size_t i = 0; i < n; ++i) result.objective += final_d2[i];
  result.centroids = std::move(centroids);
  result.iterations_run = iterations;
  return result;
}

}  // namespace pdx
