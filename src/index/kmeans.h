#ifndef PDX_INDEX_KMEANS_H_
#define PDX_INDEX_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/vector_set.h"

namespace pdx {

/// Configuration for Lloyd's k-means — deliberately the "non-optimized
/// Lloyd algorithm" the paper says IVF uses (Section 2.1).
struct KMeansOptions {
  size_t num_clusters = 0;   ///< Required; must be >= 1 and <= N.
  int max_iterations = 20;   ///< Lloyd iterations (FAISS default ballpark).
  uint64_t seed = 42;        ///< RNG seed for seeding and training sample.
  bool use_kmeans_pp = true; ///< k-means++ seeding; false = random rows.
  /// Cap on training points per centroid; the full collection is still
  /// assigned at the end (FAISS trains on <= 256 points/centroid).
  size_t max_points_per_centroid = 256;
};

/// Result of a k-means run.
struct KMeansResult {
  VectorSet centroids;               ///< num_clusters x dim.
  std::vector<uint32_t> assignment;  ///< Per input row: nearest centroid.
  double objective = 0.0;            ///< Final sum of squared distances.
  int iterations_run = 0;
};

/// Runs Lloyd's k-means with k-means++ (or random) seeding on a training
/// subsample, then assigns every input vector to its nearest centroid.
/// Empty clusters are repaired by splitting the largest cluster.
KMeansResult RunKMeans(const VectorSet& vectors, const KMeansOptions& options);

/// Index of the centroid nearest to `query` (L2), linear scan.
uint32_t NearestCentroid(const VectorSet& centroids, const float* query);

/// Process-wide count of RunKMeans invocations. The persistence tests pin
/// "a loaded collection serves with zero k-means work" by snapshotting
/// this counter around CollectionImage loads.
uint64_t KMeansRunCount();

}  // namespace pdx

#endif  // PDX_INDEX_KMEANS_H_
