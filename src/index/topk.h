#ifndef PDX_INDEX_TOPK_H_
#define PDX_INDEX_TOPK_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "common/types.h"

namespace pdx {

/// One search hit: the ordering key (squared L2 / negated IP / L1) and the
/// global id of the vector.
struct Neighbor {
  VectorId id = kInvalidVectorId;
  float distance = std::numeric_limits<float>::infinity();

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Bounded max-heap that keeps the k smallest distances seen so far — the
/// "KNN candidate list" every VSS search maintains.
///
/// threshold() exposes the current k-th best distance, which is exactly the
/// pruning threshold ADSampling/BSA/PDX-BOND test partial distances
/// against. Until the heap holds k entries the threshold is +inf (nothing
/// can be pruned), which is why PDXearch's START phase linear-scans the
/// first block.
class TopK {
 public:
  /// Creates a collector for the k nearest neighbors (k >= 1).
  explicit TopK(size_t k);

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Current pruning threshold: the k-th best distance, or +inf while the
  /// collector is not yet full.
  float threshold() const {
    return full() ? heap_.front().distance
                  : std::numeric_limits<float>::infinity();
  }

  /// True when a vector at `distance` would enter the current top-k.
  bool WouldAccept(float distance) const { return distance < threshold(); }

  /// Offers one candidate; keeps it only if it is among the k best.
  void Push(VectorId id, float distance);

  /// Heap contents sorted by ascending distance (ties broken by id for
  /// deterministic output). Does not consume the collector.
  std::vector<Neighbor> SortedResults() const;

  /// Removes all entries, keeping k.
  void Clear() { heap_.clear(); }

 private:
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);

  size_t k_;
  std::vector<Neighbor> heap_;  // Max-heap on distance.
};

}  // namespace pdx

#endif  // PDX_INDEX_TOPK_H_
