#ifndef PDX_INDEX_IVF_H_
#define PDX_INDEX_IVF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "index/kmeans.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {

/// Options for building an IVF (Inverted File) index.
struct IvfOptions {
  /// Number of buckets (inverted lists). 0 = auto: ~sqrt(N), the
  /// conventional choice (Section 2.1).
  size_t num_buckets = 0;
  int max_iterations = 20;
  uint64_t seed = 42;
};

/// The IVF bucketing index (Section 2.1, Figure 2).
///
/// Training clusters the collection with Lloyd's k-means; each vector is
/// assigned to its nearest centroid's bucket. At query time the centroids
/// are ranked by distance to the query and the `nprobe` nearest buckets are
/// scanned.
///
/// The index itself only owns *membership* (buckets of vector ids) and the
/// centroids; search-time data arrangements (N-ary, PDX, dual-block,
/// projected variants) are built on top by the searchers so that every
/// competitor in a benchmark shares the identical bucket structure — the
/// paper's methodology ("all competitors share the same IVF index").
class IvfIndex {
 public:
  IvfIndex() = default;

  IvfIndex(IvfIndex&&) = default;
  IvfIndex& operator=(IvfIndex&&) = default;
  IvfIndex(const IvfIndex&) = delete;
  IvfIndex& operator=(const IvfIndex&) = delete;

  /// Builds the index over `vectors`.
  static IvfIndex Build(const VectorSet& vectors, const IvfOptions& options);

  /// Reassembles an index from persisted parts — no k-means runs.
  /// `centroids_pdx` must be the persisted PDX arrangement of `centroids`
  /// (rebuilding it would repack; restoring it keeps bucket ranking
  /// byte-identical to the saved index).
  static IvfIndex FromParts(size_t count, VectorSet centroids,
                            PdxStore centroids_pdx,
                            std::vector<std::vector<VectorId>> buckets);

  size_t num_buckets() const { return buckets_.size(); }
  size_t dim() const { return centroids_.dim(); }
  size_t count() const { return count_; }

  /// Bucket b's member ids (global row ids in the original collection).
  const std::vector<VectorId>& bucket(size_t b) const { return buckets_[b]; }
  const std::vector<std::vector<VectorId>>& buckets() const {
    return buckets_;
  }

  /// Centroids, horizontal layout (for N-ary competitors).
  const VectorSet& centroids() const { return centroids_; }

  /// Centroids in PDX layout (Table 7: "centroids are also stored with
  /// PDX", which speeds the find-nearest-buckets phase).
  const PdxStore& centroids_pdx() const { return centroids_pdx_; }

  /// Ranks all buckets by centroid distance to `query` (ascending L2) using
  /// the vertical kernels on the PDX centroid store; returns bucket ids.
  std::vector<uint32_t> RankBuckets(const float* query) const;

  /// Same ranking computed with horizontal kernels (used by N-ary
  /// competitors so their measured "find nearest buckets" phase matches
  /// their layout).
  std::vector<uint32_t> RankBucketsNary(const float* query) const;

 private:
  size_t count_ = 0;
  VectorSet centroids_;
  PdxStore centroids_pdx_;
  std::vector<std::vector<VectorId>> buckets_;
};

/// A collection physically reordered into bucket-concatenated order — the
/// layout every IVF system stores its inverted lists in. Horizontal
/// competitors (FAISS/Milvus stand-ins, SCALAR-/SIMD-ADS) scan this.
struct BucketOrderedSet {
  VectorSet vectors;            ///< Rows concatenated bucket by bucket.
  std::vector<VectorId> ids;    ///< Position -> original row id.
  std::vector<size_t> offsets;  ///< num_buckets+1 bucket boundaries.
};

/// Builds the bucket-ordered arrangement of `vectors` under `index`.
BucketOrderedSet ReorderByBuckets(const VectorSet& vectors,
                                  const IvfIndex& index);

}  // namespace pdx

#endif  // PDX_INDEX_IVF_H_
