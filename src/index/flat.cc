#include "index/flat.h"

#include <vector>

#include "common/aligned_buffer.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/scalar_kernels.h"

namespace pdx {

namespace {

// Shared tail: push a dense distance array into a TopK collector.
std::vector<Neighbor> SelectTopK(const float* distances, size_t count,
                                 size_t k) {
  TopK collector(k);
  for (size_t i = 0; i < count; ++i) {
    collector.Push(static_cast<VectorId>(i), distances[i]);
  }
  return collector.SortedResults();
}

}  // namespace

std::vector<Neighbor> FlatSearchNary(const VectorSet& vectors,
                                     const float* query, size_t k,
                                     Metric metric, Isa isa) {
  const PairKernelFn kernel = GetNaryKernel(metric, isa);
  TopK collector(k);
  for (size_t i = 0; i < vectors.count(); ++i) {
    collector.Push(
        static_cast<VectorId>(i),
        kernel(query, vectors.Vector(static_cast<VectorId>(i)),
               vectors.dim()));
  }
  return collector.SortedResults();
}

std::vector<Neighbor> FlatSearchScalar(const VectorSet& vectors,
                                       const float* query, size_t k,
                                       Metric metric) {
  // Scikit-learn style: materialize the whole distance array, then select.
  std::vector<float> distances(vectors.count());
  ScalarDistanceBatch(metric, query, vectors.data(), vectors.count(),
                      vectors.dim(), distances.data());
  return SelectTopK(distances.data(), distances.size(), k);
}

std::vector<Neighbor> FlatSearchPdx(const PdxStore& store, const float* query,
                                    size_t k, Metric metric) {
  const KernelTable& kernels = ActiveKernels();
  TopK collector(k);
  AlignedBuffer distances(kPdxBlockSize);
  std::vector<float> large;
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    const PdxBlock& block = store.block(b);
    float* out = distances.data();
    if (block.count() > kPdxBlockSize) {
      large.resize(block.count());
      out = large.data();
    }
    kernels.pdx_linear_scan(metric, query, block.data(), block.count(),
                            block.dim(), out);
    for (size_t i = 0; i < block.count(); ++i) {
      collector.Push(block.id(i), out[i]);
    }
  }
  return collector.SortedResults();
}

std::vector<Neighbor> FlatSearchDsm(const DsmStore& store, const float* query,
                                    size_t k, Metric metric) {
  // Column-at-a-time over the whole collection: one running distances array
  // of count() floats updated per dimension (the extra load/store traffic
  // the paper contrasts with PDX).
  const KernelTable& kernels = ActiveKernels();
  std::vector<float> distances(store.count(), 0.0f);
  for (size_t d = 0; d < store.dim(); ++d) {
    kernels.pdx_accumulate(metric, query, store.Dimension(0), store.count(),
                           d, d + 1, distances.data());
  }
  return SelectTopK(distances.data(), distances.size(), k);
}

std::vector<Neighbor> FlatSearchGather(const VectorSet& vectors,
                                       const float* query, size_t k,
                                       Metric metric) {
  std::vector<float> distances(vectors.count());
  ActiveKernels().gather_batch(metric, query, vectors.data(), vectors.count(),
                               vectors.dim(), distances.data());
  return SelectTopK(distances.data(), distances.size(), k);
}

}  // namespace pdx
