#ifndef PDX_INDEX_FLAT_H_
#define PDX_INDEX_FLAT_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "index/topk.h"
#include "kernels/kernel_dispatch.h"
#include "storage/dsm_store.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {

/// Exact (brute-force) k-NN baselines over every layout (Figure 9 roster).
///
/// All functions return the k nearest neighbors sorted by ascending
/// distance. They differ only in storage layout and kernel family, which is
/// precisely what the exact-search experiment isolates:
///
///   * Nary   — horizontal + explicit SIMD (the FAISS/USearch stand-in).
///   * Scalar — horizontal + portable scalar code (Scikit-learn stand-in).
///   * Pdx    — PDX blocks + auto-vectorized vertical kernels.
///   * Dsm    — fully decomposed columns + vertical kernels.
///   * Gather — horizontal storage transposed on the fly (Section 7).

std::vector<Neighbor> FlatSearchNary(const VectorSet& vectors,
                                     const float* query, size_t k,
                                     Metric metric, Isa isa = Isa::kBest);

std::vector<Neighbor> FlatSearchScalar(const VectorSet& vectors,
                                       const float* query, size_t k,
                                       Metric metric);

std::vector<Neighbor> FlatSearchPdx(const PdxStore& store, const float* query,
                                    size_t k, Metric metric);

std::vector<Neighbor> FlatSearchDsm(const DsmStore& store, const float* query,
                                    size_t k, Metric metric);

std::vector<Neighbor> FlatSearchGather(const VectorSet& vectors,
                                       const float* query, size_t k,
                                       Metric metric);

}  // namespace pdx

#endif  // PDX_INDEX_FLAT_H_
