#include "index/topk.h"

#include <algorithm>
#include <cassert>

namespace pdx {

TopK::TopK(size_t k) : k_(k) {
  assert(k >= 1);
  heap_.reserve(k);
}

void TopK::Push(VectorId id, float distance) {
  if (heap_.size() < k_) {
    heap_.push_back(Neighbor{id, distance});
    SiftUp(heap_.size() - 1);
    return;
  }
  if (distance >= heap_.front().distance) return;
  heap_.front() = Neighbor{id, distance};
  SiftDown(0);
}

std::vector<Neighbor> TopK::SortedResults() const {
  std::vector<Neighbor> out = heap_;
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  return out;
}

void TopK::SiftUp(size_t pos) {
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (heap_[parent].distance >= heap_[pos].distance) break;
    std::swap(heap_[parent], heap_[pos]);
    pos = parent;
  }
}

void TopK::SiftDown(size_t pos) {
  const size_t n = heap_.size();
  for (;;) {
    const size_t left = 2 * pos + 1;
    const size_t right = left + 1;
    size_t largest = pos;
    if (left < n && heap_[left].distance > heap_[largest].distance) {
      largest = left;
    }
    if (right < n && heap_[right].distance > heap_[largest].distance) {
      largest = right;
    }
    if (largest == pos) break;
    std::swap(heap_[pos], heap_[largest]);
    pos = largest;
  }
}

}  // namespace pdx
