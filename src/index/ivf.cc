#include "index/ivf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "kernels/nary_kernels.h"
#include "kernels/pdx_kernels.h"

namespace pdx {

IvfIndex IvfIndex::Build(const VectorSet& vectors, const IvfOptions& options) {
  assert(vectors.count() > 0);
  size_t num_buckets = options.num_buckets;
  if (num_buckets == 0) {
    num_buckets = static_cast<size_t>(
        std::lround(std::sqrt(static_cast<double>(vectors.count()))));
    num_buckets = std::max<size_t>(1, num_buckets);
  }
  num_buckets = std::min(num_buckets, vectors.count());

  KMeansOptions kmeans;
  kmeans.num_clusters = num_buckets;
  kmeans.max_iterations = options.max_iterations;
  kmeans.seed = options.seed;
  KMeansResult clustering = RunKMeans(vectors, kmeans);

  IvfIndex index;
  index.count_ = vectors.count();
  index.buckets_.assign(num_buckets, {});
  for (size_t i = 0; i < vectors.count(); ++i) {
    index.buckets_[clustering.assignment[i]].push_back(
        static_cast<VectorId>(i));
  }
  index.centroids_ = std::move(clustering.centroids);
  index.centroids_pdx_ = PdxStore::FromVectorSet(index.centroids_);
  return index;
}

IvfIndex IvfIndex::FromParts(size_t count, VectorSet centroids,
                             PdxStore centroids_pdx,
                             std::vector<std::vector<VectorId>> buckets) {
  assert(centroids.count() == buckets.size());
  assert(centroids_pdx.count() == buckets.size());
  IvfIndex index;
  index.count_ = count;
  index.centroids_ = std::move(centroids);
  index.centroids_pdx_ = std::move(centroids_pdx);
  index.buckets_ = std::move(buckets);
  return index;
}

std::vector<uint32_t> IvfIndex::RankBuckets(const float* query) const {
  const size_t nb = buckets_.size();
  std::vector<float> distances(nb);
  size_t offset = 0;
  for (size_t b = 0; b < centroids_pdx_.num_blocks(); ++b) {
    const PdxBlock& block = centroids_pdx_.block(b);
    PdxLinearScan(Metric::kL2, query, block.data(), block.count(),
                  block.dim(), distances.data() + offset);
    offset += block.count();
  }
  // Lanes are in centroid order because the PDX store was built without
  // grouping; sort bucket ids by distance.
  std::vector<uint32_t> order(nb);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;
  });
  return order;
}

BucketOrderedSet ReorderByBuckets(const VectorSet& vectors,
                                  const IvfIndex& index) {
  BucketOrderedSet out;
  out.vectors = VectorSet(vectors.dim(), vectors.count());
  out.ids.reserve(vectors.count());
  out.offsets.reserve(index.num_buckets() + 1);
  out.offsets.push_back(0);
  for (size_t b = 0; b < index.num_buckets(); ++b) {
    for (VectorId id : index.bucket(b)) {
      out.vectors.Append(vectors.Vector(id));
      out.ids.push_back(id);
    }
    out.offsets.push_back(out.ids.size());
  }
  return out;
}

std::vector<uint32_t> IvfIndex::RankBucketsNary(const float* query) const {
  const size_t nb = buckets_.size();
  std::vector<float> distances(nb);
  for (size_t b = 0; b < nb; ++b) {
    distances[b] = NaryL2(query, centroids_.Vector(static_cast<VectorId>(b)),
                          centroids_.dim());
  }
  std::vector<uint32_t> order(nb);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;
  });
  return order;
}

}  // namespace pdx
