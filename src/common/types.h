#ifndef PDX_COMMON_TYPES_H_
#define PDX_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace pdx {

/// Index of a vector within a collection (row id).
using VectorId = uint32_t;

/// Invalid / not-found sentinel for VectorId.
inline constexpr VectorId kInvalidVectorId = UINT32_MAX;

/// Distance metrics supported by every kernel family in this library.
///
/// All metrics are formulated so that *smaller is better* during a search:
/// kIp stores the negated inner product so that the same min-heap machinery
/// applies to similarity metrics.
enum class Metric : uint8_t {
  kL2 = 0,  ///< Squared Euclidean distance (no final sqrt, as in FAISS).
  kIp = 1,  ///< Negated inner product (maximizing IP == minimizing -IP).
  kL1 = 2,  ///< Manhattan distance.
};

/// Human-readable metric name ("l2", "ip", "l1").
inline const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kIp:
      return "ip";
    case Metric::kL1:
      return "l1";
  }
  return "unknown";
}

/// Number of vectors processed at-a-time by the tight PDX loops.
///
/// 64 is the sweet spot across NEON/AVX2/AVX512 (paper Table 5): the
/// per-lane distance accumulators of a full block fit in the architectural
/// SIMD register file, so the inner loop never spills to memory.
inline constexpr size_t kPdxBlockSize = 64;

/// Cache-line / widest-SIMD-register alignment used for vector data.
inline constexpr size_t kPdxAlignment = 64;

}  // namespace pdx

#endif  // PDX_COMMON_TYPES_H_
