#include "common/parallel.h"

#include <algorithm>

namespace pdx {

namespace {

// The pool jobs this thread is currently executing, innermost last, with
// the worker id held in each. Lets a re-entrant ParallelFor on any pool
// already on this thread's stack run inline under its existing worker id —
// no deadlock on submit_mutex_, and per-worker scratch indexed by worker id
// never aliases another thread's slot.
struct PoolFrame {
  const ThreadPool* pool;
  size_t worker;
};
thread_local std::vector<PoolFrame> tls_pool_frames;

// Innermost frame for `pool` on this thread, or nullptr.
const PoolFrame* FindFrame(const ThreadPool* pool) {
  for (auto it = tls_pool_frames.rbegin(); it != tls_pool_frames.rend();
       ++it) {
    if (it->pool == pool) return &*it;
  }
  return nullptr;
}

// RAII frame push/pop, exception-safe for the inline paths.
class FrameGuard {
 public:
  FrameGuard(const ThreadPool* pool, size_t worker) {
    tls_pool_frames.push_back(PoolFrame{pool, worker});
  }
  ~FrameGuard() { tls_pool_frames.pop_back(); }
  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;
};

// Relaxed is enough: the counter is a test/diagnostic aid, never a
// synchronization point.
std::atomic<uint64_t> pool_creation_counter{0};

}  // namespace

size_t ResolveThreadCount(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(num_threads, kMaxPoolThreads);
}

uint64_t ThreadPool::num_created() {
  return pool_creation_counter.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(size_t num_threads) {
  pool_creation_counter.fetch_add(1, std::memory_order_relaxed);
  num_threads = ResolveThreadCount(num_threads);
  workers_.reserve(num_threads - 1);
  for (size_t w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;

  // Re-entrant call from inside one of this pool's jobs on this thread
  // (directly, or sandwiched through another pool): run inline under the
  // enclosing job's worker id. The id is already exclusively this thread's,
  // so per-worker scratch stays race-free and no deadlock occurs.
  if (const PoolFrame* frame = FindFrame(this)) {
    for (size_t i = 0; i < count; ++i) fn(i, frame->worker);
    return;
  }

  // Sequential pool or trivially small job: run inline as worker 0. A
  // concurrent caller also runs as worker 0 — of its own loop, on its own
  // thread; see the header's worker-id exclusivity caveat.
  if (workers_.empty() || count == 1) {
    FrameGuard guard(this, 0);
    for (size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_jobs_.push_back(job);
    ++generation_;
  }
  wake_cv_.notify_all();

  RunJob(*job, 0);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for items, not for workers: a late-waking worker that never got
    // a slice must not delay the caller. It wakes eventually, finds every
    // active job's `next` exhausted and goes back to sleep.
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) >= count;
    });
    active_jobs_.erase(
        std::find(active_jobs_.begin(), active_jobs_.end(), job));
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::WorkerMain(size_t worker_id) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_cv_.wait(lock, [&] {
      return stopping_ || generation_ != seen_generation;
    });
    if (stopping_) return;
    seen_generation = generation_;
    // Drain every claimable in-flight loop before sleeping again: with
    // concurrent callers, more than one job may hold unclaimed items. A
    // job submitted mid-drain is caught either by the rescan or by the
    // generation bump on the next wait.
    for (;;) {
      std::shared_ptr<Job> job;  // Own a reference before unlocking.
      for (const std::shared_ptr<Job>& candidate : active_jobs_) {
        if (candidate->next.load(std::memory_order_relaxed) <
            candidate->count) {
          job = candidate;
          break;
        }
      }
      if (job == nullptr) break;  // Everything claimed; back to sleep.
      lock.unlock();
      RunJob(*job, worker_id);
      lock.lock();
    }
  }
}

void ThreadPool::RunJob(Job& job, size_t worker_id) {
  FrameGuard guard(this, worker_id);
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      (*job.fn)(i, worker_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      // Last item: wake the caller. Locking mutex_ orders this notify
      // against the caller's predicate check, so the wakeup can't be lost;
      // notify_all because several callers may be waiting, each on its own
      // job's completion.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  ThreadPool::Shared().ParallelFor(count,
                                   [&fn](size_t i, size_t) { fn(i); });
}

}  // namespace pdx
