#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace pdx {

void ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  const size_t workers = std::min<size_t>(
      count, std::max(1u, std::thread::hardware_concurrency()));
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&]() {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace pdx
