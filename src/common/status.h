#ifndef PDX_COMMON_STATUS_H_
#define PDX_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace pdx {

/// Outcome of an operation that can fail for reasons outside the caller's
/// control (I/O, malformed input, resource limits).
///
/// Follows the RocksDB/Arrow idiom: recoverable failures are reported
/// through Status return values rather than exceptions; programming errors
/// are guarded with assertions.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,
    kIoError,
    kNotFound,
    kCorruption,
    kUnsupported,
    kResourceExhausted,  ///< A bounded resource (queue, pool) is full.
    kDeadlineExceeded,   ///< The caller's deadline passed before completion.
    kCancelled,          ///< The operation was cancelled before it ran.
    kInternal,           ///< An invariant broke (e.g. a search threw).
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnsupported() const { return code_ == Code::kUnsupported; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }

  /// Failure message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Builds the status with code `code` and message `msg` — the inverse of
  /// code()/message() for layers (e.g. the wire front end) that transport a
  /// Status across a process boundary and reconstitute it on the far side.
  static Status FromCode(Code code, std::string msg) {
    if (code == Code::kOk) return Status();
    return Status(code, std::move(msg));
  }

  /// "OK" or "<code>: <message>"; suitable for logs and test output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value-or-error holder for functions whose result is only available on
/// success. Access to value() on a failed result is a programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error: `return Status::IoError(...);`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a failure status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  /// value() with a fallback for failure.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

/// Stable name of a status code ("OK", "NotFound", ...): the wire form the
/// HTTP front end puts in error bodies, and what ToString prefixes failures
/// with. Never returns null.
const char* StatusCodeName(Status::Code code);

/// Inverse of StatusCodeName: resolves a wire name back to its code.
/// Unknown names map to kInternal — a transported failure must stay a
/// failure even when the peer speaks a newer code vocabulary.
Status::Code StatusCodeFromName(const std::string& name);

/// Propagates a failing Status to the caller.
#define PDX_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::pdx::Status _pdx_status = (expr);      \
    if (!_pdx_status.ok()) return _pdx_status; \
  } while (false)

}  // namespace pdx

#endif  // PDX_COMMON_STATUS_H_
