#ifndef PDX_COMMON_MATH_UTILS_H_
#define PDX_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace pdx {

/// Sum of squares of `values[0..count)`.
float SquaredNorm(const float* values, size_t count);

/// Euclidean (L2) norm of `values[0..count)`.
float Norm(const float* values, size_t count);

/// Arithmetic mean of `values`; 0 for an empty vector.
double Mean(const std::vector<float>& values);

/// Population variance of `values`; 0 for fewer than 2 elements.
double Variance(const std::vector<float>& values);

/// p-th percentile (0..100) using linear interpolation; `values` is copied
/// and sorted internally. Returns 0 for an empty input.
double Percentile(std::vector<float> values, double p);

/// Geometric mean of strictly positive values; 0 for an empty input.
double GeometricMean(const std::vector<double>& values);

/// Rounds `value` up to the next multiple of `multiple` (> 0).
size_t RoundUp(size_t value, size_t multiple);

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool ApproxEqual(double a, double b, double rel_tol = 1e-5,
                 double abs_tol = 1e-8);

}  // namespace pdx

#endif  // PDX_COMMON_MATH_UTILS_H_
