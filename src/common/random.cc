#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pdx {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seed expander recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 top bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t draw = (*this)();
    if (draw >= threshold) return draw % bound;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; avoid log(0) by clamping away from zero.
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t bound,
                                                    uint32_t count) {
  assert(count <= bound);
  // Floyd's algorithm: O(count) draws, no full permutation materialized.
  std::vector<uint32_t> picked;
  picked.reserve(count);
  for (uint32_t j = bound - count; j < bound; ++j) {
    uint32_t t = static_cast<uint32_t>(UniformInt(j + 1));
    bool seen = false;
    for (uint32_t p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

}  // namespace pdx
